/**
 * @file
 * Ablation for the Mask Cache (Section 3.2): with it, criticality
 * accumulates across control-flow paths and dependence violations
 * stay rare (<2% of cycles per the paper); without it, single-path
 * masks miss producers and violations rise.
 */

#include <algorithm>
#include <cstdio>

#include "bench_util.hh"

using namespace cdfsim;

int
main(int argc, char **argv)
{
    bench::Harness h("bench_ablation_maskcache", argc, argv);
    auto defaults = bench::figureRunSpec();
    defaults.measureInstrs = 120'000;
    const auto spec = h.spec(defaults);
    const auto subset = h.workloads(
        {"astar", "soplex", "sphinx3", "bzip2"});

    const ooo::CoreConfig base;
    ooo::CoreConfig off = base;
    off.cdf.fillBuffer.useMaskCache = false;

    for (const auto &wl : subset) {
        h.add(wl, "base", ooo::CoreMode::Baseline, base, spec);
        h.add(wl, "mask_on", ooo::CoreMode::Cdf, base, spec);
        h.add(wl, "mask_off", ooo::CoreMode::Cdf, off, spec);
    }
    h.run();

    bench::printHeader(
        "Ablation: Mask Cache on/off",
        {"on_%", "on_viol", "off_%", "off_viol"});

    for (const auto &wl : subset) {
        if (!h.ok(wl, "base") || !h.ok(wl, "mask_on") ||
            !h.ok(wl, "mask_off")) {
            bench::printStatusRow(wl, 4, "halted");
            continue;
        }
        const double b = std::max(h.get(wl, "base").core.ipc, 1e-9);
        const auto &ron = h.get(wl, "mask_on");
        const auto &roff = h.get(wl, "mask_off");
        bench::printRow(
            wl,
            {(ron.core.ipc / b - 1) * 100,
             static_cast<double>(
                 ron.stats.get("core.dependence_violations")),
             (roff.core.ipc / b - 1) * 100,
             static_cast<double>(
                 roff.stats.get("core.dependence_violations"))});
    }
    std::printf("\npaper: the mask cache reduces dependence "
                "violations significantly;\nviolation overhead stays "
                "under 2%% of cycles\n");
    return h.finish();
}
