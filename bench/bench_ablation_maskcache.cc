/**
 * @file
 * Ablation for the Mask Cache (Section 3.2): with it, criticality
 * accumulates across control-flow paths and dependence violations
 * stay rare (<2% of cycles per the paper); without it, single-path
 * masks miss producers and violations rise.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace cdfsim;

int
main()
{
    auto spec = bench::figureRunSpec();
    spec.measureInstrs = 120'000;
    const std::vector<std::string> subset = {"astar", "soplex",
                                             "sphinx3", "bzip2"};

    bench::printHeader(
        "Ablation: Mask Cache on/off",
        {"on_%", "on_viol", "off_%", "off_viol"});

    for (const auto &wl : subset) {
        auto base =
            sim::runWorkload(wl, ooo::CoreMode::Baseline, spec);
        const double b = std::max(base.core.ipc, 1e-9);

        ooo::CoreConfig on;
        auto ron = sim::runWorkload(wl, ooo::CoreMode::Cdf, spec, on);
        ooo::CoreConfig off;
        off.cdf.fillBuffer.useMaskCache = false;
        auto roff =
            sim::runWorkload(wl, ooo::CoreMode::Cdf, spec, off);

        bench::printRow(
            wl,
            {(ron.core.ipc / b - 1) * 100,
             static_cast<double>(
                 ron.stats.get("core.dependence_violations")),
             (roff.core.ipc / b - 1) * 100,
             static_cast<double>(
                 roff.stats.get("core.dependence_violations"))});
    }
    std::printf("\npaper: the mask cache reduces dependence "
                "violations significantly;\nviolation overhead stays "
                "under 2%% of cycles\n");
    return 0;
}
