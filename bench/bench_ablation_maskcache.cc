/**
 * @file
 * Ablation for the Mask Cache (Section 3.2): with it, criticality
 * accumulates across control-flow paths and dependence violations
 * stay rare (<2% of cycles per the paper); without it, single-path
 * masks miss producers and violations rise.
 */

#include <algorithm>
#include <cstdio>

#include "bench_util.hh"
#include "sim/sweep_spec.hh"

using namespace cdfsim;

int
main(int argc, char **argv)
{
    bench::Harness h("bench_ablation_maskcache", argc, argv);
    const auto subset = h.workloads(
        {"astar", "soplex", "sphinx3", "bzip2"});

    // Mirrors bench/specs/ablation_maskcache.json.
    sim::SweepSpec sweep("bench_ablation_maskcache");
    auto defaults = bench::figureRunSpec();
    defaults.measureInstrs = 120'000;
    sweep.defaults() = h.spec(defaults);
    auto &g = sweep.group(subset);
    g.variant("base", ooo::CoreMode::Baseline);
    g.variant("mask_on", ooo::CoreMode::Cdf);
    g.variant("mask_off", ooo::CoreMode::Cdf)
        .set("cdf.fill_buffer.use_mask_cache", false);
    h.addCells(sweep.expand(ooo::CoreConfig{}));
    h.run();

    bench::printHeader(
        "Ablation: Mask Cache on/off",
        {"on_%", "on_viol", "off_%", "off_viol"});

    for (const auto &wl : subset) {
        if (!h.ok(wl, "base") || !h.ok(wl, "mask_on") ||
            !h.ok(wl, "mask_off")) {
            bench::printStatusRow(wl, 4, "halted");
            continue;
        }
        const double b = std::max(h.get(wl, "base").core.ipc, 1e-9);
        const auto &ron = h.get(wl, "mask_on");
        const auto &roff = h.get(wl, "mask_off");
        bench::printRow(
            wl,
            {(ron.core.ipc / b - 1) * 100,
             static_cast<double>(
                 ron.stats.get("core.dependence_violations")),
             (roff.core.ipc / b - 1) * 100,
             static_cast<double>(
                 roff.stats.get("core.dependence_violations"))});
    }
    std::printf("\npaper: the mask cache reduces dependence "
                "violations significantly;\nviolation overhead stays "
                "under 2%% of cycles\n");
    return h.finish();
}
