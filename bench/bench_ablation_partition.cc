/**
 * @file
 * Ablation for Section 3.5's dynamic partitioning: dynamic (paper)
 * vs static splits of the ROB/LQ/SQ between the critical and
 * non-critical sections. The paper reports dynamic partitioning
 * "significantly improves the performance of CDF" because optimal
 * splits are phase-dependent.
 */

#include <algorithm>
#include <cstdio>

#include "bench_util.hh"
#include "sim/sweep_spec.hh"

using namespace cdfsim;

int
main(int argc, char **argv)
{
    bench::Harness h("bench_ablation_partition", argc, argv);
    const auto subset = h.workloads(
        {"astar", "soplex", "lbm", "nab", "gems"});

    const std::vector<std::pair<std::string, double>> statics = {
        {"static50", 0.50}, {"static75", 0.75}, {"static90", 0.90}};

    // Mirrors bench/specs/ablation_partition.json.
    sim::SweepSpec sweep("bench_ablation_partition");
    auto defaults = bench::figureRunSpec();
    defaults.measureInstrs = 120'000;
    sweep.defaults() = h.spec(defaults);
    auto &g = sweep.group(subset);
    g.variant("base", ooo::CoreMode::Baseline);
    g.variant("dynamic", ooo::CoreMode::Cdf);
    for (const auto &[label, frac] : statics)
        g.variant(label, ooo::CoreMode::Cdf)
            .set("cdf.partition.dynamic", false)
            .set("cdf.partition.initial_critical_frac", frac);
    h.addCells(sweep.expand(ooo::CoreConfig{}));
    h.run();

    bench::printHeader(
        "Ablation: dynamic vs static window partitioning",
        {"dynamic_%", "static50_%", "static75_%", "static90_%"});

    const std::vector<std::string> variants = {
        "dynamic", "static50", "static75", "static90"};
    std::vector<std::vector<double>> cols(variants.size());
    for (const auto &wl : subset) {
        bool rowOk = h.ok(wl, "base");
        for (const auto &v : variants)
            rowOk = rowOk && h.ok(wl, v);
        if (!rowOk) {
            bench::printStatusRow(wl, variants.size(), "halted");
            continue;
        }
        const double b = std::max(h.get(wl, "base").core.ipc, 1e-9);
        std::vector<double> row, pct;
        for (std::size_t i = 0; i < variants.size(); ++i) {
            const double r = h.get(wl, variants[i]).core.ipc / b;
            cols[i].push_back(std::max(r, 1e-9));
            pct.push_back((r - 1) * 100);
        }
        bench::printRow(wl, pct);
    }
    std::printf("%-12s", "geomean");
    for (std::size_t i = 0; i < cols.size(); ++i)
        std::printf(" %11.1f%%",
                    (bench::geomeanWarn(cols[i],
                                        variants[i].c_str()) -
                     1) *
                        100);
    std::printf("\n\npaper: dynamic partitioning beats any static "
                "split (phase-dependent optimum)\n");
    return h.finish();
}
