/**
 * @file
 * Ablation for Section 3.5's dynamic partitioning: dynamic (paper)
 * vs static splits of the ROB/LQ/SQ between the critical and
 * non-critical sections. The paper reports dynamic partitioning
 * "significantly improves the performance of CDF" because optimal
 * splits are phase-dependent.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace cdfsim;

int
main()
{
    auto spec = bench::figureRunSpec();
    spec.measureInstrs = 120'000;
    const std::vector<std::string> subset = {"astar", "soplex", "lbm",
                                             "nab", "gems"};

    bench::printHeader(
        "Ablation: dynamic vs static window partitioning",
        {"dynamic_%", "static50_%", "static75_%", "static90_%"});

    std::vector<std::vector<double>> cols(4);
    for (const auto &wl : subset) {
        auto base =
            sim::runWorkload(wl, ooo::CoreMode::Baseline, spec);
        const double b = std::max(base.core.ipc, 1e-9);

        std::vector<double> row;
        ooo::CoreConfig dyn;
        row.push_back(
            sim::runWorkload(wl, ooo::CoreMode::Cdf, spec, dyn)
                .core.ipc /
            b);
        for (double frac : {0.50, 0.75, 0.90}) {
            ooo::CoreConfig st;
            st.cdf.partition.dynamic = false;
            st.cdf.partition.initialCriticalFrac = frac;
            row.push_back(
                sim::runWorkload(wl, ooo::CoreMode::Cdf, spec, st)
                    .core.ipc /
                b);
        }
        for (std::size_t i = 0; i < row.size(); ++i)
            cols[i].push_back(std::max(row[i], 1e-9));
        bench::printRow(wl, {(row[0] - 1) * 100, (row[1] - 1) * 100,
                             (row[2] - 1) * 100,
                             (row[3] - 1) * 100});
    }
    std::printf("%-12s", "geomean");
    for (auto &c : cols)
        std::printf(" %11.1f%%", (sim::geomean(c) - 1) * 100);
    std::printf("\n\npaper: dynamic partitioning beats any static "
                "split (phase-dependent optimum)\n");
    return 0;
}
