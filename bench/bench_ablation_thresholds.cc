/**
 * @file
 * Ablation for Section 3.2's dual-threshold Critical Count Table:
 * strict-only, permissive-only, and the paper's dynamic dual-counter
 * scheme, on benchmarks from the two behaviour classes (sparse
 * critical code favours strict thresholds; coverage-hungry code
 * favours permissive ones).
 */

#include <cstdio>

#include "bench_util.hh"

using namespace cdfsim;

namespace
{

double
speedup(const std::string &wl, const ooo::CoreConfig &cfg,
        const cdfsim::sim::RunSpec &spec)
{
    auto base = sim::runWorkload(wl, ooo::CoreMode::Baseline, spec);
    auto cdf = sim::runWorkload(wl, ooo::CoreMode::Cdf, spec, cfg);
    return cdf.core.ipc / std::max(base.core.ipc, 1e-9);
}

} // namespace

int
main()
{
    auto spec = bench::figureRunSpec();
    spec.measureInstrs = 120'000;
    const std::vector<std::string> subset = {"astar", "soplex", "lbm",
                                             "bzip2", "sphinx3"};

    bench::printHeader("Ablation: Critical Count Table thresholds",
                       {"dual_%", "strict_%", "permissive_%"});

    std::vector<double> d, st, pe;
    for (const auto &wl : subset) {
        ooo::CoreConfig dual; // default: dynamic dual thresholds

        // Strict-only: disable the density-driven switch by setting
        // both switch points below any real density.
        ooo::CoreConfig strict;
        strict.cdf.densitySwitchLow = -1.0;
        strict.cdf.densitySwitchHigh = -0.5;

        // Permissive-only: make the strict counter behave like the
        // permissive one.
        ooo::CoreConfig perm;
        perm.cdf.loadTable.strictBits =
            perm.cdf.loadTable.permissiveBits;
        perm.cdf.loadTable.strictThreshold =
            perm.cdf.loadTable.permissiveThreshold;
        perm.cdf.branchTable.strictBits =
            perm.cdf.branchTable.permissiveBits;
        perm.cdf.branchTable.strictThreshold =
            perm.cdf.branchTable.permissiveThreshold;

        const double rd = speedup(wl, dual, spec);
        const double rs = speedup(wl, strict, spec);
        const double rp = speedup(wl, perm, spec);
        d.push_back(rd);
        st.push_back(rs);
        pe.push_back(rp);
        bench::printRow(wl, {(rd - 1) * 100, (rs - 1) * 100,
                             (rp - 1) * 100});
    }
    std::printf("%-12s %11.1f%% %11.1f%% %11.1f%%\n", "geomean",
                (sim::geomean(d) - 1) * 100,
                (sim::geomean(st) - 1) * 100,
                (sim::geomean(pe) - 1) * 100);
    std::printf("\npaper: stricter thresholds are usually better "
                "(sparser critical stream),\nbut some benchmarks "
                "need the permissive counters; the dual scheme "
                "picks dynamically\n");
    return 0;
}
