/**
 * @file
 * Ablation for Section 3.2's dual-threshold Critical Count Table:
 * strict-only, permissive-only, and the paper's dynamic dual-counter
 * scheme, on benchmarks from the two behaviour classes (sparse
 * critical code favours strict thresholds; coverage-hungry code
 * favours permissive ones).
 */

#include <algorithm>
#include <cstdio>

#include "bench_util.hh"

using namespace cdfsim;

int
main(int argc, char **argv)
{
    bench::Harness h("bench_ablation_thresholds", argc, argv);
    auto defaults = bench::figureRunSpec();
    defaults.measureInstrs = 120'000;
    const auto spec = h.spec(defaults);
    const auto subset = h.workloads(
        {"astar", "soplex", "lbm", "bzip2", "sphinx3"});

    const ooo::CoreConfig base; // default: dynamic dual thresholds

    // Strict-only: disable the density-driven switch by setting
    // both switch points below any real density.
    ooo::CoreConfig strict = base;
    strict.cdf.densitySwitchLow = -1.0;
    strict.cdf.densitySwitchHigh = -0.5;

    // Permissive-only: make the strict counter behave like the
    // permissive one.
    ooo::CoreConfig perm = base;
    perm.cdf.loadTable.strictBits = perm.cdf.loadTable.permissiveBits;
    perm.cdf.loadTable.strictThreshold =
        perm.cdf.loadTable.permissiveThreshold;
    perm.cdf.branchTable.strictBits =
        perm.cdf.branchTable.permissiveBits;
    perm.cdf.branchTable.strictThreshold =
        perm.cdf.branchTable.permissiveThreshold;

    for (const auto &wl : subset) {
        h.add(wl, "base", ooo::CoreMode::Baseline, base, spec);
        h.add(wl, "dual", ooo::CoreMode::Cdf, base, spec);
        h.add(wl, "strict", ooo::CoreMode::Cdf, strict, spec);
        h.add(wl, "permissive", ooo::CoreMode::Cdf, perm, spec);
    }
    h.run();

    bench::printHeader("Ablation: Critical Count Table thresholds",
                       {"dual_%", "strict_%", "permissive_%"});

    std::vector<double> d, st, pe;
    for (const auto &wl : subset) {
        if (!h.ok(wl, "base") || !h.ok(wl, "dual") ||
            !h.ok(wl, "strict") || !h.ok(wl, "permissive")) {
            bench::printStatusRow(wl, 3, "halted");
            continue;
        }
        const double b = std::max(h.get(wl, "base").core.ipc, 1e-9);
        const double rd = h.get(wl, "dual").core.ipc / b;
        const double rs = h.get(wl, "strict").core.ipc / b;
        const double rp = h.get(wl, "permissive").core.ipc / b;
        d.push_back(rd);
        st.push_back(rs);
        pe.push_back(rp);
        bench::printRow(wl, {(rd - 1) * 100, (rs - 1) * 100,
                             (rp - 1) * 100});
    }
    std::printf("%-12s %11.1f%% %11.1f%% %11.1f%%\n", "geomean",
                (bench::geomeanWarn(d, "dual") - 1) * 100,
                (bench::geomeanWarn(st, "strict") - 1) * 100,
                (bench::geomeanWarn(pe, "permissive") - 1) * 100);
    std::printf("\npaper: stricter thresholds are usually better "
                "(sparser critical stream),\nbut some benchmarks "
                "need the permissive counters; the dual scheme "
                "picks dynamically\n");
    return h.finish();
}
