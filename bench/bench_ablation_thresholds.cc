/**
 * @file
 * Ablation for Section 3.2's dual-threshold Critical Count Table:
 * strict-only, permissive-only, and the paper's dynamic dual-counter
 * scheme, on benchmarks from the two behaviour classes (sparse
 * critical code favours strict thresholds; coverage-hungry code
 * favours permissive ones).
 */

#include <algorithm>
#include <cstdio>

#include "bench_util.hh"
#include "sim/sweep_spec.hh"

using namespace cdfsim;

int
main(int argc, char **argv)
{
    bench::Harness h("bench_ablation_thresholds", argc, argv);
    const auto subset = h.workloads(
        {"astar", "soplex", "lbm", "bzip2", "sphinx3"});

    const ooo::CoreConfig base; // default: dynamic dual thresholds

    // Mirrors bench/specs/ablation_thresholds.json (which hardcodes
    // the permissive literals; the spec-identity ctest catches drift
    // if the table defaults ever change).
    sim::SweepSpec sweep("bench_ablation_thresholds");
    auto defaults = bench::figureRunSpec();
    defaults.measureInstrs = 120'000;
    sweep.defaults() = h.spec(defaults);
    auto &g = sweep.group(subset);
    g.variant("base", ooo::CoreMode::Baseline);
    g.variant("dual", ooo::CoreMode::Cdf);
    // Strict-only: disable the density-driven switch by setting
    // both switch points below any real density.
    g.variant("strict", ooo::CoreMode::Cdf)
        .set("cdf.density_switch_low", -1.0)
        .set("cdf.density_switch_high", -0.5);
    // Permissive-only: make the strict counter behave like the
    // permissive one.
    g.variant("permissive", ooo::CoreMode::Cdf)
        .set("cdf.load_table.strict_bits",
             base.cdf.loadTable.permissiveBits)
        .set("cdf.load_table.strict_threshold",
             base.cdf.loadTable.permissiveThreshold)
        .set("cdf.branch_table.strict_bits",
             base.cdf.branchTable.permissiveBits)
        .set("cdf.branch_table.strict_threshold",
             base.cdf.branchTable.permissiveThreshold);
    h.addCells(sweep.expand(base));
    h.run();

    bench::printHeader("Ablation: Critical Count Table thresholds",
                       {"dual_%", "strict_%", "permissive_%"});

    std::vector<double> d, st, pe;
    for (const auto &wl : subset) {
        if (!h.ok(wl, "base") || !h.ok(wl, "dual") ||
            !h.ok(wl, "strict") || !h.ok(wl, "permissive")) {
            bench::printStatusRow(wl, 3, "halted");
            continue;
        }
        const double b = std::max(h.get(wl, "base").core.ipc, 1e-9);
        const double rd = h.get(wl, "dual").core.ipc / b;
        const double rs = h.get(wl, "strict").core.ipc / b;
        const double rp = h.get(wl, "permissive").core.ipc / b;
        d.push_back(rd);
        st.push_back(rs);
        pe.push_back(rp);
        bench::printRow(wl, {(rd - 1) * 100, (rs - 1) * 100,
                             (rp - 1) * 100});
    }
    std::printf("%-12s %11.1f%% %11.1f%% %11.1f%%\n", "geomean",
                (bench::geomeanWarn(d, "dual") - 1) * 100,
                (bench::geomeanWarn(st, "strict") - 1) * 100,
                (bench::geomeanWarn(pe, "permissive") - 1) * 100);
    std::printf("\npaper: stricter thresholds are usually better "
                "(sparser critical stream),\nbut some benchmarks "
                "need the permissive counters; the dual scheme "
                "picks dynamically\n");
    return h.finish();
}
