/**
 * @file
 * Not a paper figure: a diagnostic dump of the mechanism-level
 * counters (CDF episode counts, violation rates, uop-cache hit
 * rates, fill-buffer densities, runahead activity) for every
 * workload and mode. Used to understand WHY the figures look the
 * way they do.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/sweep_spec.hh"

using namespace cdfsim;

int
main(int argc, char **argv)
{
    bench::Harness h("bench_diagnostics", argc, argv);
    const auto names = h.workloads(workloads::allWorkloadNames());

    // Mirrors bench/specs/diagnostics.json.
    sim::SweepSpec sweep("bench_diagnostics");
    auto defaults = bench::figureRunSpec();
    defaults.measureInstrs = 120'000;
    sweep.defaults() = h.spec(defaults);
    auto &g = sweep.group(names);
    g.variant("base", ooo::CoreMode::Baseline);
    g.variant("cdf", ooo::CoreMode::Cdf);
    g.variant("pre", ooo::CoreMode::Pre);
    h.addCells(sweep.expand(ooo::CoreConfig{}));
    h.run();

    for (const auto &name : names) {
        std::printf("\n=== %s ===\n", name.c_str());
        for (const char *variant : {"base", "cdf", "pre"}) {
            const auto &o = h.outcome(name, variant);
            const auto &r = o.run;
            const char *m = std::string(variant) == "base" ? "base"
                            : std::string(variant) == "cdf"
                                ? "cdf "
                                : "pre ";
            if (o.failed()) {
                std::printf("%s status=%s %s\n", m,
                            o.error.empty() ? r.status() : "error",
                            o.error.c_str());
                continue;
            }
            const auto &s = r.stats;
            std::printf(
                "%s ipc=%.3f mlp=%.2f llcMPKI=%.1f brMPKI=%.1f "
                "fws=%.2f\n",
                m, r.core.ipc, r.core.mlp, r.core.llcMpki,
                r.core.branchMpki, r.core.fullWindowStallFraction);
            if (r.mode == ooo::CoreMode::Cdf) {
                std::printf(
                    "     episodes=%lu exitsUopMiss=%lu critRenamed=%lu"
                    " depViol=%lu memViol=%lu cdfFrac=%.2f\n",
                    s.get("core.cdf_episodes"),
                    s.get("core.cdf_exits_uop_miss"),
                    s.get("core.renamed_critical_uops"),
                    s.get("core.dependence_violations"),
                    s.get("core.memory_order_violations"),
                    r.core.cdfModeFraction);
                std::printf(
                    "     walks=%lu rejLo=%lu rejHi=%lu marked=%lu "
                    "traces=%lu uopHit=%lu uopMiss=%lu grows=%lu "
                    "shrinks=%lu\n",
                    s.get("fill_buffer.walks"),
                    s.get("fill_buffer.walks_rejected_low"),
                    s.get("fill_buffer.walks_rejected_high"),
                    s.get("fill_buffer.uops_marked"),
                    s.get("fill_buffer.traces_filled"),
                    s.get("uop_cache.hits"), s.get("uop_cache.misses"),
                    s.get("rob.partition_grows"),
                    s.get("rob.partition_shrinks"));
            }
            if (r.mode == ooo::CoreMode::Pre) {
                std::printf(
                    "     raEpisodes=%lu raUops=%lu raLoads=%lu "
                    "walks=%lu traces=%lu dramRA=%lu\n",
                    s.get("core.runahead_episodes"),
                    s.get("core.runahead_uops"),
                    s.get("core.runahead_loads"),
                    s.get("fill_buffer.walks"),
                    s.get("fill_buffer.traces_filled"),
                    s.get("dram.runahead_reads"));
            }
        }
    }
    return h.finish();
}
