/**
 * @file
 * Regenerates Fig. 1: the distribution of critical vs non-critical
 * instructions in the ROB during full-window stalls, measured on a
 * baseline core running CDF's criticality training in observation
 * mode. The paper reports critical instructions are only 10%-40% of
 * the dynamic footprint, so the stalled ROB is mostly non-critical.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace cdfsim;

int
main()
{
    auto spec = bench::figureRunSpec();
    bench::printHeader("Fig. 1: ROB contents during full-window stalls",
                       {"stall_frac", "crit_frac", "noncrit_frac"});

    double sum = 0.0;
    unsigned counted = 0;
    for (const auto &name : workloads::allWorkloadNames()) {
        ooo::CoreConfig cfg;
        cfg.observeCriticality = true;
        auto r = sim::runWorkload(name, ooo::CoreMode::Baseline, spec,
                                  cfg);
        const double crit = r.core.robCriticalFraction;
        bench::printRow(name, {r.core.fullWindowStallFraction, crit,
                               1.0 - crit});
        if (r.core.fullWindowStallFraction > 0.01) {
            sum += crit;
            ++counted;
        }
    }
    if (counted > 0) {
        std::printf("%-12s %12s %12.3f %12.3f\n", "mean(stalling)",
                    "", sum / counted, 1.0 - sum / counted);
    }
    std::printf("\npaper: critical instructions are 10%%-40%% of the "
                "footprint;\nthe stalled ROB holds more non-critical "
                "than critical instructions\n");
    return 0;
}
