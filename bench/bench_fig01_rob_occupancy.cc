/**
 * @file
 * Regenerates Fig. 1: the distribution of critical vs non-critical
 * instructions in the ROB during full-window stalls, measured on a
 * baseline core running CDF's criticality training in observation
 * mode. The paper reports critical instructions are only 10%-40% of
 * the dynamic footprint, so the stalled ROB is mostly non-critical.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/sweep_spec.hh"

using namespace cdfsim;

int
main(int argc, char **argv)
{
    bench::Harness h("bench_fig01_rob_occupancy", argc, argv);
    const auto names = h.workloads(workloads::allWorkloadNames());

    // Mirrors bench/specs/fig01_rob_occupancy.json.
    sim::SweepSpec sweep("bench_fig01_rob_occupancy");
    sweep.defaults() = h.spec(bench::figureRunSpec());
    auto &g = sweep.group(names);
    g.variant("observe", ooo::CoreMode::Baseline)
        .set("observe_criticality", true);
    h.addCells(sweep.expand(ooo::CoreConfig{}));
    h.run();

    bench::printHeader("Fig. 1: ROB contents during full-window stalls",
                       {"stall_frac", "crit_frac", "noncrit_frac"});

    double sum = 0.0;
    unsigned counted = 0;
    for (const auto &name : names) {
        if (!h.ok(name, "observe")) {
            bench::printStatusRow(name, 3, "halted");
            continue;
        }
        const auto &r = h.get(name, "observe");
        const double crit = r.core.robCriticalFraction;
        bench::printRow(name, {r.core.fullWindowStallFraction, crit,
                               1.0 - crit});
        if (r.core.fullWindowStallFraction > 0.01) {
            sum += crit;
            ++counted;
        }
    }
    if (counted > 0) {
        std::printf("%-12s %12s %12.3f %12.3f\n", "mean(stalling)",
                    "", sum / counted, 1.0 - sum / counted);
        h.derived()["mean_critical_fraction_stalling"] =
            sum / counted;
    }
    std::printf("\npaper: critical instructions are 10%%-40%% of the "
                "footprint;\nthe stalled ROB holds more non-critical "
                "than critical instructions\n");
    return h.finish();
}
