/**
 * @file
 * Regenerates Fig. 13: percentage IPC improvement of CDF and PRE
 * over the baseline OoO core (with prefetching) for every workload,
 * plus the geomean. Also reproduces the Section 4.2 ablation: CDF
 * without critical-branch marking drops from ~6.1% to ~3.8% in the
 * paper.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace cdfsim;

int
main()
{
    const auto spec = bench::figureRunSpec();
    const auto names = workloads::allWorkloadNames();

    bench::printHeader(
        "Fig. 13: % IPC improvement over baseline",
        {"base_ipc", "cdf_%", "pre_%", "cdf_nobr_%"});

    std::vector<double> cdfRatios, preRatios, nobrRatios;
    for (const auto &name : names) {
        auto base =
            sim::runWorkload(name, ooo::CoreMode::Baseline, spec);
        auto cdf = sim::runWorkload(name, ooo::CoreMode::Cdf, spec);
        auto pre = sim::runWorkload(name, ooo::CoreMode::Pre, spec);

        ooo::CoreConfig noBr;
        noBr.cdf.markCriticalBranches = false;
        auto nobr =
            sim::runWorkload(name, ooo::CoreMode::Cdf, spec, noBr);

        const double rc = cdf.core.ipc / base.core.ipc;
        const double rp = pre.core.ipc / base.core.ipc;
        const double rn = nobr.core.ipc / base.core.ipc;
        cdfRatios.push_back(rc);
        preRatios.push_back(rp);
        nobrRatios.push_back(rn);
        bench::printRow(name, {base.core.ipc, (rc - 1.0) * 100.0,
                               (rp - 1.0) * 100.0,
                               (rn - 1.0) * 100.0});
    }

    std::printf("%-12s %12s %11.1f%% %11.1f%% %11.1f%%\n", "geomean",
                "", (sim::geomean(cdfRatios) - 1.0) * 100.0,
                (sim::geomean(preRatios) - 1.0) * 100.0,
                (sim::geomean(nobrRatios) - 1.0) * 100.0);
    std::printf("\npaper: CDF +6.1%% geomean, PRE +2.6%%, "
                "CDF w/o critical branches +3.8%%\n");
    return 0;
}
