/**
 * @file
 * Regenerates Fig. 13: percentage IPC improvement of CDF and PRE
 * over the baseline OoO core (with prefetching) for every workload,
 * plus the geomean. Also reproduces the Section 4.2 ablation: CDF
 * without critical-branch marking drops from ~6.1% to ~3.8% in the
 * paper.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/sweep_spec.hh"

using namespace cdfsim;

int
main(int argc, char **argv)
{
    bench::Harness h("bench_fig13_speedup", argc, argv);
    const auto names = h.workloads(workloads::allWorkloadNames());

    // Mirrors bench/specs/fig13_speedup.json; the spec-identity ctest
    // keeps the two in sync.
    sim::SweepSpec sweep("bench_fig13_speedup");
    sweep.defaults() = h.spec(bench::figureRunSpec());
    auto &g = sweep.group(names);
    g.variant("base", ooo::CoreMode::Baseline);
    g.variant("cdf", ooo::CoreMode::Cdf);
    g.variant("pre", ooo::CoreMode::Pre);
    g.variant("cdf_nobr", ooo::CoreMode::Cdf)
        .set("cdf.mark_critical_branches", false);
    h.addCells(sweep.expand(ooo::CoreConfig{}));
    h.run();

    bench::printHeader(
        "Fig. 13: % IPC improvement over baseline",
        {"base_ipc", "cdf_%", "pre_%", "cdf_nobr_%"});

    std::vector<double> cdfRatios, preRatios, nobrRatios;
    for (const auto &name : names) {
        const bool rowOk = h.ok(name, "base") && h.ok(name, "cdf") &&
                           h.ok(name, "pre") &&
                           h.ok(name, "cdf_nobr");
        if (!rowOk) {
            bench::printStatusRow(name, 4, "halted");
            continue;
        }
        const auto &base_ = h.get(name, "base");
        const double b = base_.core.ipc;
        const double rc = h.get(name, "cdf").core.ipc / b;
        const double rp = h.get(name, "pre").core.ipc / b;
        const double rn = h.get(name, "cdf_nobr").core.ipc / b;
        cdfRatios.push_back(rc);
        preRatios.push_back(rp);
        nobrRatios.push_back(rn);
        bench::printRow(name, {b, (rc - 1.0) * 100.0,
                               (rp - 1.0) * 100.0,
                               (rn - 1.0) * 100.0});
    }

    const double gc = bench::geomeanWarn(cdfRatios, "cdf");
    const double gp = bench::geomeanWarn(preRatios, "pre");
    const double gn = bench::geomeanWarn(nobrRatios, "cdf_nobr");
    std::printf("%-12s %12s %11.1f%% %11.1f%% %11.1f%%\n", "geomean",
                "", (gc - 1.0) * 100.0, (gp - 1.0) * 100.0,
                (gn - 1.0) * 100.0);
    std::printf("\npaper: CDF +6.1%% geomean, PRE +2.6%%, "
                "CDF w/o critical branches +3.8%%\n");

    h.derived()["geomean_cdf_speedup"] = gc;
    h.derived()["geomean_pre_speedup"] = gp;
    h.derived()["geomean_cdf_nobr_speedup"] = gn;
    return h.finish();
}
