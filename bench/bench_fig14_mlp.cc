/**
 * @file
 * Regenerates Fig. 14: MLP (average outstanding DRAM misses while at
 * least one is outstanding) for CDF and PRE relative to the
 * baseline. The paper notes much of PRE's extra MLP is wrong-path /
 * incorrect-chain loads that do not help performance; the "useless"
 * column reports the share of outstanding misses that are wrong-path
 * or dead-runahead traffic.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace cdfsim;

int
main()
{
    const auto spec = bench::figureRunSpec();
    bench::printHeader(
        "Fig. 14: MLP relative to baseline",
        {"base_mlp", "cdf_rel", "pre_rel", "pre_useless"});

    std::vector<double> cdfRel, preRel;
    for (const auto &name : workloads::allWorkloadNames()) {
        auto base =
            sim::runWorkload(name, ooo::CoreMode::Baseline, spec);
        auto cdf = sim::runWorkload(name, ooo::CoreMode::Cdf, spec);
        auto pre = sim::runWorkload(name, ooo::CoreMode::Pre, spec);

        const double b = std::max(base.core.mlp, 1e-9);
        const double rc = std::max(cdf.core.mlp, 1e-9) / b;
        const double rp = std::max(pre.core.mlp, 1e-9) / b;
        if (base.core.mlp > 0.05) {
            cdfRel.push_back(rc);
            preRel.push_back(rp);
        }
        bench::printRow(name,
                        {base.core.mlp, rc, rp,
                         pre.core.mlp > 0
                             ? pre.core.uselessMlp / pre.core.mlp
                             : 0.0});
    }
    std::printf("%-12s %12s %12.3f %12.3f\n", "geomean", "",
                sim::geomean(cdfRel), sim::geomean(preRel));
    std::printf("\npaper: CDF's MLP gain is almost entirely useful "
                "(correct addresses);\na large share of PRE's MLP "
                "increase is wrong-path or incorrect chains\n");
    return 0;
}
