/**
 * @file
 * Regenerates Fig. 14: MLP (average outstanding DRAM misses while at
 * least one is outstanding) for CDF and PRE relative to the
 * baseline. The paper notes much of PRE's extra MLP is wrong-path /
 * incorrect-chain loads that do not help performance; the "useless"
 * column reports the share of outstanding misses that are wrong-path
 * or dead-runahead traffic.
 */

#include <algorithm>
#include <cstdio>

#include "bench_util.hh"
#include "sim/sweep_spec.hh"

using namespace cdfsim;

int
main(int argc, char **argv)
{
    bench::Harness h("bench_fig14_mlp", argc, argv);
    const auto names = h.workloads(workloads::allWorkloadNames());

    // Mirrors bench/specs/fig14_mlp.json.
    sim::SweepSpec sweep("bench_fig14_mlp");
    sweep.defaults() = h.spec(bench::figureRunSpec());
    auto &g = sweep.group(names);
    g.variant("base", ooo::CoreMode::Baseline);
    g.variant("cdf", ooo::CoreMode::Cdf);
    g.variant("pre", ooo::CoreMode::Pre);
    h.addCells(sweep.expand(ooo::CoreConfig{}));
    h.run();

    bench::printHeader(
        "Fig. 14: MLP relative to baseline",
        {"base_mlp", "cdf_rel", "pre_rel", "pre_useless"});

    std::vector<double> cdfRel, preRel;
    for (const auto &name : names) {
        if (!h.ok(name, "base") || !h.ok(name, "cdf") ||
            !h.ok(name, "pre")) {
            bench::printStatusRow(name, 4, "halted");
            continue;
        }
        const auto &base_ = h.get(name, "base");
        const auto &cdf = h.get(name, "cdf");
        const auto &pre = h.get(name, "pre");

        const double b = std::max(base_.core.mlp, 1e-9);
        const double rc = std::max(cdf.core.mlp, 1e-9) / b;
        const double rp = std::max(pre.core.mlp, 1e-9) / b;
        if (base_.core.mlp > 0.05) {
            cdfRel.push_back(rc);
            preRel.push_back(rp);
        }
        bench::printRow(name,
                        {base_.core.mlp, rc, rp,
                         pre.core.mlp > 0
                             ? pre.core.uselessMlp / pre.core.mlp
                             : 0.0});
    }
    const double gc = bench::geomeanWarn(cdfRel, "cdf MLP");
    const double gp = bench::geomeanWarn(preRel, "pre MLP");
    std::printf("%-12s %12s %12.3f %12.3f\n", "geomean", "", gc, gp);
    std::printf("\npaper: CDF's MLP gain is almost entirely useful "
                "(correct addresses);\na large share of PRE's MLP "
                "increase is wrong-path or incorrect chains\n");

    h.derived()["geomean_cdf_mlp_rel"] = gc;
    h.derived()["geomean_pre_mlp_rel"] = gp;
    return h.finish();
}
