/**
 * @file
 * Regenerates Fig. 15: DRAM traffic relative to the baseline for CDF
 * and PRE. The paper reports CDF generates ~4% less memory traffic
 * than PRE (runahead's incorrect chains and duplicated prefetches
 * produce traffic that CDF, whose critical instructions are part of
 * the main stream, does not).
 */

#include <cstdio>

#include "bench_util.hh"

using namespace cdfsim;

int
main()
{
    const auto spec = bench::figureRunSpec();
    bench::printHeader(
        "Fig. 15: DRAM traffic relative to baseline",
        {"base_MB", "cdf_rel", "pre_rel", "pre_ra_reads"});

    std::vector<double> cdfRel, preRel;
    for (const auto &name : workloads::allWorkloadNames()) {
        auto base =
            sim::runWorkload(name, ooo::CoreMode::Baseline, spec);
        auto cdf = sim::runWorkload(name, ooo::CoreMode::Cdf, spec);
        auto pre = sim::runWorkload(name, ooo::CoreMode::Pre, spec);

        const double b =
            std::max<double>(static_cast<double>(base.core.dramBytes),
                             1.0);
        const double rc = static_cast<double>(cdf.core.dramBytes) / b;
        const double rp = static_cast<double>(pre.core.dramBytes) / b;
        cdfRel.push_back(std::max(rc, 1e-9));
        preRel.push_back(std::max(rp, 1e-9));
        bench::printRow(
            name,
            {b / (1024.0 * 1024.0), rc, rp,
             static_cast<double>(pre.stats.get("dram.runahead_reads"))});
    }
    const double gc = sim::geomean(cdfRel);
    const double gp = sim::geomean(preRel);
    std::printf("%-12s %12s %12.3f %12.3f\n", "geomean", "", gc, gp);
    std::printf("\nCDF traffic vs PRE traffic: %.1f%% (paper: CDF is "
                "~4%% lower than PRE)\n",
                (gc / gp - 1.0) * 100.0);
    return 0;
}
