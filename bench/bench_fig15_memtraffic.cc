/**
 * @file
 * Regenerates Fig. 15: DRAM traffic relative to the baseline for CDF
 * and PRE. The paper reports CDF generates ~4% less memory traffic
 * than PRE (runahead's incorrect chains and duplicated prefetches
 * produce traffic that CDF, whose critical instructions are part of
 * the main stream, does not).
 */

#include <algorithm>
#include <cstdio>

#include "bench_util.hh"
#include "sim/sweep_spec.hh"

using namespace cdfsim;

int
main(int argc, char **argv)
{
    bench::Harness h("bench_fig15_memtraffic", argc, argv);
    const auto names = h.workloads(workloads::allWorkloadNames());

    // Mirrors bench/specs/fig15_memtraffic.json.
    sim::SweepSpec sweep("bench_fig15_memtraffic");
    sweep.defaults() = h.spec(bench::figureRunSpec());
    auto &g = sweep.group(names);
    g.variant("base", ooo::CoreMode::Baseline);
    g.variant("cdf", ooo::CoreMode::Cdf);
    g.variant("pre", ooo::CoreMode::Pre);
    h.addCells(sweep.expand(ooo::CoreConfig{}));
    h.run();

    bench::printHeader(
        "Fig. 15: DRAM traffic relative to baseline",
        {"base_MB", "cdf_rel", "pre_rel", "pre_ra_reads"});

    std::vector<double> cdfRel, preRel;
    for (const auto &name : names) {
        if (!h.ok(name, "base") || !h.ok(name, "cdf") ||
            !h.ok(name, "pre")) {
            bench::printStatusRow(name, 4, "halted");
            continue;
        }
        const auto &base_ = h.get(name, "base");
        const auto &cdf = h.get(name, "cdf");
        const auto &pre = h.get(name, "pre");

        const double b = std::max<double>(
            static_cast<double>(base_.core.dramBytes), 1.0);
        const double rc =
            static_cast<double>(cdf.core.dramBytes) / b;
        const double rp =
            static_cast<double>(pre.core.dramBytes) / b;
        cdfRel.push_back(std::max(rc, 1e-9));
        preRel.push_back(std::max(rp, 1e-9));
        bench::printRow(
            name,
            {b / (1024.0 * 1024.0), rc, rp,
             static_cast<double>(
                 pre.stats.get("dram.runahead_reads"))});
    }
    const double gc = bench::geomeanWarn(cdfRel, "cdf traffic");
    const double gp = bench::geomeanWarn(preRel, "pre traffic");
    std::printf("%-12s %12s %12.3f %12.3f\n", "geomean", "", gc, gp);
    std::printf("\nCDF traffic vs PRE traffic: %.1f%% (paper: CDF is "
                "~4%% lower than PRE)\n",
                gp > 0 ? (gc / gp - 1.0) * 100.0 : 0.0);

    h.derived()["geomean_cdf_traffic_rel"] = gc;
    h.derived()["geomean_pre_traffic_rel"] = gp;
    return h.finish();
}
