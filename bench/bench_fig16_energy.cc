/**
 * @file
 * Regenerates Fig. 16: total energy relative to the baseline for CDF
 * and PRE. Paper: CDF reduces energy by ~3.5% overall (runtime
 * reduction dominates the ~2% structure overhead), while PRE
 * increases it by ~3.7% (duplicated execution and extra DRAM
 * traffic).
 */

#include <algorithm>
#include <cstdio>

#include "bench_util.hh"
#include "sim/sweep_spec.hh"

using namespace cdfsim;

int
main(int argc, char **argv)
{
    bench::Harness h("bench_fig16_energy", argc, argv);
    const auto names = h.workloads(workloads::allWorkloadNames());

    // Mirrors bench/specs/fig16_energy.json.
    sim::SweepSpec sweep("bench_fig16_energy");
    sweep.defaults() = h.spec(bench::figureRunSpec());
    auto &g = sweep.group(names);
    g.variant("base", ooo::CoreMode::Baseline);
    g.variant("cdf", ooo::CoreMode::Cdf);
    g.variant("pre", ooo::CoreMode::Pre);
    h.addCells(sweep.expand(ooo::CoreConfig{}));
    h.run();

    bench::printHeader(
        "Fig. 16: energy relative to baseline",
        {"base_uJ", "cdf_rel", "pre_rel", "cdf_dram_rel"});

    std::vector<double> cdfRel, preRel;
    for (const auto &name : names) {
        if (!h.ok(name, "base") || !h.ok(name, "cdf") ||
            !h.ok(name, "pre")) {
            bench::printStatusRow(name, 4, "halted");
            continue;
        }
        const auto &base_ = h.get(name, "base");
        const auto &cdf = h.get(name, "cdf");
        const auto &pre = h.get(name, "pre");

        const double b = std::max(base_.energy.totalUj, 1e-9);
        const double rc = cdf.energy.totalUj / b;
        const double rp = pre.energy.totalUj / b;
        cdfRel.push_back(rc);
        preRel.push_back(rp);
        bench::printRow(name,
                        {base_.energy.totalUj, rc, rp,
                         cdf.energy.dramUj /
                             std::max(base_.energy.dramUj, 1e-9)});
    }
    const double gc = bench::geomeanWarn(cdfRel, "cdf energy");
    const double gp = bench::geomeanWarn(preRel, "pre energy");
    std::printf("%-12s %12s %12.3f %12.3f\n", "geomean", "", gc, gp);
    std::printf("\npaper: CDF -3.5%% energy, PRE +3.7%%\n");

    h.derived()["geomean_cdf_energy_rel"] = gc;
    h.derived()["geomean_pre_energy_rel"] = gp;
    return h.finish();
}
