/**
 * @file
 * Regenerates Fig. 16: total energy relative to the baseline for CDF
 * and PRE. Paper: CDF reduces energy by ~3.5% overall (runtime
 * reduction dominates the ~2% structure overhead), while PRE
 * increases it by ~3.7% (duplicated execution and extra DRAM
 * traffic).
 */

#include <cstdio>

#include "bench_util.hh"

using namespace cdfsim;

int
main()
{
    const auto spec = bench::figureRunSpec();
    bench::printHeader(
        "Fig. 16: energy relative to baseline",
        {"base_uJ", "cdf_rel", "pre_rel", "cdf_dram_rel"});

    std::vector<double> cdfRel, preRel;
    for (const auto &name : workloads::allWorkloadNames()) {
        auto base =
            sim::runWorkload(name, ooo::CoreMode::Baseline, spec);
        auto cdf = sim::runWorkload(name, ooo::CoreMode::Cdf, spec);
        auto pre = sim::runWorkload(name, ooo::CoreMode::Pre, spec);

        const double b = std::max(base.energy.totalUj, 1e-9);
        const double rc = cdf.energy.totalUj / b;
        const double rp = pre.energy.totalUj / b;
        cdfRel.push_back(rc);
        preRel.push_back(rp);
        bench::printRow(name,
                        {base.energy.totalUj, rc, rp,
                         cdf.energy.dramUj /
                             std::max(base.energy.dramUj, 1e-9)});
    }
    std::printf("%-12s %12s %12.3f %12.3f\n", "geomean", "",
                sim::geomean(cdfRel), sim::geomean(preRel));
    std::printf("\npaper: CDF -3.5%% energy, PRE +3.7%%\n");
    return 0;
}
