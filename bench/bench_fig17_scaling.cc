/**
 * @file
 * Regenerates Fig. 17: IPC and energy of baseline and CDF cores as
 * the OoO window scales (ROB size, with RS/LQ/SQ/PRF scaled
 * proportionately, per the paper). Includes the paper's
 * area-equivalence observation: a baseline scaled to CDF's extra
 * area gains less than CDF does.
 */

#include <cstdio>

#include "bench_util.hh"
#include "energy/energy_model.hh"

using namespace cdfsim;

int
main()
{
    auto spec = bench::figureRunSpec();
    spec.measureInstrs = 120'000;

    // Memory-sensitive subset: scaling studies on the benchmarks the
    // paper calls out (roms/fotonik benefit from larger windows).
    const std::vector<std::string> subset = {
        "astar", "soplex", "lbm", "fotonik", "roms", "mcf"};
    const double factors[] = {0.5, 0.75, 1.0, 1.5, 2.0};

    std::printf("\n== Fig. 17: IPC and energy vs window size ==\n");
    std::printf("%-8s %8s %12s %12s %12s %12s\n", "scale", "rob",
                "base_ipc", "cdf_ipc", "base_uJ", "cdf_uJ");

    for (double f : factors) {
        std::vector<double> baseIpc, cdfIpc, baseUj, cdfUj;
        unsigned rob = 0;
        for (const auto &name : subset) {
            ooo::CoreConfig cfg;
            cfg.scaleWindow(f);
            rob = cfg.robSize;
            auto base = sim::runWorkload(
                name, ooo::CoreMode::Baseline, spec, cfg);
            auto cdf =
                sim::runWorkload(name, ooo::CoreMode::Cdf, spec, cfg);
            baseIpc.push_back(std::max(base.core.ipc, 1e-9));
            cdfIpc.push_back(std::max(cdf.core.ipc, 1e-9));
            baseUj.push_back(std::max(base.energy.totalUj, 1e-9));
            cdfUj.push_back(std::max(cdf.energy.totalUj, 1e-9));
        }
        std::printf("%-8.2f %8u %12.3f %12.3f %12.1f %12.1f\n", f,
                    rob, sim::geomean(baseIpc), sim::geomean(cdfIpc),
                    sim::geomean(baseUj), sim::geomean(cdfUj));
    }

    // Area-equivalent baseline: scale the window so the added area
    // matches CDF's structure overhead.
    ooo::CoreConfig ref;
    const double cdfAreaFrac = energy::Model::cdfArea(ref) /
                               energy::Model::coreArea(ref);
    ooo::CoreConfig big;
    big.scaleWindow(1.0 + cdfAreaFrac * 4.0); // window ~= area knob
    std::printf("\nArea-equivalent scaled baseline (ROB %u):\n",
                big.robSize);
    std::vector<double> bigRel, cdfRel;
    for (const auto &name : subset) {
        auto base = sim::runWorkload(name, ooo::CoreMode::Baseline,
                                     spec);
        auto scaled = sim::runWorkload(
            name, ooo::CoreMode::Baseline, spec, big);
        auto cdf = sim::runWorkload(name, ooo::CoreMode::Cdf, spec);
        bigRel.push_back(scaled.core.ipc /
                         std::max(base.core.ipc, 1e-9));
        cdfRel.push_back(cdf.core.ipc /
                         std::max(base.core.ipc, 1e-9));
    }
    std::printf("scaled baseline IPC: %+.1f%%, CDF IPC: %+.1f%% "
                "(paper: +3.7%% vs +6.1%%)\n",
                (sim::geomean(bigRel) - 1.0) * 100.0,
                (sim::geomean(cdfRel) - 1.0) * 100.0);
    return 0;
}
