/**
 * @file
 * Regenerates Fig. 17: IPC and energy of baseline and CDF cores as
 * the OoO window scales (ROB size, with RS/LQ/SQ/PRF scaled
 * proportionately, per the paper). Includes the paper's
 * area-equivalence observation: a baseline scaled to CDF's extra
 * area gains less than CDF does.
 */

#include <algorithm>
#include <cstdio>

#include "bench_util.hh"
#include "energy/energy_model.hh"
#include "sim/sweep_spec.hh"

using namespace cdfsim;

int
main(int argc, char **argv)
{
    bench::Harness h("bench_fig17_scaling", argc, argv);

    // Memory-sensitive subset: scaling studies on the benchmarks the
    // paper calls out (roms/fotonik benefit from larger windows).
    const auto subset = h.workloads(
        {"astar", "soplex", "lbm", "fotonik", "roms", "mcf"});
    const std::vector<double> factors = {0.5, 0.75, 1.0, 1.5, 2.0};

    const ooo::CoreConfig base;
    auto factorTag = [](double f) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.2f", f);
        return std::string(buf);
    };

    // Builder-only sweep (no checked-in spec): the base_big factor
    // below is computed from the energy model at runtime, which a
    // static JSON file cannot express.
    sim::SweepSpec sweep("bench_fig17_scaling");
    auto defaults = bench::figureRunSpec();
    defaults.measureInstrs = 120'000;
    sweep.defaults() = h.spec(defaults);

    auto &scaled = sweep.group(subset);
    auto &axis = scaled.axis("scale");
    std::vector<unsigned> robSizes;
    for (double f : factors) {
        axis.value(factorTag(f)).set("scale_window", f);
        ooo::CoreConfig cfg = base;
        cfg.scaleWindow(f);
        robSizes.push_back(cfg.robSize);
    }
    scaled.variant("base", ooo::CoreMode::Baseline);
    scaled.variant("cdf", ooo::CoreMode::Cdf);

    // Area-equivalent baseline: scale the window so the added area
    // matches CDF's structure overhead.
    const double cdfAreaFrac = energy::Model::cdfArea(base) /
                               energy::Model::coreArea(base);
    ooo::CoreConfig big = base;
    big.scaleWindow(1.0 + cdfAreaFrac * 4.0); // window ~= area knob
    sweep.group(subset)
        .variant("base_big", ooo::CoreMode::Baseline)
        .set("scale_window", 1.0 + cdfAreaFrac * 4.0);

    h.addCells(sweep.expand(base));
    h.run();

    std::printf("\n== Fig. 17: IPC and energy vs window size ==\n");
    std::printf("%-8s %8s %12s %12s %12s %12s\n", "scale", "rob",
                "base_ipc", "cdf_ipc", "base_uJ", "cdf_uJ");

    for (std::size_t fi = 0; fi < factors.size(); ++fi) {
        const double f = factors[fi];
        std::vector<double> baseIpc, cdfIpc, baseUj, cdfUj;
        for (const auto &name : subset) {
            const auto &b = h.get(name, "base@" + factorTag(f));
            const auto &c = h.get(name, "cdf@" + factorTag(f));
            if (!h.ok(name, "base@" + factorTag(f)) ||
                !h.ok(name, "cdf@" + factorTag(f)))
                continue;
            baseIpc.push_back(std::max(b.core.ipc, 1e-9));
            cdfIpc.push_back(std::max(c.core.ipc, 1e-9));
            baseUj.push_back(std::max(b.energy.totalUj, 1e-9));
            cdfUj.push_back(std::max(c.energy.totalUj, 1e-9));
        }
        std::printf("%-8.2f %8u %12.3f %12.3f %12.1f %12.1f\n", f,
                    robSizes[fi],
                    bench::geomeanWarn(baseIpc, "base IPC"),
                    bench::geomeanWarn(cdfIpc, "cdf IPC"),
                    bench::geomeanWarn(baseUj, "base energy"),
                    bench::geomeanWarn(cdfUj, "cdf energy"));
    }

    std::printf("\nArea-equivalent scaled baseline (ROB %u):\n",
                big.robSize);
    std::vector<double> bigRel, cdfRel;
    for (const auto &name : subset) {
        if (!h.ok(name, "base@1.00") || !h.ok(name, "base_big") ||
            !h.ok(name, "cdf@1.00"))
            continue;
        const double b =
            std::max(h.get(name, "base@1.00").core.ipc, 1e-9);
        bigRel.push_back(h.get(name, "base_big").core.ipc / b);
        cdfRel.push_back(h.get(name, "cdf@1.00").core.ipc / b);
    }
    const double gb = bench::geomeanWarn(bigRel, "scaled baseline");
    const double gc = bench::geomeanWarn(cdfRel, "cdf");
    std::printf("scaled baseline IPC: %+.1f%%, CDF IPC: %+.1f%% "
                "(paper: +3.7%% vs +6.1%%)\n",
                (gb - 1.0) * 100.0, (gc - 1.0) * 100.0);

    h.derived()["area_equiv_baseline_speedup"] = gb;
    h.derived()["cdf_speedup"] = gc;
    return h.finish();
}
