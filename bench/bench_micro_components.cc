/**
 * @file
 * Google-benchmark microbenchmarks of the simulator's own
 * components: cache access, DRAM scheduling, TAGE prediction, the
 * functional interpreter, the fill-buffer walk and whole-core
 * simulation throughput. Not a paper figure; this keeps the
 * simulator fast enough that the figure harnesses stay cheap.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>

#include "bp/tage.hh"
#include "cdf/fill_buffer.hh"
#include "common/random.hh"
#include "isa/interpreter.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/hierarchy.hh"
#include "ooo/core.hh"
#include "workloads/workloads.hh"

using namespace cdfsim;

static void
BM_CacheAccess(benchmark::State &state)
{
    StatRegistry stats;
    mem::Cache cache({"c", 32 * 1024, 8, 2, 12}, stats);
    Random rng(1);
    Cycle now = 0;
    for (auto _ : state) {
        const Addr a = rng.below(1 << 20) * 64;
        benchmark::DoNotOptimize(cache.access(
            a, false, ++now, [](Cycle s) { return s + 100; }));
    }
}
BENCHMARK(BM_CacheAccess);

// The per-cycle MLP sample from Core::statsStage: two outstanding-
// miss queries every cycle against a miss-heavy demand/wrong-path
// stream. Dominated by the queue-prune cost.
static void
BM_MlpSample(benchmark::State &state)
{
    StatRegistry stats;
    mem::MemHierarchy mh(mem::HierarchyConfig{}, stats);
    Random rng(4);
    Cycle now = 0;
    for (auto _ : state) {
        ++now;
        if ((now & 7) == 0) {
            mh.dataAccess(rng.below(1 << 22) * 64,
                          mem::AccessKind::DemandLoad, now);
        }
        if ((now & 15) == 0) {
            mh.dataAccess(rng.below(1 << 22) * 64,
                          mem::AccessKind::WrongPathLoad, now);
        }
        benchmark::DoNotOptimize(mh.outstandingDemandMisses(now) +
                                 mh.outstandingUselessMisses(now));
    }
}
BENCHMARK(BM_MlpSample);

// The retire-time LLC classifier: repeated probes of a small working
// set with no intervening fills (the common case inside one retire
// burst).
static void
BM_WouldMissLlc(benchmark::State &state)
{
    StatRegistry stats;
    mem::MemHierarchy mh(mem::HierarchyConfig{}, stats);
    Random rng(5);
    Cycle now = 0;
    for (int i = 0; i < 4096; ++i) {
        mh.dataAccess(rng.below(1 << 16) * 64,
                      mem::AccessKind::DemandLoad, now += 4);
    }
    Addr probes[64];
    for (Addr &a : probes)
        a = rng.below(1 << 16) * 64;
    std::size_t i = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(mh.wouldMissLlc(probes[i++ & 63]));
}
BENCHMARK(BM_WouldMissLlc);

static void
BM_DramAccess(benchmark::State &state)
{
    StatRegistry stats;
    mem::DramModel dram(mem::DramConfig{}, stats);
    Random rng(2);
    Cycle now = 0;
    for (auto _ : state) {
        now += 20;
        benchmark::DoNotOptimize(
            dram.access(rng.below(1 << 22) * 64, false, now));
    }
}
BENCHMARK(BM_DramAccess);

static void
BM_TagePredictUpdate(benchmark::State &state)
{
    StatRegistry stats;
    bp::Tage tage(bp::TageConfig{}, stats);
    Random rng(3);
    for (auto _ : state) {
        const Addr pc = rng.below(64);
        auto info = tage.predict(pc);
        tage.update(pc, rng.chancePercent(60), info);
    }
}
BENCHMARK(BM_TagePredictUpdate);

static void
BM_Interpreter(benchmark::State &state)
{
    auto w = workloads::makeWorkload("astar");
    isa::MemoryImage mem = w.makeMemory();
    isa::Interpreter interp(w.program, mem);
    for (auto _ : state)
        benchmark::DoNotOptimize(interp.step());
}
BENCHMARK(BM_Interpreter);

static void
BM_CoreTickBaseline(benchmark::State &state)
{
    auto w = workloads::makeWorkload("astar");
    isa::MemoryImage mem = w.makeMemory();
    StatRegistry stats;
    ooo::CoreConfig cfg;
    ooo::Core core(cfg, w.program, mem, stats);
    for (auto _ : state)
        core.tick();
    state.counters["retired/cycle"] = benchmark::Counter(
        static_cast<double>(core.retired()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CoreTickBaseline);

// Memory-bound kernels where the hierarchy dominates host time.
static void
BM_CoreTickWorkload(benchmark::State &state, const char *name)
{
    auto w = workloads::makeWorkload(name);
    isa::MemoryImage mem = w.makeMemory();
    StatRegistry stats;
    ooo::CoreConfig cfg;
    ooo::Core core(cfg, w.program, mem, stats);
    for (auto _ : state)
        core.tick();
    state.counters["retired/cycle"] = benchmark::Counter(
        static_cast<double>(core.retired()),
        benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_CoreTickWorkload, mcf, "mcf");
BENCHMARK_CAPTURE(BM_CoreTickWorkload, lbm, "lbm");

static void
BM_CoreTickCdf(benchmark::State &state)
{
    auto w = workloads::makeWorkload("astar");
    isa::MemoryImage mem = w.makeMemory();
    StatRegistry stats;
    ooo::CoreConfig cfg;
    cfg.mode = ooo::CoreMode::Cdf;
    ooo::Core core(cfg, w.program, mem, stats);
    core.run(50'000); // warm into CDF mode
    for (auto _ : state)
        core.tick();
}
BENCHMARK(BM_CoreTickCdf);

// Stall-heavy core throughput: the mcf pointer-chase against tiny
// caches parks nearly every window on a DRAM miss, which is exactly
// the shape the idle-skip fast-forward targets. Driven through run()
// — the skip lives in the run loop, not in tick() — with the knob
// captured on and off so the pair reads as a direct speedup ratio.
static void
BM_CoreTickStallHeavy(benchmark::State &state, bool skipIdle)
{
    auto w = workloads::makeWorkload("mcf");
    ooo::CoreConfig cfg;
    cfg.skipIdleCycles = skipIdle;
    cfg.mem.l1d.sizeBytes = 4 * 1024;
    cfg.mem.llc.sizeBytes = 64 * 1024;
    cfg.mem.prefetcherEnabled = false;

    auto mem = std::make_unique<isa::MemoryImage>(w.makeMemory());
    auto stats = std::make_unique<StatRegistry>();
    auto core = std::make_unique<ooo::Core>(cfg, w.program, *mem,
                                            *stats);
    std::uint64_t cycles = 0;
    std::uint64_t skipped = 0;
    constexpr std::uint64_t kChunk = 2'000;
    for (auto _ : state) {
        if (core->halted()) {
            // The program ran out: restart it. The core holds
            // references into the memory image and stat registry, so
            // all three are rebuilt together, outside the timing.
            state.PauseTiming();
            cycles += core->cycle();
            skipped += core->skippedCycles();
            core.reset();
            stats = std::make_unique<StatRegistry>();
            mem = std::make_unique<isa::MemoryImage>(w.makeMemory());
            core = std::make_unique<ooo::Core>(cfg, w.program, *mem,
                                               *stats);
            state.ResumeTiming();
        }
        core->run(core->retired() + kChunk);
    }
    cycles += core->cycle();
    skipped += core->skippedCycles();
    state.counters["cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
    state.counters["skipped_frac"] =
        cycles ? static_cast<double>(skipped) /
                     static_cast<double>(cycles)
               : 0.0;
}
BENCHMARK_CAPTURE(BM_CoreTickStallHeavy, skip_on, true);
BENCHMARK_CAPTURE(BM_CoreTickStallHeavy, skip_off, false);

BENCHMARK_MAIN();
