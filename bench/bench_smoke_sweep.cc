/**
 * @file
 * CI smoke sweep: every workload x {Baseline, CDF, PRE} at tiny
 * instruction counts through sim::SweepRunner, plus a handful of
 * config-override cells (static partition, mask cache off, scaled
 * windows) so the ablation and scaling paths stay covered. Exits
 * non-zero if any cell halts, truncates, or throws — catching
 * deadlocks, exhausted programs and measurement-window regressions
 * before they corrupt a figure. Registered as a ctest target.
 */

#include <algorithm>
#include <cstdio>

#include "bench_util.hh"
#include "sim/sweep_spec.hh"

using namespace cdfsim;

int
main(int argc, char **argv)
{
    bench::Harness h("bench_smoke_sweep", argc, argv);

    sim::RunSpec tiny;
    tiny.warmupInstrs = 2'000;
    tiny.measureInstrs = 3'000;
    tiny.maxCycles = 5'000'000; // per phase; far beyond any sane run
    const auto names = h.workloads(workloads::allWorkloadNames());

    // Mirrors bench/specs/smoke.json.
    const ooo::CoreConfig base;
    sim::SweepSpec sweep("bench_smoke_sweep");
    sweep.defaults() = h.spec(tiny);

    auto &g1 = sweep.group(names);
    g1.variant("base", ooo::CoreMode::Baseline);
    g1.variant("cdf", ooo::CoreMode::Cdf);
    g1.variant("pre", ooo::CoreMode::Pre);

    // Config-override cells on a small workload subset: exercise the
    // ablation/scaling/threshold configurations the figure benches
    // rely on without tripling the sweep.
    std::vector<std::string> subset;
    for (const std::string name : {"astar", "mcf", "lbm"})
        if (std::find(names.begin(), names.end(), name) !=
            names.end())
            subset.push_back(name); // else dropped by --workloads
    if (!subset.empty()) {
        auto &g2 = sweep.group(subset);
        g2.variant("cdf_static_part", ooo::CoreMode::Cdf)
            .set("cdf.partition.dynamic", false);
        g2.variant("cdf_no_maskcache", ooo::CoreMode::Cdf)
            .set("cdf.fill_buffer.use_mask_cache", false);
        g2.variant("base_halfwin", ooo::CoreMode::Baseline)
            .set("scale_window", 0.5);
        g2.variant("cdf_halfwin", ooo::CoreMode::Cdf)
            .set("scale_window", 0.5);
        g2.variant("cdf_bigwin", ooo::CoreMode::Cdf)
            .set("scale_window", 1.5);
        g2.variant("cdf_strict", ooo::CoreMode::Cdf)
            .set("cdf.density_switch_low", -1.0)
            .set("cdf.density_switch_high", -0.5);
        g2.variant("cdf_permissive", ooo::CoreMode::Cdf)
            .set("cdf.load_table.strict_bits",
                 base.cdf.loadTable.permissiveBits)
            .set("cdf.load_table.strict_threshold",
                 base.cdf.loadTable.permissiveThreshold)
            .set("cdf.branch_table.strict_bits",
                 base.cdf.branchTable.permissiveBits)
            .set("cdf.branch_table.strict_threshold",
                 base.cdf.branchTable.permissiveThreshold);
    }
    h.addCells(sweep.expand(base));
    h.run();

    std::size_t bad = 0;
    for (const auto &o : h.outcomes()) {
        if (!o.failed())
            continue;
        ++bad;
        std::printf("FAIL %-12s %-8s %s%s%s\n",
                    o.cell.workload.c_str(), o.cell.variant.c_str(),
                    o.error.empty() ? o.run.status() : "error: ",
                    o.error.c_str(),
                    o.error.empty() ? "" : "");
    }
    std::printf("smoke sweep: %zu runs, %zu failed (%u threads)\n",
                h.outcomes().size(), bad, h.threads());
    const int jsonRc = h.finish();
    return bad > 0 ? 1 : jsonRc;
}
