/**
 * @file
 * CI smoke sweep: every workload x {Baseline, CDF, PRE} at tiny
 * instruction counts through sim::SweepRunner, plus a handful of
 * config-override cells (static partition, mask cache off, scaled
 * windows) so the ablation and scaling paths stay covered. Exits
 * non-zero if any cell halts, truncates, or throws — catching
 * deadlocks, exhausted programs and measurement-window regressions
 * before they corrupt a figure. Registered as a ctest target.
 */

#include <algorithm>
#include <cstdio>

#include "bench_util.hh"

using namespace cdfsim;

int
main(int argc, char **argv)
{
    bench::Harness h("bench_smoke_sweep", argc, argv);

    sim::RunSpec tiny;
    tiny.warmupInstrs = 2'000;
    tiny.measureInstrs = 3'000;
    tiny.maxCycles = 5'000'000; // per phase; far beyond any sane run
    const auto spec = h.spec(tiny);
    const auto names = h.workloads(workloads::allWorkloadNames());

    const ooo::CoreConfig base;
    for (const auto &name : names) {
        h.add(name, "base", ooo::CoreMode::Baseline, base, spec);
        h.add(name, "cdf", ooo::CoreMode::Cdf, base, spec);
        h.add(name, "pre", ooo::CoreMode::Pre, base, spec);
    }

    // Config-override cells on a small workload subset: exercise the
    // ablation/scaling configurations the figure benches rely on
    // without tripling the sweep.
    ooo::CoreConfig staticPart = base;
    staticPart.cdf.partition.dynamic = false;
    ooo::CoreConfig noMaskCache = base;
    noMaskCache.cdf.fillBuffer.useMaskCache = false;
    ooo::CoreConfig halfWindow = base;
    halfWindow.scaleWindow(0.5);
    ooo::CoreConfig bigWindow = base;
    bigWindow.scaleWindow(1.5);
    for (const std::string name : {"astar", "mcf", "lbm"}) {
        if (std::find(names.begin(), names.end(), name) ==
            names.end())
            continue; // dropped by --workloads
        h.add(name, "cdf_static_part", ooo::CoreMode::Cdf,
              staticPart, spec);
        h.add(name, "cdf_no_maskcache", ooo::CoreMode::Cdf,
              noMaskCache, spec);
        h.add(name, "base_halfwin", ooo::CoreMode::Baseline,
              halfWindow, spec);
        h.add(name, "cdf_halfwin", ooo::CoreMode::Cdf, halfWindow,
              spec);
        h.add(name, "cdf_bigwin", ooo::CoreMode::Cdf, bigWindow,
              spec);
    }
    h.run();

    std::size_t bad = 0;
    for (const auto &o : h.outcomes()) {
        if (!o.failed())
            continue;
        ++bad;
        std::printf("FAIL %-12s %-8s %s%s%s\n",
                    o.cell.workload.c_str(), o.cell.variant.c_str(),
                    o.error.empty() ? o.run.status() : "error: ",
                    o.error.c_str(),
                    o.error.empty() ? "" : "");
    }
    std::printf("smoke sweep: %zu runs, %zu failed (%u threads)\n",
                h.outcomes().size(), bad, h.threads());
    const int jsonRc = h.finish();
    return bad > 0 ? 1 : jsonRc;
}
