/**
 * @file
 * Generic spec-driven sweep driver: runs any declarative sweep spec
 * (under bench/specs/) through the shared bench harness, so every
 * harness speedup layer — thread pool, --shard, --ckpt-dir,
 * idle-skip, --json artifacts — works on a grid described purely as
 * data. A threshold/partition/window study becomes a spec edit, not
 * a recompile.
 *
 *   bench_sweep_spec --spec bench/specs/fig13_speedup.json \
 *       [any bench::Harness flag]
 *
 * Cell expansion order matches the legacy hand-written bench
 * matrices exactly (pinned by the spec_identity ctests), so a
 * spec-driven artifact is bit-identical (modulo "timing") to the
 * figure binary's. The driver prints a generic per-cell table; the
 * figure binaries keep their derived-metric tables and hooks.
 */

#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "sim/sweep_spec.hh"

using namespace cdfsim;

namespace
{

[[noreturn]] void
usage(int code)
{
    std::fprintf(stderr,
                 "usage: bench_sweep_spec --spec FILE.json "
                 "[bench::Harness flags]\n"
                 "  (--threads/--workloads/--json/--shard/--ckpt-dir/"
                 "... all apply)\n");
    std::exit(code);
}

} // namespace

int
main(int argc, char **argv)
{
    // Pull --spec out before the harness sees the argument list; the
    // rest of the CLI is the standard harness surface.
    std::string specPath;
    std::vector<char *> rest;
    rest.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--spec") == 0) {
            if (++i >= argc) {
                std::fprintf(stderr,
                             "bench_sweep_spec: --spec needs a "
                             "value\n");
                usage(2);
            }
            specPath = argv[i];
        } else if (std::strncmp(argv[i], "--spec=", 7) == 0) {
            specPath = argv[i] + 7;
        } else {
            rest.push_back(argv[i]);
        }
    }
    if (specPath.empty()) {
        std::fprintf(stderr,
                     "bench_sweep_spec: --spec is required\n");
        usage(2);
    }

    sim::SweepSpec spec("unloaded");
    std::vector<sim::SweepCell> cells;
    try {
        spec = sim::SweepSpec::fromFile(specPath);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "bench_sweep_spec: %s\n", e.what());
        return 2;
    }

    bench::Harness h(spec.name(), static_cast<int>(rest.size()),
                     rest.data());
    // Validate --workloads against everything the spec names (exits
    // with the usual unknown-workload diagnostic); expansion then
    // applies the filter per group with subset-intersection
    // semantics, like the legacy benches with fixed subsets.
    h.workloads(spec.workloadUnion());
    try {
        cells = spec.expand(ooo::CoreConfig{}, h.workloadFilter());
    } catch (const std::exception &e) {
        std::fprintf(stderr, "bench_sweep_spec: %s\n", e.what());
        return 2;
    }
    if (cells.empty()) {
        std::fprintf(stderr,
                     "bench_sweep_spec: %s expands to no cells "
                     "(over-restrictive --workloads?)\n",
                     specPath.c_str());
        return 2;
    }
    h.addCells(std::move(cells));
    h.run();

    bench::printHeader(spec.name() + " (" + specPath + ")",
                       {"variant", "status", "ipc", "mlp",
                        "energy_uj"});
    for (const auto &o : h.outcomes()) {
        if (o.skipped)
            continue;
        if (o.failed()) {
            std::printf("%-12s %12s %12s\n", o.cell.workload.c_str(),
                        o.cell.variant.c_str(),
                        o.error.empty() ? o.run.status() : "error");
            continue;
        }
        std::printf("%-12s %12s %12s %12.3f %12.2f %12.1f\n",
                    o.cell.workload.c_str(), o.cell.variant.c_str(),
                    o.run.status(), o.run.core.ipc, o.run.core.mlp,
                    o.run.energy.totalUj);
    }
    std::printf("\n%zu cell(s), %zu failed (%u threads)\n",
                h.outcomes().size(), h.failures(), h.threads());
    return h.finish();
}
