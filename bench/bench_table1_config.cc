/**
 * @file
 * Regenerates Table 1: the simulation parameters of the baseline
 * core, caches, prefetcher, memory and the added CDF structures,
 * as configured in this reproduction. With --json, the parameters
 * are also emitted machine-readably so config drift across PRs is
 * diffable.
 */

#include <cstdio>

#include "bench_util.hh"
#include "energy/energy_model.hh"
#include "ooo/core_config.hh"

using namespace cdfsim;

int
main(int argc, char **argv)
{
    bench::Harness h("bench_table1_config", argc, argv);
    ooo::CoreConfig c;
    const auto &m = c.mem;

    std::printf("== Table 1: Simulation Parameters ==\n\n");
    std::printf("Core        3.2 GHz, %u-wide issue, TAGE-SC-L-class "
                "predictor\n",
                c.width);
    std::printf("            %u-entry ROB, %u-entry Reservation "
                "Stations\n",
                c.robSize, c.rsSize);
    std::printf("            %u-entry Load & %u-entry Store Queues, "
                "%u physical registers\n",
                c.lqSize, c.sqSize, c.physRegs);
    std::printf("Caches      %lluKB %u-way L1 I-cache & D-cache, "
                "%u-cycle access\n",
                m.l1i.sizeBytes / 1024, m.l1i.ways, m.l1i.latency);
    std::printf("            %lluMB %u-way LLC, %u-cycle access, "
                "64B lines\n",
                m.llc.sizeBytes / (1024 * 1024), m.llc.ways,
                m.llc.latency);
    std::printf("Prefetcher  Stream prefetcher, %u streams (always "
                "on),\n            feedback-directed throttling "
                "(degree %u-%u)\n",
                m.prefetcher.streams, m.prefetcher.minDegree,
                m.prefetcher.maxDegree);
    std::printf("Memory      DDR4-2400-class: %u channels, %u bank "
                "groups x %u banks,\n            tRP-tCL-tRCD = "
                "%u-%u-%u core cycles, %uB rows... \n",
                m.dram.channels, m.dram.bankGroups,
                m.dram.banksPerGroup, m.dram.tRp, m.dram.tCl,
                m.dram.tRcd, m.dram.rowBytes);
    std::printf("CDF caches  %u-entry %u-way Critical Count Tables, "
                "1-cycle access\n",
                c.cdf.loadTable.entries, c.cdf.loadTable.ways);
    std::printf("            %u-entry Mask Cache (~4KB), 1-cycle "
                "access\n",
                c.cdf.maskCache.entries);
    std::printf("            %u-line Critical Uop Cache (~18KB), "
                "8 uops (8B each) per line\n",
                c.cdf.uopCache.capacityLines);
    std::printf("CDF FIFOs   %u-entry Fill Buffer (~16KB)\n",
                c.cdf.fillBuffer.capacity);
    std::printf("            %u-entry Delayed Branch Queue (~1KB)\n",
                c.cdf.dbqEntries);
    std::printf("            %u-entry Critical Map Queue (~512B)\n",
                c.cdf.cmqEntries);

    std::printf("\n== Area model (Section 4.3) ==\n");
    const double core = energy::Model::coreArea(c);
    const double cdf = energy::Model::cdfArea(c);
    std::printf("baseline core area  %.2f (arb. mm^2)\n", core);
    std::printf("CDF structures      %.2f (arb. mm^2) = %.1f%% "
                "overhead (paper: 3.2%%)\n",
                cdf, 100.0 * cdf / core);

    Json table = Json::object();
    Json coreJ = Json::object();
    coreJ["width"] = c.width;
    coreJ["issue_width"] = c.issueWidth;
    coreJ["rob_size"] = c.robSize;
    coreJ["rs_size"] = c.rsSize;
    coreJ["lq_size"] = c.lqSize;
    coreJ["sq_size"] = c.sqSize;
    coreJ["phys_regs"] = c.physRegs;
    coreJ["frontend_depth"] = c.frontendDepth;
    table["core"] = std::move(coreJ);
    Json memJ = Json::object();
    memJ["l1_size_bytes"] = m.l1i.sizeBytes;
    memJ["l1_ways"] = m.l1i.ways;
    memJ["llc_size_bytes"] = m.llc.sizeBytes;
    memJ["llc_ways"] = m.llc.ways;
    memJ["prefetcher_streams"] = m.prefetcher.streams;
    memJ["dram_channels"] = m.dram.channels;
    table["memory"] = std::move(memJ);
    Json cdfJ = Json::object();
    cdfJ["cct_entries"] = c.cdf.loadTable.entries;
    cdfJ["mask_cache_entries"] = c.cdf.maskCache.entries;
    cdfJ["uop_cache_lines"] = c.cdf.uopCache.capacityLines;
    cdfJ["fill_buffer_capacity"] = c.cdf.fillBuffer.capacity;
    cdfJ["dbq_entries"] = c.cdf.dbqEntries;
    cdfJ["cmq_entries"] = c.cdf.cmqEntries;
    table["cdf"] = std::move(cdfJ);
    Json area = Json::object();
    area["core_mm2"] = core;
    area["cdf_mm2"] = cdf;
    area["cdf_overhead_fraction"] = cdf / core;
    table["area"] = std::move(area);
    h.derived()["table1"] = std::move(table);
    return h.finish();
}
