/**
 * @file
 * Shared harness for the figure-regeneration benchmark binaries.
 *
 * Every bench declares its run matrix as (workload, variant, mode,
 * config, spec) cells, then executes them through sim::SweepRunner
 * on a thread pool and reads results back by (workload, variant).
 * All binaries share one CLI:
 *
 *   --threads N          worker threads (default: hardware concurrency)
 *   --workloads a,b,c    restrict to a comma-separated subset
 *   --json out.json      write machine-readable results
 *   --measure-instrs N   override the measurement window
 *   --warmup-instrs N    override the warmup window
 *   --max-cycles N       override the per-phase cycle budget
 *   --shard i/N          run only cells j with j mod N == i
 *   --ckpt-dir DIR       spill/load warmup checkpoints under DIR
 *   --profile            per-stage host-time breakdown
 *
 * --ckpt-dir persists post-warmup simulator snapshots keyed by
 * (workload, mode, warmup-relevant config, warmup length), so
 * figure benches sharing a matrix (fig13, then fig14/15/16) warm
 * each cell once per DIR instead of once per process. Restoring is
 * bit-identical to warming (sim/snapshot.hh), so artifacts are
 * unchanged outside "timing"; checkpoint traffic is reported in
 * timing.ckpt_{hits,misses,restore_seconds}.
 *
 * Parallel and serial runs of the same matrix produce bit-identical
 * results (and bit-identical JSON modulo the "timing" object).
 *
 * Sharding is deterministic round-robin over the declared cell
 * order, so the N shard artifacts of any --shard partition together
 * cover exactly the full matrix; tools/bench_merge re-interleaves
 * them into one artifact bit-identical (modulo "timing") to a
 * single-process --shard 0/1 run. Sharded artifacts omit "derived"
 * — whole-matrix aggregates are not computable from one shard.
 */

#ifndef CDFSIM_BENCH_BENCH_UTIL_HH
#define CDFSIM_BENCH_BENCH_UTIL_HH

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#include "sim/sweep.hh"

namespace cdfsim::bench
{

/** Default per-benchmark run lengths for the figure harnesses. */
inline sim::RunSpec
figureRunSpec()
{
    sim::RunSpec spec;
    spec.warmupInstrs = 300'000;
    spec.measureInstrs = 200'000;
    return spec;
}

/** Print a markdown-ish table header. */
inline void
printHeader(const std::string &title,
            const std::vector<std::string> &cols)
{
    std::printf("\n== %s ==\n", title.c_str());
    std::printf("%-12s", "workload");
    for (const auto &c : cols)
        std::printf(" %12s", c.c_str());
    std::printf("\n");
}

inline void
printRow(const std::string &name, const std::vector<double> &vals,
         const char *fmt = "%12.3f")
{
    std::printf("%-12s", name.c_str());
    for (double v : vals)
        std::printf(fmt, v);
    std::printf("\n");
}

/** Row for a run that produced no trustworthy numbers. */
inline void
printStatusRow(const std::string &name, std::size_t cols,
               const char *status)
{
    std::printf("%-12s", name.c_str());
    for (std::size_t i = 0; i < cols; ++i)
        std::printf(" %12s", status);
    std::printf("\n");
}

/**
 * Geomean over positive ratios only; prints a visible warning when
 * halted/zero rows had to be excluded instead of aborting the whole
 * figure (sim::geomean asserts on non-positive input).
 */
inline double
geomeanWarn(const std::vector<double> &ratios, const char *what)
{
    std::size_t excluded = 0;
    const double g = sim::geomeanPositive(ratios, &excluded);
    if (excluded > 0) {
        std::fprintf(stderr,
                     "warning: excluded %zu non-positive %s ratio(s) "
                     "from the geomean (halted or zero-IPC runs)\n",
                     excluded, what);
    }
    if (ratios.size() == excluded) {
        std::fprintf(stderr,
                     "warning: no usable %s ratios; geomean is undefined\n",
                     what);
        return std::numeric_limits<double>::quiet_NaN();
    }
    return g;
}

/** The shared bench driver. */
class Harness
{
  public:
    Harness(std::string name, int argc, char **argv)
        : name_(std::move(name)), derived_(Json::object())
    {
        parseArgs(argc, argv);
        runner_ = sim::SweepRunner(threadsFlag_);
        if (!ckptDir_.empty()) {
            std::error_code ec;
            std::filesystem::create_directories(ckptDir_, ec);
            if (ec) {
                std::fprintf(stderr,
                             "%s: cannot create --ckpt-dir %s: %s\n",
                             name_.c_str(), ckptDir_.c_str(),
                             ec.message().c_str());
                std::exit(2);
            }
            runner_.setCheckpointDir(ckptDir_);
        }
    }

    unsigned threads() const { return runner_.threads(); }

    /** Apply the CLI instruction-count overrides to a bench default. */
    sim::RunSpec
    spec(sim::RunSpec defaults) const
    {
        if (measureInstrs_ != kUnset)
            defaults.measureInstrs = measureInstrs_;
        if (warmupInstrs_ != kUnset)
            defaults.warmupInstrs = warmupInstrs_;
        if (maxCycles_ != kUnset)
            defaults.maxCycles = maxCycles_;
        return defaults;
    }

    /** Apply the --workloads filter to the bench's workload list. */
    std::vector<std::string>
    workloads(const std::vector<std::string> &available) const
    {
        if (workloadFilter_.empty())
            return available;
        std::vector<std::string> out;
        for (const auto &want : workloadFilter_) {
            bool known = false;
            for (const auto &a : available)
                known = known || a == want;
            if (!known) {
                std::fprintf(stderr,
                             "%s: unknown workload '%s' (not in this "
                             "bench's set)\n",
                             name_.c_str(), want.c_str());
                std::exit(2);
            }
            out.push_back(want);
        }
        return out;
    }

    /** Queue one cell of the run matrix. */
    void
    add(const std::string &workload, const std::string &variant,
        ooo::CoreMode mode, const ooo::CoreConfig &config,
        const sim::RunSpec &spec)
    {
        sim::SweepCell cell;
        cell.workload = workload;
        cell.variant = variant;
        cell.mode = mode;
        cell.config = config;
        cell.spec = spec;
        add(std::move(cell));
    }

    /** Queue one pre-built cell (e.g. from SweepSpec::expand). */
    void
    add(sim::SweepCell cell)
    {
        cell.config.mode = cell.mode;
        cell.config.profileStages = profile_;
        index_[{cell.workload, cell.variant}] = cells_.size();
        cells_.push_back(std::move(cell));
    }

    /** Queue a whole expanded matrix, preserving its order. The CLI
     *  window overrides (--measure-instrs & co) are applied to every
     *  cell, so they keep working through spec-driven benches. */
    void
    addCells(std::vector<sim::SweepCell> cells)
    {
        for (auto &cell : cells) {
            cell.spec = spec(cell.spec);
            add(std::move(cell));
        }
    }

    /** The raw --workloads filter (empty when the flag was absent),
     *  for matrix builders with their own subset semantics. */
    const std::vector<std::string> &
    workloadFilter() const
    {
        return workloadFilter_;
    }

    /** Execute this shard's share of the queued cells (the whole
     *  matrix unless --shard was given). */
    void
    run()
    {
        std::vector<sim::SweepCell> assigned;
        std::vector<std::size_t> assignedIdx;
        assigned.reserve(cells_.size());
        for (std::size_t j = 0; j < cells_.size(); ++j) {
            if (j % shardCount_ == shardIndex_) {
                assigned.push_back(cells_[j]);
                assignedIdx.push_back(j);
            }
        }
        if (shardGiven_) {
            std::fprintf(stderr,
                         "%s: shard %u/%u runs %zu of %zu cells "
                         "(tables cover this shard only)\n",
                         name_.c_str(), shardIndex_, shardCount_,
                         assigned.size(), cells_.size());
        }

        const auto t0 = std::chrono::steady_clock::now();
        std::vector<sim::SweepOutcome> got =
            runner_.runAll(assigned);
        wallSeconds_ = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();

        outcomes_.clear();
        outcomes_.resize(cells_.size());
        for (std::size_t j = 0; j < cells_.size(); ++j) {
            outcomes_[j].cell = cells_[j];
            outcomes_[j].skipped = true;
        }
        for (std::size_t k = 0; k < got.size(); ++k)
            outcomes_[assignedIdx[k]] = std::move(got[k]);

        for (const auto &o : outcomes_) {
            if (o.skipped) {
                continue;
            } else if (!o.error.empty()) {
                std::fprintf(stderr, "warning: %s/%s failed: %s\n",
                             o.cell.workload.c_str(),
                             o.cell.variant.c_str(), o.error.c_str());
            } else if (!o.run.ok()) {
                std::fprintf(stderr, "warning: %s/%s run is %s\n",
                             o.cell.workload.c_str(),
                             o.cell.variant.c_str(), o.run.status());
            }
        }
    }

    const std::vector<sim::SweepOutcome> &outcomes() const
    {
        return outcomes_;
    }

    /** Sum the per-stage host-time profiles over every run. */
    ooo::StageProfile
    aggregateProfile() const
    {
        ooo::StageProfile total;
        for (const auto &o : outcomes_) {
            for (unsigned s = 0; s < ooo::StageProfile::kNumStages;
                 ++s)
                total.ns[s] += o.run.profile.ns[s];
            for (unsigned l = 0;
                 l < mem::MemLevelProfile::kNumLevels; ++l) {
                total.mem.ns[l] += o.run.profile.mem.ns[l];
                total.mem.accesses[l] +=
                    o.run.profile.mem.accesses[l];
            }
            total.ticks += o.run.profile.ticks;
        }
        return total;
    }

    /** Print the --profile per-stage breakdown to stderr. */
    void
    printProfile() const
    {
        const ooo::StageProfile p = aggregateProfile();
        std::uint64_t totalNs = 0;
        for (unsigned s = 0; s < ooo::StageProfile::kNumStages; ++s)
            totalNs += p.ns[s];
        if (p.ticks == 0 || totalNs == 0) {
            std::fprintf(stderr,
                         "--profile: no stage samples collected\n");
            return;
        }
        std::fprintf(stderr,
                     "\nper-stage host time (%llu ticks):\n",
                     static_cast<unsigned long long>(p.ticks));
        for (unsigned s = 0; s < ooo::StageProfile::kNumStages; ++s) {
            std::fprintf(
                stderr, "  %-10s %8.1f ns/tick  %5.1f%%\n",
                ooo::StageProfile::name(s),
                static_cast<double>(p.ns[s]) /
                    static_cast<double>(p.ticks),
                100.0 * static_cast<double>(p.ns[s]) /
                    static_cast<double>(totalNs));
        }
        // Memory-hierarchy time by deepest level reached — a
        // breakdown *within* the stage rows above, not additional
        // time.
        std::fprintf(stderr, "of which, memory hierarchy:\n");
        for (unsigned l = 0; l < mem::MemLevelProfile::kNumLevels;
             ++l) {
            std::fprintf(
                stderr,
                "  %-10s %8.1f ns/tick  %5.1f%%  (%llu accesses)\n",
                mem::MemLevelProfile::name(l),
                static_cast<double>(p.mem.ns[l]) /
                    static_cast<double>(p.ticks),
                100.0 * static_cast<double>(p.mem.ns[l]) /
                    static_cast<double>(totalNs),
                static_cast<unsigned long long>(p.mem.accesses[l]));
        }
    }

    const sim::SweepOutcome &
    outcome(const std::string &workload,
            const std::string &variant) const
    {
        auto it = index_.find({workload, variant});
        if (it == index_.end())
            fatal("no sweep cell ", workload, "/", variant);
        return outcomes_.at(it->second);
    }

    const sim::RunResult &
    get(const std::string &workload, const std::string &variant) const
    {
        return outcome(workload, variant).run;
    }

    /** True when the (workload, variant) run can feed a figure. */
    bool
    ok(const std::string &workload, const std::string &variant) const
    {
        const sim::SweepOutcome &o = outcome(workload, variant);
        return !o.skipped && !o.failed();
    }

    std::size_t
    failures() const
    {
        std::size_t n = 0;
        for (const auto &o : outcomes_)
            n += o.failed() ? 1 : 0;
        return n;
    }

    /** Bench-specific derived values for the JSON artifact. */
    Json &derived() { return derived_; }

    /**
     * Write the JSON artifact when --json was given. Returns the
     * process exit code (0; sweeps with failed cells still emit
     * their partial figures, the rows are just marked).
     */
    int
    finish() const
    {
        if (profile_)
            printProfile();
        if (jsonPath_.empty())
            return 0;
        Json doc = Json::object();
        doc["bench"] = name_;
        doc["schema_version"] = 1;
        Json runs = Json::array();
        std::size_t emitted = 0;
        for (const auto &o : outcomes_) {
            if (o.skipped)
                continue;
            runs.push_back(sim::toJson(o));
            ++emitted;
        }
        doc["runs"] = std::move(runs);
        // Sharded artifacts omit "derived": whole-matrix aggregates
        // (geomeans over every cell) are not computable from one
        // shard, and bench_merge cannot reconstruct them. This also
        // makes a --shard 0/1 run the byte-exact reference for a
        // merged artifact. Undefined aggregates (NaN — a geomean
        // with every row excluded) are dropped rather than
        // serialized: the JSON writer would emit them as null, which
        // downstream tools rightly treat as a malformed artifact.
        if (!shardGiven_ && derived_.size() > 0) {
            Json pruned = pruneUndefined(derived_, "derived");
            if (pruned.size() > 0)
                doc["derived"] = std::move(pruned);
        }
        // Timing metadata lives in ONE object so results can be
        // compared bit-identically across thread counts by dropping
        // the "timing" member. Shard identity also lives here: it
        // describes *this process*, not the simulated results.
        Json timing = Json::object();
        timing["threads"] = runner_.threads();
        timing["wall_seconds"] = wallSeconds_;
        if (shardGiven_) {
            Json shard = Json::object();
            shard["index"] = shardIndex_;
            shard["count"] = shardCount_;
            timing["shard"] = std::move(shard);
        }
        std::uint64_t measuredInstrs = 0;
        std::uint64_t skippedCycles = 0;
        std::uint64_t skipEvents = 0;
        for (const auto &o : outcomes_) {
            measuredInstrs += o.run.core.retiredInstrs;
            skippedCycles += o.run.skippedCycles;
            skipEvents += o.run.skipEvents;
        }
        // Idle-skip totals are host-side run metadata (the skipped
        // cycles ARE simulated, just fast-forwarded), so they live
        // in "timing" with the rest of the host measurements.
        timing["skipped_cycles"] = skippedCycles;
        timing["skip_events"] = skipEvents;
        // Warmup-checkpoint traffic: hits restored a memoized or
        // on-disk checkpoint, misses warmed from scratch. Host-side
        // only — the simulated results are bit-identical either way.
        timing["ckpt_hits"] = runner_.ckptStats().hits;
        timing["ckpt_misses"] = runner_.ckptStats().misses;
        timing["ckpt_restore_seconds"] =
            runner_.ckptStats().restoreSeconds;
        timing["sim_kuops_per_sec"] =
            wallSeconds_ > 0.0
                ? static_cast<double>(measuredInstrs) /
                      wallSeconds_ / 1e3
                : 0.0;
        if (profile_)
            timing["profile"] = profileJson();
        doc["timing"] = std::move(timing);

        std::ofstream out(jsonPath_);
        if (!out) {
            std::fprintf(stderr, "%s: cannot write %s\n",
                         name_.c_str(), jsonPath_.c_str());
            return 1;
        }
        out << doc.dump(2);
        std::fprintf(stderr, "wrote %s (%zu runs)\n",
                     jsonPath_.c_str(), emitted);
        return 0;
    }

  private:
    static constexpr std::uint64_t kUnset =
        std::numeric_limits<std::uint64_t>::max();

    /**
     * Copy @p node minus any NaN members (recursively), warning
     * visibly for each dropped key: a NaN aggregate means every row
     * was excluded (all halted/zero), and "no value" is honest where
     * a serialized null would just be garbage for consumers.
     */
    static Json
    pruneUndefined(const Json &node, const std::string &path)
    {
        if (node.type() == Json::Type::Object) {
            Json out = Json::object();
            for (const auto &kv : node.members()) {
                Json child =
                    pruneUndefined(kv.second, path + "." + kv.first);
                if (!child.isNull())
                    out[kv.first] = std::move(child);
            }
            return out;
        }
        if (node.type() == Json::Type::Double &&
            std::isnan(node.asNumber())) {
            std::fprintf(stderr,
                         "warning: %s is undefined (every row "
                         "excluded); omitting it from the artifact\n",
                         path.c_str());
            return Json();
        }
        return node;
    }

    Json
    profileJson() const
    {
        const ooo::StageProfile p = aggregateProfile();
        Json obj = Json::object();
        obj["ticks"] = p.ticks;
        for (unsigned s = 0; s < ooo::StageProfile::kNumStages; ++s) {
            obj[std::string(ooo::StageProfile::name(s)) + "_ns"] =
                p.ns[s];
        }
        for (unsigned l = 0; l < mem::MemLevelProfile::kNumLevels;
             ++l) {
            const std::string key = mem::MemLevelProfile::name(l);
            obj[key + "_ns"] = p.mem.ns[l];
            obj[key + "_accesses"] = p.mem.accesses[l];
        }
        return obj;
    }

    [[noreturn]] void
    usage(int code) const
    {
        std::fprintf(
            stderr,
            "usage: %s [--threads N] [--workloads a,b,c] "
            "[--json out.json]\n"
            "          [--measure-instrs N] [--warmup-instrs N] "
            "[--max-cycles N]\n"
            "          [--shard i/N] [--ckpt-dir DIR] [--profile]\n",
            name_.c_str());
        std::exit(code);
    }

    /**
     * Strict decimal parse for flag values. Anything that is not a
     * plain digit string (garbage, trailing junk, negatives, or —
     * when @p allowZero is false — zero) is a hard error: the old
     * strtoul fallback silently turned "--threads abc" into thread
     * count 0, i.e. hardware concurrency, hiding the typo.
     */
    /** Digit-only decimal parse: false on garbage, trailing junk,
     *  signs, or overflow. The strict backend of every numeric flag. */
    static bool
    parseDigits(const char *text, std::uint64_t &out)
    {
        char *end = nullptr;
        errno = 0;
        const unsigned long long v = std::strtoull(text, &end, 10);
        if (text[0] < '0' || text[0] > '9' || end == text ||
            *end != '\0' || errno == ERANGE)
            return false;
        out = v;
        return true;
    }

    std::uint64_t
    parseNumber(const char *text, const char *flag, bool allowZero)
    {
        std::uint64_t v = 0;
        if (!parseDigits(text, v) || (!allowZero && v == 0)) {
            std::fprintf(
                stderr, "%s: %s wants a positive integer, got '%s'\n",
                name_.c_str(), flag, text);
            std::exit(2);
        }
        return v;
    }

    void
    parseArgs(int argc, char **argv)
    {
        auto value = [&](int &i, const char *flag) -> const char * {
            const char *arg = argv[i];
            const std::size_t n = std::strlen(flag);
            if (std::strncmp(arg, flag, n) == 0 && arg[n] == '=')
                return arg + n + 1;
            if (++i >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n",
                             name_.c_str(), flag);
                usage(2);
            }
            return argv[i];
        };
        auto matches = [](const char *arg, const char *flag) {
            const std::size_t n = std::strlen(flag);
            return std::strncmp(arg, flag, n) == 0 &&
                   (arg[n] == '\0' || arg[n] == '=');
        };

        for (int i = 1; i < argc; ++i) {
            const char *arg = argv[i];
            if (matches(arg, "--threads")) {
                // 0 is rejected rather than meaning "hardware
                // concurrency": omitting the flag already does that,
                // and an explicit 0 is more often a garbled value.
                threadsFlag_ = static_cast<unsigned>(parseNumber(
                    value(i, "--threads"), "--threads", false));
            } else if (matches(arg, "--workloads")) {
                splitCsv(value(i, "--workloads"), workloadFilter_);
            } else if (matches(arg, "--json")) {
                jsonPath_ = value(i, "--json");
            } else if (matches(arg, "--measure-instrs")) {
                measureInstrs_ =
                    parseNumber(value(i, "--measure-instrs"),
                                "--measure-instrs", true);
            } else if (matches(arg, "--warmup-instrs")) {
                warmupInstrs_ =
                    parseNumber(value(i, "--warmup-instrs"),
                                "--warmup-instrs", true);
            } else if (matches(arg, "--max-cycles")) {
                maxCycles_ = parseNumber(value(i, "--max-cycles"),
                                         "--max-cycles", true);
            } else if (matches(arg, "--shard")) {
                parseShard(value(i, "--shard"));
            } else if (matches(arg, "--ckpt-dir")) {
                ckptDir_ = value(i, "--ckpt-dir");
            } else if (std::strcmp(arg, "--profile") == 0) {
                profile_ = true;
            } else if (std::strcmp(arg, "--help") == 0 ||
                       std::strcmp(arg, "-h") == 0) {
                usage(0);
            } else {
                std::fprintf(stderr, "%s: unknown flag '%s'\n",
                             name_.c_str(), arg);
                usage(2);
            }
        }
    }

    /**
     * Strict "--shard i/N" parse, same contract as parseNumber: both
     * halves must be plain digit strings (no signs — the old strtoul
     * path silently wrapped "-1" to a huge index) with N > 0 and
     * i < N; anything else is a one-line error and exit 2.
     */
    void
    parseShard(const char *text)
    {
        std::uint64_t idx = 0;
        std::uint64_t count = 0;
        const char *slash = std::strchr(text, '/');
        bool ok = slash != nullptr;
        if (ok) {
            const std::string idxPart(text, slash);
            ok = parseDigits(idxPart.c_str(), idx) &&
                 parseDigits(slash + 1, count) && count > 0 &&
                 idx < count && count <= 0xFFFFFFFFull;
        }
        if (!ok) {
            std::fprintf(stderr,
                         "%s: --shard wants i/N with digits only and "
                         "0 <= i < N, got '%s'\n",
                         name_.c_str(), text);
            std::exit(2);
        }
        shardIndex_ = static_cast<unsigned>(idx);
        shardCount_ = static_cast<unsigned>(count);
        shardGiven_ = true;
    }

    static void
    splitCsv(const std::string &csv, std::vector<std::string> &out)
    {
        std::size_t start = 0;
        while (start <= csv.size()) {
            std::size_t comma = csv.find(',', start);
            if (comma == std::string::npos)
                comma = csv.size();
            if (comma > start)
                out.push_back(csv.substr(start, comma - start));
            start = comma + 1;
        }
    }

    std::string name_;
    unsigned threadsFlag_ = 0;
    std::vector<std::string> workloadFilter_;
    std::string jsonPath_;
    std::string ckptDir_;
    std::uint64_t measureInstrs_ = kUnset;
    std::uint64_t warmupInstrs_ = kUnset;
    std::uint64_t maxCycles_ = kUnset;
    bool profile_ = false;
    unsigned shardIndex_ = 0;
    unsigned shardCount_ = 1;
    bool shardGiven_ = false;

    sim::SweepRunner runner_{1};
    std::vector<sim::SweepCell> cells_;
    std::map<std::pair<std::string, std::string>, std::size_t> index_;
    std::vector<sim::SweepOutcome> outcomes_;
    double wallSeconds_ = 0.0;
    Json derived_;
};

} // namespace cdfsim::bench

#endif // CDFSIM_BENCH_BENCH_UTIL_HH
