/**
 * @file
 * Shared helpers for the figure-regeneration benchmark binaries.
 */

#ifndef CDFSIM_BENCH_BENCH_UTIL_HH
#define CDFSIM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace cdfsim::bench
{

/** Default per-benchmark run lengths for the figure harnesses. */
inline sim::RunSpec
figureRunSpec()
{
    sim::RunSpec spec;
    spec.warmupInstrs = 300'000;
    spec.measureInstrs = 200'000;
    return spec;
}

/** Print a markdown-ish table header. */
inline void
printHeader(const std::string &title,
            const std::vector<std::string> &cols)
{
    std::printf("\n== %s ==\n", title.c_str());
    std::printf("%-12s", "workload");
    for (const auto &c : cols)
        std::printf(" %12s", c.c_str());
    std::printf("\n");
}

inline void
printRow(const std::string &name, const std::vector<double> &vals,
         const char *fmt = "%12.3f")
{
    std::printf("%-12s", name.c_str());
    for (double v : vals)
        std::printf(fmt, v);
    std::printf("\n");
}

} // namespace cdfsim::bench

#endif // CDFSIM_BENCH_BENCH_UTIL_HH
