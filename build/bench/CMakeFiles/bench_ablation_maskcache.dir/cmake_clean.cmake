file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_maskcache.dir/bench_ablation_maskcache.cc.o"
  "CMakeFiles/bench_ablation_maskcache.dir/bench_ablation_maskcache.cc.o.d"
  "bench_ablation_maskcache"
  "bench_ablation_maskcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_maskcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
