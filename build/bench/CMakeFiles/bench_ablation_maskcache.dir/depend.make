# Empty dependencies file for bench_ablation_maskcache.
# This may be replaced when dependencies are built.
