file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_mlp.dir/bench_fig14_mlp.cc.o"
  "CMakeFiles/bench_fig14_mlp.dir/bench_fig14_mlp.cc.o.d"
  "bench_fig14_mlp"
  "bench_fig14_mlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_mlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
