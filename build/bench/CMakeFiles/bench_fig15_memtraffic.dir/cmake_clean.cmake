file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_memtraffic.dir/bench_fig15_memtraffic.cc.o"
  "CMakeFiles/bench_fig15_memtraffic.dir/bench_fig15_memtraffic.cc.o.d"
  "bench_fig15_memtraffic"
  "bench_fig15_memtraffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_memtraffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
