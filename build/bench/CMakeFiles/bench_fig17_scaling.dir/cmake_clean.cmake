file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_scaling.dir/bench_fig17_scaling.cc.o"
  "CMakeFiles/bench_fig17_scaling.dir/bench_fig17_scaling.cc.o.d"
  "bench_fig17_scaling"
  "bench_fig17_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
