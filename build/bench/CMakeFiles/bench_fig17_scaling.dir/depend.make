# Empty dependencies file for bench_fig17_scaling.
# This may be replaced when dependencies are built.
