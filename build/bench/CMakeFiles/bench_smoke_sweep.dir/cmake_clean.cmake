file(REMOVE_RECURSE
  "CMakeFiles/bench_smoke_sweep.dir/bench_smoke_sweep.cc.o"
  "CMakeFiles/bench_smoke_sweep.dir/bench_smoke_sweep.cc.o.d"
  "bench_smoke_sweep"
  "bench_smoke_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_smoke_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
