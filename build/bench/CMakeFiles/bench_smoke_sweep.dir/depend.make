# Empty dependencies file for bench_smoke_sweep.
# This may be replaced when dependencies are built.
