# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(smoke_sweep "/root/repo/build/bench/bench_smoke_sweep" "--threads" "0")
set_tests_properties(smoke_sweep PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;23;add_test;/root/repo/bench/CMakeLists.txt;0;")
