file(REMOVE_RECURSE
  "CMakeFiles/branchy_mlp.dir/branchy_mlp.cpp.o"
  "CMakeFiles/branchy_mlp.dir/branchy_mlp.cpp.o.d"
  "branchy_mlp"
  "branchy_mlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/branchy_mlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
