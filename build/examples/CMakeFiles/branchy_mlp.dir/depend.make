# Empty dependencies file for branchy_mlp.
# This may be replaced when dependencies are built.
