
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bp/predictor.cc" "src/bp/CMakeFiles/cdfsim_bp.dir/predictor.cc.o" "gcc" "src/bp/CMakeFiles/cdfsim_bp.dir/predictor.cc.o.d"
  "/root/repo/src/bp/tage.cc" "src/bp/CMakeFiles/cdfsim_bp.dir/tage.cc.o" "gcc" "src/bp/CMakeFiles/cdfsim_bp.dir/tage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cdfsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/cdfsim_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
