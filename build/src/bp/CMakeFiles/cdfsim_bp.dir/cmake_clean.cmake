file(REMOVE_RECURSE
  "CMakeFiles/cdfsim_bp.dir/predictor.cc.o"
  "CMakeFiles/cdfsim_bp.dir/predictor.cc.o.d"
  "CMakeFiles/cdfsim_bp.dir/tage.cc.o"
  "CMakeFiles/cdfsim_bp.dir/tage.cc.o.d"
  "libcdfsim_bp.a"
  "libcdfsim_bp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdfsim_bp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
