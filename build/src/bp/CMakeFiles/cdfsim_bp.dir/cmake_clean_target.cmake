file(REMOVE_RECURSE
  "libcdfsim_bp.a"
)
