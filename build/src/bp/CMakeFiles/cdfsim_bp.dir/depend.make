# Empty dependencies file for cdfsim_bp.
# This may be replaced when dependencies are built.
