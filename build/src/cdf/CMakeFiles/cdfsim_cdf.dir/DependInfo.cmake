
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cdf/critical_table.cc" "src/cdf/CMakeFiles/cdfsim_cdf.dir/critical_table.cc.o" "gcc" "src/cdf/CMakeFiles/cdfsim_cdf.dir/critical_table.cc.o.d"
  "/root/repo/src/cdf/fill_buffer.cc" "src/cdf/CMakeFiles/cdfsim_cdf.dir/fill_buffer.cc.o" "gcc" "src/cdf/CMakeFiles/cdfsim_cdf.dir/fill_buffer.cc.o.d"
  "/root/repo/src/cdf/mask_cache.cc" "src/cdf/CMakeFiles/cdfsim_cdf.dir/mask_cache.cc.o" "gcc" "src/cdf/CMakeFiles/cdfsim_cdf.dir/mask_cache.cc.o.d"
  "/root/repo/src/cdf/partition.cc" "src/cdf/CMakeFiles/cdfsim_cdf.dir/partition.cc.o" "gcc" "src/cdf/CMakeFiles/cdfsim_cdf.dir/partition.cc.o.d"
  "/root/repo/src/cdf/uop_cache.cc" "src/cdf/CMakeFiles/cdfsim_cdf.dir/uop_cache.cc.o" "gcc" "src/cdf/CMakeFiles/cdfsim_cdf.dir/uop_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cdfsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/cdfsim_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
