file(REMOVE_RECURSE
  "CMakeFiles/cdfsim_cdf.dir/critical_table.cc.o"
  "CMakeFiles/cdfsim_cdf.dir/critical_table.cc.o.d"
  "CMakeFiles/cdfsim_cdf.dir/fill_buffer.cc.o"
  "CMakeFiles/cdfsim_cdf.dir/fill_buffer.cc.o.d"
  "CMakeFiles/cdfsim_cdf.dir/mask_cache.cc.o"
  "CMakeFiles/cdfsim_cdf.dir/mask_cache.cc.o.d"
  "CMakeFiles/cdfsim_cdf.dir/partition.cc.o"
  "CMakeFiles/cdfsim_cdf.dir/partition.cc.o.d"
  "CMakeFiles/cdfsim_cdf.dir/uop_cache.cc.o"
  "CMakeFiles/cdfsim_cdf.dir/uop_cache.cc.o.d"
  "libcdfsim_cdf.a"
  "libcdfsim_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdfsim_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
