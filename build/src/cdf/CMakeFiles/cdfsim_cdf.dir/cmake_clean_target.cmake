file(REMOVE_RECURSE
  "libcdfsim_cdf.a"
)
