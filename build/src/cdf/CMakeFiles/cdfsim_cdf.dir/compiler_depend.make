# Empty compiler generated dependencies file for cdfsim_cdf.
# This may be replaced when dependencies are built.
