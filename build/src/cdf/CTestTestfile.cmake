# CMake generated Testfile for 
# Source directory: /root/repo/src/cdf
# Build directory: /root/repo/build/src/cdf
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
