file(REMOVE_RECURSE
  "CMakeFiles/cdfsim_common.dir/stats.cc.o"
  "CMakeFiles/cdfsim_common.dir/stats.cc.o.d"
  "libcdfsim_common.a"
  "libcdfsim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdfsim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
