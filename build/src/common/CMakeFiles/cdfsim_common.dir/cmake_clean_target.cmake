file(REMOVE_RECURSE
  "libcdfsim_common.a"
)
