# Empty compiler generated dependencies file for cdfsim_common.
# This may be replaced when dependencies are built.
