file(REMOVE_RECURSE
  "CMakeFiles/cdfsim_energy.dir/energy_model.cc.o"
  "CMakeFiles/cdfsim_energy.dir/energy_model.cc.o.d"
  "libcdfsim_energy.a"
  "libcdfsim_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdfsim_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
