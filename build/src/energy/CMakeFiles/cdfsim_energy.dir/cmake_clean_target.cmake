file(REMOVE_RECURSE
  "libcdfsim_energy.a"
)
