# Empty compiler generated dependencies file for cdfsim_energy.
# This may be replaced when dependencies are built.
