file(REMOVE_RECURSE
  "CMakeFiles/cdfsim_isa.dir/interpreter.cc.o"
  "CMakeFiles/cdfsim_isa.dir/interpreter.cc.o.d"
  "CMakeFiles/cdfsim_isa.dir/oracle.cc.o"
  "CMakeFiles/cdfsim_isa.dir/oracle.cc.o.d"
  "CMakeFiles/cdfsim_isa.dir/program.cc.o"
  "CMakeFiles/cdfsim_isa.dir/program.cc.o.d"
  "CMakeFiles/cdfsim_isa.dir/uop.cc.o"
  "CMakeFiles/cdfsim_isa.dir/uop.cc.o.d"
  "libcdfsim_isa.a"
  "libcdfsim_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdfsim_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
