file(REMOVE_RECURSE
  "libcdfsim_isa.a"
)
