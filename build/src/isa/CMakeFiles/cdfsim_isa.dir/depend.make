# Empty dependencies file for cdfsim_isa.
# This may be replaced when dependencies are built.
