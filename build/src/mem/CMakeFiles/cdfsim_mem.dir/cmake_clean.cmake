file(REMOVE_RECURSE
  "CMakeFiles/cdfsim_mem.dir/cache.cc.o"
  "CMakeFiles/cdfsim_mem.dir/cache.cc.o.d"
  "CMakeFiles/cdfsim_mem.dir/dram.cc.o"
  "CMakeFiles/cdfsim_mem.dir/dram.cc.o.d"
  "CMakeFiles/cdfsim_mem.dir/hierarchy.cc.o"
  "CMakeFiles/cdfsim_mem.dir/hierarchy.cc.o.d"
  "CMakeFiles/cdfsim_mem.dir/prefetcher.cc.o"
  "CMakeFiles/cdfsim_mem.dir/prefetcher.cc.o.d"
  "libcdfsim_mem.a"
  "libcdfsim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdfsim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
