file(REMOVE_RECURSE
  "libcdfsim_mem.a"
)
