# Empty compiler generated dependencies file for cdfsim_mem.
# This may be replaced when dependencies are built.
