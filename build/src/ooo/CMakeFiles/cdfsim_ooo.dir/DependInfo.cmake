
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ooo/core.cc" "src/ooo/CMakeFiles/cdfsim_ooo.dir/core.cc.o" "gcc" "src/ooo/CMakeFiles/cdfsim_ooo.dir/core.cc.o.d"
  "/root/repo/src/ooo/core_backend.cc" "src/ooo/CMakeFiles/cdfsim_ooo.dir/core_backend.cc.o" "gcc" "src/ooo/CMakeFiles/cdfsim_ooo.dir/core_backend.cc.o.d"
  "/root/repo/src/ooo/core_cdf.cc" "src/ooo/CMakeFiles/cdfsim_ooo.dir/core_cdf.cc.o" "gcc" "src/ooo/CMakeFiles/cdfsim_ooo.dir/core_cdf.cc.o.d"
  "/root/repo/src/ooo/core_pre.cc" "src/ooo/CMakeFiles/cdfsim_ooo.dir/core_pre.cc.o" "gcc" "src/ooo/CMakeFiles/cdfsim_ooo.dir/core_pre.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cdfsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/cdfsim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cdfsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/bp/CMakeFiles/cdfsim_bp.dir/DependInfo.cmake"
  "/root/repo/build/src/cdf/CMakeFiles/cdfsim_cdf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
