file(REMOVE_RECURSE
  "CMakeFiles/cdfsim_ooo.dir/core.cc.o"
  "CMakeFiles/cdfsim_ooo.dir/core.cc.o.d"
  "CMakeFiles/cdfsim_ooo.dir/core_backend.cc.o"
  "CMakeFiles/cdfsim_ooo.dir/core_backend.cc.o.d"
  "CMakeFiles/cdfsim_ooo.dir/core_cdf.cc.o"
  "CMakeFiles/cdfsim_ooo.dir/core_cdf.cc.o.d"
  "CMakeFiles/cdfsim_ooo.dir/core_pre.cc.o"
  "CMakeFiles/cdfsim_ooo.dir/core_pre.cc.o.d"
  "libcdfsim_ooo.a"
  "libcdfsim_ooo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdfsim_ooo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
