file(REMOVE_RECURSE
  "libcdfsim_ooo.a"
)
