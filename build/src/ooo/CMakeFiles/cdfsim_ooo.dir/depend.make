# Empty dependencies file for cdfsim_ooo.
# This may be replaced when dependencies are built.
