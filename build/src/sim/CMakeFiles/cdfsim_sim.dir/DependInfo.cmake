
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/simulator.cc" "src/sim/CMakeFiles/cdfsim_sim.dir/simulator.cc.o" "gcc" "src/sim/CMakeFiles/cdfsim_sim.dir/simulator.cc.o.d"
  "/root/repo/src/sim/sweep.cc" "src/sim/CMakeFiles/cdfsim_sim.dir/sweep.cc.o" "gcc" "src/sim/CMakeFiles/cdfsim_sim.dir/sweep.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ooo/CMakeFiles/cdfsim_ooo.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/cdfsim_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/cdfsim_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cdfsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/bp/CMakeFiles/cdfsim_bp.dir/DependInfo.cmake"
  "/root/repo/build/src/cdf/CMakeFiles/cdfsim_cdf.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/cdfsim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cdfsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
