file(REMOVE_RECURSE
  "CMakeFiles/cdfsim_sim.dir/simulator.cc.o"
  "CMakeFiles/cdfsim_sim.dir/simulator.cc.o.d"
  "CMakeFiles/cdfsim_sim.dir/sweep.cc.o"
  "CMakeFiles/cdfsim_sim.dir/sweep.cc.o.d"
  "libcdfsim_sim.a"
  "libcdfsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdfsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
