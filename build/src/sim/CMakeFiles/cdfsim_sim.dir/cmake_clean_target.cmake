file(REMOVE_RECURSE
  "libcdfsim_sim.a"
)
