# Empty dependencies file for cdfsim_sim.
# This may be replaced when dependencies are built.
