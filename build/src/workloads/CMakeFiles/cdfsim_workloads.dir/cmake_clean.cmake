file(REMOVE_RECURSE
  "CMakeFiles/cdfsim_workloads.dir/workloads.cc.o"
  "CMakeFiles/cdfsim_workloads.dir/workloads.cc.o.d"
  "libcdfsim_workloads.a"
  "libcdfsim_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdfsim_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
