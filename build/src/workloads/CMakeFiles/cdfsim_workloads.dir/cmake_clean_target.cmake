file(REMOVE_RECURSE
  "libcdfsim_workloads.a"
)
