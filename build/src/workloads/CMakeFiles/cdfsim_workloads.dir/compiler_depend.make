# Empty compiler generated dependencies file for cdfsim_workloads.
# This may be replaced when dependencies are built.
