file(REMOVE_RECURSE
  "CMakeFiles/test_cdf_structs.dir/test_cdf_structs.cc.o"
  "CMakeFiles/test_cdf_structs.dir/test_cdf_structs.cc.o.d"
  "test_cdf_structs"
  "test_cdf_structs.pdb"
  "test_cdf_structs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cdf_structs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
