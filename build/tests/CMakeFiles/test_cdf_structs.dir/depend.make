# Empty dependencies file for test_cdf_structs.
# This may be replaced when dependencies are built.
