file(REMOVE_RECURSE
  "CMakeFiles/test_core_cdf.dir/test_core_cdf.cc.o"
  "CMakeFiles/test_core_cdf.dir/test_core_cdf.cc.o.d"
  "test_core_cdf"
  "test_core_cdf.pdb"
  "test_core_cdf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
