file(REMOVE_RECURSE
  "CMakeFiles/test_core_equivalence.dir/test_core_equivalence.cc.o"
  "CMakeFiles/test_core_equivalence.dir/test_core_equivalence.cc.o.d"
  "test_core_equivalence"
  "test_core_equivalence.pdb"
  "test_core_equivalence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
