file(REMOVE_RECURSE
  "CMakeFiles/test_ooo_structs.dir/test_ooo_structs.cc.o"
  "CMakeFiles/test_ooo_structs.dir/test_ooo_structs.cc.o.d"
  "test_ooo_structs"
  "test_ooo_structs.pdb"
  "test_ooo_structs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ooo_structs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
