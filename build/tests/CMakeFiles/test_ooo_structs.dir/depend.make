# Empty dependencies file for test_ooo_structs.
# This may be replaced when dependencies are built.
