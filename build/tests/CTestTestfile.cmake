# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_core_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_core_equivalence[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_bp[1]_include.cmake")
include("/root/repo/build/tests/test_cdf_structs[1]_include.cmake")
include("/root/repo/build/tests/test_core_cdf[1]_include.cmake")
include("/root/repo/build/tests/test_energy[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_ooo_structs[1]_include.cmake")
