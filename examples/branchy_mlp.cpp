/**
 * @file
 * Domain example: the paper's Section 2.2 effect — fetching critical
 * loads past hard-to-predict branches. Runs the astar-like workload
 * with and without critical-branch marking and shows the mechanism
 * counters (mispredicts, CDF episodes, critical-stream size).
 *
 *   $ ./examples/branchy_mlp
 */

#include <cstdio>

#include "sim/simulator.hh"

using namespace cdfsim;

int
main()
{
    sim::RunSpec spec;
    spec.warmupInstrs = 250'000;
    spec.measureInstrs = 100'000;

    std::printf("branchy_mlp: astar-like random misses behind hard "
                "branches\n\n");

    auto base = sim::runWorkload("astar", ooo::CoreMode::Baseline,
                                 spec);

    ooo::CoreConfig withBr;
    auto cdfBr =
        sim::runWorkload("astar", ooo::CoreMode::Cdf, spec, withBr);

    ooo::CoreConfig noBr;
    noBr.cdf.markCriticalBranches = false;
    auto cdfNoBr =
        sim::runWorkload("astar", ooo::CoreMode::Cdf, spec, noBr);

    auto row = [&](const char *name, const sim::RunResult &r) {
        std::printf("%-22s %8.3f %8.2f %10.1f %10lu\n", name,
                    r.core.ipc, r.core.mlp, r.core.branchMpki,
                    static_cast<unsigned long>(
                        r.stats.get("core.renamed_critical_uops")));
    };

    std::printf("%-22s %8s %8s %10s %10s\n", "mode", "ipc", "mlp",
                "brMPKI", "crit_uops");
    row("baseline", base);
    row("cdf (branches crit)", cdfBr);
    row("cdf (loads only)", cdfNoBr);

    std::printf("\nMarking hard-to-predict branches critical lets "
                "the critical stream\nresolve them early and keep "
                "fetching correct-path loads (Section 2.2);\nthe "
                "paper's geomean drops from 6.1%% to 3.8%% without "
                "it.\n");
    std::printf("speedup with branches: %+.1f%%, without: %+.1f%%\n",
                (cdfBr.core.ipc / base.core.ipc - 1) * 100,
                (cdfNoBr.core.ipc / base.core.ipc - 1) * 100);
    return 0;
}
