/**
 * @file
 * Domain example: visualize Section 3.5's dynamic window
 * partitioning. Runs a CDF core cycle-by-cycle and periodically
 * prints the ROB's critical-section capacity and occupancies as the
 * partition controller reacts to full-window stalls in each section.
 *
 *   $ ./examples/partition_viz
 */

#include <cstdio>
#include <string>

#include "ooo/core.hh"
#include "workloads/workloads.hh"

using namespace cdfsim;

int
main()
{
    auto w = workloads::makeWorkload("soplex");
    isa::MemoryImage mem = w.makeMemory();
    StatRegistry stats;
    ooo::CoreConfig cfg;
    cfg.mode = ooo::CoreMode::Cdf;
    ooo::Core core(cfg, w.program, mem, stats);

    // Warm until CDF engages.
    core.run(250'000);

    std::printf("partition_viz: ROB critical-section capacity over "
                "time (ROB=%u)\n\n",
                cfg.robSize);
    std::printf("%10s %8s %8s %10s %30s\n", "cycle", "critCap",
                "occ", "cdfMode", "critical share of ROB");

    for (int sample = 0; sample < 30; ++sample) {
        for (int i = 0; i < 2000; ++i)
            core.tick();
        const unsigned cap = core.robCriticalCap();
        const double frac =
            static_cast<double>(cap) / cfg.robSize;
        std::string bar(static_cast<std::size_t>(frac * 30.0), '#');
        bar.resize(30, '.');
        std::printf("%10lu %8u %8zu %10s [%s]\n",
                    static_cast<unsigned long>(core.cycle()), cap,
                    core.robOccupancy(),
                    core.inCdfMode() ? "CDF" : "regular",
                    bar.c_str());
    }

    std::printf("\ngrows=%lu shrinks=%lu (stall-driven resizing, "
                "Section 3.5)\n",
                static_cast<unsigned long>(
                    stats.get("rob.partition_grows")),
                static_cast<unsigned long>(
                    stats.get("rob.partition_shrinks")));
    return 0;
}
