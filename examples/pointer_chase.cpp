/**
 * @file
 * Domain example: serial pointer chasing (the paper's mcf-like
 * behaviour). There is no MLP to extract from a single dependence
 * chain, so CDF's benefit here comes from initiating each chain
 * load earlier (skipping the non-critical work between hops) and
 * from resolving hard payload branches early — while runahead
 * chains taint on the outstanding miss and prefetch wrong lines.
 *
 *   $ ./examples/pointer_chase
 */

#include <cstdio>

#include "sim/simulator.hh"

using namespace cdfsim;

int
main()
{
    sim::RunSpec spec;
    spec.warmupInstrs = 150'000;
    spec.measureInstrs = 80'000;

    std::printf("pointer_chase: mcf-like serial dependence chains\n\n");
    std::printf("%-10s %8s %8s %10s %12s %12s\n", "mode", "ipc",
                "mlp", "llcMPKI", "dram_bytes", "runahead_rd");

    for (auto mode : {ooo::CoreMode::Baseline, ooo::CoreMode::Cdf,
                      ooo::CoreMode::Pre}) {
        auto r = sim::runWorkload("mcf", mode, spec);
        const char *name = mode == ooo::CoreMode::Baseline ? "baseline"
                           : mode == ooo::CoreMode::Cdf    ? "cdf"
                                                           : "pre";
        std::printf("%-10s %8.3f %8.2f %10.1f %12lu %12lu\n", name,
                    r.core.ipc, r.core.mlp, r.core.llcMpki,
                    static_cast<unsigned long>(r.core.dramBytes),
                    static_cast<unsigned long>(
                        r.stats.get("dram.runahead_reads")));
    }

    std::printf("\nNote the PRE row's runahead reads: chains that "
                "depend on the\noutstanding miss compute wrong "
                "addresses — traffic without benefit.\n");
    return 0;
}
