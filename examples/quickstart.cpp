/**
 * @file
 * Quickstart: assemble a small kernel with the public ProgramBuilder
 * API, run it on a baseline OoO core and on a CDF core, and compare.
 *
 *   $ ./examples/quickstart
 *
 * The kernel is a miniature of the paper's Fig. 2 astar loop: a
 * prefetch-friendly index load feeding a random-index load that
 * misses the LLC.
 */

#include <cstdio>

#include "common/random.hh"
#include "ooo/core.hh"
#include "sim/simulator.hh"

using namespace cdfsim;

namespace
{

workloads::Workload
buildKernel()
{
    // Registers: r0 countdown, r1 stream base, r2 big base,
    // r3 masks, r8.. temps.
    isa::ProgramBuilder b("quickstart");
    auto loop = b.makeLabel();
    b.movi(0, 1'000'000'000);
    b.movi(1, 0x10000000);            // small, LLC-resident array
    b.movi(2, 0x40000000);            // 32MB random-access array
    b.movi(3, (1 << 13) - 1);         // stream mask (words)
    b.movi(4, (1 << 22) - 1);         // big mask (words)
    b.movi(5, 3);                     // word->byte shift
    b.movi(7, 0);                     // induction
    b.bind(loop);
    b.addi(7, 7, 1);
    b.and_(8, 7, 3);                  // stream index
    b.shl(8, 8, 5);
    b.add(8, 8, 1);
    b.load(9, 8, 0);                  // index load (hits)
    b.add(9, 9, 7);
    b.and_(9, 9, 4);                  // random index
    b.shl(9, 9, 5);
    b.add(9, 9, 2);
    b.load(10, 9, 0);                 // the critical load (misses)
    b.add(11, 11, 10);
    for (int i = 0; i < 14; ++i)      // non-critical filler
        b.addi(static_cast<RegId>(16 + (i % 6)),
               static_cast<RegId>(16 + (i % 6)), 1);
    b.addi(0, 0, -1);
    b.bnez(0, loop);
    b.halt();

    workloads::Workload w;
    w.name = "quickstart";
    w.program = b.build();
    w.init = [](isa::MemoryImage &mem) {
        Random rng(42);
        for (std::uint64_t i = 0; i < (1 << 13); ++i)
            mem.write(0x10000000 + i * 8, rng.next());
    };
    return w;
}

} // namespace

int
main()
{
    sim::RunSpec spec;
    spec.warmupInstrs = 200'000;
    spec.measureInstrs = 100'000;

    std::printf("quickstart: running the Fig. 2-style kernel...\n\n");

    sim::Simulator base(ooo::CoreConfig{}, buildKernel());
    auto rb = base.run(spec);

    ooo::CoreConfig cdfCfg;
    cdfCfg.mode = ooo::CoreMode::Cdf;
    sim::Simulator cdf(cdfCfg, buildKernel());
    auto rc = cdf.run(spec);

    std::printf("            %12s %12s\n", "baseline", "CDF");
    std::printf("IPC         %12.3f %12.3f\n", rb.core.ipc,
                rc.core.ipc);
    std::printf("MLP         %12.2f %12.2f\n", rb.core.mlp,
                rc.core.mlp);
    std::printf("LLC MPKI    %12.1f %12.1f\n", rb.core.llcMpki,
                rc.core.llcMpki);
    std::printf("stall frac  %12.2f %12.2f\n",
                rb.core.fullWindowStallFraction,
                rc.core.fullWindowStallFraction);
    std::printf("\nspeedup: %+.1f%%  (CDF packs more independent "
                "critical loads into the window)\n",
                (rc.core.ipc / rb.core.ipc - 1.0) * 100.0);
    return 0;
}
