/**
 * @file
 * Branch target buffer and return address stack.
 */

#ifndef CDFSIM_BP_BTB_HH
#define CDFSIM_BP_BTB_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace cdfsim::bp
{

/** Direct-mapped tagged branch target buffer. */
class Btb
{
  public:
    Btb(std::size_t entries, StatRegistry &stats)
        : entries_(entries),
          hits_(stats.counter("btb.hits")),
          misses_(stats.counter("btb.misses"))
    {
        SIM_ASSERT(entries > 0, "BTB needs entries");
    }

    /** Look up the taken target for the branch at @p pc. */
    std::optional<Addr>
    lookup(Addr pc)
    {
        const Entry &e = entries_[pc % entries_.size()];
        if (e.valid && e.tag == pc) {
            ++hits_;
            return e.target;
        }
        ++misses_;
        return std::nullopt;
    }

    /** Install/refresh the mapping pc -> target. */
    void
    update(Addr pc, Addr target)
    {
        Entry &e = entries_[pc % entries_.size()];
        e.valid = true;
        e.tag = pc;
        e.target = target;
    }

  private:
    struct Entry
    {
        bool valid = false;
        Addr tag = 0;
        Addr target = 0;
    };

    std::vector<Entry> entries_;
    std::uint64_t &hits_;
    std::uint64_t &misses_;
};

/**
 * Return address stack. Fetch pushes on Call and pops on Ret; the
 * whole stack is checkpointed per in-flight branch (it is small) so
 * recovery is exact.
 */
class Ras
{
  public:
    explicit Ras(std::size_t depth) : stack_(depth), top_(0), size_(0) {}

    void
    push(Addr returnPc)
    {
        stack_[top_] = returnPc;
        top_ = (top_ + 1) % stack_.size();
        if (size_ < stack_.size())
            ++size_;
    }

    /** Pop the predicted return target; empty stacks predict 0. */
    Addr
    pop()
    {
        if (size_ == 0)
            return 0;
        top_ = (top_ + stack_.size() - 1) % stack_.size();
        --size_;
        return stack_[top_];
    }

    /** Copyable snapshot for checkpointing. */
    struct Snapshot
    {
        std::vector<Addr> stack;
        std::size_t top;
        std::size_t size;
    };

    Snapshot snapshot() const { return {stack_, top_, size_}; }

    void
    restore(const Snapshot &s)
    {
        stack_ = s.stack;
        top_ = s.top;
        size_ = s.size;
    }

  private:
    std::vector<Addr> stack_;
    std::size_t top_;
    std::size_t size_;
};

} // namespace cdfsim::bp

#endif // CDFSIM_BP_BTB_HH
