/**
 * @file
 * Branch target buffer and return address stack.
 */

#ifndef CDFSIM_BP_BTB_HH
#define CDFSIM_BP_BTB_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/logging.hh"
#include "common/serialize.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace cdfsim::bp
{

/** Direct-mapped tagged branch target buffer. */
class Btb
{
  public:
    Btb(std::size_t entries, StatRegistry &stats)
        : entries_(entries),
          hits_(stats.counter("btb.hits")),
          misses_(stats.counter("btb.misses"))
    {
        SIM_ASSERT(entries > 0, "BTB needs entries");
    }

    /** Look up the taken target for the branch at @p pc. */
    std::optional<Addr>
    lookup(Addr pc)
    {
        const Entry &e = entries_[pc % entries_.size()];
        if (e.valid && e.tag == pc) {
            ++hits_;
            return e.target;
        }
        ++misses_;
        return std::nullopt;
    }

    /** Install/refresh the mapping pc -> target. */
    void
    update(Addr pc, Addr target)
    {
        Entry &e = entries_[pc % entries_.size()];
        e.valid = true;
        e.tag = pc;
        e.target = target;
    }

    /** Snapshot all entries (capacity is config-fixed). */
    void
    save(SnapWriter &w) const
    {
        for (const Entry &e : entries_) {
            w.b(e.valid);
            w.u64(e.tag);
            w.u64(e.target);
        }
    }

    void
    restore(SnapReader &r)
    {
        for (Entry &e : entries_) {
            e.valid = r.b();
            e.tag = r.u64();
            e.target = r.u64();
        }
    }

  private:
    struct Entry
    {
        bool valid = false;
        Addr tag = 0;
        Addr target = 0;
    };

    SIM_SNAPSHOT_FIELDS(3);

    std::vector<Entry> entries_;
    std::uint64_t &hits_;
    std::uint64_t &misses_;
};

/**
 * Return address stack. Fetch pushes on Call and pops on Ret; the
 * whole stack is checkpointed per in-flight branch (it is small) so
 * recovery is exact.
 */
class Ras
{
  public:
    explicit Ras(std::size_t depth) : stack_(depth), top_(0), size_(0) {}

    void
    push(Addr returnPc)
    {
        stack_[top_] = returnPc;
        top_ = (top_ + 1) % stack_.size();
        if (size_ < stack_.size())
            ++size_;
    }

    /** Pop the predicted return target; empty stacks predict 0. */
    Addr
    pop()
    {
        if (size_ == 0)
            return 0;
        top_ = (top_ + stack_.size() - 1) % stack_.size();
        --size_;
        return stack_[top_];
    }

    /** Copyable snapshot for checkpointing. Default-constructed
     *  instances sit idle inside BpCheckpoint holders that still get
     *  serialized verbatim (e.g. a DynInst that took no checkpoint),
     *  so every field must default to a deterministic value — an
     *  uninitialized member here would leak host heap garbage into
     *  checkpoint payloads and break on-disk determinism. */
    struct Snapshot
    {
        std::vector<Addr> stack;
        std::size_t top = 0;
        std::size_t size = 0;
    };

    Snapshot snapshot() const { return {stack_, top_, size_}; }

    void
    restore(const Snapshot &s)
    {
        stack_ = s.stack;
        top_ = s.top;
        size_ = s.size;
    }

    /** Snapshot stream codec (depth is config-fixed). */
    void
    save(SnapWriter &w) const
    {
        for (Addr a : stack_)
            w.u64(a);
        w.u64(top_);
        w.u64(size_);
    }

    void
    restore(SnapReader &r)
    {
        for (Addr &a : stack_)
            a = r.u64();
        top_ = static_cast<std::size_t>(r.u64());
        size_ = static_cast<std::size_t>(r.u64());
    }

  private:
    SIM_SNAPSHOT_FIELDS(3);

    std::vector<Addr> stack_;
    std::size_t top_;
    std::size_t size_;
};

/** Snapshot codec for the copyable RAS checkpoint. */
inline void
save(SnapWriter &w, const Ras::Snapshot &s)
{
    w.u64(s.stack.size());
    for (Addr a : s.stack)
        w.u64(a);
    w.u64(s.top);
    w.u64(s.size);
}

inline void
restore(SnapReader &r, Ras::Snapshot &s)
{
    s.stack.resize(static_cast<std::size_t>(r.u64()));
    for (Addr &a : s.stack)
        a = r.u64();
    s.top = static_cast<std::size_t>(r.u64());
    s.size = static_cast<std::size_t>(r.u64());
}

} // namespace cdfsim::bp

#endif // CDFSIM_BP_BTB_HH
