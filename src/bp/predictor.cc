#include "bp/predictor.hh"

#include "common/logging.hh"

namespace cdfsim::bp
{

BranchPredictor::BranchPredictor(const PredictorConfig &config,
                                 StatRegistry &stats)
    : tage_(config.tage, stats),
      btb_(config.btbEntries, stats),
      ras_(config.rasDepth),
      condPredictions_(stats.counter("bp.cond_predictions")),
      rasPredictions_(stats.counter("bp.ras_predictions"))
{
}

BpCheckpoint
BranchPredictor::checkpoint() const
{
    return {tage_.checkpoint(), ras_.snapshot()};
}

BranchPrediction
BranchPredictor::predict(Addr pc, const isa::Uop &uop)
{
    SIM_ASSERT(uop.isBranch(), "predict() on a non-branch uop");
    BranchPrediction pred;

    switch (uop.op) {
      case isa::Opcode::Jmp:
      case isa::Opcode::Call:
        pred.taken = true;
        pred.target = static_cast<Addr>(uop.imm);
        pred.btbMiss = !btb_.lookup(pc).has_value();
        if (uop.op == isa::Opcode::Call)
            ras_.push(pc + 1);
        break;

      case isa::Opcode::Ret:
        pred.taken = true;
        pred.target = ras_.pop();
        pred.btbMiss = false;
        ++rasPredictions_;
        break;

      default: { // conditional
        ++condPredictions_;
        pred.tageInfo = tage_.predict(pc);
        pred.taken = pred.tageInfo.taken;
        if (pred.taken) {
            auto target = btb_.lookup(pc);
            // Direct targets are available from the uop itself one
            // stage later; a BTB miss costs a fetch bubble but the
            // target is still correct.
            pred.target = target.value_or(static_cast<Addr>(uop.imm));
            pred.btbMiss = !target.has_value();
        } else {
            pred.target = pc + 1;
        }
        break;
      }
    }
    return pred;
}

void
BranchPredictor::update(Addr pc, const isa::Uop &uop, bool taken,
                        Addr target, const TagePredictionInfo &info)
{
    if (uop.isCondBranch())
        tage_.update(pc, taken, info);
    if (taken)
        btb_.update(pc, target);
}

void
BranchPredictor::recover(const BpCheckpoint &ckpt, bool actualTaken,
                          Addr pc)
{
    tage_.recover(ckpt.tage, actualTaken, pc);
    ras_.restore(ckpt.ras);
}

void
BranchPredictor::restore(const BpCheckpoint &ckpt)
{
    tage_.restore(ckpt.tage);
    ras_.restore(ckpt.ras);
}

} // namespace cdfsim::bp
