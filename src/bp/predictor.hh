/**
 * @file
 * Frontend branch prediction facade: TAGE-SC-L direction prediction,
 * BTB target prediction and the return address stack, with exact
 * checkpoint/restore for mispredict recovery.
 *
 * In CDF mode the *critical* fetch logic owns prediction: every
 * branch is predicted exactly once while fetching critical uops and
 * the outcome is pushed into the Delayed Branch Queue; the regular
 * fetch stream replays those stored predictions (Section 3.3). This
 * facade is therefore deliberately stateless across calls except for
 * the predictor structures themselves.
 */

#ifndef CDFSIM_BP_PREDICTOR_HH
#define CDFSIM_BP_PREDICTOR_HH

#include "bp/btb.hh"
#include "bp/tage.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "isa/uop.hh"

namespace cdfsim::bp
{

/** Full prediction for one fetched branch uop. */
struct BranchPrediction
{
    bool taken = false;
    Addr target = 0;          //!< next PC to fetch
    bool btbMiss = false;     //!< target resolved late -> fetch bubble
    TagePredictionInfo tageInfo;
};

/** Snapshot for exact recovery. */
struct BpCheckpoint
{
    TageCheckpoint tage;
    Ras::Snapshot ras;
};

/** Snapshot codec for BpCheckpoint. */
inline void
save(SnapWriter &w, const BpCheckpoint &c)
{
    save(w, c.tage);
    save(w, c.ras);
}

inline void
restore(SnapReader &r, BpCheckpoint &c)
{
    restore(r, c.tage);
    restore(r, c.ras);
}

/** Predictor configuration. */
struct PredictorConfig
{
    TageConfig tage{};
    std::size_t btbEntries = 4096;
    std::size_t rasDepth = 32;
};

/** The frontend predictor bundle. */
class BranchPredictor
{
  public:
    BranchPredictor(const PredictorConfig &config, StatRegistry &stats);

    BranchPredictor(const BranchPredictor &) = delete;
    BranchPredictor &operator=(const BranchPredictor &) = delete;

    /** Snapshot speculative state; take this *before* predict(). */
    BpCheckpoint checkpoint() const;

    /**
     * Predict the branch uop at @p pc. Updates speculative history
     * and the RAS.
     */
    BranchPrediction predict(Addr pc, const isa::Uop &uop);

    /** Train with the resolved outcome. */
    void update(Addr pc, const isa::Uop &uop, bool taken, Addr target,
                const TagePredictionInfo &info);

    /** Restore speculative state after a mispredict. */
    void recover(const BpCheckpoint &ckpt, bool actualTaken,
                 Addr pc);

    /**
     * Restore state exactly as checkpointed (no outcome re-insert);
     * used when the checkpointed branch itself is squashed, e.g. a
     * memory-order or CDF dependence-violation flush, or runahead
     * exit.
     */
    void restore(const BpCheckpoint &ckpt);

    Tage &tage() { return tage_; }

    /** Snapshot every predictor structure. */
    void
    save(SnapWriter &w) const
    {
        tage_.save(w);
        btb_.save(w);
        ras_.save(w);
    }

    void
    restore(SnapReader &r)
    {
        tage_.restore(r);
        btb_.restore(r);
        ras_.restore(r);
    }

  private:
    SIM_SNAPSHOT_FIELDS(5);

    Tage tage_;
    Btb btb_;
    Ras ras_;
    std::uint64_t &condPredictions_;
    std::uint64_t &rasPredictions_;
};

} // namespace cdfsim::bp

#endif // CDFSIM_BP_PREDICTOR_HH
