#include "bp/tage.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/audit.hh"
#include "common/logging.hh"

namespace cdfsim::bp
{

Tage::Tage(const TageConfig &config, StatRegistry &stats)
    : config_(config),
      bimodal_(std::size_t{1} << config.bimodalBitsLog2, 2),
      loops_(config.loopEntries),
      scTable_(std::size_t{1} << config.scEntriesLog2, 0),
      lookups_(stats.counter("tage.lookups")),
      scFlips_(stats.counter("tage.sc_flips")),
      loopPredictions_(stats.counter("tage.loop_predictions"))
{
    SIM_ASSERT(config_.numTables >= 1 &&
                   config_.numTables <= kMaxTageTables,
               "bad TAGE table count");
    // Geometric history length series between min and max.
    histLengths_.resize(config_.numTables);
    const double ratio =
        config_.numTables == 1
            ? 1.0
            : std::pow(static_cast<double>(config_.maxHistory) /
                           config_.minHistory,
                       1.0 / (config_.numTables - 1));
    double len = config_.minHistory;
    for (unsigned t = 0; t < config_.numTables; ++t) {
        histLengths_[t] = std::max<unsigned>(
            1, static_cast<unsigned>(len + 0.5));
        len *= ratio;
    }
    tables_.assign(config_.numTables,
                   std::vector<TaggedEntry>(std::size_t{1}
                                            << config_.tableBitsLog2));

    SIM_ASSERT(config_.loopEntries <= kMaxLoopEntries,
               "loop table exceeds the fixed checkpoint copy");
    for (unsigned t = 0; t < config_.numTables; ++t) {
        folds_[3 * t].configure(histLengths_[t],
                                config_.tableBitsLog2);
        folds_[3 * t + 1].configure(histLengths_[t], config_.tagBits);
        folds_[3 * t + 2].configure(histLengths_[t],
                                    config_.tagBits > 2
                                        ? config_.tagBits - 1
                                        : config_.tagBits);
    }
    folds_[3 * config_.numTables].configure(64, 16);
}

void
Tage::FoldedHistory::configure(unsigned len, unsigned b)
{
    SIM_ASSERT(b > 0 && b <= 32, "bad fold width");
    length = std::min<unsigned>(len, 256);
    bits = b;
    nFull = (length / bits) * bits;
    rem = length - nFull;
    full = 0;
    partial = 0;
}

void
Tage::FoldedHistory::shiftIn(const History &old, bool newest)
{
    // foldHistory() folds the history newest-first, MSB-first within
    // each chunk: bit i lands at position (bits-1 - i%bits) of its
    // chunk, and the trailing rem bits at (rem-1 - (i-nFull)). When
    // a bit shifts in, every folded bit moves one position down its
    // chunk, the bit at a chunk's position 0 wraps to position
    // bits-1 of the NEXT chunk, and the oldest folded bit drops out.
    // On the XOR of full chunks that is a rotate plus two fix-ups.
    std::uint32_t incoming = newest ? 1u : 0u;
    if (nFull > 0) {
        const std::uint32_t outgoing = old[nFull - 1] ? 1u : 0u;
        full = (full >> 1) | ((full & 1u) << (bits - 1));
        full ^= (incoming ^ outgoing) << (bits - 1);
        incoming = outgoing;
    }
    if (rem > 0)
        partial = (partial >> 1) ^ (incoming << (rem - 1));
}

void
Tage::shiftFolds(bool taken)
{
    const unsigned n = numFolds();
    for (unsigned i = 0; i < n; ++i)
        folds_[i].shiftIn(history_, taken);
}

bool
Tage::checkFolds() const
{
    const unsigned n = numFolds();
    for (unsigned i = 0; i < n; ++i) {
        const FoldedHistory &f = folds_[i];
        if (f.value() != foldHistory(f.length, f.bits))
            return false;
    }
    return true;
}

std::uint64_t
Tage::foldHistory(unsigned length, unsigned bits) const
{
    SIM_ASSERT(bits > 0 && bits <= 32, "bad fold width");
    std::uint64_t folded = 0;
    std::uint64_t chunk = 0;
    unsigned inChunk = 0;
    const unsigned limit = std::min<unsigned>(length, 256);
    for (unsigned i = 0; i < limit; ++i) {
        chunk = (chunk << 1) | (history_[i] ? 1u : 0u);
        if (++inChunk == bits) {
            folded ^= chunk;
            chunk = 0;
            inChunk = 0;
        }
    }
    folded ^= chunk;
    return folded & ((std::uint64_t{1} << bits) - 1);
}

unsigned
Tage::tableIndex(Addr pc, unsigned table) const
{
    const unsigned bits = config_.tableBitsLog2;
    const std::uint64_t h = folds_[3 * table].value();
    const std::uint64_t mix =
        pc ^ (pc >> bits) ^ h ^ (pathHistory_ & 0xFFFF) ^
        (static_cast<std::uint64_t>(table) << 3);
    return static_cast<unsigned>(mix & ((1u << bits) - 1));
}

std::uint16_t
Tage::tableTag(Addr pc, unsigned table) const
{
    const unsigned bits = config_.tagBits;
    const std::uint64_t h = folds_[3 * table + 1].value();
    const std::uint64_t h2 = folds_[3 * table + 2].value();
    const std::uint64_t mix = pc ^ (pc >> 5) ^ h ^ (h2 << 1);
    return static_cast<std::uint16_t>(mix & ((1u << bits) - 1));
}

void
Tage::pushHistory(bool taken, Addr pc)
{
    shiftFolds(taken); // needs the pre-shift history
    history_ <<= 1;
    history_[0] = taken;
    pathHistory_ = (pathHistory_ << 1) ^
                   (static_cast<std::uint32_t>(pc) & 0x3F);
}

Tage::LoopEntry *
Tage::loopLookup(Addr pc)
{
    const std::uint16_t tag =
        static_cast<std::uint16_t>(pc ^ (pc >> 7));
    auto &e = loops_[pc % loops_.size()];
    if (e.valid && e.tag == tag)
        return &e;
    return nullptr;
}

TagePredictionInfo
Tage::predict(Addr pc)
{
    ++lookups_;
    // Folded-history drift check: the incrementally maintained folds
    // must match a from-scratch recompute of the same history. Run
    // at a sampled cadence — the naive recompute is O(history bits)
    // per fold and would dominate an every-prediction audit.
    SIM_AUDIT_ONLY(if (foldAudit_.due()) {
        SIM_AUDIT(checkFolds(),
                  "tage folded history diverged from naive recompute");
    })
    TagePredictionInfo info;

    // Bimodal fallback.
    auto &bim =
        bimodal_[pc & ((std::size_t{1} << config_.bimodalBitsLog2) - 1)];
    bool pred = bim >= 2;
    bool alt = pred;
    int provider = -1;
    bool providerWeak = true;

    // Stash the indices/tags this lookup uses: update time must
    // address exactly these entries.
    for (unsigned t = 0; t < config_.numTables; ++t) {
        info.indices[t] = tableIndex(pc, t);
        info.tags[t] = tableTag(pc, t);
    }

    // Longest-history tagged match wins; next match is the altpred.
    bool sawProvider = false;
    for (int t = static_cast<int>(config_.numTables) - 1; t >= 0; --t) {
        const TaggedEntry &e = tables_[t][info.indices[t]];
        if (e.tag == info.tags[t]) {
            if (!sawProvider) {
                sawProvider = true;
                provider = t;
                pred = e.ctr >= 0;
                providerWeak = e.ctr == 0 || e.ctr == -1;
                alt = pred;
            } else {
                alt = e.ctr >= 0;
                break;
            }
        }
    }

    info.tageTaken = pred;
    info.providerTable = provider;
    info.providerWeak = providerWeak;
    info.altTaken = alt;

    // Loop predictor overrides when highly confident. Prediction
    // uses the SPECULATIVE iteration count (advanced here, restored
    // on recovery): many instances of the branch can be in flight,
    // so the architectural count is stale at predict time.
    if (LoopEntry *loop = loopLookup(pc)) {
        if (loop->confidence >= config_.loopConfidenceMax &&
            loop->tripCount > 0) {
            info.loopUsed = true;
            info.loopIndex = static_cast<unsigned>(pc % loops_.size());
            // Taken while fewer than tripCount takens have occurred
            // since the last exit; the exit instance falls through.
            pred = loop->specIter < loop->tripCount;
            ++loopPredictions_;
        }
        if (pred)
            ++loop->specIter;
        else
            loop->specIter = 0;
    }

    // Statistical corrector: flip weak TAGE predictions when the SC
    // counter strongly disagrees.
    if (!info.loopUsed && providerWeak) {
        const std::uint32_t scIdx = static_cast<std::uint32_t>(
            (pc ^ folds_[3 * config_.numTables].value() ^
             (pred ? 0x55AA : 0)) &
            ((std::uint32_t{1} << config_.scEntriesLog2) - 1));
        info.scUsed = true;
        info.scIndex = scIdx;
        const int sc = scTable_[scIdx];
        if (static_cast<unsigned>(std::abs(sc)) >= config_.scThreshold &&
            (sc >= 0) != pred) {
            pred = sc >= 0;
            ++scFlips_;
        }
    }

    info.taken = pred;
    pushHistory(pred, pc);
    return info;
}

TageCheckpoint
Tage::checkpoint() const
{
    TageCheckpoint c;
    c.history = history_;
    c.pathHistory = pathHistory_;
    for (std::size_t i = 0; i < loops_.size(); ++i)
        c.loopSpecIters[i] = loops_[i].specIter;
    const unsigned n = numFolds();
    for (unsigned i = 0; i < n; ++i) {
        c.folds[2 * i] = folds_[i].full;
        c.folds[2 * i + 1] = folds_[i].partial;
    }
    return c;
}

void
Tage::recover(const TageCheckpoint &ckpt, bool actualTaken, Addr pc)
{
    restore(ckpt);
    // The recovering branch itself resolved: re-insert its real
    // outcome. (The checkpoint was taken before its prediction.)
    shiftFolds(actualTaken);
    history_ <<= 1;
    history_[0] = actualTaken;
    pathHistory_ <<= 1;
    if (LoopEntry *loop = loopLookup(pc)) {
        if (actualTaken)
            ++loop->specIter;
        else
            loop->specIter = 0;
    }
}

void
Tage::restore(const TageCheckpoint &ckpt)
{
    history_ = ckpt.history;
    pathHistory_ = ckpt.pathHistory;
    for (std::size_t i = 0; i < loops_.size(); ++i)
        loops_[i].specIter = ckpt.loopSpecIters[i];
    const unsigned n = numFolds();
    for (unsigned i = 0; i < n; ++i) {
        folds_[i].full = ckpt.folds[2 * i];
        folds_[i].partial = ckpt.folds[2 * i + 1];
    }
}

void
Tage::loopUpdate(Addr pc, bool taken, const TagePredictionInfo &info)
{
    const std::uint16_t tag =
        static_cast<std::uint16_t>(pc ^ (pc >> 7));
    auto &e = loops_[pc % loops_.size()];
    if (!e.valid || e.tag != tag) {
        if (!taken)
            return; // only track loops on their backward-taken edge
        e.valid = true;
        e.tag = tag;
        e.tripCount = 0;
        e.currentIter = 1;
        e.confidence = 0;
        return;
    }

    if (taken) {
        ++e.currentIter;
        if (e.tripCount != 0 && e.currentIter > e.tripCount) {
            // Ran longer than the learned trip count: unlearn.
            e.confidence = 0;
            e.tripCount = 0;
        }
        return;
    }

    // Loop exit: does the trip count repeat?
    if (e.tripCount == e.currentIter) {
        if (e.confidence < config_.loopConfidenceMax)
            ++e.confidence;
    } else {
        e.tripCount = e.currentIter;
        e.confidence = info.loopUsed ? 0 : 1;
        e.specIter = 0; // resync speculation on a trip-count change
    }
    e.currentIter = 0;
}

void
Tage::update(Addr pc, bool taken, const TagePredictionInfo &info)
{
    auto bump = [](std::int8_t &ctr, bool up, int lo, int hi) {
        if (up && ctr < hi)
            ++ctr;
        else if (!up && ctr > lo)
            --ctr;
    };

    const int ctrMax = (1 << (config_.counterBits - 1)) - 1;
    const int ctrMin = -(1 << (config_.counterBits - 1));

    // Provider update.
    if (info.providerTable >= 0) {
        TaggedEntry &e =
            tables_[info.providerTable]
                   [info.indices[info.providerTable]];
        bump(e.ctr, taken, ctrMin, ctrMax);
        if (info.tageTaken != info.altTaken) {
            if (info.tageTaken == taken) {
                if (e.useful < ((1u << config_.usefulBits) - 1))
                    ++e.useful;
            } else if (e.useful > 0) {
                --e.useful;
            }
        }
    } else {
        auto &bim = bimodal_[pc & ((std::size_t{1}
                                    << config_.bimodalBitsLog2) - 1)];
        if (taken && bim < 3)
            ++bim;
        else if (!taken && bim > 0)
            --bim;
    }

    // Allocate a longer-history entry on a TAGE mispredict.
    if (info.tageTaken != taken &&
        info.providerTable <
            static_cast<int>(config_.numTables) - 1) {
        for (unsigned t = info.providerTable + 1; t < config_.numTables;
             ++t) {
            TaggedEntry &e = tables_[t][info.indices[t]];
            if (e.useful == 0) {
                e.tag = info.tags[t];
                e.ctr = taken ? 0 : -1;
                break;
            }
            // Aging: periodically decay useful bits so allocation
            // cannot be starved forever.
            if ((++allocTick_ & 0xFF) == 0 && e.useful > 0)
                --e.useful;
        }
    }

    // Statistical corrector training.
    if (info.scUsed) {
        std::int8_t &sc = scTable_[info.scIndex];
        if (taken && sc < 31)
            ++sc;
        else if (!taken && sc > -32)
            --sc;
    }

    loopUpdate(pc, taken, info);
}

std::uint64_t
Tage::historyHash(unsigned bits) const
{
    return foldHistory(64, bits);
}

void
Tage::save(SnapWriter &w) const
{
    // config_ and histLengths_ are construction-time constants; the
    // warmup key guarantees the restoring predictor was built from
    // the same config, so only mutable state is serialized.
    for (const auto &table : tables_) {
        for (const TaggedEntry &e : table) {
            w.u16(e.tag);
            w.i8(e.ctr);
            w.u8(e.useful);
        }
    }
    for (std::uint8_t b : bimodal_)
        w.u8(b);
    for (const LoopEntry &e : loops_) {
        w.b(e.valid);
        w.u16(e.tag);
        w.u16(e.tripCount);
        w.u16(e.currentIter);
        w.u16(e.specIter);
        w.u8(e.confidence);
    }
    for (std::int8_t c : scTable_)
        w.i8(c);
    bp::save(w, history_);
    w.u32(pathHistory_);
    w.u64(allocTick_);
    for (const FoldedHistory &f : folds_) {
        w.u32(f.full);
        w.u32(f.partial);
        w.u32(f.length);
        w.u32(f.bits);
        w.u32(f.nFull);
        w.u32(f.rem);
    }
}

void
Tage::restore(SnapReader &r)
{
    for (auto &table : tables_) {
        for (TaggedEntry &e : table) {
            e.tag = r.u16();
            e.ctr = r.i8();
            e.useful = r.u8();
        }
    }
    for (std::uint8_t &b : bimodal_)
        b = r.u8();
    for (LoopEntry &e : loops_) {
        e.valid = r.b();
        e.tag = r.u16();
        e.tripCount = r.u16();
        e.currentIter = r.u16();
        e.specIter = r.u16();
        e.confidence = r.u8();
    }
    for (std::int8_t &c : scTable_)
        c = r.i8();
    bp::restore(r, history_);
    pathHistory_ = r.u32();
    allocTick_ = r.u64();
    for (FoldedHistory &f : folds_) {
        f.full = r.u32();
        f.partial = r.u32();
        f.length = r.u32();
        f.bits = r.u32();
        f.nFull = r.u32();
        f.rem = r.u32();
    }
}

} // namespace cdfsim::bp
