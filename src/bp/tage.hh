/**
 * @file
 * TAGE-SC-L-style conditional branch direction predictor.
 *
 * Structure follows Seznec's TAGE-SC-L (Table 1's predictor):
 *  - a bimodal base predictor,
 *  - N partially-tagged tables indexed with geometrically increasing
 *    global-history lengths,
 *  - a loop predictor for constant-trip-count loops,
 *  - a small statistical corrector that can flip low-confidence TAGE
 *    predictions when its own counters strongly disagree.
 *
 * History is maintained speculatively; the fetch stage checkpoints it
 * per in-flight branch and restores on mispredict recovery.
 */

#ifndef CDFSIM_BP_TAGE_HH
#define CDFSIM_BP_TAGE_HH

#include <array>
#include <bitset>
#include <cstdint>
#include <vector>

#include "common/audit.hh"
#include "common/serialize.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace cdfsim::bp
{

/** Global-history register wide enough for the longest TAGE table. */
using History = std::bitset<256>;

/** Tunables for the TAGE-SC-L predictor. */
struct TageConfig
{
    unsigned numTables = 6;
    unsigned tableBitsLog2 = 10;       //!< entries per tagged table
    unsigned tagBits = 11;
    unsigned counterBits = 3;
    unsigned usefulBits = 2;
    unsigned minHistory = 4;
    unsigned maxHistory = 160;
    unsigned bimodalBitsLog2 = 13;
    unsigned loopEntries = 64;
    unsigned loopConfidenceMax = 3;
    unsigned scEntriesLog2 = 12;
    unsigned scThreshold = 5;          //!< |sum| needed to flip TAGE
};

/** Upper bound on tagged tables (for the per-prediction stash). */
inline constexpr unsigned kMaxTageTables = 12;

/** Upper bound on loop-predictor entries (for the checkpoint copy). */
inline constexpr unsigned kMaxLoopEntries = 64;

/** Incremental folds kept per tagged table (index, tag, tag's second
 *  hash) plus one for the statistical corrector. */
inline constexpr unsigned kMaxTageFolds = 3 * kMaxTageTables + 1;

/**
 * Everything needed to undo a speculative history update. A
 * checkpoint is taken per in-flight branch on the fetch hot path, so
 * it is a fixed-size value type: no heap allocation on copy.
 */
struct TageCheckpoint
{
    History history;
    std::uint32_t pathHistory = 0;
    /** Speculative loop-iteration counters (small table copy). */
    std::array<std::uint16_t, kMaxLoopEntries> loopSpecIters{};
    /** Saved (full, partial) pair per incremental history fold. */
    std::array<std::uint32_t, 2 * kMaxTageFolds> folds{};
};

/** Snapshot codec for the wide history register (4 x 64 bits). */
inline void
save(SnapWriter &w, const History &h)
{
    const History mask{~std::uint64_t{0}};
    for (unsigned chunk = 0; chunk < 4; ++chunk)
        w.u64(((h >> (64 * chunk)) & mask).to_ullong());
}

inline void
restore(SnapReader &r, History &h)
{
    h.reset();
    for (unsigned chunk = 0; chunk < 4; ++chunk)
        h |= History{r.u64()} << (64 * chunk);
}

/** Snapshot codec for TageCheckpoint. */
inline void
save(SnapWriter &w, const TageCheckpoint &c)
{
    save(w, c.history);
    w.u32(c.pathHistory);
    for (std::uint16_t v : c.loopSpecIters)
        w.u16(v);
    for (std::uint32_t v : c.folds)
        w.u32(v);
}

inline void
restore(SnapReader &r, TageCheckpoint &c)
{
    restore(r, c.history);
    c.pathHistory = r.u32();
    for (std::uint16_t &v : c.loopSpecIters)
        v = r.u16();
    for (std::uint32_t &v : c.folds)
        v = r.u32();
}

/**
 * Per-prediction bookkeeping carried until update time. The table
 * indices and tags computed at prediction time are stashed here so
 * training and allocation address the entries the lookup actually
 * touched, regardless of how the speculative history has moved on.
 */
struct TagePredictionInfo
{
    bool taken = false;           //!< final (post-SC, post-loop) output
    bool tageTaken = false;       //!< raw TAGE output
    int providerTable = -1;       //!< -1 == bimodal provided
    bool providerWeak = false;
    bool altTaken = false;
    bool loopUsed = false;
    unsigned loopIndex = 0;
    bool scUsed = false;
    std::uint32_t scIndex = 0;
    std::array<unsigned, kMaxTageTables> indices{};
    std::array<std::uint16_t, kMaxTageTables> tags{};
};

/** Snapshot codec for TagePredictionInfo. */
inline void
save(SnapWriter &w, const TagePredictionInfo &p)
{
    w.b(p.taken);
    w.b(p.tageTaken);
    w.i64(p.providerTable);
    w.b(p.providerWeak);
    w.b(p.altTaken);
    w.b(p.loopUsed);
    w.u64(p.loopIndex);
    w.b(p.scUsed);
    w.u32(p.scIndex);
    for (unsigned v : p.indices)
        w.u32(v);
    for (std::uint16_t v : p.tags)
        w.u16(v);
}

inline void
restore(SnapReader &r, TagePredictionInfo &p)
{
    p.taken = r.b();
    p.tageTaken = r.b();
    p.providerTable = static_cast<int>(r.i64());
    p.providerWeak = r.b();
    p.altTaken = r.b();
    p.loopUsed = r.b();
    p.loopIndex = static_cast<unsigned>(r.u64());
    p.scUsed = r.b();
    p.scIndex = r.u32();
    for (unsigned &v : p.indices)
        v = r.u32();
    for (std::uint16_t &v : p.tags)
        v = r.u16();
}

/** The direction predictor. */
class Tage
{
  public:
    Tage(const TageConfig &config, StatRegistry &stats);

    /**
     * Predict the direction of the conditional branch at @p pc and
     * speculatively update the history with the prediction.
     */
    TagePredictionInfo predict(Addr pc);

    /** Snapshot speculative state (taken before predict()). */
    TageCheckpoint checkpoint() const;

    /** Restore state after a mispredict, then re-insert the actual
     *  outcome of the recovering branch at @p pc. */
    void recover(const TageCheckpoint &ckpt, bool actualTaken,
                 Addr pc);

    /** Restore exactly (the checkpointed branch is squashed too). */
    void restore(const TageCheckpoint &ckpt);

    /**
     * Train with the resolved outcome. @p info must be the structure
     * returned by predict() for this branch instance.
     */
    void update(Addr pc, bool taken, const TagePredictionInfo &info);

    /** Fold the running history for an external hash consumer. */
    std::uint64_t historyHash(unsigned bits) const;

    /** Recompute every incremental fold from scratch and compare
     *  against the maintained value (test hook). */
    bool checkFolds() const;

    /** Snapshot every table and the speculative history state. */
    void save(SnapWriter &w) const;
    void restore(SnapReader &r);

  private:
    struct TaggedEntry
    {
        std::uint16_t tag = 0;
        std::int8_t ctr = 0;       //!< signed: >=0 predicts taken
        std::uint8_t useful = 0;
    };

    struct LoopEntry
    {
        bool valid = false;
        std::uint16_t tag = 0;
        std::uint16_t tripCount = 0;
        std::uint16_t currentIter = 0;  //!< architectural (at update)
        std::uint16_t specIter = 0;     //!< speculative (at predict)
        std::uint8_t confidence = 0;
    };

    /**
     * Incrementally-maintained fold of the newest-first global
     * history: the XOR of the full @c bits-wide chunks plus the
     * trailing partial chunk, kept separately so shifting one bit in
     * is O(1). Matches foldHistory() bit-for-bit; the naive fold
     * stays as the reference for external hashing and checkFolds().
     */
    struct FoldedHistory
    {
        std::uint32_t full = 0;     //!< XOR of complete chunks
        std::uint32_t partial = 0;  //!< trailing (length % bits) bits
        unsigned length = 0;        //!< history bits folded
        unsigned bits = 0;          //!< fold width
        unsigned nFull = 0;         //!< bits covered by full chunks
        unsigned rem = 0;           //!< width of the partial chunk

        void configure(unsigned len, unsigned b);
        std::uint64_t value() const { return full ^ partial; }
        /** Shift in @p newest given the history BEFORE the shift. */
        void shiftIn(const History &old, bool newest);
    };

    unsigned tableIndex(Addr pc, unsigned table) const;
    std::uint16_t tableTag(Addr pc, unsigned table) const;
    std::uint64_t foldHistory(unsigned length, unsigned bits) const;
    unsigned numFolds() const { return 3 * config_.numTables + 1; }
    void shiftFolds(bool taken);
    void pushHistory(bool taken, Addr pc);

    // Loop predictor helpers.
    LoopEntry *loopLookup(Addr pc);
    void loopUpdate(Addr pc, bool taken, const TagePredictionInfo &info);

    SIM_SNAPSHOT_FIELDS(14);

    TageConfig config_;
    std::vector<unsigned> histLengths_;
    std::vector<std::vector<TaggedEntry>> tables_;
    std::vector<std::uint8_t> bimodal_;
    std::vector<LoopEntry> loops_;
    std::vector<std::int8_t> scTable_;

    History history_;
    std::uint32_t pathHistory_ = 0;
    std::uint64_t allocTick_ = 0;
    /** Layout: [3t]=index fold, [3t+1]=tag, [3t+2]=tag's second
     *  hash for table t; [3 * numTables]=statistical corrector. */
    std::array<FoldedHistory, kMaxTageFolds> folds_;
    AuditSampler foldAudit_{4096};

    std::uint64_t &lookups_;
    std::uint64_t &scFlips_;
    std::uint64_t &loopPredictions_;
};

} // namespace cdfsim::bp

#endif // CDFSIM_BP_TAGE_HH
