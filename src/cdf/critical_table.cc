#include "cdf/critical_table.hh"

#include "common/logging.hh"

namespace cdfsim::cdf
{

CriticalCountTable::CriticalCountTable(const CriticalTableConfig &config,
                                       StatRegistry &stats,
                                       const std::string &name)
    : config_(config),
      sets_(config.entries / config.ways),
      updates_(stats.counter(name + ".updates")),
      allocations_(stats.counter(name + ".allocations"))
{
    if (sets_ == 0)
        fatal("critical count table '", name, "': zero sets");
    entries_.resize(config.entries);
    for (auto &e : entries_) {
        e.strict = SatCounter(config.strictBits);
        e.permissive = SatCounter(config.permissiveBits);
    }
}

const CriticalCountTable::Entry *
CriticalCountTable::find(Addr pc) const
{
    const Entry *base = &entries_[setOf(pc) * config_.ways];
    for (unsigned w = 0; w < config_.ways; ++w) {
        if (base[w].valid && base[w].tag == pc)
            return &base[w];
    }
    return nullptr;
}

CriticalCountTable::Entry &
CriticalCountTable::findOrAllocate(Addr pc)
{
    Entry *base = &entries_[setOf(pc) * config_.ways];
    Entry *victim = base;
    for (unsigned w = 0; w < config_.ways; ++w) {
        if (base[w].valid && base[w].tag == pc)
            return base[w];
        if (!base[w].valid) {
            victim = &base[w];
        } else if (victim->valid && base[w].lruTick < victim->lruTick) {
            victim = &base[w];
        }
    }
    ++allocations_;
    victim->valid = true;
    victim->tag = pc;
    victim->strict = SatCounter(config_.strictBits);
    victim->permissive = SatCounter(config_.permissiveBits);
    return *victim;
}

void
CriticalCountTable::auditInvariants() const
{
    for (std::size_t set = 0; set < sets_; ++set) {
        const Entry *base = &entries_[set * config_.ways];
        for (unsigned w = 0; w < config_.ways; ++w) {
            const Entry &e = base[w];
            if (!e.valid)
                continue;
            SIM_ASSERT(setOf(e.tag) == set,
                       "CCT entry tag hashes outside its set");
            SIM_ASSERT(e.lruTick <= tick_,
                       "CCT entry LRU stamp ahead of the clock");
            for (unsigned v = w + 1; v < config_.ways; ++v) {
                SIM_ASSERT(!base[v].valid || base[v].tag != e.tag,
                           "duplicate valid CCT tag within a set");
            }
        }
    }
}

void
CriticalCountTable::update(Addr pc, bool negativeEvent)
{
    ++updates_;
    SIM_AUDIT_ONLY({
        if (audit_.due())
            auditInvariants();
    });
    Entry &e = findOrAllocate(pc);
    e.lruTick = ++tick_;
    if (negativeEvent) {
        e.strict.increment(config_.missInc);
        e.permissive.increment(config_.missInc);
    } else {
        e.strict.decrement(config_.hitDec);
        e.permissive.decrement(config_.hitDec);
    }
}

bool
CriticalCountTable::isCritical(Addr pc) const
{
    return isCriticalUnder(pc, mode_);
}

bool
CriticalCountTable::isCriticalUnder(Addr pc, ThresholdMode mode) const
{
    const Entry *e = find(pc);
    if (!e)
        return false;
    if (mode == ThresholdMode::Strict)
        return e->strict.value() >= config_.strictThreshold;
    return e->permissive.value() >= config_.permissiveThreshold;
}

} // namespace cdfsim::cdf
