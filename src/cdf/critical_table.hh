/**
 * @file
 * Critical Count Tables (paper Section 3.2).
 *
 * A small set-associative table tracking, per static load, how often
 * it misses in the LLC (and per static branch, how often it
 * mispredicts). Each entry carries TWO saturating counters of
 * different widths realising a strict and a permissive criticality
 * threshold; at runtime CDF measures the fraction of instructions
 * marked critical and switches to the permissive counters when too
 * few are marked (Section 3.2, "two sets of behaviors").
 */

#ifndef CDFSIM_CDF_CRITICAL_TABLE_HH
#define CDFSIM_CDF_CRITICAL_TABLE_HH

#include <cstdint>
#include <vector>

#include "common/sat_counter.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace cdfsim::cdf
{

/** Configuration for one Critical Count Table. */
struct CriticalTableConfig
{
    unsigned entries = 64;
    unsigned ways = 2;
    unsigned strictBits = 4;        //!< strict counter width
    unsigned strictThreshold = 12;  //!< counter >= this -> critical
    unsigned permissiveBits = 2;
    unsigned permissiveThreshold = 2;
    unsigned missInc = 2;           //!< bump on an LLC miss/mispredict
    unsigned hitDec = 1;            //!< decay on a hit/correct pred.
};

/** Which threshold set the predictor is currently using. */
enum class ThresholdMode : std::uint8_t { Strict, Permissive };

/**
 * One Critical Count Table (used twice: once for loads keyed on LLC
 * misses, once for branches keyed on mispredictions).
 */
class CriticalCountTable
{
  public:
    CriticalCountTable(const CriticalTableConfig &config,
                       StatRegistry &stats, const std::string &name);

    /**
     * Retire-time training: the load at @p pc missed (or the branch
     * mispredicted) when @p negative is true.
     */
    void update(Addr pc, bool negativeEvent);

    /**
     * Is the instruction at @p pc predicted critical under the
     * current threshold mode? Pure lookup; no allocation.
     */
    bool isCritical(Addr pc) const;

    /** As isCritical() but forcing a threshold mode (for the walk). */
    bool isCriticalUnder(Addr pc, ThresholdMode mode) const;

    ThresholdMode mode() const { return mode_; }
    void setMode(ThresholdMode mode) { mode_ = mode; }

  private:
    struct Entry
    {
        bool valid = false;
        Addr tag = 0;
        SatCounter strict{4};
        SatCounter permissive{2};
        std::uint64_t lruTick = 0;
    };

    std::size_t setOf(Addr pc) const { return pc % sets_; }
    const Entry *find(Addr pc) const;
    Entry &findOrAllocate(Addr pc);

    CriticalTableConfig config_;
    std::size_t sets_;
    std::vector<Entry> entries_;
    std::uint64_t tick_ = 0;
    ThresholdMode mode_ = ThresholdMode::Strict;

    std::uint64_t &updates_;
    std::uint64_t &allocations_;
};

} // namespace cdfsim::cdf

#endif // CDFSIM_CDF_CRITICAL_TABLE_HH
