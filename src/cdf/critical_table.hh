/**
 * @file
 * Critical Count Tables (paper Section 3.2).
 *
 * A small set-associative table tracking, per static load, how often
 * it misses in the LLC (and per static branch, how often it
 * mispredicts). Each entry carries TWO saturating counters of
 * different widths realising a strict and a permissive criticality
 * threshold; at runtime CDF measures the fraction of instructions
 * marked critical and switches to the permissive counters when too
 * few are marked (Section 3.2, "two sets of behaviors").
 */

#ifndef CDFSIM_CDF_CRITICAL_TABLE_HH
#define CDFSIM_CDF_CRITICAL_TABLE_HH

#include <cstdint>
#include <vector>

#include "common/audit.hh"
#include "common/sat_counter.hh"
#include "common/serialize.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace cdfsim::cdf
{

/** Configuration for one Critical Count Table. */
struct CriticalTableConfig
{
    unsigned entries = 64;
    unsigned ways = 2;
    unsigned strictBits = 4;        //!< strict counter width
    unsigned strictThreshold = 12;  //!< counter >= this -> critical
    unsigned permissiveBits = 2;
    unsigned permissiveThreshold = 2;
    unsigned missInc = 2;           //!< bump on an LLC miss/mispredict
    unsigned hitDec = 1;            //!< decay on a hit/correct pred.
};

/** Which threshold set the predictor is currently using. */
enum class ThresholdMode : std::uint8_t { Strict, Permissive };

/**
 * One Critical Count Table (used twice: once for loads keyed on LLC
 * misses, once for branches keyed on mispredictions).
 */
class CriticalCountTable
{
  public:
    CriticalCountTable(const CriticalTableConfig &config,
                       StatRegistry &stats, const std::string &name);

    /**
     * Retire-time training: the load at @p pc missed (or the branch
     * mispredicted) when @p negative is true.
     */
    void update(Addr pc, bool negativeEvent);

    /**
     * Is the instruction at @p pc predicted critical under the
     * current threshold mode? Pure lookup; no allocation.
     */
    bool isCritical(Addr pc) const;

    /** As isCritical() but forcing a threshold mode (for the walk). */
    bool isCriticalUnder(Addr pc, ThresholdMode mode) const;

    ThresholdMode mode() const { return mode_; }
    void setMode(ThresholdMode mode) { mode_ = mode; }

    /**
     * Structural walk: valid entries index the set their tag hashes
     * to, sets hold no duplicate tags, and no LRU stamp is ahead of
     * the allocation clock. Always compiled (the table is tiny);
     * sampled from update() in Audit builds.
     */
    void auditInvariants() const;

    /** Snapshot entries and the threshold/LRU state (geometry and
     *  counter widths are config-fixed and excluded). */
    void
    save(SnapWriter &w) const
    {
        for (const Entry &e : entries_) {
            w.b(e.valid);
            w.u64(e.tag);
            w.u32(e.strict.value());
            w.u32(e.permissive.value());
            w.u64(e.lruTick);
        }
        w.u64(tick_);
        w.u8(static_cast<std::uint8_t>(mode_));
    }

    void
    restore(SnapReader &r)
    {
        for (Entry &e : entries_) {
            e.valid = r.b();
            e.tag = r.u64();
            e.strict.set(r.u32());
            e.permissive.set(r.u32());
            e.lruTick = r.u64();
        }
        tick_ = r.u64();
        mode_ = static_cast<ThresholdMode>(r.u8());
    }

  private:
    struct Entry
    {
        bool valid = false;
        Addr tag = 0;
        SatCounter strict{4};
        SatCounter permissive{2};
        std::uint64_t lruTick = 0;
    };

    std::size_t setOf(Addr pc) const { return pc % sets_; }
    const Entry *find(Addr pc) const;
    Entry &findOrAllocate(Addr pc);

    SIM_SNAPSHOT_FIELDS(8);

    CriticalTableConfig config_;
    std::size_t sets_;
    std::vector<Entry> entries_;
    std::uint64_t tick_ = 0;
    ThresholdMode mode_ = ThresholdMode::Strict;

    // Qualified on purpose: an unqualified friend would declare a
    // fresh cdfsim::cdf::AuditPeer instead of befriending the
    // test-only backdoor forward-declared in common/audit.hh.
    friend struct cdfsim::AuditPeer;
    mutable AuditSampler audit_{4096};

    std::uint64_t &updates_;
    std::uint64_t &allocations_;
};

} // namespace cdfsim::cdf

#endif // CDFSIM_CDF_CRITICAL_TABLE_HH
