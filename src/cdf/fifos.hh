/**
 * @file
 * The two CDF frontend FIFOs (paper Sections 3.3-3.4):
 *
 *  - Delayed Branch Queue (DBQ): directions and targets of every
 *    branch predicted while fetching critical uops; the regular
 *    fetch stream replays them so both streams follow one path and
 *    the predictor is consulted exactly once per branch.
 *  - Critical Map Queue (CMQ): destination physical registers
 *    assigned by the critical rename stage, replayed into the
 *    regular RAT in program order by the regular rename stage.
 *
 * Both are program-ordered, so a mispredict/violation flush is a
 * truncate at the offending timestamp.
 */

#ifndef CDFSIM_CDF_FIFOS_HH
#define CDFSIM_CDF_FIFOS_HH

#include "common/circular_queue.hh"
#include "common/serialize.hh"
#include "common/types.hh"

namespace cdfsim::cdf
{

/** One Delayed Branch Queue entry. */
struct DbqEntry
{
    SeqNum ts = 0;        //!< program-order timestamp of the branch
    bool taken = false;   //!< predicted (later: corrected) direction
    Addr target = 0;      //!< predicted next PC when taken
};

/** One Critical Map Queue entry. */
struct CmqEntry
{
    SeqNum ts = 0;        //!< timestamp of the critical uop
    RegId archDst = kInvalidReg;
    RegId physDst = kInvalidReg;
    RegId oldPhysDst = kInvalidReg;
};

/** Snapshot codecs for the FIFO payloads (used as CircularQueue
 *  element callbacks by the core snapshot). */
inline void
save(SnapWriter &w, const DbqEntry &e)
{
    w.u64(e.ts);
    w.b(e.taken);
    w.u64(e.target);
}

inline void
restore(SnapReader &r, DbqEntry &e)
{
    e.ts = r.u64();
    e.taken = r.b();
    e.target = r.u64();
}

inline void
save(SnapWriter &w, const CmqEntry &e)
{
    w.u64(e.ts);
    w.u16(e.archDst);
    w.u16(e.physDst);
    w.u16(e.oldPhysDst);
}

inline void
restore(SnapReader &r, CmqEntry &e)
{
    e.ts = r.u64();
    e.archDst = r.u16();
    e.physDst = r.u16();
    e.oldPhysDst = r.u16();
}

/** Delayed Branch Queue (Table 1: 256 entries). */
using DelayedBranchQueue = CircularQueue<DbqEntry>;

/** Critical Map Queue (Table 1: 256 entries). */
using CriticalMapQueue = CircularQueue<CmqEntry>;

/**
 * Truncate a program-ordered FIFO, dropping every entry with
 * ts > @p flushTs (partial flush on mispredict, Section 3.6).
 */
template <typename Queue>
void
flushYounger(Queue &q, SeqNum flushTs)
{
    std::size_t keep = q.size();
    while (keep > 0 && q.at(keep - 1).ts > flushTs)
        --keep;
    q.truncate(keep);
}

} // namespace cdfsim::cdf

#endif // CDFSIM_CDF_FIFOS_HH
