#include "cdf/fill_buffer.hh"

#include "common/logging.hh"

namespace cdfsim::cdf
{

FillBuffer::FillBuffer(const FillBufferConfig &config,
                       MaskCache &maskCache, CriticalUopCache &uopCache,
                       StatRegistry &stats)
    : config_(config),
      maskCache_(maskCache),
      uopCache_(uopCache),
      walks_(stats.counter("fill_buffer.walks")),
      walksRejectedLow_(stats.counter("fill_buffer.walks_rejected_low")),
      walksRejectedHigh_(
          stats.counter("fill_buffer.walks_rejected_high")),
      uopsMarked_(stats.counter("fill_buffer.uops_marked")),
      tracesFilled_(stats.counter("fill_buffer.traces_filled"))
{
    SIM_ASSERT(config_.capacity > 0, "fill buffer needs capacity");
    entries_.reserve(config_.capacity);
}

WalkResult
FillBuffer::onRetire(const RetiredUopInfo &info,
                     std::uint64_t retiredInstrs, Cycle now)
{
    if (!collecting_) {
        if (retiredInstrs - collectionStart_ >=
            config_.refillIntervalInstrs) {
            collecting_ = true;
            collectionStart_ = retiredInstrs;
            entries_.clear();
            activeMaskValid_ = false;
        } else {
            return {};
        }
    }

    Entry e;
    e.pc = info.pc;
    e.uop = info.uop;
    e.memWordAddr = info.memWordAddr;
    e.critical = info.seedCritical;
    e.startsBasicBlock = info.startsBasicBlock || entries_.empty();

    // Mask Cache pre-marking: when a block with a cached mask enters
    // the buffer, the mask is read into a shift register and marks
    // uops as they are inserted (accumulating cross-path chains).
    if (config_.useMaskCache) {
        if (e.startsBasicBlock) {
            auto mask = maskCache_.lookup(info.pc);
            activeMaskValid_ = mask.has_value();
            activeMask_ = mask.value_or(0);
            activeMaskOffset_ = 0;
        }
        if (activeMaskValid_ && activeMaskOffset_ < 64 &&
            (activeMask_ >> activeMaskOffset_) & 1) {
            e.critical = true;
        }
        ++activeMaskOffset_;
    }

    entries_.push_back(e);

    if (entries_.size() >= config_.capacity) {
        WalkResult r = walk(now);
        collecting_ = false;
        collectionStart_ = retiredInstrs;
        return r;
    }
    return {};
}

void
FillBuffer::markChains()
{
    std::bitset<kNumArchRegs> neededRegs;
    std::unordered_set<Addr> neededMem;

    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
        Entry &e = *it;
        bool mark = e.critical;

        if (!mark && e.uop.writesReg() && neededRegs[e.uop.dst])
            mark = true;
        if (!mark && e.uop.isStore() && neededMem.count(e.memWordAddr))
            mark = true;

        if (!mark)
            continue;

        e.critical = true;
        if (e.uop.writesReg())
            neededRegs[e.uop.dst] = false;
        if (e.uop.src1 != kInvalidReg)
            neededRegs[e.uop.src1] = true;
        if (e.uop.src2 != kInvalidReg)
            neededRegs[e.uop.src2] = true;
        if (e.uop.isLoad())
            neededMem.insert(e.memWordAddr);
        if (e.uop.isStore())
            neededMem.erase(e.memWordAddr);
    }
}

WalkResult
FillBuffer::walk(Cycle now)
{
    ++walks_;
    markChains();
    return harvest(now);
}

WalkResult
FillBuffer::harvest(Cycle now)
{
    WalkResult result;
    result.performed = true;

    unsigned marked = 0;
    for (const Entry &e : entries_) {
        if (e.critical)
            ++marked;
    }
    result.marked = marked;
    result.density =
        static_cast<double>(marked) / static_cast<double>(entries_.size());

    // Basic-block extents: [start, end) pairs; a block ends at (and
    // includes) a branch, or at the next block start.
    std::vector<std::pair<std::size_t, std::size_t>> blocks;
    std::size_t start = 0;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        const bool last = i + 1 == entries_.size();
        const bool blockEnd =
            entries_[i].uop.isBranch() ||
            (!last && entries_[i + 1].startsBasicBlock);
        if (blockEnd || last) {
            blocks.emplace_back(start, i + 1);
            start = i + 1;
        }
    }

    // Density guard: reject and scrub the observed blocks.
    if (result.density < config_.minDensity ||
        result.density > config_.maxDensity) {
        if (result.density < config_.minDensity)
            ++walksRejectedLow_;
        else
            ++walksRejectedHigh_;
        for (const auto &[b, e] : blocks) {
            maskCache_.remove(entries_[b].pc);
            uopCache_.remove(entries_[b].pc);
        }
        entries_.clear();
        return result;
    }

    result.accepted = true;
    uopsMarked_ += marked;

    // Skip the first block unless it verifiably starts a real basic
    // block (the buffer may have begun mid-block).
    std::size_t firstBlock =
        (!blocks.empty() && entries_[blocks[0].first].startsBasicBlock)
            ? 0
            : 1;

    // First pass: merge every dynamic instance's mask into the Mask
    // Cache so criticality accumulates across paths.
    if (config_.useMaskCache) {
        for (std::size_t bi = firstBlock; bi < blocks.size(); ++bi) {
            const auto [b, e] = blocks[bi];
            std::uint64_t mask = 0;
            for (std::size_t i = b; i < e && i - b < 64; ++i) {
                if (entries_[i].critical)
                    mask |= std::uint64_t{1} << (i - b);
            }
            maskCache_.merge(entries_[b].pc, mask);
        }
    }

    // Second pass: construct one trace per static basic block using
    // the fully merged masks.
    std::unordered_set<Addr> filledThisWalk;

    for (std::size_t bi = firstBlock; bi < blocks.size(); ++bi) {
        const auto [b, e] = blocks[bi];
        if (!filledThisWalk.insert(entries_[b].pc).second)
            continue;
        const bool endsInBranch = entries_[e - 1].uop.isBranch();
        // A trailing partial block (no terminating branch at the very
        // end of the buffer) is incomplete; the paper only collects
        // complete basic blocks into traces.
        if (!endsInBranch && bi + 1 == blocks.size())
            continue;

        std::uint64_t mask = 0;
        for (std::size_t i = b; i < e && i - b < 64; ++i) {
            if (entries_[i].critical)
                mask |= std::uint64_t{1} << (i - b);
        }

        if (config_.useMaskCache)
            mask = maskCache_.lookup(entries_[b].pc).value_or(mask);

        BbTrace trace;
        trace.startPc = entries_[b].pc;
        trace.blockLength = static_cast<unsigned>(e - b);
        trace.endsInBranch = endsInBranch;
        trace.branchPc = entries_[e - 1].pc;
        for (std::size_t i = b; i < e; ++i) {
            const unsigned off = static_cast<unsigned>(i - b);
            const bool inMask = off < 64 && ((mask >> off) & 1);
            if (inMask || entries_[i].critical) {
                trace.uops.push_back({entries_[i].uop, off});
            }
        }
        // Blocks with no critical uops still get a (one-line) trace:
        // it carries the block length and next-address information
        // that lets the critical fetch chain past them (Fig. 7's
        // saved-tag mechanism).
        uopCache_.insert(std::move(trace), now);
        ++tracesFilled_;
        ++result.blocksFilled;
    }

    entries_.clear();
    return result;
}

} // namespace cdfsim::cdf
