/**
 * @file
 * Fill Buffer and the backwards dataflow walk (paper Section 3.2,
 * Figs. 5-7).
 *
 * The Fill Buffer records a window of retired uops (1024 by
 * default). Each entry carries the decoded uop, register bit
 * vectors, a memory tag and a critical bit. When full, the buffer is
 * walked from youngest to oldest: uops in the dependence chains of
 * seed-critical loads and branches are marked critical, chaining
 * through registers and through memory (a store that wrote a word a
 * critical load reads joins the chain). Completed basic blocks are
 * then collected into traces for the Critical Uop Cache, and per-BB
 * masks are merged into the Mask Cache so that criticality
 * accumulates across control-flow paths.
 *
 * A density guard rejects walks that mark fewer than 2% or more than
 * 50% of the buffer, removing the affected blocks from both caches
 * so the processor stops entering CDF mode on them.
 */

#ifndef CDFSIM_CDF_FILL_BUFFER_HH
#define CDFSIM_CDF_FILL_BUFFER_HH

#include <bitset>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "cdf/mask_cache.hh"
#include "cdf/uop_cache.hh"
#include "common/serialize.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "isa/uop.hh"

namespace cdfsim::cdf
{

/** Fill Buffer configuration (Table 1: 1024 entries, 16KB). */
struct FillBufferConfig
{
    unsigned capacity = 1024;
    std::uint64_t refillIntervalInstrs = 10000;
    double minDensity = 0.02;
    double maxDensity = 0.50;
    bool useMaskCache = true;   //!< ablation switch
};

/** Retire-side information for one uop entering the Fill Buffer. */
struct RetiredUopInfo
{
    Addr pc = 0;
    isa::Uop uop;
    Addr memWordAddr = 0;     //!< 8B-aligned effective address (mem ops)
    bool seedCritical = false; //!< CCT-predicted critical load/branch
    bool startsBasicBlock = false;
};

/** Result of one completed walk, for the controller's density logic. */
struct WalkResult
{
    bool performed = false;
    bool accepted = false;     //!< density guard passed
    double density = 0.0;
    unsigned marked = 0;
    unsigned blocksFilled = 0;
};

/** The Fill Buffer. */
class FillBuffer
{
  public:
    FillBuffer(const FillBufferConfig &config, MaskCache &maskCache,
               CriticalUopCache &uopCache, StatRegistry &stats);

    /**
     * Offer a retired uop. Collection is windowed: the buffer
     * gathers `capacity` consecutive uops, walks, then idles until
     * the next refill interval. Returns the walk result when a walk
     * happened this call.
     */
    WalkResult onRetire(const RetiredUopInfo &info,
                        std::uint64_t retiredInstrs, Cycle now);

    /** Number of uops currently collected. */
    std::size_t size() const { return entries_.size(); }

    bool collecting() const { return collecting_; }

    /** Snapshot the collection window and the mask shift register
     *  (the referenced caches snapshot themselves). */
    void
    save(SnapWriter &w) const
    {
        w.u32(static_cast<std::uint32_t>(entries_.size()));
        for (const Entry &e : entries_) {
            w.u64(e.pc);
            isa::save(w, e.uop);
            w.u64(e.memWordAddr);
            w.b(e.critical);
            w.b(e.startsBasicBlock);
        }
        w.b(collecting_);
        w.u64(collectionStart_);
        w.u64(activeMask_);
        w.u32(activeMaskOffset_);
        w.b(activeMaskValid_);
    }

    void
    restore(SnapReader &r)
    {
        entries_.resize(r.u32());
        for (Entry &e : entries_) {
            e.pc = r.u64();
            isa::restore(r, e.uop);
            e.memWordAddr = r.u64();
            e.critical = r.b();
            e.startsBasicBlock = r.b();
        }
        collecting_ = r.b();
        collectionStart_ = r.u64();
        activeMask_ = r.u64();
        activeMaskOffset_ = r.u32();
        activeMaskValid_ = r.b();
    }

  private:
    struct Entry
    {
        Addr pc = 0;
        isa::Uop uop;
        Addr memWordAddr = 0;
        bool critical = false;
        bool startsBasicBlock = false;
    };

    WalkResult walk(Cycle now);
    void markChains();
    WalkResult harvest(Cycle now);

    SIM_SNAPSHOT_FIELDS(14);

    FillBufferConfig config_;
    MaskCache &maskCache_;
    CriticalUopCache &uopCache_;
    std::vector<Entry> entries_;
    bool collecting_ = true;
    std::uint64_t collectionStart_ = 0;

    // Mask-cache shift register state while inserting (Section 3.2).
    std::uint64_t activeMask_ = 0;
    unsigned activeMaskOffset_ = 0;
    bool activeMaskValid_ = false;

    std::uint64_t &walks_;
    std::uint64_t &walksRejectedLow_;
    std::uint64_t &walksRejectedHigh_;
    std::uint64_t &uopsMarked_;
    std::uint64_t &tracesFilled_;
};

} // namespace cdfsim::cdf

#endif // CDFSIM_CDF_FILL_BUFFER_HH
