#include "cdf/mask_cache.hh"

#include "common/logging.hh"

namespace cdfsim::cdf
{

MaskCache::MaskCache(const MaskCacheConfig &config, StatRegistry &stats)
    : config_(config),
      sets_(config.entries / config.ways),
      merges_(stats.counter("mask_cache.merges")),
      hits_(stats.counter("mask_cache.hits")),
      resets_(stats.counter("mask_cache.resets"))
{
    if (sets_ == 0)
        fatal("mask cache: zero sets");
    entries_.resize(config.entries);
}

std::optional<std::uint64_t>
MaskCache::lookup(Addr pc) const
{
    const Entry *base = &entries_[setOf(pc) * config_.ways];
    for (unsigned w = 0; w < config_.ways; ++w) {
        if (base[w].valid && base[w].tag == pc) {
            ++hits_;
            return base[w].mask;
        }
    }
    return std::nullopt;
}

void
MaskCache::auditInvariants() const
{
    for (std::size_t set = 0; set < sets_; ++set) {
        const Entry *base = &entries_[set * config_.ways];
        for (unsigned w = 0; w < config_.ways; ++w) {
            const Entry &e = base[w];
            if (!e.valid)
                continue;
            SIM_ASSERT(setOf(e.tag) == set,
                       "mask cache entry tag hashes outside its set");
            SIM_ASSERT(e.lruTick <= tick_,
                       "mask cache LRU stamp ahead of the clock");
            for (unsigned v = w + 1; v < config_.ways; ++v) {
                SIM_ASSERT(!base[v].valid || base[v].tag != e.tag,
                           "duplicate valid mask cache tag within a set");
            }
        }
    }
}

void
MaskCache::merge(Addr pc, std::uint64_t mask)
{
    ++merges_;
    SIM_AUDIT_ONLY({
        if (audit_.due())
            auditInvariants();
    });
    Entry *base = &entries_[setOf(pc) * config_.ways];
    Entry *victim = base;
    for (unsigned w = 0; w < config_.ways; ++w) {
        if (base[w].valid && base[w].tag == pc) {
            base[w].mask |= mask;
            base[w].lruTick = ++tick_;
            return;
        }
        if (!base[w].valid) {
            victim = &base[w];
        } else if (victim->valid && base[w].lruTick < victim->lruTick) {
            victim = &base[w];
        }
    }
    victim->valid = true;
    victim->tag = pc;
    victim->mask = mask;
    victim->lruTick = ++tick_;
}

void
MaskCache::remove(Addr pc)
{
    Entry *base = &entries_[setOf(pc) * config_.ways];
    for (unsigned w = 0; w < config_.ways; ++w) {
        if (base[w].valid && base[w].tag == pc)
            base[w].valid = false;
    }
}

void
MaskCache::maybeReset(std::uint64_t retiredInstrs)
{
    if (retiredInstrs - lastReset_ >= config_.resetIntervalInstrs) {
        reset();
        lastReset_ = retiredInstrs;
    }
}

void
MaskCache::reset()
{
    ++resets_;
    for (auto &e : entries_)
        e.valid = false;
}

} // namespace cdfsim::cdf
