/**
 * @file
 * Mask Cache (paper Section 3.2).
 *
 * Stores, per basic block, a 64-bit mask with a 1 for every uop that
 * has been marked critical on ANY previously observed control-flow
 * path through that block. Masks are read out when the block is next
 * inserted into the Fill Buffer (pre-marking), accumulate across
 * paths, and are periodically reset so stale paths age out.
 */

#ifndef CDFSIM_CDF_MASK_CACHE_HH
#define CDFSIM_CDF_MASK_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/audit.hh"
#include "common/serialize.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace cdfsim::cdf
{

/** Mask cache configuration (Table 1: 4KB, 4-way, 1-cycle). */
struct MaskCacheConfig
{
    unsigned entries = 512;
    unsigned ways = 4;
    std::uint64_t resetIntervalInstrs = 200000;
};

/** Per-basic-block critical-uop masks. */
class MaskCache
{
  public:
    MaskCache(const MaskCacheConfig &config, StatRegistry &stats);

    /** Mask for the basic block starting at @p pc, if cached. */
    std::optional<std::uint64_t> lookup(Addr pc) const;

    /** OR @p mask into the entry for @p pc, allocating if needed. */
    void merge(Addr pc, std::uint64_t mask);

    /** Remove the entry for @p pc (density guard, Section 3.2). */
    void remove(Addr pc);

    /**
     * Called with the retire-instruction counter; clears the cache
     * each time the reset interval elapses.
     */
    void maybeReset(std::uint64_t retiredInstrs);

    /** Unconditional clear. */
    void reset();

    /**
     * Structural walk: valid entries index the set their tag hashes
     * to, sets hold no duplicate tags, and no LRU stamp is ahead of
     * the allocation clock. Always compiled (the cache is tiny);
     * sampled from merge() in Audit builds.
     */
    void auditInvariants() const;

    /** Snapshot entries and the LRU/reset clocks (geometry is
     *  config-fixed and excluded). */
    void
    save(SnapWriter &w) const
    {
        for (const Entry &e : entries_) {
            w.b(e.valid);
            w.u64(e.tag);
            w.u64(e.mask);
            w.u64(e.lruTick);
        }
        w.u64(tick_);
        w.u64(lastReset_);
    }

    void
    restore(SnapReader &r)
    {
        for (Entry &e : entries_) {
            e.valid = r.b();
            e.tag = r.u64();
            e.mask = r.u64();
            e.lruTick = r.u64();
        }
        tick_ = r.u64();
        lastReset_ = r.u64();
    }

  private:
    struct Entry
    {
        bool valid = false;
        Addr tag = 0;
        std::uint64_t mask = 0;
        std::uint64_t lruTick = 0;
    };

    std::size_t setOf(Addr pc) const { return pc % sets_; }

    SIM_SNAPSHOT_FIELDS(9);

    MaskCacheConfig config_;
    std::size_t sets_;
    std::vector<Entry> entries_;
    std::uint64_t tick_ = 0;
    std::uint64_t lastReset_ = 0;

    // Qualified on purpose: an unqualified friend would declare a
    // fresh cdfsim::cdf::AuditPeer instead of befriending the
    // test-only backdoor forward-declared in common/audit.hh.
    friend struct cdfsim::AuditPeer;
    mutable AuditSampler audit_{4096};

    std::uint64_t &merges_;
    std::uint64_t &hits_;
    std::uint64_t &resets_;
};

} // namespace cdfsim::cdf

#endif // CDFSIM_CDF_MASK_CACHE_HH
