#include "cdf/partition.hh"

#include <algorithm>

#include "common/logging.hh"

namespace cdfsim::cdf
{

SectionPartition::SectionPartition(const std::string &name,
                                   unsigned totalEntries, unsigned step,
                                   unsigned minSection,
                                   unsigned stallThreshold, bool dynamic,
                                   double initialCriticalFrac,
                                   StatRegistry &stats)
    : total_(totalEntries),
      step_(step),
      minSection_(minSection),
      stallThreshold_(stallThreshold),
      dynamic_(dynamic),
      grows_(stats.counter(name + ".partition_grows")),
      shrinks_(stats.counter(name + ".partition_shrinks"))
{
    SIM_ASSERT(totalEntries > 2 * minSection_,
               "structure too small to partition");
    initialCritCap_ = std::clamp<unsigned>(
        static_cast<unsigned>(totalEntries * initialCriticalFrac),
        minSection_, totalEntries - minSection_);
    critCap_ = initialCritCap_;
}

void
SectionPartition::noteStall(bool criticalSection)
{
    if (criticalSection)
        ++critStalls_;
    else
        ++nonCritStalls_;
}

void
SectionPartition::evaluate(unsigned critOcc, unsigned nonCritOcc)
{
    if (!dynamic_)
        return;

    if (critStalls_ >= nonCritStalls_ + stallThreshold_) {
        // Grow the critical section; the slot is taken from the
        // non-critical side only once it has drained.
        const unsigned room = total_ - minSection_ - critCap_;
        unsigned grow = std::min(step_, room);
        const unsigned nonCritCap = total_ - critCap_;
        if (nonCritCap - grow < nonCritOcc) {
            grow = nonCritCap > nonCritOcc ? nonCritCap - nonCritOcc : 0;
        }
        if (grow > 0) {
            critCap_ += grow;
            ++grows_;
        }
        critStalls_ = 0;
        nonCritStalls_ = 0;
    } else if (nonCritStalls_ >= critStalls_ + stallThreshold_) {
        const unsigned room = critCap_ - minSection_;
        unsigned shrink = std::min(step_, room);
        if (critCap_ - shrink < critOcc) {
            shrink = critCap_ > critOcc ? critCap_ - critOcc : 0;
        }
        if (shrink > 0) {
            critCap_ -= shrink;
            ++shrinks_;
        }
        critStalls_ = 0;
        nonCritStalls_ = 0;
    }
}

void
SectionPartition::reset()
{
    critCap_ = initialCritCap_;
    critStalls_ = 0;
    nonCritStalls_ = 0;
}

} // namespace cdfsim::cdf
