#include "cdf/partition.hh"

#include <algorithm>

#include "common/logging.hh"

namespace cdfsim::cdf
{

SectionPartition::SectionPartition(const std::string &name,
                                   unsigned totalEntries, unsigned step,
                                   unsigned minSection,
                                   unsigned stallThreshold, bool dynamic,
                                   double initialCriticalFrac,
                                   StatRegistry &stats)
    : total_(totalEntries),
      step_(step),
      minSection_(minSection),
      stallThreshold_(stallThreshold),
      dynamic_(dynamic),
      grows_(stats.counter(name + ".partition_grows")),
      shrinks_(stats.counter(name + ".partition_shrinks"))
{
    SIM_ASSERT(totalEntries > 2 * minSection_,
               "structure too small to partition");
    initialCritCap_ = std::clamp<unsigned>(
        static_cast<unsigned>(totalEntries * initialCriticalFrac),
        minSection_, totalEntries - minSection_);
    critCap_ = initialCritCap_;
}

void
SectionPartition::noteStall(bool criticalSection)
{
    if (criticalSection)
        ++critStalls_;
    else
        ++nonCritStalls_;
}

void
SectionPartition::noteStallN(bool criticalSection, std::uint64_t n)
{
    if (criticalSection)
        critStalls_ += n;
    else
        nonCritStalls_ += n;
}

void
SectionPartition::evaluate(unsigned critOcc, unsigned nonCritOcc)
{
    if (!dynamic_)
        return;

    if (critStalls_ >= nonCritStalls_ + stallThreshold_) {
        // Grow the critical section; the slot is taken from the
        // non-critical side only once it has drained.
        const unsigned grow = growAmount(nonCritOcc);
        if (grow > 0) {
            critCap_ += grow;
            ++grows_;
        }
        critStalls_ = 0;
        nonCritStalls_ = 0;
    } else if (nonCritStalls_ >= critStalls_ + stallThreshold_) {
        const unsigned shrink = shrinkAmount(critOcc);
        if (shrink > 0) {
            critCap_ -= shrink;
            ++shrinks_;
        }
        critStalls_ = 0;
        nonCritStalls_ = 0;
    }
}

void
SectionPartition::reset()
{
    critCap_ = initialCritCap_;
    critStalls_ = 0;
    nonCritStalls_ = 0;
}

/** The resize the grow branch of evaluate() would apply right now. */
unsigned
SectionPartition::growAmount(unsigned nonCritOcc) const
{
    const unsigned room = total_ - minSection_ - critCap_;
    unsigned grow = std::min(step_, room);
    const unsigned nonCritCap = total_ - critCap_;
    if (nonCritCap - grow < nonCritOcc)
        grow = nonCritCap > nonCritOcc ? nonCritCap - nonCritOcc : 0;
    return grow;
}

/** The resize the shrink branch of evaluate() would apply right now. */
unsigned
SectionPartition::shrinkAmount(unsigned critOcc) const
{
    const unsigned room = critCap_ - minSection_;
    unsigned shrink = std::min(step_, room);
    if (critCap_ - shrink < critOcc)
        shrink = critCap_ > critOcc ? critCap_ - critOcc : 0;
    return shrink;
}

Cycle
SectionPartition::cyclesUntilCapChange(bool chargeCrit,
                                       bool chargeNonCrit,
                                       unsigned critOcc,
                                       unsigned nonCritOcc) const
{
    if (!dynamic_)
        return kNeverCycle;
    // A zero threshold makes evaluate() fire every cycle, and an
    // already-triggered counter state breaks the post-evaluate
    // loop-top invariant this model needs. Either way: treat the
    // very next cycle as an event (no skip).
    if (stallThreshold_ == 0 ||
        critStalls_ >= nonCritStalls_ + stallThreshold_ ||
        nonCritStalls_ >= critStalls_ + stallThreshold_)
        return 1;
    if (chargeCrit == chargeNonCrit)
        return kNeverCycle; // the counter gap is frozen below trigger
    if (chargeCrit) {
        const Cycle k =
            nonCritStalls_ + stallThreshold_ - critStalls_;
        return growAmount(nonCritOcc) > 0 ? k : kNeverCycle;
    }
    const Cycle k = critStalls_ + stallThreshold_ - nonCritStalls_;
    return shrinkAmount(critOcc) > 0 ? k : kNeverCycle;
}

void
SectionPartition::advanceCounters(bool chargeCrit, bool chargeNonCrit,
                                  std::uint64_t n, unsigned critOcc,
                                  unsigned nonCritOcc)
{
    if (chargeCrit == chargeNonCrit) {
        // Equal charges keep the gap frozen; evaluate() never
        // triggers inside the window.
        if (chargeCrit) {
            critStalls_ += n;
            nonCritStalls_ += n;
        }
        return;
    }
    if (!dynamic_) {
        (chargeCrit ? critStalls_ : nonCritStalls_) += n;
        return;
    }
    SIM_ASSERT(stallThreshold_ > 0,
               "bulk-advancing partition counters with a zero "
               "threshold");
    std::uint64_t &lead = chargeCrit ? critStalls_ : nonCritStalls_;
    std::uint64_t &lag = chargeCrit ? nonCritStalls_ : critStalls_;
    SIM_ASSERT(lead < lag + stallThreshold_,
               "bulk-advancing partition counters past a pending "
               "trigger");
    const std::uint64_t k = lag + stallThreshold_ - lead;
    if (n < k) {
        lead += n;
        return;
    }
    SIM_ASSERT((chargeCrit ? growAmount(nonCritOcc)
                           : shrinkAmount(critOcc)) == 0,
               "partition cap change inside a bulk-accounted window");
    // The crossing at k enters an evaluate() branch whose resize
    // clamps to zero: both counters reset, then the lead counter
    // cycles modulo the threshold.
    lead = (n - k) % stallThreshold_;
    lag = 0;
}

} // namespace cdfsim::cdf
