/**
 * @file
 * Dynamic partitioning of backend window resources between the
 * critical and non-critical sections (paper Section 3.5).
 *
 * Counters measure full-window-stall cycles attributable to each
 * section of each structure; when one section's stall count exceeds
 * the other's by a threshold (4 cycles in the paper), that section
 * grows by a step (8 entries for ROB/RS, 2 for LQ/SQ) at the
 * other's expense. A shrink never cuts below current occupancy,
 * modelling the paper's wait-for-the-slot-to-drain mechanism.
 */

#ifndef CDFSIM_CDF_PARTITION_HH
#define CDFSIM_CDF_PARTITION_HH

#include <cstdint>
#include <string>

#include "common/serialize.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace cdfsim::cdf
{

/** Partitioning policy knobs. */
struct PartitionConfig
{
    bool dynamic = true;          //!< ablation: freeze the split
    unsigned stallThreshold = 4;  //!< stall-cycle lead needed to grow
    unsigned robStep = 8;
    unsigned lsqStep = 2;
    unsigned minSection = 8;      //!< floor for either section (ROB)
    unsigned minLsqSection = 4;   //!< floor for either section (LQ/SQ)
    double initialCriticalFrac = 0.75;
};

/** One partitioned structure (ROB, LQ or SQ). */
class SectionPartition
{
  public:
    SectionPartition(const std::string &name, unsigned totalEntries,
                     unsigned step, unsigned minSection,
                     unsigned stallThreshold, bool dynamic,
                     double initialCriticalFrac, StatRegistry &stats);

    unsigned criticalCap() const { return critCap_; }
    unsigned nonCriticalCap() const { return total_ - critCap_; }
    unsigned total() const { return total_; }

    /** Record one stall cycle charged to a section being full. */
    void noteStall(bool criticalSection);

    /** Bulk form of noteStall: @p n identically-charged cycles. */
    void noteStallN(bool criticalSection, std::uint64_t n);

    /**
     * Evaluate the counters and resize if warranted. @p critOcc and
     * @p nonCritOcc are current occupancies; shrinks clamp to them.
     */
    void evaluate(unsigned critOcc, unsigned nonCritOcc);

    /**
     * Idle-skip support: with one noteStall(@p chargeCrit) /
     * noteStall-non-critical(@p chargeNonCrit) charge per cycle
     * followed by one evaluate() per cycle (occupancies frozen at
     * @p critOcc / @p nonCritOcc), the number of cycles until an
     * evaluate() actually changes criticalCap(); kNeverCycle when it
     * provably never does. Threshold crossings whose resize clamps
     * to zero only reset the counters — those stay internal to
     * advanceCounters() and do not bound the caller's jump.
     * Assumes the caller observed the post-evaluate state of the
     * previous cycle (both counters strictly below trigger); returns
     * 1 (no skip) when that does not hold.
     */
    Cycle cyclesUntilCapChange(bool chargeCrit, bool chargeNonCrit,
                               unsigned critOcc,
                               unsigned nonCritOcc) const;

    /**
     * Closed-form replay of @p n cycles of noteStall(@p chargeCrit /
     * @p chargeNonCrit) + evaluate() with frozen occupancies,
     * including any zero-resize counter resets inside the window.
     * The caller must have bounded @p n by cyclesUntilCapChange();
     * a cap change inside the window panics.
     */
    void advanceCounters(bool chargeCrit, bool chargeNonCrit,
                         std::uint64_t n, unsigned critOcc,
                         unsigned nonCritOcc);

    /** Reset to the initial split (on CDF episode boundaries). */
    void reset();

    /** Snapshot the mutable split state (policy knobs are config). */
    void
    save(SnapWriter &w) const
    {
        w.u32(critCap_);
        w.u64(critStalls_);
        w.u64(nonCritStalls_);
    }

    void
    restore(SnapReader &r)
    {
        critCap_ = r.u32();
        critStalls_ = r.u64();
        nonCritStalls_ = r.u64();
    }

  private:
    unsigned growAmount(unsigned nonCritOcc) const;
    unsigned shrinkAmount(unsigned critOcc) const;

    SIM_SNAPSHOT_FIELDS(11);

    unsigned total_;
    unsigned step_;
    unsigned minSection_;
    unsigned stallThreshold_;
    bool dynamic_;
    unsigned initialCritCap_;
    unsigned critCap_;
    std::uint64_t critStalls_ = 0;
    std::uint64_t nonCritStalls_ = 0;

    std::uint64_t &grows_;
    std::uint64_t &shrinks_;
};

} // namespace cdfsim::cdf

#endif // CDFSIM_CDF_PARTITION_HH
