#include "cdf/uop_cache.hh"

#include "common/logging.hh"

namespace cdfsim::cdf
{

CriticalUopCache::CriticalUopCache(const UopCacheConfig &config,
                                   StatRegistry &stats)
    : config_(config),
      hits_(stats.counter("uop_cache.hits")),
      misses_(stats.counter("uop_cache.misses")),
      missesNotReady_(stats.counter("uop_cache.misses_not_ready")),
      fills_(stats.counter("uop_cache.fills")),
      evictions_(stats.counter("uop_cache.evictions"))
{
    if (config_.capacityLines == 0)
        fatal("critical uop cache: zero capacity");
}

const BbTrace *
CriticalUopCache::lookup(Addr pc, Cycle now)
{
    auto it = traces_.find(pc);
    if (it == traces_.end() || it->second->readyCycle > now) {
        ++misses_;
        if (it != traces_.end())
            ++missesNotReady_;
        return nullptr;
    }
    ++hits_;
    // Move to MRU position.
    lru_.splice(lru_.begin(), lru_, it->second);
    return &*it->second;
}

bool
CriticalUopCache::contains(Addr pc) const
{
    return traces_.find(pc) != traces_.end();
}

void
CriticalUopCache::evictOne()
{
    SIM_ASSERT(!lru_.empty(), "evict from empty uop cache");
    const BbTrace &victim = lru_.back();
    usedLines_ -= victim.lines();
    traces_.erase(victim.startPc);
    lru_.pop_back();
    ++evictions_;
}

void
CriticalUopCache::insert(BbTrace trace, Cycle now)
{
    trace.readyCycle = now + config_.fillLatency;

    if (trace.lines() > config_.capacityLines)
        return; // pathological block; never cacheable

    auto it = traces_.find(trace.startPc);
    if (it != traces_.end()) {
        // Re-filling an already-resident identical trace must not
        // re-impose the fill latency: the resident copy stays
        // usable. Only a changed trace (different critical subset)
        // pays the latency again.
        const BbTrace &old = *it->second;
        bool same = old.blockLength == trace.blockLength &&
                    old.uops.size() == trace.uops.size();
        for (std::size_t i = 0; same && i < trace.uops.size(); ++i) {
            same = old.uops[i].offsetInBlock ==
                   trace.uops[i].offsetInBlock;
        }
        if (same) {
            lru_.splice(lru_.begin(), lru_, it->second);
            ++fills_;
            return;
        }
        usedLines_ -= it->second->lines();
        lru_.erase(it->second);
        traces_.erase(it);
    }

    while (usedLines_ + trace.lines() > config_.capacityLines)
        evictOne();

    usedLines_ += trace.lines();
    lru_.push_front(std::move(trace));
    traces_[lru_.front().startPc] = lru_.begin();
    ++fills_;
}

void
CriticalUopCache::remove(Addr pc)
{
    auto it = traces_.find(pc);
    if (it == traces_.end())
        return;
    usedLines_ -= it->second->lines();
    lru_.erase(it->second);
    traces_.erase(it);
}

} // namespace cdfsim::cdf
