/**
 * @file
 * Critical Uop Cache (paper Sections 3.2-3.3).
 *
 * Holds decoded critical uops as basic-block-sized traces tagged
 * with the first instruction of the block. A trace records, per
 * critical uop, its offset inside the block (so the critical fetch
 * logic can assign program-order timestamps while *skipping* the
 * timestamps of non-critical uops), the total uop count of the
 * block, whether the block ends in a branch, and the fall-through /
 * saved-next-address used to compute the next critical fetch address
 * (Fig. 7). Blocks with more than 8 critical uops occupy multiple
 * chained 8-uop lines, which is how capacity is charged.
 */

#ifndef CDFSIM_CDF_UOP_CACHE_HH
#define CDFSIM_CDF_UOP_CACHE_HH

#include <cstdint>
#include <iterator>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/serialize.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "isa/uop.hh"

namespace cdfsim::cdf
{

/** One critical uop inside a trace. */
struct TraceUop
{
    isa::Uop uop;
    unsigned offsetInBlock = 0;  //!< program-order position in the BB
};

/** A basic-block trace of critical uops. */
struct BbTrace
{
    Addr startPc = 0;            //!< tag: first uop of the basic block
    unsigned blockLength = 0;    //!< total uops in the BB (for ts skip)
    std::vector<TraceUop> uops;  //!< the critical subset, in order
    bool endsInBranch = false;   //!< last uop of the BB is a branch
    Addr branchPc = 0;           //!< PC of that branch (== start+len-1)
    Cycle readyCycle = 0;        //!< fill latency gate (Section 3.2)

    /** 8-uop lines this trace occupies (capacity accounting). */
    unsigned
    lines() const
    {
        const auto n = static_cast<unsigned>(uops.size());
        return n == 0 ? 1 : (n + 7) / 8;
    }
};

/** Snapshot codec for TraceUop. */
inline void
save(SnapWriter &w, const TraceUop &t)
{
    save(w, t.uop);
    w.u32(t.offsetInBlock);
}

inline void
restore(SnapReader &r, TraceUop &t)
{
    restore(r, t.uop);
    t.offsetInBlock = r.u32();
}

/** Snapshot codec for BbTrace. */
inline void
save(SnapWriter &w, const BbTrace &t)
{
    w.u64(t.startPc);
    w.u32(t.blockLength);
    w.u32(static_cast<std::uint32_t>(t.uops.size()));
    for (const TraceUop &u : t.uops)
        save(w, u);
    w.b(t.endsInBranch);
    w.u64(t.branchPc);
    w.u64(t.readyCycle);
}

inline void
restore(SnapReader &r, BbTrace &t)
{
    t.startPc = r.u64();
    t.blockLength = r.u32();
    t.uops.resize(r.u32());
    for (TraceUop &u : t.uops)
        restore(r, u);
    t.endsInBranch = r.b();
    t.branchPc = r.u64();
    t.readyCycle = r.u64();
}

/** Uop cache configuration (Table 1: 18KB 4-way, 8x8B per entry). */
struct UopCacheConfig
{
    unsigned capacityLines = 288;    //!< 18KB / 64B per line
    unsigned fillLatency = 1200;     //!< cycles until a new fill is usable
};

/** The Critical Uop Cache. */
class CriticalUopCache
{
  public:
    CriticalUopCache(const UopCacheConfig &config, StatRegistry &stats);

    /**
     * Lookup the trace starting at @p pc, honouring the fill-latency
     * gate. Returns nullptr on miss. Counts hit/miss stats and
     * updates LRU — use contains() for silent probes.
     */
    const BbTrace *lookup(Addr pc, Cycle now);

    /** Silent probe (no stats, no LRU, ignores readiness). */
    bool contains(Addr pc) const;

    /** Insert (or replace) a trace; evicts LRU traces to make room. */
    void insert(BbTrace trace, Cycle now);

    /** Remove the trace tagged @p pc (density guard). */
    void remove(Addr pc);

    unsigned usedLines() const { return usedLines_; }
    std::size_t numTraces() const { return traces_.size(); }

    /**
     * Snapshot the traces in LRU order (the list is the source of
     * truth; the tag map is rebuilt on restore, so the snapshot
     * never iterates the unordered container).
     */
    void
    save(SnapWriter &w) const
    {
        w.u32(static_cast<std::uint32_t>(lru_.size()));
        for (const BbTrace &t : lru_)
            cdf::save(w, t);
        w.u32(usedLines_);
    }

    void
    restore(SnapReader &r)
    {
        lru_.clear();
        traces_.clear();
        const std::uint32_t n = r.u32();
        for (std::uint32_t i = 0; i < n; ++i) {
            lru_.emplace_back();
            cdf::restore(r, lru_.back());
            traces_[lru_.back().startPc] = std::prev(lru_.end());
        }
        usedLines_ = r.u32();
    }

  private:
    void evictOne();

    SIM_SNAPSHOT_FIELDS(9);

    UopCacheConfig config_;
    // LRU list of traces; map from tag to list iterator.
    std::list<BbTrace> lru_;  // front == most recent
    std::unordered_map<Addr, std::list<BbTrace>::iterator> traces_;
    unsigned usedLines_ = 0;

    std::uint64_t &hits_;
    std::uint64_t &misses_;
    std::uint64_t &missesNotReady_;
    std::uint64_t &fills_;
    std::uint64_t &evictions_;
};

} // namespace cdfsim::cdf

#endif // CDFSIM_CDF_UOP_CACHE_HH
