/**
 * @file
 * SIM_AUDIT: runtime invariant instrumentation for the hand-rolled
 * hot-path structures (SlabPool, FlatMap, the cycle rings, the
 * completion heap, TAGE's folded histories).
 *
 * The stat gate (tests/test_stat_gate) proves the simulator's numbers
 * are bit-identical across refactors, but "golden" numbers can still
 * be wrong if a structure silently violates its own invariants (a
 * probe chain broken by a bad backward-shift, a heap that lost order
 * after a squash rebuild, a folded history that drifted from the
 * naive recompute). This layer makes those violations loud:
 *
 *  - Every audited structure exposes an always-compiled
 *    auditInvariants() method that walks the structure and panics
 *    (via SIM_ASSERT, so tests can catch PanicError) on the first
 *    inconsistency. Tests call it directly in any build type.
 *
 *  - Hot paths call it through the SIM_AUDIT / SIM_AUDIT_ONLY macros
 *    below, which compile to nothing unless CDFSIM_AUDIT is defined
 *    (the Audit build: cmake --preset audit, or -DSIM_AUDIT=ON).
 *    Release/RelWithDebInfo binaries carry zero audit code on the
 *    tick path.
 *
 *  - Expensive whole-structure walks are rate-limited with an
 *    AuditSampler so the Audit build stays fast enough to run the
 *    audit_sweep workload matrix; cheap O(1) checks run on every
 *    audited operation.
 */

#ifndef CDFSIM_COMMON_AUDIT_HH
#define CDFSIM_COMMON_AUDIT_HH

#include <cstdint>

#include "common/logging.hh"

// Defined to 1 globally by -DSIM_AUDIT=ON (or the Audit build type)
// and per-target by tests that exercise the macro layer itself.
#ifndef CDFSIM_AUDIT
#define CDFSIM_AUDIT 0
#endif

#if CDFSIM_AUDIT
#define SIM_AUDIT_ENABLED 1

/** Audit-build assertion: SIM_ASSERT that vanishes in Release. */
#define SIM_AUDIT(cond, ...)                                                \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::cdfsim::panic("audit: '", #cond, "' failed at ", __FILE__,    \
                            ":", __LINE__, " ", ##__VA_ARGS__);             \
        }                                                                   \
    } while (0)

/** Statement(s) compiled only into Audit builds. */
#define SIM_AUDIT_ONLY(...) __VA_ARGS__

#else
#define SIM_AUDIT_ENABLED 0
#define SIM_AUDIT(cond, ...)                                                \
    do {                                                                    \
    } while (0)
#define SIM_AUDIT_ONLY(...)
#endif

namespace cdfsim
{

/**
 * Rate limiter for expensive audit walks: due() is true once every
 * @p interval calls. The member exists in every build (so struct
 * layouts match between Release and Audit objects) but is only
 * ticked from inside SIM_AUDIT_ONLY regions, so Release pays nothing
 * at runtime. Deterministic by construction — a pure call counter,
 * no clocks and no randomness — so an Audit run audits the same
 * operations every time.
 */
class AuditSampler
{
  public:
    explicit AuditSampler(std::uint32_t interval = 1024)
        : interval_(interval)
    {
    }

    /** Count one audited operation; true when a full walk is due. */
    bool
    due()
    {
        if (++count_ >= interval_) {
            count_ = 0;
            return true;
        }
        return false;
    }

    std::uint32_t interval() const { return interval_; }

  private:
    std::uint32_t interval_;
    std::uint32_t count_ = 0;
};

/**
 * Test-only backdoor: audited structures befriend this struct so the
 * audit unit tests (tests/test_audit.cc) can deliberately corrupt
 * private state and prove each auditInvariants() actually fires.
 * Never defined in the simulator itself.
 */
struct AuditPeer;

} // namespace cdfsim

#endif // CDFSIM_COMMON_AUDIT_HH
