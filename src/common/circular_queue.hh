/**
 * @file
 * Fixed-capacity circular FIFO used for the paper's hardware FIFOs:
 * the Fill Buffer, Delayed Branch Queue and Critical Map Queue, as
 * well as pipeline latches.
 */

#ifndef CDFSIM_COMMON_CIRCULAR_QUEUE_HH
#define CDFSIM_COMMON_CIRCULAR_QUEUE_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/serialize.hh"

namespace cdfsim
{

/**
 * A bounded FIFO over a ring buffer.
 *
 * Supports indexed access from the head (index 0 == oldest) so the
 * Fill Buffer's backwards dataflow walk and partial flushes of the
 * DBQ/CMQ (Section 3.6) can be expressed directly.
 */
template <typename T>
class CircularQueue
{
  public:
    explicit CircularQueue(std::size_t capacity)
        : buf_(capacity), head_(0), count_(0)
    {
        SIM_ASSERT(capacity > 0, "CircularQueue needs capacity > 0");
    }

    bool empty() const { return count_ == 0; }
    bool full() const { return count_ == buf_.size(); }
    std::size_t size() const { return count_; }
    std::size_t capacity() const { return buf_.size(); }
    std::size_t freeSlots() const { return buf_.size() - count_; }

    /** Append to the tail. The queue must not be full. */
    void
    push(T value)
    {
        SIM_ASSERT(!full(), "push into full CircularQueue");
        buf_[index(count_)] = std::move(value);
        ++count_;
    }

    /** Remove and return the head (oldest) element. */
    T
    pop()
    {
        SIM_ASSERT(!empty(), "pop from empty CircularQueue");
        T value = std::move(buf_[head_]);
        head_ = (head_ + 1) % buf_.size();
        --count_;
        return value;
    }

    /** Oldest element. */
    T &front() { SIM_ASSERT(!empty()); return buf_[head_]; }
    const T &front() const { SIM_ASSERT(!empty()); return buf_[head_]; }

    /** Youngest element. */
    T &back() { SIM_ASSERT(!empty()); return buf_[index(count_ - 1)]; }

    const T &
    back() const
    {
        SIM_ASSERT(!empty());
        return buf_[index(count_ - 1)];
    }

    /** Element @p i positions from the head (0 == oldest). */
    T &
    at(std::size_t i)
    {
        SIM_ASSERT(i < count_, "CircularQueue index out of range");
        return buf_[index(i)];
    }

    const T &
    at(std::size_t i) const
    {
        SIM_ASSERT(i < count_, "CircularQueue index out of range");
        return buf_[index(i)];
    }

    /**
     * Drop every element at position >= @p keep (counting from the
     * head). Models a partial flush of a hardware FIFO whose entries
     * are in program order.
     */
    void
    truncate(std::size_t keep)
    {
        SIM_ASSERT(keep <= count_, "truncate beyond queue size");
        count_ = keep;
    }

    /** Drop all elements. */
    void
    clear()
    {
        head_ = 0;
        count_ = 0;
    }

    /**
     * Serialize capacity, cursor and live elements. head_ is kept
     * verbatim (not renormalized to zero) so a restored queue's slot
     * layout — and therefore any future snapshot of it — is
     * byte-identical to the original's.
     */
    template <typename SaveFn>
    void
    save(SnapWriter &w, SaveFn &&fn) const
    {
        w.u64(buf_.size());
        w.u64(head_);
        w.u64(count_);
        for (std::size_t i = 0; i < count_; ++i)
            fn(w, at(i));
    }

    template <typename LoadFn>
    void
    restore(SnapReader &r, LoadFn &&fn)
    {
        const std::uint64_t capacity = r.u64();
        SIM_ASSERT(capacity == buf_.size(),
                   "snapshot CircularQueue capacity ", capacity,
                   " != configured ", buf_.size());
        head_ = static_cast<std::size_t>(r.u64());
        count_ = static_cast<std::size_t>(r.u64());
        SIM_ASSERT(head_ < buf_.size() && count_ <= buf_.size(),
                   "snapshot CircularQueue cursor out of range");
        for (std::size_t i = 0; i < count_; ++i)
            buf_[index(i)] = fn(r);
    }

  private:
    std::size_t index(std::size_t i) const
    {
        return (head_ + i) % buf_.size();
    }

    SIM_SNAPSHOT_FIELDS(3);

    std::vector<T> buf_;
    std::size_t head_;
    std::size_t count_;
};

} // namespace cdfsim

#endif // CDFSIM_COMMON_CIRCULAR_QUEUE_HH
