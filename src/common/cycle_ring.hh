/**
 * @file
 * Ring buffers over completion *cycles*, built for the memory
 * system's two hot bookkeeping patterns:
 *
 *  - MonotonicCycleRing: the MSHR file. A sorted ring of in-flight
 *    completion times with O(1) prune-from-head and O(1) earliest
 *    lookup, replacing the per-miss erase_if + min-scan over a
 *    vector. Holds the same multiset of cycles the vector held, so
 *    backpressure decisions are bit-identical.
 *
 *  - CycleCountRing: the hierarchy's outstanding-miss counters
 *    (MLP sampling reads them every cycle). Instead of storing one
 *    element per miss and pruning linearly, it keeps a count per
 *    future cycle in a power-of-two ring and advances a cursor,
 *    subtracting expired buckets — O(1) amortized per simulated
 *    cycle regardless of how many misses are in flight.
 *
 * Both grow on demand (DRAM completion times drift arbitrarily far
 * ahead under bank queueing), so neither imposes a semantic cap.
 */

#ifndef CDFSIM_COMMON_CYCLE_RING_HH
#define CDFSIM_COMMON_CYCLE_RING_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/audit.hh"
#include "common/logging.hh"
#include "common/serialize.hh"
#include "common/types.hh"

namespace cdfsim
{

/**
 * Sorted ring of cycle values with head-side removal.
 *
 * Invariant: the live entries, read from head to tail, are
 * non-decreasing. push() inserts from the tail with a backward
 * shift; completion times arrive nearly in order, so the shift is
 * almost always empty. Capacity doubles when full.
 */
class MonotonicCycleRing
{
  public:
    explicit MonotonicCycleRing(std::size_t capacityHint = 16)
    {
        buf_.resize(std::bit_ceil(capacityHint < 2 ? std::size_t{2}
                                                   : capacityHint));
    }

    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }

    /** Smallest live cycle. Requires a non-empty ring. */
    Cycle
    earliest() const
    {
        SIM_ASSERT(count_ > 0, "earliest() on empty cycle ring");
        return buf_[head_ & (buf_.size() - 1)];
    }

    /** Drop every entry with cycle <= @p now. */
    void
    pruneUpTo(Cycle now)
    {
        const std::size_t mask = buf_.size() - 1;
        while (count_ > 0 && buf_[head_ & mask] <= now) {
            ++head_;
            --count_;
        }
        // Prune boundary: whatever survives is strictly in the
        // future, or the ring is empty.
        SIM_AUDIT(count_ == 0 || buf_[head_ & mask] > now,
                  "cycle ring kept an expired entry past pruneUpTo(",
                  now, ")");
    }

    /** Insert @p c, keeping the ring sorted. */
    void
    push(Cycle c)
    {
        if (count_ == buf_.size())
            grow();
        const std::size_t mask = buf_.size() - 1;
        std::size_t i = count_;
        while (i > 0 && buf_[(head_ + i - 1) & mask] > c) {
            buf_[(head_ + i) & mask] = buf_[(head_ + i - 1) & mask];
            --i;
        }
        buf_[(head_ + i) & mask] = c;
        ++count_;
        SIM_AUDIT_ONLY(if (auditTick_.due()) auditInvariants();)
    }

    void
    clear()
    {
        head_ = 0;
        count_ = 0;
    }

    std::size_t capacity() const { return buf_.size(); }

    /**
     * Serialize the buffer verbatim — capacity included, because
     * capacity grows on demand and determines when future pushes
     * reshuffle the ring (head_ resets on grow), which a re-snapshot
     * of the restored ring must reproduce.
     */
    void
    save(SnapWriter &w) const
    {
        w.u64(buf_.size());
        w.u64(head_);
        w.u64(count_);
        for (Cycle c : buf_)
            w.u64(c);
    }

    void
    restore(SnapReader &r)
    {
        buf_.resize(static_cast<std::size_t>(r.u64()));
        head_ = static_cast<std::size_t>(r.u64());
        count_ = static_cast<std::size_t>(r.u64());
        SIM_ASSERT(count_ <= buf_.size(),
                   "snapshot cycle ring count exceeds capacity");
        for (Cycle &c : buf_)
            c = r.u64();
    }

    /**
     * Monotonicity walk: the live entries read head to tail must be
     * non-decreasing (earliest() and the prune loop both depend on
     * it), and the live count must fit the buffer. O(size); sampled
     * from push() in Audit builds.
     */
    void auditInvariants() const
    {
        SIM_ASSERT(count_ <= buf_.size(),
                   "cycle ring holds more entries than its buffer");
        const std::size_t mask = buf_.size() - 1;
        for (std::size_t i = 1; i < count_; ++i) {
            SIM_ASSERT(buf_[(head_ + i - 1) & mask] <=
                           buf_[(head_ + i) & mask],
                       "cycle ring lost sort order at live index ", i);
        }
    }

  private:
    friend struct AuditPeer;

    void
    grow()
    {
        std::vector<Cycle> bigger(buf_.size() * 2);
        const std::size_t mask = buf_.size() - 1;
        for (std::size_t i = 0; i < count_; ++i)
            bigger[i] = buf_[(head_ + i) & mask];
        buf_ = std::move(bigger);
        head_ = 0;
    }

    SIM_SNAPSHOT_FIELDS(4);

    std::vector<Cycle> buf_;
    std::size_t head_ = 0; //!< free-running; index is head_ & mask
    std::size_t count_ = 0;
    AuditSampler auditTick_{1024};
};

/**
 * Per-cycle completion counts over a sliding power-of-two horizon.
 *
 * add(c) records one event completing at cycle c; advanceTo(now)
 * expires every bucket <= now. outstanding() then equals the number
 * of recorded events with completion cycle > now — exactly the size
 * the old vector reported after erase_if(c <= now).
 */
class CycleCountRing
{
  public:
    explicit CycleCountRing(std::size_t horizonHint = 1024)
    {
        counts_.resize(std::bit_ceil(
            horizonHint < 2 ? std::size_t{2} : horizonHint));
    }

    /** Record one event completing at cycle @p c. Events at or
     *  before the cursor are already expired and are dropped. */
    void
    add(Cycle c)
    {
        if (c <= base_)
            return;
        if (c - base_ > counts_.size())
            grow(static_cast<std::size_t>(c - base_));
        ++counts_[c & (counts_.size() - 1)];
        ++outstanding_;
        SIM_AUDIT_ONLY(if (auditTick_.due()) auditInvariants();)
    }

    /** Expire every bucket at or before @p now. Amortized O(1) per
     *  simulated cycle: each bucket is cleared at most once per
     *  revolution, and empty spans are skipped wholesale. */
    void
    advanceTo(Cycle now)
    {
        if (now <= base_)
            return;
        if (outstanding_ == 0) { // all buckets zero; jump the cursor
            base_ = now;
            return;
        }
        const std::size_t mask = counts_.size() - 1;
        while (base_ < now) {
            ++base_;
            std::uint32_t &slot = counts_[base_ & mask];
            outstanding_ -= slot;
            slot = 0;
            if (outstanding_ == 0) {
                base_ = now;
                break;
            }
        }
    }

    /** Events still in flight (completion cycle > cursor). */
    std::size_t outstanding() const { return outstanding_; }

    /**
     * Cycle of the next non-empty bucket strictly after the cursor,
     * or kNeverCycle when nothing is in flight. The outstanding()
     * value is constant for every cycle in (cursor, nextEventCycle):
     * the idle-skip fast path uses this bound to bulk-apply the
     * per-cycle MLP sample. O(horizon) worst case, but only called
     * when the core is quiescent.
     */
    Cycle
    nextEventCycle() const
    {
        if (outstanding_ == 0)
            return kNeverCycle;
        const std::size_t mask = counts_.size() - 1;
        for (std::size_t i = 1; i <= counts_.size(); ++i) {
            if (counts_[(base_ + i) & mask] != 0)
                return base_ + i;
        }
        panic("cycle count ring outstanding without a live bucket");
    }

    Cycle cursor() const { return base_; }
    std::size_t horizon() const { return counts_.size(); }

    /** Serialize buckets verbatim (horizon included — it grows on
     *  demand, so it is part of the reproducible state). */
    void
    save(SnapWriter &w) const
    {
        w.u64(counts_.size());
        w.u64(base_);
        w.u64(outstanding_);
        for (std::uint32_t c : counts_)
            w.u32(c);
    }

    void
    restore(SnapReader &r)
    {
        counts_.resize(static_cast<std::size_t>(r.u64()));
        base_ = r.u64();
        outstanding_ = static_cast<std::size_t>(r.u64());
        for (std::uint32_t &c : counts_)
            c = r.u32();
        SIM_AUDIT_ONLY(auditInvariants();)
    }

    /**
     * Count-agreement walk: the cached outstanding total (which MLP
     * sampling reads every cycle) must equal the sum of all live
     * buckets. O(horizon); sampled from add() in Audit builds.
     */
    void auditInvariants() const
    {
        std::size_t sum = 0;
        for (std::uint32_t c : counts_)
            sum += c;
        SIM_ASSERT(sum == outstanding_,
                   "cycle count ring out of sync: buckets hold ", sum,
                   " events but outstanding count is ", outstanding_);
    }

  private:
    friend struct AuditPeer;

    void
    grow(std::size_t needed)
    {
        std::vector<std::uint32_t> bigger(std::bit_ceil(needed));
        const std::size_t oldMask = counts_.size() - 1;
        const std::size_t newMask = bigger.size() - 1;
        // Live cycles occupy (base_, base_ + oldCapacity]; they stay
        // distinct modulo the larger power of two.
        for (std::size_t i = 1; i <= counts_.size(); ++i) {
            const Cycle cy = base_ + i;
            bigger[cy & newMask] = counts_[cy & oldMask];
        }
        counts_ = std::move(bigger);
    }

    SIM_SNAPSHOT_FIELDS(4);

    std::vector<std::uint32_t> counts_;
    Cycle base_ = 0; //!< cursor: cycles <= base_ are expired
    std::size_t outstanding_ = 0;
    AuditSampler auditTick_{1024};
};

} // namespace cdfsim

#endif // CDFSIM_COMMON_CYCLE_RING_HH
