/**
 * @file
 * Open-addressing hash map for integer keys on simulator hot paths.
 */

#ifndef CDFSIM_COMMON_FLAT_MAP_HH
#define CDFSIM_COMMON_FLAT_MAP_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/audit.hh"
#include "common/hash.hh"
#include "common/logging.hh"
#include "common/serialize.hh"

namespace cdfsim
{

/**
 * Linear probing over a power-of-two table with splitmix64-mixed
 * keys and backward-shift deletion (no tombstones, so lookups never
 * degrade after heavy erase traffic). One key value is reserved as
 * the empty sentinel. Replaces std::unordered_map where the per-node
 * allocation and pointer chasing dominate: probe sequences here are
 * contiguous and the table is reused allocation-free after warmup.
 */
template <typename K, typename V>
class FlatMap
{
  public:
    explicit FlatMap(K emptyKey, std::size_t minCapacity = 16)
        : empty_(emptyKey)
    {
        std::size_t cap = 16;
        while (cap < minCapacity)
            cap <<= 1;
        slots_.assign(cap, Slot{empty_, V{}});
        mask_ = cap - 1;
    }

    V *find(K key)
    {
        std::size_t i = home(key);
        while (slots_[i].key != empty_) {
            if (slots_[i].key == key)
                return &slots_[i].val;
            i = (i + 1) & mask_;
        }
        return nullptr;
    }

    const V *find(K key) const
    {
        return const_cast<FlatMap *>(this)->find(key);
    }

    /** Value for @p key, default-constructed and inserted if absent. */
    V &operator[](K key)
    {
        SIM_ASSERT(key != empty_, "inserting the sentinel key");
        if ((size_ + 1) * 4 > slots_.size() * 3)
            rehash(slots_.size() * 2);
        std::size_t i = home(key);
        while (slots_[i].key != empty_) {
            if (slots_[i].key == key)
                return slots_[i].val;
            i = (i + 1) & mask_;
        }
        slots_[i].key = key;
        slots_[i].val = V{};
        ++size_;
        SIM_AUDIT_ONLY(if (auditTick_.due()) auditInvariants();)
        return slots_[i].val;
    }

    bool erase(K key)
    {
        std::size_t i = home(key);
        while (true) {
            if (slots_[i].key == empty_)
                return false;
            if (slots_[i].key == key)
                break;
            i = (i + 1) & mask_;
        }
        // Backward-shift deletion: pull each displaced follower into
        // the hole when its own probe path covers the hole.
        std::size_t hole = i;
        std::size_t j = i;
        while (true) {
            j = (j + 1) & mask_;
            if (slots_[j].key == empty_)
                break;
            const std::size_t h = home(slots_[j].key);
            if (((j - h) & mask_) >= ((j - hole) & mask_)) {
                slots_[hole] = slots_[j];
                hole = j;
            }
        }
        slots_[hole].key = empty_;
        slots_[hole].val = V{};
        SIM_ASSERT(size_ > 0, "erase with a zero size count");
        --size_;
        SIM_AUDIT_ONLY(if (auditTick_.due()) auditInvariants();)
        return true;
    }

    void clear()
    {
        if (size_ == 0)
            return;
        for (Slot &s : slots_)
            s = Slot{empty_, V{}};
        size_ = 0;
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /**
     * Probe-chain integrity walk. For every occupied slot, the
     * linear-probe path from the key's home slot must reach it
     * without crossing an empty slot (otherwise find() would miss a
     * present key — the failure mode of a buggy backward-shift
     * delete), and the occupied count must match size_. O(capacity *
     * probe length); sampled from the mutators in Audit builds.
     */
    void auditInvariants() const
    {
        std::size_t occupied = 0;
        for (std::size_t i = 0; i < slots_.size(); ++i) {
            if (slots_[i].key == empty_)
                continue;
            ++occupied;
            for (std::size_t j = home(slots_[i].key); j != i;
                 j = (j + 1) & mask_) {
                SIM_ASSERT(slots_[j].key != empty_,
                           "flat map probe chain broken: key in slot ",
                           i, " is unreachable past empty slot ", j);
            }
        }
        SIM_ASSERT(occupied == size_,
                   "flat map size count out of sync: ", occupied,
                   " occupied slots vs size ", size_);
    }

    /**
     * Serialize the table slot-verbatim (capacity plus every slot,
     * occupied or empty) so the restored map reproduces the exact
     * probe layout — including displacement left by past erases —
     * rather than a rehashed equivalent. @p fn serializes one value.
     */
    template <typename SaveFn>
    void
    save(SnapWriter &w, SaveFn &&fn) const
    {
        w.u64(slots_.size());
        w.u64(size_);
        for (const Slot &s : slots_) {
            w.u64(static_cast<std::uint64_t>(s.key));
            fn(w, s.val);
        }
    }

    template <typename LoadFn>
    void
    restore(SnapReader &r, LoadFn &&fn)
    {
        const std::uint64_t capacity = r.u64();
        SIM_ASSERT(capacity >= 16 &&
                       (capacity & (capacity - 1)) == 0,
                   "snapshot FlatMap capacity not a power of two");
        size_ = static_cast<std::size_t>(r.u64());
        slots_.resize(static_cast<std::size_t>(capacity));
        mask_ = static_cast<std::size_t>(capacity) - 1;
        for (Slot &s : slots_) {
            s.key = static_cast<K>(r.u64());
            s.val = fn(r);
        }
        SIM_AUDIT_ONLY(auditInvariants();)
    }

  private:
    friend struct AuditPeer;
    struct Slot
    {
        K key;
        V val;
    };

    std::size_t home(K key) const
    {
        return static_cast<std::size_t>(
                   mix64(static_cast<std::uint64_t>(key))) &
               mask_;
    }

    void rehash(std::size_t newCap)
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(newCap, Slot{empty_, V{}});
        mask_ = newCap - 1;
        size_ = 0;
        for (const Slot &s : old) {
            if (s.key != empty_)
                (*this)[s.key] = s.val;
        }
    }

    SIM_SNAPSHOT_FIELDS(5);

    K empty_;
    std::vector<Slot> slots_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
    AuditSampler auditTick_{1024};
};

} // namespace cdfsim

#endif // CDFSIM_COMMON_FLAT_MAP_HH
