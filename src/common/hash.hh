/**
 * @file
 * Small non-cryptographic hashing utilities shared by the simulator
 * and its tooling (golden-result fingerprints, flat-map mixing).
 */

#ifndef CDFSIM_COMMON_HASH_HH
#define CDFSIM_COMMON_HASH_HH

#include <cstdint>
#include <string_view>

namespace cdfsim
{

/** FNV-1a 64-bit over a byte range. */
constexpr std::uint64_t
fnv1a64(std::string_view bytes,
        std::uint64_t seed = 0xCBF29CE484222325ull)
{
    std::uint64_t h = seed;
    for (char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001B3ull;
    }
    return h;
}

/**
 * Finalizer-style 64-bit integer mix (splitmix64). Used by the
 * open-addressing flat maps to spread sequential keys (timestamps,
 * PCs) across buckets.
 */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

} // namespace cdfsim

#endif // CDFSIM_COMMON_HASH_HH
