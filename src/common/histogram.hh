/**
 * @file
 * Simple fixed-bucket histogram plus streaming mean, used for things
 * like ROB-occupancy distributions (Fig. 1) and MLP sampling
 * (Fig. 14).
 */

#ifndef CDFSIM_COMMON_HISTOGRAM_HH
#define CDFSIM_COMMON_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/serialize.hh"

namespace cdfsim
{

/** Histogram over [0, buckets) with an overflow bucket at the top. */
class Histogram
{
  public:
    explicit Histogram(std::size_t buckets)
        : counts_(buckets + 1, 0), samples_(0), sum_(0)
    {
        SIM_ASSERT(buckets > 0, "Histogram needs at least one bucket");
    }

    /** Record one sample of @p value. */
    void
    add(std::uint64_t value)
    {
        std::size_t b = value;
        if (b >= counts_.size() - 1)
            b = counts_.size() - 1;
        ++counts_[b];
        ++samples_;
        sum_ += value;
    }

    std::uint64_t samples() const { return samples_; }

    /** Mean of all recorded samples (0 when empty). */
    double
    mean() const
    {
        return samples_ == 0
            ? 0.0
            : static_cast<double>(sum_) / static_cast<double>(samples_);
    }

    /** Count in bucket @p b (the last bucket is overflow). */
    std::uint64_t
    bucket(std::size_t b) const
    {
        SIM_ASSERT(b < counts_.size(), "Histogram bucket out of range");
        return counts_[b];
    }

    std::size_t numBuckets() const { return counts_.size(); }

    /** Fraction of samples at or above @p value. */
    double
    fractionAtLeast(std::uint64_t value) const
    {
        if (samples_ == 0)
            return 0.0;
        std::uint64_t n = 0;
        for (std::size_t b = value; b < counts_.size(); ++b)
            n += counts_[b];
        return static_cast<double>(n) / static_cast<double>(samples_);
    }

    void
    reset()
    {
        for (auto &c : counts_)
            c = 0;
        samples_ = 0;
        sum_ = 0;
    }

  private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t samples_;
    std::uint64_t sum_;
};

/** Streaming mean without storing samples. */
class RunningMean
{
  public:
    void
    add(double v)
    {
        sum_ += v;
        ++n_;
    }

    /**
     * Account @p n samples of the same value in one step. Exactly
     * equivalent to calling add(v) n times when v and v*n are
     * integers below 2^53: integer-valued doubles add exactly, so
     * v + v + ... (n times) == v * n bit-for-bit. The idle-skip fast
     * path relies on this to bulk-apply the per-cycle MLP sample.
     */
    void
    addRepeated(double v, std::uint64_t n)
    {
        sum_ += v * static_cast<double>(n);
        n_ += n;
    }

    double mean() const { return n_ == 0 ? 0.0 : sum_ / n_; }
    std::uint64_t samples() const { return n_; }

    void
    reset()
    {
        sum_ = 0.0;
        n_ = 0;
    }

    void
    save(SnapWriter &w) const
    {
        w.f64(sum_);
        w.u64(n_);
    }

    void
    restore(SnapReader &r)
    {
        sum_ = r.f64();
        n_ = r.u64();
    }

  private:
    SIM_SNAPSHOT_FIELDS(2);

    double sum_ = 0.0;
    std::uint64_t n_ = 0;
};

} // namespace cdfsim

#endif // CDFSIM_COMMON_HISTOGRAM_HH
