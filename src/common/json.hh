/**
 * @file
 * Minimal JSON document builder and writer.
 *
 * The sweep runner and the figure harnesses emit machine-readable
 * results (BENCH_*.json) through this. Design goals, in order:
 * deterministic output (object keys keep insertion order, numbers
 * render via a fixed format) so two runs of the same sweep produce
 * bit-identical files; no external dependencies; enough of JSON to
 * serialize results (no parser — nothing in the simulator reads
 * JSON back).
 */

#ifndef CDFSIM_COMMON_JSON_HH
#define CDFSIM_COMMON_JSON_HH

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace cdfsim
{

/**
 * A JSON value: null, bool, number (integer or double), string,
 * array, or object. Objects preserve insertion order, which keeps
 * serialized sweeps diffable across runs and PRs.
 */
class Json
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Int,
        Uint,
        Double,
        String,
        Array,
        Object,
    };

    Json() : type_(Type::Null) {}
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(std::int64_t v) : type_(Type::Int), int_(v) {}
    Json(int v) : Json(static_cast<std::int64_t>(v)) {}
    Json(std::uint64_t v) : type_(Type::Uint), uint_(v) {}
    Json(unsigned v) : Json(static_cast<std::uint64_t>(v)) {}
    Json(double v) : type_(Type::Double), double_(v) {}
    Json(std::string s) : type_(Type::String), str_(std::move(s)) {}
    Json(const char *s) : type_(Type::String), str_(s) {}

    static Json
    array()
    {
        Json j;
        j.type_ = Type::Array;
        return j;
    }

    static Json
    object()
    {
        Json j;
        j.type_ = Type::Object;
        return j;
    }

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }

    /** Append to an array. */
    void
    push_back(Json v)
    {
        SIM_ASSERT(type_ == Type::Array, "push_back on non-array Json");
        items_.push_back(std::move(v));
    }

    /**
     * Get-or-create the member called @p key of an object. New keys
     * append (insertion order); existing keys return the prior slot.
     */
    Json &
    operator[](const std::string &key)
    {
        SIM_ASSERT(type_ == Type::Object, "operator[] on non-object Json");
        for (auto &kv : members_) {
            if (kv.first == key)
                return kv.second;
        }
        members_.emplace_back(key, Json());
        return members_.back().second;
    }

    std::size_t
    size() const
    {
        return type_ == Type::Array ? items_.size() : members_.size();
    }

    const std::vector<Json> &items() const { return items_; }

    const std::vector<std::pair<std::string, Json>> &
    members() const
    {
        return members_;
    }

    /** Serialize. @p indent < 0 means compact single-line output. */
    std::string
    dump(int indent = 2) const
    {
        std::string out;
        write(out, indent, 0);
        if (indent >= 0)
            out.push_back('\n');
        return out;
    }

    /** Escape @p s per RFC 8259 (quotes included). */
    static std::string
    escape(const std::string &s)
    {
        std::string out;
        out.reserve(s.size() + 2);
        out.push_back('"');
        for (unsigned char c : s) {
            switch (c) {
              case '"': out += "\\\""; break;
              case '\\': out += "\\\\"; break;
              case '\b': out += "\\b"; break;
              case '\f': out += "\\f"; break;
              case '\n': out += "\\n"; break;
              case '\r': out += "\\r"; break;
              case '\t': out += "\\t"; break;
              default:
                if (c < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out.push_back(static_cast<char>(c));
                }
            }
        }
        out.push_back('"');
        return out;
    }

  private:
    void
    write(std::string &out, int indent, int depth) const
    {
        switch (type_) {
          case Type::Null: out += "null"; return;
          case Type::Bool: out += bool_ ? "true" : "false"; return;
          case Type::Int: out += std::to_string(int_); return;
          case Type::Uint: out += std::to_string(uint_); return;
          case Type::Double: out += formatDouble(double_); return;
          case Type::String: out += escape(str_); return;
          case Type::Array:
          case Type::Object: break;
        }

        const bool obj = type_ == Type::Object;
        const std::size_t n = obj ? members_.size() : items_.size();
        out.push_back(obj ? '{' : '[');
        for (std::size_t i = 0; i < n; ++i) {
            if (i > 0)
                out.push_back(',');
            newline(out, indent, depth + 1);
            if (obj) {
                out += escape(members_[i].first);
                out += indent >= 0 ? ": " : ":";
                members_[i].second.write(out, indent, depth + 1);
            } else {
                items_[i].write(out, indent, depth + 1);
            }
        }
        if (n > 0)
            newline(out, indent, depth);
        out.push_back(obj ? '}' : ']');
    }

    static void
    newline(std::string &out, int indent, int depth)
    {
        if (indent < 0)
            return;
        out.push_back('\n');
        out.append(static_cast<std::size_t>(indent) *
                       static_cast<std::size_t>(depth),
                   ' ');
    }

    /**
     * Shortest round-trippable decimal form: %.17g always
     * round-trips an IEEE double, but try shorter forms first so
     * 0.1 prints as "0.1" and not "0.10000000000000001".
     */
    static std::string
    formatDouble(double v)
    {
        if (std::isnan(v))
            return "null"; // JSON has no NaN
        if (std::isinf(v))
            return v > 0 ? "1e999" : "-1e999";
        char buf[40];
        for (int prec = 15; prec <= 17; ++prec) {
            std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
            if (std::strtod(buf, nullptr) == v)
                break;
        }
        std::string s(buf);
        // Ensure a double never serializes as a bare integer, so the
        // field's type is stable across values.
        if (s.find_first_of(".eE") == std::string::npos)
            s += ".0";
        return s;
    }

    Type type_;
    bool bool_ = false;
    std::int64_t int_ = 0;
    std::uint64_t uint_ = 0;
    double double_ = 0.0;
    std::string str_;
    std::vector<Json> items_;
    std::vector<std::pair<std::string, Json>> members_;
};

} // namespace cdfsim

#endif // CDFSIM_COMMON_JSON_HH
