/**
 * @file
 * Minimal JSON document builder and writer.
 *
 * The sweep runner and the figure harnesses emit machine-readable
 * results (BENCH_*.json) through this. Design goals, in order:
 * deterministic output (object keys keep insertion order, numbers
 * render via a fixed format) so two runs of the same sweep produce
 * bit-identical files; no external dependencies; enough of JSON to
 * serialize results. A small recursive-descent parser reads the
 * artifacts back for offline comparison (tools/bench_compare).
 */

#ifndef CDFSIM_COMMON_JSON_HH
#define CDFSIM_COMMON_JSON_HH

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace cdfsim
{

/**
 * A JSON value: null, bool, number (integer or double), string,
 * array, or object. Objects preserve insertion order, which keeps
 * serialized sweeps diffable across runs and PRs.
 */
class Json
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Int,
        Uint,
        Double,
        String,
        Array,
        Object,
    };

    Json() : type_(Type::Null) {}
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(std::int64_t v) : type_(Type::Int), int_(v) {}
    Json(int v) : Json(static_cast<std::int64_t>(v)) {}
    Json(std::uint64_t v) : type_(Type::Uint), uint_(v) {}
    Json(unsigned v) : Json(static_cast<std::uint64_t>(v)) {}
    Json(double v) : type_(Type::Double), double_(v) {}
    Json(std::string s) : type_(Type::String), str_(std::move(s)) {}
    Json(const char *s) : type_(Type::String), str_(s) {}

    static Json
    array()
    {
        Json j;
        j.type_ = Type::Array;
        return j;
    }

    static Json
    object()
    {
        Json j;
        j.type_ = Type::Object;
        return j;
    }

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }

    bool
    asBool() const
    {
        SIM_ASSERT(type_ == Type::Bool, "not a bool");
        return bool_;
    }

    /** Numeric value of an Int/Uint/Double node. */
    double
    asNumber() const
    {
        switch (type_) {
          case Type::Int: return static_cast<double>(int_);
          case Type::Uint: return static_cast<double>(uint_);
          case Type::Double: return double_;
          default: SIM_ASSERT(false, "not a number"); return 0.0;
        }
    }

    std::uint64_t
    asUint() const
    {
        if (type_ == Type::Int) {
            SIM_ASSERT(int_ >= 0, "negative as uint");
            return static_cast<std::uint64_t>(int_);
        }
        SIM_ASSERT(type_ == Type::Uint, "not an unsigned integer");
        return uint_;
    }

    const std::string &
    asString() const
    {
        SIM_ASSERT(type_ == Type::String, "not a string");
        return str_;
    }

    /** Member lookup on an object; nullptr when absent. */
    const Json *
    find(const std::string &key) const
    {
        if (type_ != Type::Object)
            return nullptr;
        for (const auto &kv : members_) {
            if (kv.first == key)
                return &kv.second;
        }
        return nullptr;
    }

    /** Append to an array. */
    void
    push_back(Json v)
    {
        SIM_ASSERT(type_ == Type::Array, "push_back on non-array Json");
        items_.push_back(std::move(v));
    }

    /**
     * Get-or-create the member called @p key of an object. New keys
     * append (insertion order); existing keys return the prior slot.
     */
    Json &
    operator[](const std::string &key)
    {
        SIM_ASSERT(type_ == Type::Object, "operator[] on non-object Json");
        for (auto &kv : members_) {
            if (kv.first == key)
                return kv.second;
        }
        members_.emplace_back(key, Json());
        return members_.back().second;
    }

    std::size_t
    size() const
    {
        return type_ == Type::Array ? items_.size() : members_.size();
    }

    const std::vector<Json> &items() const { return items_; }

    const std::vector<std::pair<std::string, Json>> &
    members() const
    {
        return members_;
    }

    /** Serialize. @p indent < 0 means compact single-line output. */
    std::string
    dump(int indent = 2) const
    {
        std::string out;
        write(out, indent, 0);
        if (indent >= 0)
            out.push_back('\n');
        return out;
    }

    /** Escape @p s per RFC 8259 (quotes included). */
    static std::string
    escape(const std::string &s)
    {
        std::string out;
        out.reserve(s.size() + 2);
        out.push_back('"');
        for (unsigned char c : s) {
            switch (c) {
              case '"': out += "\\\""; break;
              case '\\': out += "\\\\"; break;
              case '\b': out += "\\b"; break;
              case '\f': out += "\\f"; break;
              case '\n': out += "\\n"; break;
              case '\r': out += "\\r"; break;
              case '\t': out += "\\t"; break;
              default:
                if (c < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out.push_back(static_cast<char>(c));
                }
            }
        }
        out.push_back('"');
        return out;
    }

    /**
     * Parse @p text into a document. On malformed input returns a
     * Null value and, when @p error is non-null, stores a short
     * message with the byte offset. Accepts exactly what write()
     * emits (including the "1e999" overflow-infinity form, which
     * strtod maps back to +/-inf).
     */
    static Json
    parse(const std::string &text, std::string *error = nullptr)
    {
        Parser p{text, 0, nullptr};
        Json v;
        if (!p.value(v) || !p.atEnd()) {
            if (error) {
                *error = (p.message ? p.message : "trailing garbage");
                *error += " at byte " + std::to_string(p.pos);
            }
            return Json();
        }
        return v;
    }

  private:
    /** Recursive-descent state for parse(). */
    struct Parser
    {
        const std::string &text;
        std::size_t pos;
        const char *message; //!< set on first failure

        bool
        fail(const char *why)
        {
            if (!message)
                message = why;
            return false;
        }

        void
        skipWs()
        {
            while (pos < text.size() &&
                   (text[pos] == ' ' || text[pos] == '\t' ||
                    text[pos] == '\n' || text[pos] == '\r'))
                ++pos;
        }

        bool
        atEnd()
        {
            skipWs();
            return pos == text.size();
        }

        bool
        literal(const char *word, std::size_t len)
        {
            if (text.compare(pos, len, word) != 0)
                return fail("bad literal");
            pos += len;
            return true;
        }

        bool
        value(Json &out)
        {
            skipWs();
            if (pos >= text.size())
                return fail("unexpected end of input");
            switch (text[pos]) {
              case 'n': out = Json(); return literal("null", 4);
              case 't': out = Json(true); return literal("true", 4);
              case 'f': out = Json(false); return literal("false", 5);
              case '"': return string(out);
              case '[': return array(out);
              case '{': return object(out);
              default: return number(out);
            }
        }

        bool
        string(Json &out)
        {
            ++pos; // opening quote
            std::string s;
            while (true) {
                if (pos >= text.size())
                    return fail("unterminated string");
                const char c = text[pos++];
                if (c == '"')
                    break;
                if (static_cast<unsigned char>(c) < 0x20)
                    return fail("raw control char in string");
                if (c != '\\') {
                    s.push_back(c);
                    continue;
                }
                if (pos >= text.size())
                    return fail("unterminated escape");
                const char e = text[pos++];
                switch (e) {
                  case '"': s.push_back('"'); break;
                  case '\\': s.push_back('\\'); break;
                  case '/': s.push_back('/'); break;
                  case 'b': s.push_back('\b'); break;
                  case 'f': s.push_back('\f'); break;
                  case 'n': s.push_back('\n'); break;
                  case 'r': s.push_back('\r'); break;
                  case 't': s.push_back('\t'); break;
                  case 'u': {
                    unsigned cp = 0;
                    if (!hex4(cp))
                        return false;
                    appendUtf8(s, cp);
                    break;
                  }
                  default: return fail("bad escape");
                }
            }
            out = Json(std::move(s));
            return true;
        }

        bool
        hex4(unsigned &cp)
        {
            if (pos + 4 > text.size())
                return fail("truncated \\u escape");
            cp = 0;
            for (int i = 0; i < 4; ++i) {
                const char c = text[pos++];
                cp <<= 4;
                if (c >= '0' && c <= '9')
                    cp |= static_cast<unsigned>(c - '0');
                else if (c >= 'a' && c <= 'f')
                    cp |= static_cast<unsigned>(c - 'a' + 10);
                else if (c >= 'A' && c <= 'F')
                    cp |= static_cast<unsigned>(c - 'A' + 10);
                else
                    return fail("bad hex digit in \\u escape");
            }
            return true;
        }

        /** BMP code point to UTF-8 (surrogates pass through as-is;
         *  escape() never emits them). */
        static void
        appendUtf8(std::string &s, unsigned cp)
        {
            if (cp < 0x80) {
                s.push_back(static_cast<char>(cp));
            } else if (cp < 0x800) {
                s.push_back(static_cast<char>(0xC0 | (cp >> 6)));
                s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            } else {
                s.push_back(static_cast<char>(0xE0 | (cp >> 12)));
                s.push_back(
                    static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
                s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            }
        }

        bool
        number(Json &out)
        {
            const std::size_t start = pos;
            bool isDouble = false;
            if (pos < text.size() && text[pos] == '-')
                ++pos;
            while (pos < text.size()) {
                const char c = text[pos];
                if (c >= '0' && c <= '9') {
                    ++pos;
                } else if (c == '.' || c == 'e' || c == 'E' ||
                           c == '+' || c == '-') {
                    isDouble = true;
                    ++pos;
                } else {
                    break;
                }
            }
            const std::string tok = text.substr(start, pos - start);
            if (tok.empty() || tok == "-")
                return fail("bad number");
            errno = 0;
            char *end = nullptr;
            if (!isDouble) {
                // Integers keep their exact 64-bit value and
                // signedness class, matching what write() emitted.
                if (tok[0] == '-') {
                    const long long v =
                        std::strtoll(tok.c_str(), &end, 10);
                    if (end != tok.c_str() + tok.size() || errno)
                        return fail("bad integer");
                    out = Json(static_cast<std::int64_t>(v));
                } else {
                    const unsigned long long v =
                        std::strtoull(tok.c_str(), &end, 10);
                    if (end != tok.c_str() + tok.size() || errno)
                        return fail("bad integer");
                    out = Json(static_cast<std::uint64_t>(v));
                }
                return true;
            }
            const double v = std::strtod(tok.c_str(), &end);
            if (end != tok.c_str() + tok.size())
                return fail("bad number");
            out = Json(v);
            return true;
        }

        bool
        array(Json &out)
        {
            ++pos; // '['
            out = Json::array();
            skipWs();
            if (pos < text.size() && text[pos] == ']') {
                ++pos;
                return true;
            }
            while (true) {
                Json item;
                if (!value(item))
                    return false;
                out.push_back(std::move(item));
                skipWs();
                if (pos >= text.size())
                    return fail("unterminated array");
                const char c = text[pos++];
                if (c == ']')
                    return true;
                if (c != ',')
                    return fail("expected ',' or ']'");
            }
        }

        bool
        object(Json &out)
        {
            ++pos; // '{'
            out = Json::object();
            skipWs();
            if (pos < text.size() && text[pos] == '}') {
                ++pos;
                return true;
            }
            while (true) {
                skipWs();
                if (pos >= text.size() || text[pos] != '"')
                    return fail("expected object key");
                Json key;
                if (!string(key))
                    return false;
                skipWs();
                if (pos >= text.size() || text[pos++] != ':')
                    return fail("expected ':'");
                Json val;
                if (!value(val))
                    return false;
                out[key.asString()] = std::move(val);
                skipWs();
                if (pos >= text.size())
                    return fail("unterminated object");
                const char c = text[pos++];
                if (c == '}')
                    return true;
                if (c != ',')
                    return fail("expected ',' or '}'");
            }
        }
    };

    void
    write(std::string &out, int indent, int depth) const
    {
        switch (type_) {
          case Type::Null: out += "null"; return;
          case Type::Bool: out += bool_ ? "true" : "false"; return;
          case Type::Int: out += std::to_string(int_); return;
          case Type::Uint: out += std::to_string(uint_); return;
          case Type::Double: out += formatDouble(double_); return;
          case Type::String: out += escape(str_); return;
          case Type::Array:
          case Type::Object: break;
        }

        const bool obj = type_ == Type::Object;
        const std::size_t n = obj ? members_.size() : items_.size();
        out.push_back(obj ? '{' : '[');
        for (std::size_t i = 0; i < n; ++i) {
            if (i > 0)
                out.push_back(',');
            newline(out, indent, depth + 1);
            if (obj) {
                out += escape(members_[i].first);
                out += indent >= 0 ? ": " : ":";
                members_[i].second.write(out, indent, depth + 1);
            } else {
                items_[i].write(out, indent, depth + 1);
            }
        }
        if (n > 0)
            newline(out, indent, depth);
        out.push_back(obj ? '}' : ']');
    }

    static void
    newline(std::string &out, int indent, int depth)
    {
        if (indent < 0)
            return;
        out.push_back('\n');
        out.append(static_cast<std::size_t>(indent) *
                       static_cast<std::size_t>(depth),
                   ' ');
    }

    /**
     * Shortest round-trippable decimal form: %.17g always
     * round-trips an IEEE double, but try shorter forms first so
     * 0.1 prints as "0.1" and not "0.10000000000000001".
     */
    static std::string
    formatDouble(double v)
    {
        if (std::isnan(v))
            return "null"; // JSON has no NaN
        if (std::isinf(v))
            return v > 0 ? "1e999" : "-1e999";
        char buf[40];
        for (int prec = 15; prec <= 17; ++prec) {
            std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
            if (std::strtod(buf, nullptr) == v)
                break;
        }
        std::string s(buf);
        // Ensure a double never serializes as a bare integer, so the
        // field's type is stable across values.
        if (s.find_first_of(".eE") == std::string::npos)
            s += ".0";
        return s;
    }

    Type type_;
    bool bool_ = false;
    std::int64_t int_ = 0;
    std::uint64_t uint_ = 0;
    double double_ = 0.0;
    std::string str_;
    std::vector<Json> items_;
    std::vector<std::pair<std::string, Json>> members_;
};

} // namespace cdfsim

#endif // CDFSIM_COMMON_JSON_HH
