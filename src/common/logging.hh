/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  — an internal simulator bug; aborts.
 * fatal()  — a user/configuration error; exits with status 1.
 * warn()   — something suspicious but survivable.
 * inform() — status output.
 */

#ifndef CDFSIM_COMMON_LOGGING_HH
#define CDFSIM_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace cdfsim
{

/** Thrown by panic() so tests can assert on simulator invariants. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Thrown by fatal() for user-level configuration errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail
{

inline void
appendAll(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
appendAll(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    appendAll(os, rest...);
}

} // namespace detail

/**
 * Report an internal simulator invariant violation. Never returns.
 * Throws PanicError so unit tests can exercise failure paths without
 * killing the test process.
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    std::ostringstream os;
    os << "panic: ";
    detail::appendAll(os, args...);
    throw PanicError(os.str());
}

/** Report an unrecoverable user error (bad config etc.). */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    std::ostringstream os;
    os << "fatal: ";
    detail::appendAll(os, args...);
    throw FatalError(os.str());
}

/** Non-fatal warning to stderr. */
template <typename... Args>
void
warn(const Args &...args)
{
    std::ostringstream os;
    detail::appendAll(os, args...);
    std::fprintf(stderr, "warn: %s\n", os.str().c_str());
}

/** Informational message to stdout. */
template <typename... Args>
void
inform(const Args &...args)
{
    std::ostringstream os;
    detail::appendAll(os, args...);
    std::fprintf(stdout, "info: %s\n", os.str().c_str());
}

/**
 * Simulator-grade assertion: active in all build types (unlike
 * assert), and reports through panic() so it is testable.
 */
#define SIM_ASSERT(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::cdfsim::panic("assertion '", #cond, "' failed at ",           \
                            __FILE__, ":", __LINE__, " ", ##__VA_ARGS__);   \
        }                                                                   \
    } while (0)

} // namespace cdfsim

#endif // CDFSIM_COMMON_LOGGING_HH
