/**
 * @file
 * Chunked object pool with a LIFO freelist and stable addresses.
 */

#ifndef CDFSIM_COMMON_POOL_HH
#define CDFSIM_COMMON_POOL_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "common/audit.hh"
#include "common/logging.hh"
#include "common/serialize.hh"

namespace cdfsim
{

/**
 * Objects live in fixed-size slabs that are never moved or released,
 * so pointers stay valid for an object's whole lifetime and slots can
 * be handed out as compact 32-bit handles. allocate() constructs a
 * value-initialized T in a recycled slot — after a slab is warm there
 * is no heap traffic at all. alive() answers whether a handle
 * currently names a live object, which lets deferred references
 * (e.g. wakeup lists) validate a stale handle before dereferencing.
 */
template <typename T>
class SlabPool
{
  public:
    static constexpr std::uint32_t kNpos = 0xFFFF'FFFFu;

    explicit SlabPool(std::uint32_t slabSize = 1024)
        : slabSize_(slabSize)
    {
        SIM_ASSERT(slabSize_ > 0, "empty slab");
    }

    SlabPool(const SlabPool &) = delete;
    SlabPool &operator=(const SlabPool &) = delete;

    ~SlabPool()
    {
        for (std::uint32_t i = 0; i < alive_.size(); ++i) {
            if (alive_[i])
                at(i).~T();
        }
    }

    /** Construct a value-initialized T; returns its handle. */
    std::uint32_t allocate()
    {
        if (freeList_.empty())
            grow();
        const std::uint32_t idx = freeList_.back();
        freeList_.pop_back();
        SIM_ASSERT(!alive_[idx], "allocating a slot that is already live");
        ::new (slotPtr(idx)) T();
        alive_[idx] = 1;
        ++live_;
        SIM_AUDIT_ONLY(if (auditTick_.due()) auditInvariants();)
        return idx;
    }

    /** Destroy the object at @p idx and recycle its slot. */
    void free(std::uint32_t idx)
    {
        SIM_ASSERT(idx < alive_.size() && alive_[idx],
                   "freeing a dead pool slot");
        at(idx).~T();
        alive_[idx] = 0;
        freeList_.push_back(idx);
        --live_;
        SIM_AUDIT_ONLY(if (auditTick_.due()) auditInvariants();)
    }

    T &at(std::uint32_t idx)
    {
        return *std::launder(reinterpret_cast<T *>(slotPtr(idx)));
    }

    const T &at(std::uint32_t idx) const
    {
        return *std::launder(
            reinterpret_cast<const T *>(slotPtr(idx)));
    }

    bool alive(std::uint32_t idx) const
    {
        return idx < alive_.size() && alive_[idx];
    }

    std::size_t liveCount() const { return live_; }
    std::size_t capacity() const { return alive_.size(); }

    /**
     * Full liveness/freelist consistency walk. Panics on the first
     * violation: live + free must cover every slot exactly once, the
     * alive bitmap must agree with the live count, and no freelist
     * entry may be live, out of range, or duplicated. O(capacity);
     * hot paths invoke it through a sampler in Audit builds only.
     */
    void auditInvariants() const
    {
        SIM_ASSERT(live_ + freeList_.size() == alive_.size(),
                   "slab pool live/free slot accounting out of sync: ",
                   live_, " live + ", freeList_.size(), " free != ",
                   alive_.size(), " slots");
        std::size_t flagged = 0;
        for (std::uint8_t a : alive_)
            flagged += a;
        SIM_ASSERT(flagged == live_,
                   "slab pool alive bitmap disagrees with live count: ",
                   flagged, " flagged vs ", live_, " counted");
        std::vector<std::uint8_t> seen(alive_.size(), 0);
        for (std::uint32_t idx : freeList_) {
            SIM_ASSERT(idx < alive_.size(),
                       "slab pool free-list entry ", idx,
                       " out of range");
            SIM_ASSERT(!alive_[idx],
                       "slab pool free-list entry ", idx, " is live");
            SIM_ASSERT(!seen[idx],
                       "slab pool free-list entry ", idx, " duplicated");
            seen[idx] = 1;
        }
    }

    /**
     * Serialize the pool so a restored pool reproduces the exact
     * same future handle assignment: slab count, alive bitmap and
     * the freelist are written verbatim (the LIFO order *is* the
     * allocation order), then @p fn serializes each live element in
     * ascending handle order.
     */
    template <typename SaveFn>
    void
    save(SnapWriter &w, SaveFn &&fn) const
    {
        w.u32(slabSize_);
        w.u64(alive_.size());
        for (std::uint8_t a : alive_)
            w.u8(a);
        w.u64(freeList_.size());
        for (std::uint32_t idx : freeList_)
            w.u32(idx);
        for (std::uint32_t i = 0; i < alive_.size(); ++i) {
            if (alive_[i])
                fn(w, at(i));
        }
    }

    /** Inverse of save(); @p fn fills each re-constructed element. */
    template <typename LoadFn>
    void
    restore(SnapReader &r, LoadFn &&fn)
    {
        for (std::uint32_t i = 0; i < alive_.size(); ++i) {
            if (alive_[i])
                at(i).~T();
        }
        const std::uint32_t slabSize = r.u32();
        SIM_ASSERT(slabSize == slabSize_,
                   "snapshot slab size ", slabSize,
                   " != configured ", slabSize_);
        const std::uint64_t capacity = r.u64();
        SIM_ASSERT(capacity % slabSize_ == 0,
                   "snapshot pool capacity not slab-aligned");
        while (slabs_.size() * slabSize_ < capacity)
            slabs_.push_back(std::make_unique<Slot[]>(slabSize_));
        const std::uint64_t ourCapacity =
            slabs_.size() * std::uint64_t{slabSize_};
        alive_.assign(ourCapacity, 0);
        for (std::uint64_t i = 0; i < capacity; ++i)
            alive_[i] = r.u8();
        // Slots beyond the snapshot's capacity exist only when this
        // pool grew after the snapshot was taken. The snapshot pool
        // would re-grow them on demand in ascending slab order, so
        // seed the freelist bottom with exactly the order grow()
        // would produce, then lay the saved freelist verbatim on top
        // (LIFO: the saved entries are consumed first).
        freeList_.clear();
        for (std::uint64_t base = ourCapacity; base > capacity;) {
            base -= slabSize_;
            for (std::uint32_t i = slabSize_; i-- > 0;)
                freeList_.push_back(
                    static_cast<std::uint32_t>(base + i));
        }
        const std::uint64_t savedFree = r.u64();
        for (std::uint64_t i = 0; i < savedFree; ++i)
            freeList_.push_back(r.u32());
        live_ = 0;
        for (std::uint32_t i = 0; i < capacity; ++i) {
            if (!alive_[i])
                continue;
            ::new (slotPtr(i)) T();
            fn(r, at(i));
            ++live_;
        }
        SIM_AUDIT_ONLY(auditInvariants();)
    }

  private:
    friend struct AuditPeer;
    struct Slot
    {
        alignas(T) unsigned char raw[sizeof(T)];
    };

    void *slotPtr(std::uint32_t idx)
    {
        return slabs_[idx / slabSize_][idx % slabSize_].raw;
    }

    const void *slotPtr(std::uint32_t idx) const
    {
        return slabs_[idx / slabSize_][idx % slabSize_].raw;
    }

    void grow()
    {
        const std::uint32_t base =
            static_cast<std::uint32_t>(slabs_.size()) * slabSize_;
        SIM_ASSERT(base + slabSize_ > base, "pool exhausted");
        slabs_.push_back(std::make_unique<Slot[]>(slabSize_));
        alive_.resize(base + slabSize_, 0);
        // Push in reverse so the LIFO freelist hands out ascending
        // indices within a fresh slab.
        for (std::uint32_t i = slabSize_; i-- > 0;)
            freeList_.push_back(base + i);
    }

    SIM_SNAPSHOT_FIELDS(6);

    std::uint32_t slabSize_;
    std::vector<std::unique_ptr<Slot[]>> slabs_;
    std::vector<std::uint8_t> alive_;
    std::vector<std::uint32_t> freeList_;
    std::size_t live_ = 0;
    AuditSampler auditTick_{4096};
};

} // namespace cdfsim

#endif // CDFSIM_COMMON_POOL_HH
