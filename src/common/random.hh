/**
 * @file
 * Deterministic pseudo-random number generator (xorshift128+).
 *
 * Every stochastic element of the simulator (workload data layouts,
 * random program generation in property tests) draws from this so
 * that runs are reproducible bit-for-bit from a seed.
 */

#ifndef CDFSIM_COMMON_RANDOM_HH
#define CDFSIM_COMMON_RANDOM_HH

#include <cstdint>

#include "common/logging.hh"

namespace cdfsim
{

/** Small, fast, seedable PRNG. Not cryptographic; purely for sim. */
class Random
{
  public:
    explicit Random(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
    {
        // SplitMix64 seeding to avoid weak all-zero-ish states.
        std::uint64_t z = seed + 0x9E3779B97F4A7C15ull;
        for (auto *s : {&s0_, &s1_}) {
            z += 0x9E3779B97F4A7C15ull;
            std::uint64_t x = z;
            x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
            x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
            *s = x ^ (x >> 31);
        }
        if (s0_ == 0 && s1_ == 0)
            s1_ = 1;
    }

    /** Uniform 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = s0_;
        const std::uint64_t y = s1_;
        s0_ = y;
        x ^= x << 23;
        s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1_ + y;
    }

    /** Uniform value in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        SIM_ASSERT(bound > 0, "Random::below(0)");
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    std::uint64_t
    between(std::uint64_t lo, std::uint64_t hi)
    {
        SIM_ASSERT(lo <= hi, "Random::between bounds inverted");
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli draw: true with probability @p percent / 100. */
    bool
    chancePercent(unsigned percent)
    {
        return below(100) < percent;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    std::uint64_t s0_;
    std::uint64_t s1_;
};

} // namespace cdfsim

#endif // CDFSIM_COMMON_RANDOM_HH
