/**
 * @file
 * Saturating counter, the workhorse of predictors and of the paper's
 * Critical Count Tables (Section 3.2), which pair two counters of
 * different lengths per tracked load/branch.
 */

#ifndef CDFSIM_COMMON_SAT_COUNTER_HH
#define CDFSIM_COMMON_SAT_COUNTER_HH

#include <cstdint>

#include "common/logging.hh"

namespace cdfsim
{

/**
 * An n-bit up/down saturating counter.
 *
 * The counter saturates at [0, 2^bits - 1]. The paper's Critical
 * Count Tables use two of these with different widths to realise a
 * strict and a permissive criticality threshold.
 */
class SatCounter
{
  public:
    /**
     * @param bits Counter width in bits (1..16).
     * @param initial Initial value, clamped to the max.
     */
    explicit SatCounter(unsigned bits = 2, unsigned initial = 0)
        : maxVal_((1u << bits) - 1),
          value_(initial > maxVal_ ? maxVal_ : initial)
    {
        SIM_ASSERT(bits >= 1 && bits <= 16, "bad SatCounter width");
    }

    /** Increment, saturating at the maximum. */
    void
    increment(unsigned by = 1)
    {
        value_ = (value_ + by > maxVal_) ? maxVal_ : value_ + by;
    }

    /** Decrement, saturating at zero. */
    void
    decrement(unsigned by = 1)
    {
        value_ = (by > value_) ? 0 : value_ - by;
    }

    /** Current counter value. */
    unsigned value() const { return value_; }

    /** Maximum representable value. */
    unsigned maxValue() const { return maxVal_; }

    /** True when the counter is in its upper half (weak/strong taken). */
    bool isSet() const { return value_ > maxVal_ / 2; }

    /** True when saturated at the maximum. */
    bool isSaturated() const { return value_ == maxVal_; }

    /** Reset to an explicit value (clamped). */
    void
    set(unsigned v)
    {
        value_ = v > maxVal_ ? maxVal_ : v;
    }

    /** Reset to zero. */
    void reset() { value_ = 0; }

  private:
    unsigned maxVal_;
    unsigned value_;
};

} // namespace cdfsim

#endif // CDFSIM_COMMON_SAT_COUNTER_HH
