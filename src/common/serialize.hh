/**
 * @file
 * Versioned binary snapshot serialization.
 *
 * SnapWriter/SnapReader implement a little-endian, bounds-checked
 * byte-stream format used by the warmup checkpointing subsystem
 * (sim/snapshot.hh). Every snapshottable class exposes explicit
 * `save(SnapWriter &)` / `restore(SnapReader &)` members that write
 * and read each field in declaration order — raw struct memcpy is
 * never used, so the byte stream is independent of padding, host
 * endianness quirks, and container implementation details.
 *
 * The format carries no per-field tags: reader and writer must agree
 * exactly, which is enforced at a higher level by the checkpoint
 * schema version (sim/snapshot.cc) and at the source level by the
 * SIM_SNAPSHOT_FIELDS lint contract below.
 */

#ifndef CDFSIM_COMMON_SERIALIZE_HH
#define CDFSIM_COMMON_SERIALIZE_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/logging.hh"

/**
 * Snapshot field-count contract, checked by `tools/lint_sim`
 * (rule `snapshot-fields`): every class with a `save(...)` member
 * must carry `SIM_SNAPSHOT_FIELDS(n)` where @p n is the number of
 * data members the class declares — including members that are
 * deliberately *not* serialized (host-only profiling state, cached
 * stat references). Adding a field without bumping the count fails
 * the lint, which forces the author to decide whether the new field
 * belongs in save()/restore().
 */
#define SIM_SNAPSHOT_FIELDS(n) \
    static_assert((n) > 0, "snapshot field count must be positive")

namespace cdfsim
{

/** Append-only little-endian byte-stream writer. */
class SnapWriter
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    u16(std::uint16_t v)
    {
        u8(static_cast<std::uint8_t>(v));
        u8(static_cast<std::uint8_t>(v >> 8));
    }

    void
    u32(std::uint32_t v)
    {
        u16(static_cast<std::uint16_t>(v));
        u16(static_cast<std::uint16_t>(v >> 16));
    }

    void
    u64(std::uint64_t v)
    {
        u32(static_cast<std::uint32_t>(v));
        u32(static_cast<std::uint32_t>(v >> 32));
    }

    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void i8(std::int8_t v) { u8(static_cast<std::uint8_t>(v)); }
    void b(bool v) { u8(v ? 1 : 0); }
    void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

    void
    str(std::string_view s)
    {
        u64(s.size());
        buf_.insert(buf_.end(), s.begin(), s.end());
    }

    const std::vector<std::uint8_t> &bytes() const { return buf_; }
    std::size_t size() const { return buf_.size(); }

    /** FNV-1a over everything written so far. */
    std::uint64_t
    fnv1a() const
    {
        std::uint64_t h = 0xCBF29CE484222325ull;
        for (std::uint8_t byte : buf_) {
            h ^= byte;
            h *= 0x100000001B3ull;
        }
        return h;
    }

    /** Move the accumulated bytes out (leaves the writer empty). */
    std::vector<std::uint8_t> take() { return std::move(buf_); }

  private:
    std::vector<std::uint8_t> buf_;
};

/** Bounds-checked reader over a byte buffer produced by SnapWriter. */
class SnapReader
{
  public:
    SnapReader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    explicit SnapReader(const std::vector<std::uint8_t> &buf)
        : SnapReader(buf.data(), buf.size())
    {
    }

    std::uint8_t
    u8()
    {
        SIM_ASSERT(pos_ < size_, "snapshot stream underrun at byte ",
                   pos_, " of ", size_);
        return data_[pos_++];
    }

    std::uint16_t
    u16()
    {
        const std::uint16_t lo = u8();
        return static_cast<std::uint16_t>(lo |
                                          (std::uint16_t{u8()} << 8));
    }

    std::uint32_t
    u32()
    {
        const std::uint32_t lo = u16();
        return lo | (std::uint32_t{u16()} << 16);
    }

    std::uint64_t
    u64()
    {
        const std::uint64_t lo = u32();
        return lo | (std::uint64_t{u32()} << 32);
    }

    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    std::int8_t i8() { return static_cast<std::int8_t>(u8()); }
    bool b() { return u8() != 0; }
    double f64() { return std::bit_cast<double>(u64()); }

    std::string
    str()
    {
        const std::uint64_t n = u64();
        SIM_ASSERT(n <= size_ - pos_,
                   "snapshot string length ", n, " overruns stream");
        std::string s(reinterpret_cast<const char *>(data_ + pos_),
                      static_cast<std::size_t>(n));
        pos_ += static_cast<std::size_t>(n);
        return s;
    }

    bool done() const { return pos_ == size_; }
    std::size_t pos() const { return pos_; }

  private:
    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

} // namespace cdfsim

#endif // CDFSIM_COMMON_SERIALIZE_HH
