#include "common/stats.hh"

#include <sstream>

namespace cdfsim
{

std::vector<std::pair<std::string, std::uint64_t>>
StatRegistry::withPrefix(const std::string &prefix) const
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    for (auto it = counters_.lower_bound(prefix); it != counters_.end();
         ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        out.emplace_back(it->first, it->second);
    }
    return out;
}

void
StatRegistry::resetAll()
{
    for (auto &kv : counters_)
        kv.second = 0;
}

std::string
StatRegistry::dump() const
{
    std::ostringstream os;
    for (const auto &kv : counters_)
        os << kv.first << " = " << kv.second << "\n";
    return os.str();
}

Json
StatRegistry::toJson() const
{
    Json j = Json::object();
    for (const auto &kv : counters_)
        j[kv.first] = kv.second;
    return j;
}

} // namespace cdfsim
