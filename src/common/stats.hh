/**
 * @file
 * Minimal named-statistics registry.
 *
 * Every hardware structure in the timing model registers counters
 * here (accesses, hits, flushes, ...). The energy model consumes the
 * registry wholesale, so activity-based energy accounting follows
 * automatically from instrumentation.
 */

#ifndef CDFSIM_COMMON_STATS_HH
#define CDFSIM_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/json.hh"

namespace cdfsim
{

/**
 * A registry of named 64-bit counters and derived scalar values.
 *
 * Counter references returned by counter() remain valid for the
 * lifetime of the registry (node-based map storage), so components
 * cache them and bump through the reference on the fast path.
 */
class StatRegistry
{
  public:
    /** Get (creating if needed) the counter called @p name. */
    std::uint64_t &
    counter(const std::string &name)
    {
        return counters_[name];
    }

    /** Read a counter, returning 0 when it was never created. */
    std::uint64_t
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    /** True when a counter with @p name exists. */
    bool
    has(const std::string &name) const
    {
        return counters_.find(name) != counters_.end();
    }

    /** All counters, sorted by name (map ordering). */
    const std::map<std::string, std::uint64_t> &all() const
    {
        return counters_;
    }

    /** Counters whose names start with @p prefix. */
    std::vector<std::pair<std::string, std::uint64_t>>
    withPrefix(const std::string &prefix) const;

    /** Reset every counter to zero (used after warmup). */
    void resetAll();

    /** Render "name = value" lines, one per counter. */
    std::string dump() const;

    /** Serialize every counter into a JSON object (sorted names). */
    Json toJson() const;

  private:
    std::map<std::string, std::uint64_t> counters_;
};

} // namespace cdfsim

#endif // CDFSIM_COMMON_STATS_HH
