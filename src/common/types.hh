/**
 * @file
 * Fundamental scalar types shared by every cdfsim subsystem.
 */

#ifndef CDFSIM_COMMON_TYPES_HH
#define CDFSIM_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace cdfsim
{

/** Byte address in the simulated machine's flat address space. */
using Addr = std::uint64_t;

/** Simulated core clock cycle. */
using Cycle = std::uint64_t;

/** Architectural or physical register identifier. */
using RegId = std::uint16_t;

/**
 * Global dynamic instruction sequence number. Doubles as the
 * "timestamp" the paper assigns to uops: CDF-fetched critical uops
 * receive the sequence number they would have had in program order,
 * which is exactly the oracle stream index.
 */
using SeqNum = std::uint64_t;

/** Sentinel for "no register". */
inline constexpr RegId kInvalidReg = std::numeric_limits<RegId>::max();

/** Sentinel for "no sequence number assigned yet". */
inline constexpr SeqNum kInvalidSeq = std::numeric_limits<SeqNum>::max();

/** Sentinel cycle meaning "never" / "not scheduled". */
inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

/** Number of architectural integer registers in the uop ISA. */
inline constexpr RegId kNumArchRegs = 64;

/** Cache line size used throughout the hierarchy (Table 1: 64B). */
inline constexpr Addr kLineBytes = 64;

/** log2(kLineBytes), for shift-based line-number arithmetic. */
inline constexpr unsigned kLineShift = 6;
static_assert(Addr{1} << kLineShift == kLineBytes);

/** Strip the intra-line offset from an address. */
constexpr Addr
lineAlign(Addr addr)
{
    return addr & ~(kLineBytes - 1);
}

} // namespace cdfsim

#endif // CDFSIM_COMMON_TYPES_HH
