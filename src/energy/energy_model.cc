#include "energy/energy_model.hh"

#include <cmath>

namespace cdfsim::energy
{

namespace
{

// --- Technology constants (arbitrary units, relative use only) ---

/** mm^2 per KB of heavily-ported core SRAM. */
constexpr double kCoreSramAreaPerKb = 0.045;
/** mm^2 per KB of cache SRAM (fewer ports, denser). */
constexpr double kCacheAreaPerKb = 0.02;
/** mm^2 of random logic: fetch/decode/FUs/bypass/control. */
constexpr double kLogicArea = 18.0;
/** Base per-access energy scale: E = k * sqrt(KB) pJ. */
constexpr double kAccessEnergyScale = 2.0;
/** Extra factor for multi-ported structures. */
constexpr double kPortFactor = 2.0;
/** Energy per executed uop in the FUs + bypass (pJ). */
constexpr double kFuEnergyPj = 12.0;
/** Energy per fetched/decoded uop in the frontend pipe (pJ). */
constexpr double kFrontendEnergyPj = 6.0;
/** DRAM energy per 64B access (pJ). */
constexpr double kDramAccessPj = 12000.0;
/** Leakage: uJ per mm^2 per Mcycle. Calibrated so static energy is
 *  roughly a third of a typical run's total, as in McPAT-class
 *  models of client cores: runtime reductions then translate into
 *  energy savings, per the paper's Fig. 16. */
constexpr double kLeakUjPerMm2PerMcycle = 12.0;

double
sramAccessPj(double kiB, double ports = 1.0)
{
    return kAccessEnergyScale * std::sqrt(kiB + 0.05) *
           (1.0 + (ports - 1.0) * (kPortFactor - 1.0));
}

double
kb(double bytes)
{
    return bytes / 1024.0;
}

} // namespace

double
Model::coreArea(const ooo::CoreConfig &config)
{
    double area = kLogicArea;
    area += kCoreSramAreaPerKb * kb(config.robSize * 32.0);
    area += kCoreSramAreaPerKb * kb(config.rsSize * 24.0);
    area += kCoreSramAreaPerKb * kb(config.lqSize * 16.0);
    area += kCoreSramAreaPerKb * kb(config.sqSize * 16.0);
    area += kCoreSramAreaPerKb * kb(config.physRegs * 8.0) * 2.0;
    area += kCoreSramAreaPerKb * kb(kNumArchRegs * 2.0) * 4.0; // RAT
    area += kCacheAreaPerKb * kb(config.mem.l1i.sizeBytes);
    area += kCacheAreaPerKb * kb(config.mem.l1d.sizeBytes);
    area += kCacheAreaPerKb * kb(config.mem.llc.sizeBytes);
    area += kCacheAreaPerKb * 80.0; // TAGE + BTB + RAS (~80KB)
    return area;
}

double
Model::cdfArea(const ooo::CoreConfig &config)
{
    // Table 1: 18KB Critical Uop Cache, 4KB Mask Cache, 16KB Fill
    // Buffer, 1KB DBQ, 512B CMQ, 128B CCTs, critical RAT, extra
    // fetch/rename logic.
    double area = 0.0;
    area += kCacheAreaPerKb * (config.cdf.uopCache.capacityLines *
                               64.0 / 1024.0);
    area += kCacheAreaPerKb * (config.cdf.maskCache.entries * 10.0 /
                               1024.0);
    area += kCoreSramAreaPerKb *
            kb(config.cdf.fillBuffer.capacity * 16.0);
    area += kCoreSramAreaPerKb * kb(config.cdf.dbqEntries * 4.0);
    area += kCoreSramAreaPerKb * kb(config.cdf.cmqEntries * 2.0);
    area += kCoreSramAreaPerKb * kb(256.0); // the two CCTs
    area += kCoreSramAreaPerKb * kb(kNumArchRegs * 2.0) * 4.0; // cRAT
    area += 0.25; // critical fetch next-PC + rename replay logic
    return area;
}

EnergyReport
Model::evaluate(const ooo::CoreConfig &config, const StatRegistry &s,
                std::uint64_t cycles)
{
    EnergyReport rep;
    auto add = [&](const std::string &name, double areaMm2,
                   double accessPj, double accesses) {
        Component c;
        c.name = name;
        c.areaMm2 = areaMm2;
        c.accessEnergyPj = accessPj;
        c.accesses = accesses;
        c.dynamicUj = accesses * accessPj * 1e-6;
        rep.dynamicUj += c.dynamicUj;
        rep.components.push_back(c);
    };

    const double fetched = static_cast<double>(
        s.get("core.fetched_uops") + s.get("core.runahead_uops"));
    const double renamed = static_cast<double>(
        s.get("core.renamed_uops"));
    const double renamedCrit = static_cast<double>(
        s.get("core.renamed_critical_uops"));
    const double issued = static_cast<double>(
        s.get("core.issued_uops") + s.get("core.runahead_uops"));
    const double retired =
        static_cast<double>(s.get("core.retired_instrs"));

    add("frontend", 0.0, kFrontendEnergyPj, fetched);
    add("fu", 0.0, kFuEnergyPj, issued);
    add("rob", 0.0, sramAccessPj(kb(config.robSize * 32.0), 2),
        renamed + retired);
    add("rs", 0.0, sramAccessPj(kb(config.rsSize * 24.0), 2),
        renamed + issued);
    add("prf", 0.0, sramAccessPj(kb(config.physRegs * 8.0), 3),
        issued * 3.0);
    add("rat", 0.0, sramAccessPj(kb(kNumArchRegs * 2.0), 4),
        (renamed + renamedCrit) * 3.0);
    add("lsq", 0.0,
        sramAccessPj(kb((config.lqSize + config.sqSize) * 16.0), 2),
        static_cast<double>(s.get("l1d.accesses")) * 2.0);
    add("l1i", 0.0, sramAccessPj(kb(config.mem.l1i.sizeBytes)),
        static_cast<double>(s.get("l1i.accesses")));
    add("l1d", 0.0, sramAccessPj(kb(config.mem.l1d.sizeBytes)),
        static_cast<double>(s.get("l1d.accesses")));
    add("llc", 0.0, sramAccessPj(kb(config.mem.llc.sizeBytes)),
        static_cast<double>(s.get("llc.accesses")));
    add("bp", 0.0, sramAccessPj(80.0),
        static_cast<double>(s.get("tage.lookups") +
                            s.get("btb.hits") + s.get("btb.misses")));

    // CDF structures (also used by PRE for chain storage).
    add("uop_cache", 0.0,
        sramAccessPj(config.cdf.uopCache.capacityLines * 64.0 /
                     1024.0),
        static_cast<double>(s.get("uop_cache.hits") +
                            s.get("uop_cache.misses") +
                            s.get("uop_cache.fills")));
    add("mask_cache", 0.0, sramAccessPj(4.0),
        static_cast<double>(s.get("mask_cache.merges") +
                            s.get("mask_cache.hits")));
    add("fill_buffer", 0.0,
        sramAccessPj(kb(config.cdf.fillBuffer.capacity * 16.0)),
        static_cast<double>(s.get("fill_buffer.walks")) *
            config.cdf.fillBuffer.capacity * 2.0);
    add("cdf_fifos", 0.0, sramAccessPj(1.5), renamedCrit * 4.0);
    add("crit_rat", 0.0, sramAccessPj(kb(kNumArchRegs * 2.0), 4),
        renamedCrit * 3.0);
    add("cct", 0.0, sramAccessPj(0.25),
        static_cast<double>(s.get("cct_loads.updates") +
                            s.get("cct_branches.updates") +
                            s.get("pre_stall_table.updates")));

    add("dram", 0.0, kDramAccessPj,
        static_cast<double>(s.get("dram.reads") +
                            s.get("dram.writes")));
    rep.dramUj = rep.components.back().dynamicUj;

    rep.coreAreaMm2 = coreArea(config);
    const bool hasExtra = s.get("uop_cache.fills") > 0 ||
                          s.get("fill_buffer.walks") > 0 ||
                          s.get("cct_loads.updates") > 0 ||
                          s.get("pre_stall_table.updates") > 0;
    rep.extraAreaMm2 = hasExtra ? cdfArea(config) : 0.0;

    rep.staticUj = rep.areaMm2() * kLeakUjPerMm2PerMcycle *
                   (static_cast<double>(cycles) / 1e6);
    rep.totalUj = rep.dynamicUj + rep.staticUj;
    return rep;
}

} // namespace cdfsim::energy
