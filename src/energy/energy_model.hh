/**
 * @file
 * Activity-based energy and area model (the CACTI + McPAT
 * substitute).
 *
 * Every hardware structure is described by an area and a per-access
 * energy derived from its capacity with CACTI-like scaling
 * (area linear in bits, access energy growing with the square root
 * of capacity), plus leakage proportional to area. Dynamic energy is
 * per-structure access counts — taken from the StatRegistry the
 * timing model already populates — times per-access energy.
 *
 * Absolute joules are not meaningful; the model is calibrated so
 * the RELATIVE results the paper reports hold: the added CDF
 * structures cost ~2% of baseline energy and ~3.2% of core area
 * (Section 4.3), and PRE's duplicate execution plus extra DRAM
 * traffic make it a net energy loss.
 */

#ifndef CDFSIM_ENERGY_ENERGY_MODEL_HH
#define CDFSIM_ENERGY_ENERGY_MODEL_HH

#include <string>
#include <vector>

#include "common/stats.hh"
#include "ooo/core_config.hh"

namespace cdfsim::energy
{

/** One modelled hardware structure. */
struct Component
{
    std::string name;
    double areaMm2 = 0.0;
    double accessEnergyPj = 0.0;
    double accesses = 0.0;
    double dynamicUj = 0.0;   //!< filled by evaluate()
};

/** Full energy/area report. */
struct EnergyReport
{
    std::vector<Component> components;
    double coreAreaMm2 = 0.0;       //!< baseline core structures
    double extraAreaMm2 = 0.0;      //!< CDF/PRE additions
    double dynamicUj = 0.0;
    double staticUj = 0.0;
    double dramUj = 0.0;
    double totalUj = 0.0;

    double areaMm2() const { return coreAreaMm2 + extraAreaMm2; }
};

/** The model. */
class Model
{
  public:
    /**
     * Evaluate energy for a finished run.
     * @param config The core configuration that produced the run
     *        (structure sizes feed the area/energy scaling).
     * @param stats The populated stat registry.
     * @param cycles Measured cycles (for leakage).
     */
    static EnergyReport evaluate(const ooo::CoreConfig &config,
                                 const StatRegistry &stats,
                                 std::uint64_t cycles);

    /** Area of the baseline core scaled per the Fig. 17 study. */
    static double coreArea(const ooo::CoreConfig &config);

    /** Area of the CDF additions (Table 1 structures). */
    static double cdfArea(const ooo::CoreConfig &config);
};

} // namespace cdfsim::energy

#endif // CDFSIM_ENERGY_ENERGY_MODEL_HH
