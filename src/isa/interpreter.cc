#include "isa/interpreter.hh"

#include "common/logging.hh"

namespace cdfsim::isa
{

Interpreter::Interpreter(const Program &program, MemoryImage &memory)
    : program_(program), memory_(memory)
{
    SIM_ASSERT(!program.code.empty(), "empty program");
}

ExecRecord
Interpreter::step()
{
    SIM_ASSERT(!halted_, "step() after halt");
    SIM_ASSERT(program_.validPc(pc_), "PC ", pc_, " out of range in '",
               program_.name, "'");

    const Uop &uop = program_.at(pc_);
    const std::uint64_t s1 =
        uop.src1 == kInvalidReg ? 0 : regs_[uop.src1];
    const std::uint64_t s2 =
        uop.src2 == kInvalidReg ? 0 : regs_[uop.src2];

    ExecRecord r = evaluate(
        pc_, uop, s1, s2,
        [this](Addr a) { return memory_.read(a); },
        [this](Addr a, std::uint64_t v) { memory_.write(a, v); });

    r.seq = executed_;
    if (uop.writesReg())
        regs_[uop.dst] = r.result;

    pc_ = r.nextPc;
    ++executed_;
    if (r.halt)
        halted_ = true;
    return r;
}

} // namespace cdfsim::isa
