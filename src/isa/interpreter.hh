/**
 * @file
 * Functional interpreter of the uop ISA.
 *
 * Produces, per executed uop, an ExecRecord carrying everything the
 * timing model needs: source values, result, memory address, branch
 * outcome and next PC. The oracle stream (oracle.hh) is a thin
 * indexed window over these records.
 */

#ifndef CDFSIM_ISA_INTERPRETER_HH
#define CDFSIM_ISA_INTERPRETER_HH

#include <array>
#include <cstdint>

#include "common/serialize.hh"
#include "common/types.hh"
#include "isa/memory_image.hh"
#include "isa/program.hh"
#include "isa/uop.hh"

namespace cdfsim::isa
{

/** Architectural register file snapshot. */
using RegFile = std::array<std::uint64_t, kNumArchRegs>;

/** The outcome of functionally executing one dynamic uop. */
struct ExecRecord
{
    SeqNum seq = 0;           //!< dynamic index == program-order timestamp
    Addr pc = 0;              //!< static uop index
    Uop uop;                  //!< the static uop
    std::uint64_t srcVal1 = 0;
    std::uint64_t srcVal2 = 0;
    std::uint64_t result = 0; //!< dst value, or store data for stores
    Addr memAddr = 0;         //!< effective address for loads/stores
    bool taken = false;       //!< branch outcome (uncond branches: true)
    Addr nextPc = 0;          //!< correct-path successor PC
    bool halt = false;        //!< this uop ends the program
};

/** Snapshot codec for ExecRecord. */
inline void
save(SnapWriter &w, const ExecRecord &e)
{
    w.u64(e.seq);
    w.u64(e.pc);
    save(w, e.uop);
    w.u64(e.srcVal1);
    w.u64(e.srcVal2);
    w.u64(e.result);
    w.u64(e.memAddr);
    w.b(e.taken);
    w.u64(e.nextPc);
    w.b(e.halt);
}

inline void
restore(SnapReader &r, ExecRecord &e)
{
    e.seq = r.u64();
    e.pc = r.u64();
    restore(r, e.uop);
    e.srcVal1 = r.u64();
    e.srcVal2 = r.u64();
    e.result = r.u64();
    e.memAddr = r.u64();
    e.taken = r.b();
    e.nextPc = r.u64();
    e.halt = r.b();
}

/**
 * Executes a Program against a register file and a MemoryImage.
 *
 * The interpreter owns the registers but only borrows the memory, so
 * a wrong-path walker can share the same MemoryImage (reads only;
 * its stores are buffered privately).
 */
class Interpreter
{
  public:
    Interpreter(const Program &program, MemoryImage &memory);

    /**
     * Execute the uop at the current PC and advance. Must not be
     * called after a Halt has been executed.
     */
    ExecRecord step();

    /** True once a Halt uop has executed. */
    bool halted() const { return halted_; }

    Addr pc() const { return pc_; }

    /** Number of uops executed so far (== seq of the next record). */
    SeqNum executed() const { return executed_; }

    const RegFile &regs() const { return regs_; }
    RegFile &regs() { return regs_; }

    const Program &program() const { return program_; }
    MemoryImage &memory() { return memory_; }

    /**
     * Pure function: compute the effect of @p uop at @p pc given
     * operand values, reading/writing @p mem through the supplied
     * callbacks. Shared between the interpreter and the wrong-path
     * walker so the two can never diverge in semantics.
     */
    template <typename ReadFn, typename WriteFn>
    static ExecRecord
    evaluate(Addr pc, const Uop &uop, std::uint64_t s1, std::uint64_t s2,
             ReadFn &&read, WriteFn &&write)
    {
        ExecRecord r;
        r.pc = pc;
        r.uop = uop;
        r.srcVal1 = s1;
        r.srcVal2 = s2;
        r.nextPc = pc + 1;
        switch (uop.op) {
          case Opcode::Nop:
            break;
          case Opcode::Add: r.result = s1 + s2; break;
          case Opcode::Sub: r.result = s1 - s2; break;
          case Opcode::Mul: r.result = s1 * s2; break;
          case Opcode::Div: r.result = s2 == 0 ? 0 : s1 / s2; break;
          case Opcode::And: r.result = s1 & s2; break;
          case Opcode::Or:  r.result = s1 | s2; break;
          case Opcode::Xor: r.result = s1 ^ s2; break;
          case Opcode::Shl: r.result = s1 << (s2 & 63); break;
          case Opcode::Shr: r.result = s1 >> (s2 & 63); break;
          case Opcode::CmpLt: r.result = s1 < s2 ? 1 : 0; break;
          case Opcode::CmpEq: r.result = s1 == s2 ? 1 : 0; break;
          case Opcode::Mov: r.result = s1; break;
          case Opcode::MovImm:
            r.result = static_cast<std::uint64_t>(uop.imm);
            break;
          case Opcode::AddImm:
            r.result = s1 + static_cast<std::uint64_t>(uop.imm);
            break;
          case Opcode::FAdd: r.result = s1 + s2; break;
          case Opcode::FMul: r.result = s1 * s2; break;
          case Opcode::FDiv: r.result = s2 == 0 ? 0 : s1 / s2; break;
          case Opcode::Load:
            r.memAddr = s1 + static_cast<std::uint64_t>(uop.imm);
            r.result = read(r.memAddr);
            break;
          case Opcode::Store:
            r.memAddr = s1 + static_cast<std::uint64_t>(uop.imm);
            r.result = s2;
            write(r.memAddr, s2);
            break;
          case Opcode::Beqz:
            r.taken = (s1 == 0);
            if (r.taken)
                r.nextPc = static_cast<Addr>(uop.imm);
            break;
          case Opcode::Bnez:
            r.taken = (s1 != 0);
            if (r.taken)
                r.nextPc = static_cast<Addr>(uop.imm);
            break;
          case Opcode::Jmp:
            r.taken = true;
            r.nextPc = static_cast<Addr>(uop.imm);
            break;
          case Opcode::Call:
            r.taken = true;
            r.result = pc + 1;
            r.nextPc = static_cast<Addr>(uop.imm);
            break;
          case Opcode::Ret:
            r.taken = true;
            r.nextPc = static_cast<Addr>(s1);
            break;
          case Opcode::Halt:
            r.halt = true;
            r.nextPc = pc;
            break;
        }
        return r;
    }

    /** Snapshot cursor state (memory is serialized separately). */
    void
    save(SnapWriter &w) const
    {
        for (std::uint64_t v : regs_)
            w.u64(v);
        w.u64(pc_);
        w.u64(executed_);
        w.b(halted_);
    }

    void
    restore(SnapReader &r)
    {
        for (std::uint64_t &v : regs_)
            v = r.u64();
        pc_ = r.u64();
        executed_ = r.u64();
        halted_ = r.b();
    }

  private:
    SIM_SNAPSHOT_FIELDS(6);

    const Program &program_;
    MemoryImage &memory_;
    RegFile regs_{};
    Addr pc_ = 0;
    SeqNum executed_ = 0;
    bool halted_ = false;
};

} // namespace cdfsim::isa

#endif // CDFSIM_ISA_INTERPRETER_HH
