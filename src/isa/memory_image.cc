/**
 * @file
 * Delta serialization of the sparse memory image against a shared
 * pristine base (see memory_image.hh). Lives out of line so the page
 * table iteration can be key-sorted in one place.
 */

#include "isa/memory_image.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"

namespace cdfsim::isa
{

void
MemoryImage::saveDelta(SnapWriter &w, const MemoryImage &base) const
{
    // Collect the ids of pages that are not shared with the base.
    // Under copy-on-write a page diverges from the base exactly when
    // its shared_ptr does, so pointer comparison is sufficient —
    // and cheap enough to run per checkpoint.
    std::vector<Addr> dirty;
    for (const auto &[id, page] : pages_) {
        auto it = base.pages_.find(id);
        if (it == base.pages_.end() || it->second != page)
            dirty.push_back(id);
    }
    std::sort(dirty.begin(), dirty.end());
    w.u64(dirty.size());
    for (Addr id : dirty) {
        w.u64(id);
        const Page &page = *pages_.at(id);
        for (std::uint64_t word : page)
            w.u64(word);
    }
}

void
MemoryImage::restoreDelta(SnapReader &r, const MemoryImage &base)
{
    pages_ = base.pages_; // share every pristine page again
    const std::uint64_t dirty = r.u64();
    for (std::uint64_t i = 0; i < dirty; ++i) {
        const Addr id = r.u64();
        auto page = std::make_shared<Page>();
        for (std::uint64_t &word : *page)
            word = r.u64();
        pages_[id] = std::move(page);
    }
}

} // namespace cdfsim::isa
