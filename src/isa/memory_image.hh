/**
 * @file
 * Sparse paged data memory for the functional model.
 *
 * Stores 64-bit words keyed by 8-byte-aligned addresses, organized in
 * 4KB pages so that workloads touching hundreds of megabytes of
 * address space stay cheap. Unwritten memory reads as zero.
 *
 * Pages are copy-on-write: copying a MemoryImage copies only the page
 * table, and a shared page is cloned the first time either copy
 * writes to it. That makes the pristine post-init image of a workload
 * shareable across every sweep cell running it, and lets a warmup
 * checkpoint store just the pages the warmup actually dirtied
 * (saveDelta/restoreDelta against the shared pristine base).
 */

#ifndef CDFSIM_ISA_MEMORY_IMAGE_HH
#define CDFSIM_ISA_MEMORY_IMAGE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/serialize.hh"
#include "common/types.hh"

namespace cdfsim::isa
{

/** Flat 64-bit word-addressable sparse memory. */
class MemoryImage
{
  public:
    static constexpr Addr kPageBytes = 4096;
    static constexpr Addr kPageWords = kPageBytes / 8;

    /** Read the 64-bit word containing @p addr (aligned down). */
    std::uint64_t
    read(Addr addr) const
    {
        const Addr w = addr >> 3;
        auto it = pages_.find(w / kPageWords);
        if (it == pages_.end())
            return 0;
        return (*it->second)[w % kPageWords];
    }

    /** Write the 64-bit word containing @p addr (aligned down). */
    void
    write(Addr addr, std::uint64_t value)
    {
        const Addr w = addr >> 3;
        auto &page = pages_[w / kPageWords];
        if (!page)
            page = std::make_shared<Page>();
        else if (page.use_count() > 1)
            page = std::make_shared<Page>(*page); // copy-on-write
        (*page)[w % kPageWords] = value;
    }

    /** Number of resident 4KB pages (for tests / footprint stats). */
    std::size_t residentPages() const { return pages_.size(); }

    /**
     * Serialize only the pages that differ from @p base (compared by
     * page identity — cheap, exact under copy-on-write as long as
     * this image started as a copy of @p base). Page ids are sorted,
     * so the bytes are deterministic across processes.
     */
    void saveDelta(SnapWriter &w, const MemoryImage &base) const;

    /** Reset to a copy of @p base, then overlay the saved delta. */
    void restoreDelta(SnapReader &r, const MemoryImage &base);

  private:
    using Page = std::array<std::uint64_t, kPageWords>;

    SIM_SNAPSHOT_FIELDS(1);

    std::unordered_map<Addr, std::shared_ptr<Page>> pages_;
};

} // namespace cdfsim::isa

#endif // CDFSIM_ISA_MEMORY_IMAGE_HH
