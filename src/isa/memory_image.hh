/**
 * @file
 * Sparse paged data memory for the functional model.
 *
 * Stores 64-bit words keyed by 8-byte-aligned addresses, organized in
 * 4KB pages so that workloads touching hundreds of megabytes of
 * address space stay cheap. Unwritten memory reads as zero.
 */

#ifndef CDFSIM_ISA_MEMORY_IMAGE_HH
#define CDFSIM_ISA_MEMORY_IMAGE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/types.hh"

namespace cdfsim::isa
{

/** Flat 64-bit word-addressable sparse memory. */
class MemoryImage
{
  public:
    static constexpr Addr kPageBytes = 4096;
    static constexpr Addr kPageWords = kPageBytes / 8;

    /** Read the 64-bit word containing @p addr (aligned down). */
    std::uint64_t
    read(Addr addr) const
    {
        const Addr w = addr >> 3;
        auto it = pages_.find(w / kPageWords);
        if (it == pages_.end())
            return 0;
        return (*it->second)[w % kPageWords];
    }

    /** Write the 64-bit word containing @p addr (aligned down). */
    void
    write(Addr addr, std::uint64_t value)
    {
        const Addr w = addr >> 3;
        auto &page = pages_[w / kPageWords];
        if (!page)
            page = std::make_unique<Page>();
        (*page)[w % kPageWords] = value;
    }

    /** Number of resident 4KB pages (for tests / footprint stats). */
    std::size_t residentPages() const { return pages_.size(); }

  private:
    using Page = std::array<std::uint64_t, kPageWords>;

    std::unordered_map<Addr, std::unique_ptr<Page>> pages_;
};

} // namespace cdfsim::isa

#endif // CDFSIM_ISA_MEMORY_IMAGE_HH
