#include "isa/oracle.hh"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace cdfsim::isa
{

OracleStream::OracleStream(const Program &program, MemoryImage &memory)
    : interp_(program, memory)
{
}

void
OracleStream::materializeTo(SeqNum seq)
{
    while (frontier() <= seq) {
        SIM_ASSERT(!sawHalt_, "oracle read past Halt (seq ", seq, ")");
        ExecRecord r = interp_.step();
        if (r.halt) {
            sawHalt_ = true;
            haltSeq_ = r.seq;
        }
        window_.push_back(std::move(r));
    }
}

const ExecRecord &
OracleStream::at(SeqNum seq)
{
    SIM_ASSERT(seq >= base_, "oracle record ", seq,
               " already released (base ", base_, ")");
    materializeTo(seq);
    return window_[seq - base_];
}

bool
OracleStream::hasRecord(SeqNum seq)
{
    if (seq < frontier())
        return true;
    if (sawHalt_)
        return false;
    // Materialize up to the requested index or the halt, whichever
    // comes first.
    while (frontier() <= seq && !sawHalt_) {
        ExecRecord r = interp_.step();
        if (r.halt) {
            sawHalt_ = true;
            haltSeq_ = r.seq;
        }
        window_.push_back(std::move(r));
    }
    return seq < frontier();
}

void
OracleStream::releaseBelow(SeqNum seq)
{
    while (base_ < seq && !window_.empty()) {
        window_.pop_front();
        ++base_;
    }
}

void
OracleStream::save(SnapWriter &w) const
{
    interp_.save(w);
    w.u64(window_.size());
    for (const ExecRecord &e : window_)
        isa::save(w, e);
    w.u64(base_);
    w.b(sawHalt_);
    w.u64(haltSeq_);
}

void
OracleStream::restore(SnapReader &r)
{
    interp_.restore(r);
    window_.resize(r.u64());
    for (ExecRecord &e : window_)
        isa::restore(r, e);
    base_ = r.u64();
    sawHalt_ = r.b();
    haltSeq_ = r.u64();
}

WrongPathWalker::WrongPathWalker(const Program &program,
                                 const MemoryImage &memory)
    : program_(program), memory_(memory)
{
}

void
WrongPathWalker::restart(const RegFile &regs)
{
    regs_ = regs;
    storeBuf_.clear();
    active_ = true;
}

ExecRecord
WrongPathWalker::execute(Addr pc)
{
    SIM_ASSERT(active_, "wrong-path walker used while inactive");
    SIM_ASSERT(program_.validPc(pc), "wrong-path PC out of range");

    const Uop &uop = program_.at(pc);
    const std::uint64_t s1 =
        uop.src1 == kInvalidReg ? 0 : regs_[uop.src1];
    const std::uint64_t s2 =
        uop.src2 == kInvalidReg ? 0 : regs_[uop.src2];

    ExecRecord r = Interpreter::evaluate(
        pc, uop, s1, s2,
        [this](Addr a) -> std::uint64_t {
            auto it = storeBuf_.find(a >> 3);
            if (it != storeBuf_.end())
                return it->second;
            return memory_.read(a);
        },
        [this](Addr a, std::uint64_t v) { storeBuf_[a >> 3] = v; });

    if (uop.writesReg())
        regs_[uop.dst] = r.result;
    r.seq = kInvalidSeq; // wrong-path records have no program order
    return r;
}

void
WrongPathWalker::save(SnapWriter &w) const
{
    for (std::uint64_t v : regs_)
        w.u64(v);
    // The store buffer hashes by address; sort so the byte stream is
    // deterministic across processes and library versions.
    std::vector<std::pair<Addr, std::uint64_t>> entries(
        storeBuf_.begin(), storeBuf_.end());
    std::sort(entries.begin(), entries.end());
    w.u64(entries.size());
    for (const auto &[addr, val] : entries) {
        w.u64(addr);
        w.u64(val);
    }
    w.b(active_);
}

void
WrongPathWalker::restore(SnapReader &r)
{
    for (std::uint64_t &v : regs_)
        v = r.u64();
    storeBuf_.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        const Addr addr = r.u64();
        storeBuf_[addr] = r.u64();
    }
    active_ = r.b();
}

} // namespace cdfsim::isa
