#include "isa/oracle.hh"

#include "common/logging.hh"

namespace cdfsim::isa
{

OracleStream::OracleStream(const Program &program, MemoryImage &memory)
    : interp_(program, memory)
{
}

void
OracleStream::materializeTo(SeqNum seq)
{
    while (frontier() <= seq) {
        SIM_ASSERT(!sawHalt_, "oracle read past Halt (seq ", seq, ")");
        ExecRecord r = interp_.step();
        if (r.halt) {
            sawHalt_ = true;
            haltSeq_ = r.seq;
        }
        window_.push_back(std::move(r));
    }
}

const ExecRecord &
OracleStream::at(SeqNum seq)
{
    SIM_ASSERT(seq >= base_, "oracle record ", seq,
               " already released (base ", base_, ")");
    materializeTo(seq);
    return window_[seq - base_];
}

bool
OracleStream::hasRecord(SeqNum seq)
{
    if (seq < frontier())
        return true;
    if (sawHalt_)
        return false;
    // Materialize up to the requested index or the halt, whichever
    // comes first.
    while (frontier() <= seq && !sawHalt_) {
        ExecRecord r = interp_.step();
        if (r.halt) {
            sawHalt_ = true;
            haltSeq_ = r.seq;
        }
        window_.push_back(std::move(r));
    }
    return seq < frontier();
}

void
OracleStream::releaseBelow(SeqNum seq)
{
    while (base_ < seq && !window_.empty()) {
        window_.pop_front();
        ++base_;
    }
}

WrongPathWalker::WrongPathWalker(const Program &program,
                                 const MemoryImage &memory)
    : program_(program), memory_(memory)
{
}

void
WrongPathWalker::restart(const RegFile &regs)
{
    regs_ = regs;
    storeBuf_.clear();
    active_ = true;
}

ExecRecord
WrongPathWalker::execute(Addr pc)
{
    SIM_ASSERT(active_, "wrong-path walker used while inactive");
    SIM_ASSERT(program_.validPc(pc), "wrong-path PC out of range");

    const Uop &uop = program_.at(pc);
    const std::uint64_t s1 =
        uop.src1 == kInvalidReg ? 0 : regs_[uop.src1];
    const std::uint64_t s2 =
        uop.src2 == kInvalidReg ? 0 : regs_[uop.src2];

    ExecRecord r = Interpreter::evaluate(
        pc, uop, s1, s2,
        [this](Addr a) -> std::uint64_t {
            auto it = storeBuf_.find(a >> 3);
            if (it != storeBuf_.end())
                return it->second;
            return memory_.read(a);
        },
        [this](Addr a, std::uint64_t v) { storeBuf_[a >> 3] = v; });

    if (uop.writesReg())
        regs_[uop.dst] = r.result;
    r.seq = kInvalidSeq; // wrong-path records have no program order
    return r;
}

} // namespace cdfsim::isa
