/**
 * @file
 * The functional oracle the execution-driven timing model fetches
 * from, plus the wrong-path walker.
 *
 * OracleStream lazily materializes the correct-path dynamic uop
 * stream; the stream index is the program-order timestamp the paper
 * assigns to uops. WrongPathWalker functionally executes down a
 * mispredicted path from a register snapshot taken at the divergence
 * point so wrong-path loads carry realistic addresses — required to
 * reproduce the paper's wrong-path MLP and memory-traffic results
 * (Figs. 14 and 15).
 */

#ifndef CDFSIM_ISA_ORACLE_HH
#define CDFSIM_ISA_ORACLE_HH

#include <deque>
#include <unordered_map>

#include "common/types.hh"
#include "isa/interpreter.hh"

namespace cdfsim::isa
{

/**
 * Indexed window over the correct-path dynamic instruction stream.
 *
 * Records are materialized on demand by running the functional
 * interpreter, kept in a sliding window, and discharged once the
 * timing model has retired them.
 */
class OracleStream
{
  public:
    OracleStream(const Program &program, MemoryImage &memory);

    /**
     * The record with dynamic index @p seq. Extends the stream as
     * needed. @p seq must be >= the current window base (i.e., not
     * yet released) and must not be past the Halt record.
     */
    const ExecRecord &at(SeqNum seq);

    /** True when record @p seq exists (program has not halted before). */
    bool hasRecord(SeqNum seq);

    /** Dynamic index one past the newest materialized record. */
    SeqNum frontier() const { return base_ + window_.size(); }

    /** Oldest retained record index. */
    SeqNum base() const { return base_; }

    /** Release records with seq < @p seq (they retired). */
    void releaseBelow(SeqNum seq);

    /**
     * Register state after executing record frontier()-1 — i.e., the
     * state a wrong-path walker must start from when the newest
     * fetched instruction caused the divergence.
     */
    const RegFile &frontierRegs() const { return interp_.regs(); }

    /** True once the Halt record has been materialized. */
    bool sawHalt() const { return sawHalt_; }

    /** Sequence number of the Halt record; only valid after sawHalt(). */
    SeqNum haltSeq() const { return haltSeq_; }

    const Program &program() const { return interp_.program(); }
    MemoryImage &memory() { return interp_.memory(); }

    /** Snapshot cursors + retained window (not program memory). */
    void save(SnapWriter &w) const;
    void restore(SnapReader &r);

  private:
    void materializeTo(SeqNum seq);

    SIM_SNAPSHOT_FIELDS(5);

    Interpreter interp_;
    std::deque<ExecRecord> window_;
    SeqNum base_ = 0;
    bool sawHalt_ = false;
    SeqNum haltSeq_ = kInvalidSeq;
};

/**
 * Functional execution down a mispredicted path.
 *
 * Seeded with the architectural registers at the divergence point.
 * Loads read the (current) program memory with forwarding from a
 * private store buffer; stores never reach program memory. The
 * walker has no PC of its own: the fetch stage drives it one uop at
 * a time and picks the next wrong-path PC from the branch predictor,
 * exactly like a real frontend.
 */
class WrongPathWalker
{
  public:
    WrongPathWalker(const Program &program, const MemoryImage &memory);

    /** (Re)start a wrong path from the given register snapshot. */
    void restart(const RegFile &regs);

    /**
     * Functionally execute the uop at @p pc against the shadow
     * state. Returns the record; the caller decides which PC to
     * fetch next.
     */
    ExecRecord execute(Addr pc);

    bool active() const { return active_; }
    void deactivate() { active_ = false; }

    /** Snapshot shadow state (store buffer is key-sorted on save). */
    void save(SnapWriter &w) const;
    void restore(SnapReader &r);

  private:
    SIM_SNAPSHOT_FIELDS(5);

    const Program &program_;
    const MemoryImage &memory_;
    RegFile regs_{};
    std::unordered_map<Addr, std::uint64_t> storeBuf_;
    bool active_ = false;
};

} // namespace cdfsim::isa

#endif // CDFSIM_ISA_ORACLE_HH
