#include "isa/program.hh"

#include "common/logging.hh"

namespace cdfsim::isa
{

namespace
{

constexpr Addr kUnbound = static_cast<Addr>(-1);

} // namespace

ProgramBuilder::ProgramBuilder(std::string name) : name_(std::move(name))
{
}

ProgramBuilder::Label
ProgramBuilder::makeLabel()
{
    labelAddrs_.push_back(kUnbound);
    return labelAddrs_.size() - 1;
}

void
ProgramBuilder::bind(Label label)
{
    SIM_ASSERT(label < labelAddrs_.size(), "unknown label");
    SIM_ASSERT(labelAddrs_[label] == kUnbound, "label bound twice");
    labelAddrs_[label] = code_.size();
}

ProgramBuilder &
ProgramBuilder::emit(Uop uop)
{
    code_.push_back(uop);
    return *this;
}

ProgramBuilder &
ProgramBuilder::emitLabelled(Uop uop, Label target)
{
    SIM_ASSERT(target < labelAddrs_.size(), "unknown label");
    fixups_.emplace_back(code_.size(), target);
    code_.push_back(uop);
    return *this;
}

ProgramBuilder &
ProgramBuilder::nop()
{
    return emit({Opcode::Nop, kInvalidReg, kInvalidReg, kInvalidReg, 0});
}

#define CDFSIM_THREE_ADDR(fn, opc)                                         \
    ProgramBuilder &ProgramBuilder::fn(RegId d, RegId s1, RegId s2)        \
    {                                                                      \
        return emit({Opcode::opc, d, s1, s2, 0});                          \
    }

CDFSIM_THREE_ADDR(add, Add)
CDFSIM_THREE_ADDR(sub, Sub)
CDFSIM_THREE_ADDR(mul, Mul)
CDFSIM_THREE_ADDR(div, Div)
CDFSIM_THREE_ADDR(and_, And)
CDFSIM_THREE_ADDR(or_, Or)
CDFSIM_THREE_ADDR(xor_, Xor)
CDFSIM_THREE_ADDR(shl, Shl)
CDFSIM_THREE_ADDR(shr, Shr)
CDFSIM_THREE_ADDR(cmplt, CmpLt)
CDFSIM_THREE_ADDR(cmpeq, CmpEq)
CDFSIM_THREE_ADDR(fadd, FAdd)
CDFSIM_THREE_ADDR(fmul, FMul)
CDFSIM_THREE_ADDR(fdiv, FDiv)

#undef CDFSIM_THREE_ADDR

ProgramBuilder &
ProgramBuilder::mov(RegId d, RegId s)
{
    return emit({Opcode::Mov, d, s, kInvalidReg, 0});
}

ProgramBuilder &
ProgramBuilder::movi(RegId d, std::int64_t imm)
{
    return emit({Opcode::MovImm, d, kInvalidReg, kInvalidReg, imm});
}

ProgramBuilder &
ProgramBuilder::addi(RegId d, RegId s, std::int64_t imm)
{
    return emit({Opcode::AddImm, d, s, kInvalidReg, imm});
}

ProgramBuilder &
ProgramBuilder::load(RegId d, RegId base, std::int64_t off)
{
    return emit({Opcode::Load, d, base, kInvalidReg, off});
}

ProgramBuilder &
ProgramBuilder::store(RegId base, std::int64_t off, RegId value)
{
    return emit({Opcode::Store, kInvalidReg, base, value, off});
}

ProgramBuilder &
ProgramBuilder::beqz(RegId s, Label target)
{
    return emitLabelled({Opcode::Beqz, kInvalidReg, s, kInvalidReg, 0},
                        target);
}

ProgramBuilder &
ProgramBuilder::bnez(RegId s, Label target)
{
    return emitLabelled({Opcode::Bnez, kInvalidReg, s, kInvalidReg, 0},
                        target);
}

ProgramBuilder &
ProgramBuilder::jmp(Label target)
{
    return emitLabelled(
        {Opcode::Jmp, kInvalidReg, kInvalidReg, kInvalidReg, 0}, target);
}

ProgramBuilder &
ProgramBuilder::call(RegId link, Label target)
{
    return emitLabelled({Opcode::Call, link, kInvalidReg, kInvalidReg, 0},
                        target);
}

ProgramBuilder &
ProgramBuilder::ret(RegId s)
{
    return emit({Opcode::Ret, kInvalidReg, s, kInvalidReg, 0});
}

ProgramBuilder &
ProgramBuilder::halt()
{
    return emit({Opcode::Halt, kInvalidReg, kInvalidReg, kInvalidReg, 0});
}

Program
ProgramBuilder::build()
{
    for (const auto &[idx, label] : fixups_) {
        SIM_ASSERT(labelAddrs_[label] != kUnbound,
                   "unbound label in program '", name_, "'");
        code_[idx].imm = static_cast<std::int64_t>(labelAddrs_[label]);
    }
    Program p;
    p.name = name_;
    p.code = std::move(code_);
    return p;
}

} // namespace cdfsim::isa
