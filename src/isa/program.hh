/**
 * @file
 * Program container and a small fluent assembler (ProgramBuilder)
 * with label support, used by the workload kernels, the examples and
 * the tests.
 */

#ifndef CDFSIM_ISA_PROGRAM_HH
#define CDFSIM_ISA_PROGRAM_HH

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/uop.hh"

namespace cdfsim::isa
{

/** A static uop program. The PC is an index into code. */
struct Program
{
    std::string name;
    std::vector<Uop> code;

    std::size_t size() const { return code.size(); }

    const Uop &
    at(Addr pc) const
    {
        return code.at(static_cast<std::size_t>(pc));
    }

    bool
    validPc(Addr pc) const
    {
        return static_cast<std::size_t>(pc) < code.size();
    }
};

/**
 * Fluent assembler with forward-reference labels.
 *
 * Usage:
 * @code
 *   ProgramBuilder b("kernel");
 *   auto loop = b.makeLabel();
 *   b.movi(0, 100);
 *   b.bind(loop);
 *   b.addi(0, 0, -1);
 *   b.bnez(0, loop);
 *   b.halt();
 *   Program p = b.build();
 * @endcode
 */
class ProgramBuilder
{
  public:
    /** Opaque label handle. */
    using Label = std::size_t;

    explicit ProgramBuilder(std::string name);

    /** Create a fresh, unbound label. */
    Label makeLabel();

    /** Bind @p label to the next emitted uop. */
    void bind(Label label);

    /** Index the next emitted uop will receive. */
    Addr here() const { return code_.size(); }

    // --- ALU ---
    ProgramBuilder &nop();
    ProgramBuilder &add(RegId d, RegId s1, RegId s2);
    ProgramBuilder &sub(RegId d, RegId s1, RegId s2);
    ProgramBuilder &mul(RegId d, RegId s1, RegId s2);
    ProgramBuilder &div(RegId d, RegId s1, RegId s2);
    ProgramBuilder &and_(RegId d, RegId s1, RegId s2);
    ProgramBuilder &or_(RegId d, RegId s1, RegId s2);
    ProgramBuilder &xor_(RegId d, RegId s1, RegId s2);
    ProgramBuilder &shl(RegId d, RegId s1, RegId s2);
    ProgramBuilder &shr(RegId d, RegId s1, RegId s2);
    ProgramBuilder &cmplt(RegId d, RegId s1, RegId s2);
    ProgramBuilder &cmpeq(RegId d, RegId s1, RegId s2);
    ProgramBuilder &mov(RegId d, RegId s);
    ProgramBuilder &movi(RegId d, std::int64_t imm);
    ProgramBuilder &addi(RegId d, RegId s, std::int64_t imm);
    ProgramBuilder &fadd(RegId d, RegId s1, RegId s2);
    ProgramBuilder &fmul(RegId d, RegId s1, RegId s2);
    ProgramBuilder &fdiv(RegId d, RegId s1, RegId s2);

    // --- Memory ---
    ProgramBuilder &load(RegId d, RegId base, std::int64_t off = 0);
    ProgramBuilder &store(RegId base, std::int64_t off, RegId value);

    // --- Control ---
    ProgramBuilder &beqz(RegId s, Label target);
    ProgramBuilder &bnez(RegId s, Label target);
    ProgramBuilder &jmp(Label target);
    ProgramBuilder &call(RegId link, Label target);
    ProgramBuilder &ret(RegId s);
    ProgramBuilder &halt();

    /** Finalize; panics if any referenced label is unbound. */
    Program build();

  private:
    ProgramBuilder &emit(Uop uop);
    ProgramBuilder &emitLabelled(Uop uop, Label target);

    std::string name_;
    std::vector<Uop> code_;
    std::vector<Addr> labelAddrs_;         // kNeverCycle == unbound
    std::vector<std::pair<std::size_t, Label>> fixups_;
};

} // namespace cdfsim::isa

#endif // CDFSIM_ISA_PROGRAM_HH
