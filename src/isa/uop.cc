#include "isa/uop.hh"

#include <sstream>

namespace cdfsim::isa
{

unsigned
executeLatency(Opcode op)
{
    switch (op) {
      case Opcode::Mul:
        return 3;
      case Opcode::Div:
        return 12;
      case Opcode::FAdd:
        return 3;
      case Opcode::FMul:
        return 4;
      case Opcode::FDiv:
        return 12;
      default:
        return 1;
    }
}

std::string
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::Div: return "div";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr";
      case Opcode::CmpLt: return "cmplt";
      case Opcode::CmpEq: return "cmpeq";
      case Opcode::Mov: return "mov";
      case Opcode::MovImm: return "movi";
      case Opcode::AddImm: return "addi";
      case Opcode::FAdd: return "fadd";
      case Opcode::FMul: return "fmul";
      case Opcode::FDiv: return "fdiv";
      case Opcode::Load: return "load";
      case Opcode::Store: return "store";
      case Opcode::Beqz: return "beqz";
      case Opcode::Bnez: return "bnez";
      case Opcode::Jmp: return "jmp";
      case Opcode::Call: return "call";
      case Opcode::Ret: return "ret";
      case Opcode::Halt: return "halt";
    }
    return "?";
}

std::string
toString(const Uop &uop)
{
    std::ostringstream os;
    os << opcodeName(uop.op);
    auto reg = [](RegId r) {
        return r == kInvalidReg ? std::string("-")
                                : "r" + std::to_string(r);
    };
    switch (uop.op) {
      case Opcode::Nop:
      case Opcode::Halt:
        break;
      case Opcode::MovImm:
        os << " " << reg(uop.dst) << ", #" << uop.imm;
        break;
      case Opcode::AddImm:
        os << " " << reg(uop.dst) << ", " << reg(uop.src1) << ", #"
           << uop.imm;
        break;
      case Opcode::Mov:
        os << " " << reg(uop.dst) << ", " << reg(uop.src1);
        break;
      case Opcode::Load:
        os << " " << reg(uop.dst) << ", [" << reg(uop.src1) << "+"
           << uop.imm << "]";
        break;
      case Opcode::Store:
        os << " [" << reg(uop.src1) << "+" << uop.imm << "], "
           << reg(uop.src2);
        break;
      case Opcode::Beqz:
      case Opcode::Bnez:
        os << " " << reg(uop.src1) << ", @" << uop.imm;
        break;
      case Opcode::Jmp:
      case Opcode::Call:
        os << " @" << uop.imm;
        break;
      case Opcode::Ret:
        os << " " << reg(uop.src1);
        break;
      default:
        os << " " << reg(uop.dst) << ", " << reg(uop.src1) << ", "
           << reg(uop.src2);
        break;
    }
    return os.str();
}

} // namespace cdfsim::isa
