/**
 * @file
 * The uop ISA of the simulated machine.
 *
 * A small RISC-like ISA over 64 integer architectural registers and a
 * flat 64-bit byte-addressed memory. Programs are sequences of uops;
 * the PC is a uop index. This is deliberately close to the decoded
 * uop streams the paper operates on (Figs. 5-7 use exactly this kind
 * of three-address uop notation).
 */

#ifndef CDFSIM_ISA_UOP_HH
#define CDFSIM_ISA_UOP_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/serialize.hh"
#include "common/types.hh"

namespace cdfsim::isa
{

/** Operation encoding. */
enum class Opcode : std::uint8_t
{
    Nop,
    // Integer ALU.
    Add,    //!< dst = src1 + src2
    Sub,    //!< dst = src1 - src2
    Mul,    //!< dst = src1 * src2
    Div,    //!< dst = src1 / src2 (0 divisor yields 0)
    And,    //!< dst = src1 & src2
    Or,     //!< dst = src1 | src2
    Xor,    //!< dst = src1 ^ src2
    Shl,    //!< dst = src1 << (src2 & 63)
    Shr,    //!< dst = src1 >> (src2 & 63)
    CmpLt,  //!< dst = (src1 < src2) ? 1 : 0   (unsigned)
    CmpEq,  //!< dst = (src1 == src2) ? 1 : 0
    Mov,    //!< dst = src1
    MovImm, //!< dst = imm
    AddImm, //!< dst = src1 + imm
    // Long-latency arithmetic standing in for FP pipes.
    FAdd,   //!< dst = src1 + src2 (3-cycle pipe)
    FMul,   //!< dst = src1 * src2 (4-cycle pipe)
    FDiv,   //!< dst = src1 / src2 (12-cycle pipe)
    // Memory.
    Load,   //!< dst = mem64[src1 + imm]
    Store,  //!< mem64[src1 + imm] = src2
    // Control. Branch targets are absolute uop indices in imm.
    Beqz,   //!< if (src1 == 0) pc = imm
    Bnez,   //!< if (src1 != 0) pc = imm
    Jmp,    //!< pc = imm
    Call,   //!< dst = pc + 1; pc = imm (predicted via BTB, pushes RAS)
    Ret,    //!< pc = src1 (predicted via RAS)
    Halt,   //!< stop the program
};

/** One decoded micro-operation. */
struct Uop
{
    Opcode op = Opcode::Nop;
    RegId dst = kInvalidReg;
    RegId src1 = kInvalidReg;
    RegId src2 = kInvalidReg;
    std::int64_t imm = 0;

    bool isLoad() const { return op == Opcode::Load; }
    bool isStore() const { return op == Opcode::Store; }
    bool isMem() const { return isLoad() || isStore(); }

    bool
    isCondBranch() const
    {
        return op == Opcode::Beqz || op == Opcode::Bnez;
    }

    bool
    isUncondBranch() const
    {
        return op == Opcode::Jmp || op == Opcode::Call ||
               op == Opcode::Ret;
    }

    bool isBranch() const { return isCondBranch() || isUncondBranch(); }

    /** Indirect control flow whose target comes from a register. */
    bool isIndirect() const { return op == Opcode::Ret; }

    bool isHalt() const { return op == Opcode::Halt; }

    bool writesReg() const { return dst != kInvalidReg; }

    /** Number of register sources actually read (0..2). */
    unsigned
    numSrcs() const
    {
        unsigned n = 0;
        if (src1 != kInvalidReg)
            ++n;
        if (src2 != kInvalidReg)
            ++n;
        return n;
    }
};

/** Snapshot codec for Uop (field-by-field; see common/serialize.hh). */
inline void
save(SnapWriter &w, const Uop &u)
{
    w.u8(static_cast<std::uint8_t>(u.op));
    w.u16(u.dst);
    w.u16(u.src1);
    w.u16(u.src2);
    w.i64(u.imm);
}

inline void
restore(SnapReader &r, Uop &u)
{
    u.op = static_cast<Opcode>(r.u8());
    u.dst = r.u16();
    u.src1 = r.u16();
    u.src2 = r.u16();
    u.imm = r.i64();
}

/** Execution-pipe latency of a uop once its operands are ready. */
unsigned executeLatency(Opcode op);

/** Human-readable opcode mnemonic. */
std::string opcodeName(Opcode op);

/** Render a uop as assembly-ish text for traces and tests. */
std::string toString(const Uop &uop);

} // namespace cdfsim::isa

#endif // CDFSIM_ISA_UOP_HH
