#include "mem/cache.hh"

#include <algorithm>

#include "common/logging.hh"

namespace cdfsim::mem
{

namespace
{

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

Cache::Cache(const CacheConfig &config, StatRegistry &stats)
    : size_(config.sizeBytes),
      ways_(config.ways),
      latency_(config.latency),
      sets_(config.sizeBytes / (kLineBytes * config.ways)),
      mshrCap_(config.mshrs),
      accesses_(stats.counter(config.name + ".accesses")),
      hits_(stats.counter(config.name + ".hits")),
      misses_(stats.counter(config.name + ".misses")),
      writebacks_(stats.counter(config.name + ".writebacks")),
      mshrStalls_(stats.counter(config.name + ".mshr_stalls")),
      prefIssued_(stats.counter(config.name + ".pref_fills")),
      prefUseful_(stats.counter(config.name + ".pref_useful")),
      prefUnused_(stats.counter(config.name + ".pref_evicted_unused"))
{
    if (sets_ == 0 || !isPow2(sets_))
        fatal("cache '", config.name, "': set count ", sets_,
              " must be a nonzero power of two");
    if (mshrCap_ == 0)
        fatal("cache '", config.name, "' needs at least one MSHR");
    tags_.resize(sets_ * ways_);
}

Cache::Way *
Cache::findLine(Addr line)
{
    Way *base = &tags_[setIndex(line) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].lineAddr == line)
            return &base[w];
    }
    return nullptr;
}

const Cache::Way *
Cache::findLine(Addr line) const
{
    const Way *base = &tags_[setIndex(line) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].lineAddr == line)
            return &base[w];
    }
    return nullptr;
}

Cache::Way &
Cache::selectVictim(Addr line)
{
    Way *base = &tags_[setIndex(line) * ways_];
    Way *victim = &base[0];
    for (unsigned w = 0; w < ways_; ++w) {
        if (!base[w].valid)
            return base[w];
        if (base[w].lru < victim->lru)
            victim = &base[w];
    }
    return *victim;
}

void
Cache::touch(Way &way)
{
    way.lru = ++lruClock_;
}

void
Cache::pruneMshrs(Cycle now)
{
    std::erase_if(mshrsInFlight_, [now](Cycle c) { return c <= now; });
}

bool
Cache::probe(Addr addr) const
{
    return findLine(lineAlign(addr)) != nullptr;
}

void
Cache::invalidate(Addr addr)
{
    if (Way *way = findLine(lineAlign(addr)))
        way->valid = false;
}

void
Cache::markDirty(Addr addr)
{
    if (Way *way = findLine(lineAlign(addr)))
        way->dirty = true;
}

} // namespace cdfsim::mem
