#include "mem/cache.hh"

#include <algorithm>

#include "common/logging.hh"

namespace cdfsim::mem
{

namespace
{

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

Cache::Cache(const CacheConfig &config, StatRegistry &stats)
    : size_(config.sizeBytes),
      ways_(config.ways),
      latency_(config.latency),
      sets_(config.sizeBytes / (kLineBytes * config.ways)),
      setMask_(sets_ - 1),
      mshrCap_(config.mshrs),
      mshrs_(config.mshrs),
      accesses_(stats.counter(config.name + ".accesses")),
      hits_(stats.counter(config.name + ".hits")),
      misses_(stats.counter(config.name + ".misses")),
      writebacks_(stats.counter(config.name + ".writebacks")),
      mshrStalls_(stats.counter(config.name + ".mshr_stalls")),
      prefIssued_(stats.counter(config.name + ".pref_fills")),
      prefUseful_(stats.counter(config.name + ".pref_useful")),
      prefUnused_(stats.counter(config.name + ".pref_evicted_unused"))
{
    if (sets_ == 0 || !isPow2(sets_))
        fatal("cache '", config.name, "': set count ", sets_,
              " must be a nonzero power of two");
    if (mshrCap_ == 0)
        fatal("cache '", config.name, "' needs at least one MSHR");
    tags_.resize(sets_ * ways_);
}

const Cache::Way *
Cache::findLine(Addr line) const
{
    const Way *base = &tags_[setIndex(line) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].lineAddr == line)
            return &base[w];
    }
    return nullptr;
}

Cache::Way *
Cache::findLineAndVictim(Addr line, Way *&victim)
{
    Way *base = &tags_[setIndex(line) * ways_];
    Way *firstInvalid = nullptr;
    Way *lruMin = base;
    for (unsigned w = 0; w < ways_; ++w) {
        Way &cand = base[w];
        if (!cand.valid) {
            if (!firstInvalid)
                firstInvalid = &cand;
            continue;
        }
        if (cand.lineAddr == line) {
            victim = nullptr; // hit: no victim needed
            return &cand;
        }
        if (cand.lru < lruMin->lru)
            lruMin = &cand;
    }
    // Same choice the standalone victim scan made: the first invalid
    // way wins, else the first way holding the minimum LRU stamp
    // (lruMin starts at way 0 and only moves on strict <).
    victim = firstInvalid ? firstInvalid : lruMin;
    return nullptr;
}

void
Cache::touch(Way &way)
{
    way.lru = ++lruClock_;
}

bool
Cache::probe(Addr addr) const
{
    return findLine(lineAlign(addr)) != nullptr;
}

void
Cache::invalidate(Addr addr)
{
    const Addr line = lineAlign(addr);
    Way *base = &tags_[setIndex(line) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].lineAddr == line) {
            base[w].valid = false;
            ++tagGen_;
            return;
        }
    }
}

void
Cache::markDirty(Addr addr)
{
    const Addr line = lineAlign(addr);
    Way *base = &tags_[setIndex(line) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].lineAddr == line) {
            base[w].dirty = true; // presence unchanged: no gen bump
            return;
        }
    }
}

} // namespace cdfsim::mem
