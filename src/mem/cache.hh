/**
 * @file
 * Set-associative cache with LRU replacement, write-back/
 * write-allocate policy, fill-time line readiness (hit-under-fill)
 * and an MSHR file for miss merging and backpressure.
 *
 * The hierarchy uses a completion-time discipline: a miss fills the
 * line immediately but stamps it with the cycle at which the data
 * arrives; accesses that touch the line earlier complete at that
 * stamp (an MSHR merge in hardware terms).
 */

#ifndef CDFSIM_MEM_CACHE_HH
#define CDFSIM_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/audit.hh"
#include "common/cycle_ring.hh"
#include "common/serialize.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace cdfsim::mem
{

/** Geometry and latency of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned ways = 8;
    unsigned latency = 2;      //!< access (hit) latency in core cycles
    unsigned mshrs = 16;       //!< outstanding-miss capacity
};

/** Result of a cache lookup-and-fill operation. */
struct CacheAccessOutcome
{
    bool hit = false;              //!< tag present at request time
    Cycle ready = 0;               //!< cycle the data is available
    bool evictedDirty = false;     //!< a dirty victim was produced
    Addr evictedAddr = 0;          //!< victim line address (if dirty)
    bool mshrMerged = false;       //!< merged into an in-flight miss
    bool hitUnderFill = false;     //!< tag present but data in flight
    bool wasPrefetched = false;    //!< hit line was brought by prefetch
};

/** One cache level. */
class Cache
{
  public:
    Cache(const CacheConfig &config, StatRegistry &stats);

    /**
     * Look up @p addr at time @p now. On a miss, the caller-supplied
     * @p missLatency functor is invoked with the earliest start cycle
     * and must return the downstream completion cycle; the line is
     * then filled. Passing a null functor (see probeOnly) is not
     * allowed here.
     *
     * @param addr Byte address (line-aligned internally).
     * @param isWrite Marks the line dirty on hit/fill.
     * @param now Request cycle.
     * @param missLatency Functor Cycle(Cycle start) for miss service.
     * @param isPrefetch The access is a prefetch (separate stats,
     *        fills are tagged so later demand hits count as useful).
     */
    template <typename MissFn>
    CacheAccessOutcome
    access(Addr addr, bool isWrite, Cycle now, MissFn &&missLatency,
           bool isPrefetch = false)
    {
        const Addr line = lineAlign(addr);
        CacheAccessOutcome out;
        ++accesses_;

        // One set walk yields both the hit way and, on a miss, the
        // victim (first invalid way, else LRU-minimum). Nothing
        // between here and the fill mutates this cache's tags, so
        // the fused walk picks the same victim the old second walk
        // did.
        Way *victim = nullptr;
        Way *way = findLineAndVictim(line, victim);
        if (way) {
            out.hit = true;
            out.wasPrefetched = way->prefetched;
            if (way->prefetched && !isPrefetch) {
                ++prefUseful_;
                way->prefetched = false;
            }
            if (way->ready > now + latency_) {
                out.hitUnderFill = true;
                out.ready = way->ready;
            } else {
                out.ready = now + latency_;
            }
            way->dirty = way->dirty || isWrite;
            touch(*way);
            ++hits_;
            return out;
        }

        ++misses_;
        if (isPrefetch)
            ++prefIssued_;

        // MSHR backpressure: a full MSHR file delays the request
        // until the earliest outstanding miss completes. The ring is
        // sorted, so "earliest" is its front — no scan.
        Cycle start = now + latency_;
        mshrs_.pruneUpTo(now);
        // Ring/backpressure agreement: after the prune every live
        // MSHR completes in the future, so a full file can only ever
        // push the start cycle forward.
        SIM_AUDIT(mshrs_.empty() || mshrs_.earliest() > now,
                  "MSHR ring retains a completed miss after prune");
        if (mshrs_.size() >= mshrCap_) {
            const Cycle earliest = mshrs_.earliest();
            if (earliest > start) {
                start = earliest;
                ++mshrStalls_;
            }
        }

        const Cycle fillReady = missLatency(start);
        SIM_AUDIT(fillReady >= start,
                  "miss service completed before it started");
        mshrs_.push(fillReady);

        if (victim->valid && victim->dirty) {
            out.evictedDirty = true;
            out.evictedAddr = victim->lineAddr;
            ++writebacks_;
        }
        if (victim->valid && victim->prefetched)
            ++prefUnused_;
        victim->valid = true;
        victim->lineAddr = line;
        victim->dirty = isWrite;
        victim->ready = fillReady;
        victim->prefetched = isPrefetch;
        touch(*victim);
        ++tagGen_; // the set's resident lines changed

        out.hit = false;
        out.ready = fillReady;
        return out;
    }

    /** Tag check only; no LRU update, no fill. */
    bool probe(Addr addr) const;

    /** Drop the line holding @p addr if present. */
    void invalidate(Addr addr);

    /** Mark the line holding @p addr dirty (for retired stores). */
    void markDirty(Addr addr);

    unsigned latency() const { return latency_; }
    std::uint64_t sizeBytes() const { return size_; }
    unsigned ways() const { return ways_; }
    std::size_t numSets() const { return sets_; }

    /**
     * Monotone counter bumped whenever the set of resident lines
     * can change (fill or invalidate; LRU touches and dirty marks
     * don't count). Lets callers memoize probe() results exactly:
     * a cached answer is valid iff the generation is unchanged.
     */
    std::uint64_t tagGeneration() const { return tagGen_; }

    /**
     * Earliest outstanding-miss completion strictly after @p now, or
     * kNeverCycle with no misses in flight. Prunes expired MSHRs
     * first — the same prune access() performs, just possibly a few
     * cycles early, which is harmless: pruneUpTo is monotone and the
     * ring only feeds backpressure decisions relative to "now".
     */
    Cycle
    earliestEvent(Cycle now)
    {
        mshrs_.pruneUpTo(now);
        return mshrs_.empty() ? kNeverCycle : mshrs_.earliest();
    }

    /** Snapshot tags, LRU clock, tag generation and the MSHR ring
     *  (geometry is config-fixed and excluded). */
    void
    save(SnapWriter &w) const
    {
        for (const Way &way : tags_) {
            w.b(way.valid);
            w.b(way.dirty);
            w.b(way.prefetched);
            w.u64(way.lineAddr);
            w.u64(way.lru);
            w.u64(way.ready);
        }
        w.u64(lruClock_);
        w.u64(tagGen_);
        mshrs_.save(w);
    }

    void
    restore(SnapReader &r)
    {
        for (Way &way : tags_) {
            way.valid = r.b();
            way.dirty = r.b();
            way.prefetched = r.b();
            way.lineAddr = r.u64();
            way.lru = r.u64();
            way.ready = r.u64();
        }
        lruClock_ = r.u64();
        tagGen_ = r.u64();
        mshrs_.restore(r);
    }

  private:
    struct Way
    {
        bool valid = false;
        bool dirty = false;
        bool prefetched = false;
        Addr lineAddr = 0;
        std::uint64_t lru = 0;     //!< larger == more recently used
        Cycle ready = 0;
    };

    const Way *findLine(Addr line) const;
    Way *findLineAndVictim(Addr line, Way *&victim);
    void touch(Way &way);

    // sets_ is asserted to be a nonzero power of two, so the set
    // index is a shift and a mask — no integer division.
    std::size_t setIndex(Addr line) const
    {
        return static_cast<std::size_t>(line >> kLineShift) &
               setMask_;
    }

    SIM_SNAPSHOT_FIELDS(18);

    std::uint64_t size_;
    unsigned ways_;
    unsigned latency_;
    std::size_t sets_;
    std::size_t setMask_;
    unsigned mshrCap_;
    std::vector<Way> tags_;        // sets_ * ways_, row-major by set
    std::uint64_t lruClock_ = 0;
    std::uint64_t tagGen_ = 0;
    MonotonicCycleRing mshrs_;

    std::uint64_t &accesses_;
    std::uint64_t &hits_;
    std::uint64_t &misses_;
    std::uint64_t &writebacks_;
    std::uint64_t &mshrStalls_;
    std::uint64_t &prefIssued_;
    std::uint64_t &prefUseful_;
    std::uint64_t &prefUnused_;
};

} // namespace cdfsim::mem

#endif // CDFSIM_MEM_CACHE_HH
