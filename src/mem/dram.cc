#include "mem/dram.hh"

#include <algorithm>

#include "common/logging.hh"

namespace cdfsim::mem
{

DramModel::DramModel(const DramConfig &config, StatRegistry &stats,
                     const std::string &name)
    : config_(config),
      reads_(stats.counter(name + ".reads")),
      writes_(stats.counter(name + ".writes")),
      rowHits_(stats.counter(name + ".row_hits")),
      rowMisses_(stats.counter(name + ".row_misses")),
      rowConflicts_(stats.counter(name + ".row_conflicts")),
      bytesRead_(stats.counter(name + ".bytes_read")),
      bytesWritten_(stats.counter(name + ".bytes_written"))
{
    if (config_.channels == 0 || config_.bankGroups == 0 ||
        config_.banksPerGroup == 0) {
        fatal("dram: zero-sized geometry");
    }
    channels_.resize(config_.channels);
    const unsigned banks = config_.bankGroups * config_.banksPerGroup;
    for (auto &ch : channels_)
        ch.banks.resize(banks);
}

unsigned
DramModel::channelOf(Addr line) const
{
    // Interleave consecutive lines across channels.
    return (line / kLineBytes) % config_.channels;
}

unsigned
DramModel::bankOf(Addr line) const
{
    const unsigned banks = config_.bankGroups * config_.banksPerGroup;
    return (line / kLineBytes / config_.channels) % banks;
}

Addr
DramModel::rowOf(Addr line) const
{
    const unsigned banks = config_.bankGroups * config_.banksPerGroup;
    const Addr linesPerRow = config_.rowBytes / kLineBytes;
    return line / kLineBytes / config_.channels / banks / linesPerRow;
}

DramAccessOutcome
DramModel::access(Addr lineAddr, bool isWrite, Cycle now)
{
    const Addr line = lineAlign(lineAddr);
    Channel &ch = channels_[channelOf(line)];
    Bank &bank = ch.banks[bankOf(line)];
    const Addr row = rowOf(line);

    DramAccessOutcome out;

    Cycle start = now + config_.controllerLatency;
    start = std::max(start, bank.busyUntil);

    unsigned arrayLatency = 0;
    if (bank.open && bank.openRow == row) {
        arrayLatency = config_.tCl;
        out.rowHit = true;
        ++rowHits_;
    } else if (!bank.open) {
        arrayLatency = config_.tRcd + config_.tCl;
        ++rowMisses_;
    } else {
        arrayLatency = config_.tRp + config_.tRcd + config_.tCl;
        out.rowConflict = true;
        ++rowConflicts_;
    }

    Cycle dataStart = start + arrayLatency;
    dataStart = std::max(dataStart, ch.busUntil);
    const Cycle done = dataStart + config_.tBurst;

    bank.open = true;
    bank.openRow = row;
    bank.busyUntil = done;
    ch.busUntil = done;

    if (isWrite) {
        ++writes_;
        bytesWritten_ += kLineBytes;
    } else {
        ++reads_;
        bytesRead_ += kLineBytes;
    }

    out.ready = done;
    return out;
}

} // namespace cdfsim::mem
