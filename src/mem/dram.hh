/**
 * @file
 * DDR4-style main-memory timing model (the Ramulator substitute).
 *
 * Table 1 of the paper: DDR4_2400R, 1 rank, 2 channels, 4 bank
 * groups and 4 banks per group per channel, tRP-tCL-tRCD = 16-16-16
 * (DRAM cycles). Core runs at 3.2 GHz, DDR4-2400 I/O at 1.2 GHz, so
 * one DRAM cycle is ~2.67 core cycles; timing parameters below are
 * expressed in core cycles using that ratio.
 *
 * The model keeps per-bank open rows and busy-until times and a
 * per-channel data bus, approximating FR-FCFS through row-hit
 * latency plus bank-level parallelism. Row hits cost tCL; closed
 * banks tRCD+tCL; conflicts tRP+tRCD+tCL.
 */

#ifndef CDFSIM_MEM_DRAM_HH
#define CDFSIM_MEM_DRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/serialize.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace cdfsim::mem
{

/** DDR timing and geometry, in core cycles. */
struct DramConfig
{
    unsigned channels = 2;
    unsigned bankGroups = 4;
    unsigned banksPerGroup = 4;
    unsigned rowBytes = 8192;           //!< 8KB row buffer
    unsigned tRp = 43;                  //!< 16 DRAM cycles @ 2.67x
    unsigned tCl = 43;
    unsigned tRcd = 43;
    unsigned tBurst = 11;               //!< BL8 data transfer
    unsigned controllerLatency = 10;    //!< queue + PHY overhead
};

/** The memory request's service summary. */
struct DramAccessOutcome
{
    Cycle ready = 0;
    bool rowHit = false;
    bool rowConflict = false;           //!< needed a precharge first
};

/** Main memory. */
class DramModel
{
  public:
    DramModel(const DramConfig &config, StatRegistry &stats,
              const std::string &name = "dram");

    /**
     * Service a line read or write beginning no earlier than @p now.
     * Returns the completion cycle of the data transfer.
     */
    DramAccessOutcome access(Addr lineAddr, bool isWrite, Cycle now);

    /** Total bytes moved on the DRAM bus (reads + writes). */
    std::uint64_t totalBytes() const { return bytesRead_ + bytesWritten_; }

    const DramConfig &config() const { return config_; }

    /** Snapshot per-bank/bus timing state (geometry is config). */
    void
    save(SnapWriter &w) const
    {
        for (const Channel &ch : channels_) {
            for (const Bank &bank : ch.banks) {
                w.b(bank.open);
                w.u64(bank.openRow);
                w.u64(bank.busyUntil);
            }
            w.u64(ch.busUntil);
        }
    }

    void
    restore(SnapReader &r)
    {
        for (Channel &ch : channels_) {
            for (Bank &bank : ch.banks) {
                bank.open = r.b();
                bank.openRow = r.u64();
                bank.busyUntil = r.u64();
            }
            ch.busUntil = r.u64();
        }
    }

  private:
    struct Bank
    {
        bool open = false;
        Addr openRow = 0;
        Cycle busyUntil = 0;
    };

    struct Channel
    {
        std::vector<Bank> banks;
        Cycle busUntil = 0;
    };

    unsigned channelOf(Addr line) const;
    unsigned bankOf(Addr line) const;
    Addr rowOf(Addr line) const;

    SIM_SNAPSHOT_FIELDS(9);

    DramConfig config_;
    std::vector<Channel> channels_;

    std::uint64_t &reads_;
    std::uint64_t &writes_;
    std::uint64_t &rowHits_;
    std::uint64_t &rowMisses_;
    std::uint64_t &rowConflicts_;
    std::uint64_t &bytesRead_;
    std::uint64_t &bytesWritten_;
};

} // namespace cdfsim::mem

#endif // CDFSIM_MEM_DRAM_HH
