#include "mem/hierarchy.hh"

#include <algorithm>
#include <chrono>

#include "common/logging.hh"

namespace cdfsim::mem
{

const char *
MemLevelProfile::name(unsigned level)
{
    static const char *const kNames[kNumLevels] = {
        "mem.l1", "mem.llc", "mem.dram",
    };
    SIM_ASSERT(level < kNumLevels, "bad memory level");
    return kNames[level];
}

MemHierarchy::MemHierarchy(const HierarchyConfig &config,
                           StatRegistry &stats)
    : config_(config),
      stats_(stats),
      l1i_(config.l1i, stats),
      l1d_(config.l1d, stats),
      llc_(config.llc, stats),
      dram_(config.dram, stats),
      prefetcher_(config.prefetcher, stats),
      dramDemandReads_(stats.counter("dram.demand_reads")),
      dramPrefetchReads_(stats.counter("dram.prefetch_reads")),
      dramWrongPathReads_(stats.counter("dram.wrongpath_reads")),
      dramRunaheadReads_(stats.counter("dram.runahead_reads"))
{
}

Cycle
MemHierarchy::llcThenDram(Addr line, bool isWrite, Cycle start,
                          AccessKind kind, bool *llcHitOut)
{
    auto out = llc_.access(
        line, isWrite, start,
        [&](Cycle llc_start) {
            auto dr = dram_.access(line, false, llc_start);
            switch (kind) {
              case AccessKind::DemandLoad:
              case AccessKind::DemandStore:
              case AccessKind::InstrFetch:
                ++dramDemandReads_;
                demandMisses_.add(dr.ready);
                break;
              case AccessKind::WrongPathLoad:
                ++dramWrongPathReads_;
                uselessMisses_.add(dr.ready);
                break;
              case AccessKind::RunaheadLoad:
                ++dramRunaheadReads_;
                // Runahead misses are counted as demand MLP only if
                // they later turn out useful; the PRE controller
                // reclassifies via its own stats. Here they appear in
                // the demand queue so MLP reflects overlap on the bus.
                demandMisses_.add(dr.ready);
                break;
            }
            return dr.ready;
        },
        /*isPrefetch=*/false);

    if (out.evictedDirty)
        dram_.access(out.evictedAddr, true, out.ready);
    if (llcHitOut)
        *llcHitOut = out.hit;
    return out.ready;
}

MemAccessResult
MemHierarchy::dataAccess(Addr addr, AccessKind kind, Cycle now)
{
    if (!profileEnabled_)
        return dataAccessTimed(addr, kind, now);

    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    const MemAccessResult res = dataAccessTimed(addr, kind, now);
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            clock::now() - t0)
            .count());
    recordProfile(res.l1Hit    ? MemLevelProfile::L1
                  : res.llcHit ? MemLevelProfile::Llc
                               : MemLevelProfile::Dram,
                  ns);
    return res;
}

void
MemHierarchy::recordProfile(unsigned level, std::uint64_t ns)
{
    profile_.ns[level] += ns;
    ++profile_.accesses[level];
}

MemAccessResult
MemHierarchy::dataAccessTimed(Addr addr, AccessKind kind, Cycle now)
{
    SIM_ASSERT(kind != AccessKind::InstrFetch,
               "instruction fetches go through instrAccess");

    MemAccessResult res;
    const bool isWrite = kind == AccessKind::DemandStore;
    bool llcHit = false;
    bool reachedLlc = false;

    auto out = l1d_.access(
        addr, isWrite, now,
        [&](Cycle start) {
            reachedLlc = true;
            return llcThenDram(lineAlign(addr), false, start, kind,
                               &llcHit);
        });

    if (out.evictedDirty) {
        // Write the L1 victim back into the LLC: fill (or update)
        // the line as dirty without a DRAM round trip.
        auto wb = llc_.access(out.evictedAddr, true, out.ready,
                              [&](Cycle start) { return start; });
        if (wb.evictedDirty)
            dram_.access(wb.evictedAddr, true, wb.ready);
    }

    res.ready = out.ready;
    res.l1Hit = out.hit;
    res.llcHit = reachedLlc && llcHit;
    res.llcMiss = reachedLlc && !llcHit;

    // Train the prefetcher on the post-L1 demand stream only.
    if (config_.prefetcherEnabled && reachedLlc &&
        kind != AccessKind::WrongPathLoad) {
        issuePrefetches(addr, res.llcMiss, now);
    }
    return res;
}

void
MemHierarchy::issuePrefetches(Addr trigger, bool wasLlcMiss, Cycle now)
{
    PrefetchBatch batch = prefetcher_.observe(trigger, wasLlcMiss);
    for (unsigned i = 0; i < batch.count; ++i) {
        const Addr line = batch.lines[i];
        if (llc_.probe(line))
            continue;
        auto out = llc_.access(
            line, false, now,
            [&](Cycle start) {
                auto dr = dram_.access(line, false, start);
                ++dramPrefetchReads_;
                return dr.ready;
            },
            /*isPrefetch=*/true);
        if (out.evictedDirty)
            dram_.access(out.evictedAddr, true, out.ready);
    }

    // Feed accuracy deltas back to the throttle.
    const std::uint64_t useful = stats_.get("llc.pref_useful");
    const std::uint64_t issued = stats_.get("llc.pref_fills");
    prefetcher_.feedback(useful - lastPrefUseful_,
                         issued - lastPrefIssued_);
    lastPrefUseful_ = useful;
    lastPrefIssued_ = issued;
}

Cycle
MemHierarchy::instrAccess(Addr pc, Cycle now)
{
    unsigned level = MemLevelProfile::L1;
    if (!profileEnabled_)
        return instrAccessTimed(pc, now, level);

    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    const Cycle ready = instrAccessTimed(pc, now, level);
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            clock::now() - t0)
            .count());
    recordProfile(level, ns);
    return ready;
}

Cycle
MemHierarchy::instrAccessTimed(Addr pc, Cycle now, unsigned &level)
{
    const Addr addr = codeAddr(pc);
    bool llcHit = false;
    bool reachedLlc = false;
    auto out = l1i_.access(addr, false, now, [&](Cycle start) {
        reachedLlc = true;
        return llcThenDram(lineAlign(addr), false, start,
                           AccessKind::InstrFetch, &llcHit);
    });
    level = !reachedLlc ? MemLevelProfile::L1
            : llcHit    ? MemLevelProfile::Llc
                        : MemLevelProfile::Dram;
    return out.ready;
}

bool
MemHierarchy::wouldMissLlc(Addr addr) const
{
    const Addr line = lineAlign(addr);
    const std::uint64_t gen =
        l1d_.tagGeneration() + llc_.tagGeneration();
    ProbeCacheEntry &e =
        probeCache_[static_cast<std::size_t>(line >> kLineShift) &
                    (kProbeCacheSlots - 1)];
    if (e.line == line && e.gen == gen)
        return e.miss;
    const bool miss = !l1d_.probe(line) && !llc_.probe(line);
    e = {line, gen, miss};
    SIM_AUDIT_ONLY(if (probeAudit_.due()) auditProbeCache();)
    return miss;
}

Cycle
MemHierarchy::earliestEvent(Cycle now)
{
    // The MLP counters must be advanced before nextEventCycle() so
    // the bound is relative to "now"; advanceTo is exactly what the
    // per-cycle sampler would have done first anyway.
    demandMisses_.advanceTo(now);
    uselessMisses_.advanceTo(now);
    Cycle earliest = std::min(demandMisses_.nextEventCycle(),
                              uselessMisses_.nextEventCycle());
    earliest = std::min(earliest, l1i_.earliestEvent(now));
    earliest = std::min(earliest, l1d_.earliestEvent(now));
    earliest = std::min(earliest, llc_.earliestEvent(now));
    return earliest;
}

void
MemHierarchy::auditProbeCache() const
{
    const std::uint64_t gen =
        l1d_.tagGeneration() + llc_.tagGeneration();
    for (std::size_t slot = 0; slot < kProbeCacheSlots; ++slot) {
        const ProbeCacheEntry &e = probeCache_[slot];
        if (e.line == ~Addr{0} || e.gen != gen)
            continue; // empty or orphaned by a fill/invalidate
        SIM_ASSERT((static_cast<std::size_t>(e.line >> kLineShift) &
                    (kProbeCacheSlots - 1)) == slot,
                   "probe cache entry for line ", e.line,
                   " stored in the wrong slot ", slot);
        const bool miss = !l1d_.probe(e.line) && !llc_.probe(e.line);
        SIM_ASSERT(e.miss == miss,
                   "probe cache entry for line ", e.line,
                   " disagrees with live tags despite a current "
                   "generation key");
    }
}

unsigned
MemHierarchy::outstandingDemandMisses(Cycle now)
{
    demandMisses_.advanceTo(now);
    return static_cast<unsigned>(demandMisses_.outstanding());
}

unsigned
MemHierarchy::outstandingUselessMisses(Cycle now)
{
    uselessMisses_.advanceTo(now);
    return static_cast<unsigned>(uselessMisses_.outstanding());
}

} // namespace cdfsim::mem
