/**
 * @file
 * Three-level memory hierarchy facade: L1I + L1D, shared LLC, DRAM,
 * with the stream prefetcher trained at the LLC boundary.
 *
 * The core (and the PRE engine) performs all memory timing through
 * this class. Every access is tagged with an AccessKind so the
 * hierarchy can attribute MLP and DRAM traffic to demand, prefetch,
 * wrong-path and runahead activity — the split the paper's Figs. 14
 * and 15 rely on.
 */

#ifndef CDFSIM_MEM_HIERARCHY_HH
#define CDFSIM_MEM_HIERARCHY_HH

#include <array>
#include <cstdint>

#include "common/audit.hh"
#include "common/cycle_ring.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/prefetcher.hh"

namespace cdfsim::mem
{

/** Who is asking for memory. */
enum class AccessKind : std::uint8_t
{
    DemandLoad,     //!< correct-path load issued by the core
    DemandStore,    //!< retired store committing
    WrongPathLoad,  //!< load fetched down a mispredicted path
    RunaheadLoad,   //!< PRE chain load (prefetch-only execution)
    InstrFetch,     //!< frontend line fetch
};

/** Summary of one data access. */
struct MemAccessResult
{
    Cycle ready = 0;
    bool l1Hit = false;
    bool llcHit = false;     //!< serviced at the LLC (after L1 miss)
    bool llcMiss = false;    //!< had to go to DRAM
};

/**
 * Host-time attribution of hierarchy work, by the deepest level an
 * access reached. Filled only when profiling is enabled (the
 * --profile flag); purely host-side, never enters the stat
 * registry, so profiled and unprofiled runs stay architecturally
 * bit-identical.
 */
struct MemLevelProfile
{
    enum Level : unsigned
    {
        L1,   //!< satisfied by L1I / L1D
        Llc,  //!< L1 miss serviced at the LLC
        Dram, //!< went all the way to DRAM
        kNumLevels
    };

    std::array<std::uint64_t, kNumLevels> ns{};
    std::array<std::uint64_t, kNumLevels> accesses{};

    static const char *name(unsigned level);
};

/** Hierarchy configuration (Table 1 defaults). */
struct HierarchyConfig
{
    CacheConfig l1i{"l1i", 32 * 1024, 8, 2, 8};
    CacheConfig l1d{"l1d", 32 * 1024, 8, 2, 12};
    CacheConfig llc{"llc", 1024 * 1024, 16, 18, 24};
    DramConfig dram{};
    PrefetcherConfig prefetcher{};
    bool prefetcherEnabled = true;
};

/** The memory system. */
class MemHierarchy
{
  public:
    MemHierarchy(const HierarchyConfig &config, StatRegistry &stats);

    /** Non-copyable: caches hold references into the stat registry. */
    MemHierarchy(const MemHierarchy &) = delete;
    MemHierarchy &operator=(const MemHierarchy &) = delete;

    /** Perform a data-side access (loads, stores, runahead). */
    MemAccessResult dataAccess(Addr addr, AccessKind kind, Cycle now);

    /** Fetch the instruction line holding uop index @p pc. */
    Cycle instrAccess(Addr pc, Cycle now);

    /**
     * Probe-only: would a demand load of @p addr miss the LLC right
     * now? Used by CDF's Critical Count Table update at retire and
     * by the full-window-stall classifier. No state is modified.
     */
    bool wouldMissLlc(Addr addr) const;

    /** Outstanding DRAM demand misses at @p now (for MLP sampling). */
    unsigned outstandingDemandMisses(Cycle now);

    /** Outstanding useless (wrong-path / dead-runahead) misses. */
    unsigned outstandingUselessMisses(Cycle now);

    /**
     * Earliest cycle strictly after @p now at which anything in the
     * memory system changes state on its own: an MSHR completing in
     * any cache level, or an outstanding DRAM miss leaving the MLP
     * counters. kNeverCycle when fully drained. The idle-skip fast
     * path may jump the core clock to (but not past) this cycle;
     * everything else in the hierarchy is access-driven and cannot
     * act during the gap.
     */
    Cycle earliestEvent(Cycle now);

    /**
     * Probe-cache/tag agreement walk: every memoized wouldMissLlc()
     * answer whose tag-generation key is still current must match a
     * fresh probe of both levels. Stale-generation entries are
     * unreachable (the lookup rejects them) and are not checked.
     * Always compiled (cheap: 64 slots); sampled from wouldMissLlc()
     * in Audit builds.
     */
    void auditProbeCache() const;

    /** DRAM bytes moved so far. */
    std::uint64_t dramBytes() const { return dram_.totalBytes(); }

    /** Toggle host-time per-level profiling (off by default). */
    void enableProfile(bool on) { profileEnabled_ = on; }
    const MemLevelProfile &profile() const { return profile_; }

    Cache &l1d() { return l1d_; }
    Cache &llc() { return llc_; }
    DramModel &dram() { return dram_; }
    StreamPrefetcher &prefetcher() { return prefetcher_; }

    /** Map a uop PC to a byte address in the dedicated code region. */
    static Addr
    codeAddr(Addr pc)
    {
        return kCodeBase + pc * 8;
    }

    /**
     * Snapshot every level plus the outstanding-miss rings, the
     * probe memo and the prefetch-feedback cursors. Host-side
     * profiling state is excluded (it never affects timing).
     */
    void
    save(SnapWriter &w) const
    {
        l1i_.save(w);
        l1d_.save(w);
        llc_.save(w);
        dram_.save(w);
        prefetcher_.save(w);
        demandMisses_.save(w);
        uselessMisses_.save(w);
        for (const ProbeCacheEntry &e : probeCache_) {
            w.u64(e.line);
            w.u64(e.gen);
            w.b(e.miss);
        }
        w.u64(lastPrefUseful_);
        w.u64(lastPrefIssued_);
    }

    void
    restore(SnapReader &r)
    {
        l1i_.restore(r);
        l1d_.restore(r);
        llc_.restore(r);
        dram_.restore(r);
        prefetcher_.restore(r);
        demandMisses_.restore(r);
        uselessMisses_.restore(r);
        for (ProbeCacheEntry &e : probeCache_) {
            e.line = r.u64();
            e.gen = r.u64();
            e.miss = r.b();
        }
        lastPrefUseful_ = r.u64();
        lastPrefIssued_ = r.u64();
    }

  private:
    static constexpr Addr kCodeBase = Addr{1} << 40;

    /** LLC access chained to DRAM; shared by both L1 miss paths. */
    Cycle llcThenDram(Addr line, bool isWrite, Cycle start,
                      AccessKind kind, bool *llcHitOut);

    void issuePrefetches(Addr trigger, bool wasLlcMiss, Cycle now);

    MemAccessResult dataAccessTimed(Addr addr, AccessKind kind,
                                    Cycle now);
    Cycle instrAccessTimed(Addr pc, Cycle now, unsigned &level);
    void recordProfile(unsigned level, std::uint64_t ns);

    SIM_SNAPSHOT_FIELDS(19);

    HierarchyConfig config_;
    StatRegistry &stats_;
    Cache l1i_;
    Cache l1d_;
    Cache llc_;
    DramModel dram_;
    StreamPrefetcher prefetcher_;

    // Outstanding DRAM misses, bucketed by completion cycle. The
    // MLP sampler reads these every cycle, so the prune must not
    // scale with the number of misses in flight.
    CycleCountRing demandMisses_;
    CycleCountRing uselessMisses_;

    /**
     * Memoized wouldMissLlc() answers. An entry is exact while the
     * L1D and LLC tag generations both stand still: any fill or
     * invalidate bumps a generation and orphans the entry. The two
     * generations are folded into one key by summing (both only
     * ever grow, so the sum can never return to an old value).
     */
    struct ProbeCacheEntry
    {
        Addr line = ~Addr{0}; //!< never a line-aligned address
        std::uint64_t gen = 0;
        bool miss = false;
    };
    static constexpr std::size_t kProbeCacheSlots = 64;
    mutable std::array<ProbeCacheEntry, kProbeCacheSlots> probeCache_{};

    bool profileEnabled_ = false;
    MemLevelProfile profile_;

    // Qualified on purpose: an unqualified friend here would declare
    // a fresh cdfsim::mem::AuditPeer instead of befriending the
    // test-only backdoor forward-declared in common/audit.hh.
    friend struct cdfsim::AuditPeer;
    mutable AuditSampler probeAudit_{4096};

    std::uint64_t lastPrefUseful_ = 0;
    std::uint64_t lastPrefIssued_ = 0;

    std::uint64_t &dramDemandReads_;
    std::uint64_t &dramPrefetchReads_;
    std::uint64_t &dramWrongPathReads_;
    std::uint64_t &dramRunaheadReads_;
};

} // namespace cdfsim::mem

#endif // CDFSIM_MEM_HIERARCHY_HH
