#include "mem/prefetcher.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace cdfsim::mem
{

StreamPrefetcher::StreamPrefetcher(const PrefetcherConfig &config,
                                   StatRegistry &stats)
    : config_(config),
      streams_(config.streams),
      degree_(config.initialDegree),
      issued_(stats.counter("prefetcher.issued")),
      throttleUps_(stats.counter("prefetcher.throttle_ups")),
      throttleDowns_(stats.counter("prefetcher.throttle_downs"))
{
    if (config_.streams == 0)
        fatal("prefetcher: need at least one stream");
    if (config_.maxDegree > 16)
        fatal("prefetcher: max degree capped at 16");
    if (degree_ < config_.minDegree || degree_ > config_.maxDegree)
        fatal("prefetcher: initial degree outside [min, max]");
}

StreamPrefetcher::Stream *
StreamPrefetcher::findStream(std::int64_t line)
{
    Stream *best = nullptr;
    for (auto &s : streams_) {
        if (!s.valid)
            continue;
        const std::int64_t gap = line - s.lastLine;
        if (std::llabs(gap) <=
            static_cast<std::int64_t>(config_.trainDistance)) {
            if (!best || s.lruTick > best->lruTick)
                best = &s;
        }
    }
    return best;
}

StreamPrefetcher::Stream &
StreamPrefetcher::allocateStream(std::int64_t line)
{
    Stream *victim = &streams_[0];
    for (auto &s : streams_) {
        if (!s.valid) {
            victim = &s;
            break;
        }
        if (s.lruTick < victim->lruTick)
            victim = &s;
    }
    *victim = Stream{};
    victim->valid = true;
    victim->lastLine = line;
    victim->lruTick = ++tick_;
    return *victim;
}

PrefetchBatch
StreamPrefetcher::observe(Addr addr, bool wasMiss)
{
    PrefetchBatch batch;
    const std::int64_t line =
        static_cast<std::int64_t>(addr / kLineBytes);

    Stream *s = findStream(line);
    if (!s) {
        if (wasMiss)
            allocateStream(line);
        return batch;
    }

    s->lruTick = ++tick_;
    const std::int64_t gap = line - s->lastLine;
    if (gap == 0)
        return batch;

    const int dir = gap > 0 ? 1 : -1;
    if (!s->confirmed) {
        s->confirmed = true;
        s->direction = dir;
    } else if (dir != s->direction) {
        // Direction flip: retrain in the new direction.
        s->direction = dir;
        s->lastLine = line;
        return batch;
    }
    s->lastLine = line;

    for (unsigned i = 1; i <= degree_ && batch.count < 16; ++i) {
        const std::int64_t target =
            line + s->direction * static_cast<std::int64_t>(i);
        if (target < 0)
            break;
        batch.lines[batch.count++] =
            static_cast<Addr>(target) * kLineBytes;
    }
    issued_ += batch.count;
    return batch;
}

void
StreamPrefetcher::feedback(std::uint64_t usefulDelta,
                           std::uint64_t issuedDelta)
{
    pendingUseful_ += usefulDelta;
    pendingIssued_ += issuedDelta;
    if (pendingIssued_ < config_.evalIntervalFills)
        return;

    const double accuracy =
        static_cast<double>(pendingUseful_) /
        static_cast<double>(pendingIssued_);
    if (accuracy < config_.lowAccuracy && degree_ > config_.minDegree) {
        --degree_;
        ++throttleDowns_;
    } else if (accuracy > config_.highAccuracy &&
               degree_ < config_.maxDegree) {
        ++degree_;
        ++throttleUps_;
    }
    pendingUseful_ = 0;
    pendingIssued_ = 0;
}

} // namespace cdfsim::mem
