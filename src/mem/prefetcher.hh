/**
 * @file
 * Stream prefetcher with feedback-directed throttling (Table 1:
 * "Stream Prefetcher, 64 Streams (always on), Feedback Directed
 * Prefetching to throttle prefetcher").
 *
 * Streams are trained on demand misses: two misses to adjacent lines
 * in the same direction confirm a stream, after which the prefetcher
 * issues `degree` line prefetches ahead of each demand access that
 * advances the stream. The throttle periodically evaluates prefetch
 * accuracy (useful fills / issued fills, measured by the caches) and
 * moves the degree within [minDegree, maxDegree].
 */

#ifndef CDFSIM_MEM_PREFETCHER_HH
#define CDFSIM_MEM_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "common/serialize.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace cdfsim::mem
{

/** Stream prefetcher configuration. */
struct PrefetcherConfig
{
    unsigned streams = 64;
    unsigned trainDistance = 4;   //!< max line gap to keep training
    unsigned minDegree = 1;
    unsigned maxDegree = 8;
    unsigned initialDegree = 4;
    unsigned evalIntervalFills = 256;   //!< throttle evaluation period
    double lowAccuracy = 0.40;
    double highAccuracy = 0.75;
};

/** Trained prefetch decisions for one trigger access. */
struct PrefetchBatch
{
    Addr lines[16];
    unsigned count = 0;
};

/** 64-stream prefetcher with FDP-style throttling. */
class StreamPrefetcher
{
  public:
    StreamPrefetcher(const PrefetcherConfig &config, StatRegistry &stats);

    /**
     * Observe a demand access (post-L1 miss stream). Returns the
     * line addresses to prefetch, if any.
     */
    PrefetchBatch observe(Addr addr, bool wasMiss);

    /**
     * Feedback from the cache: @p usefulDelta new useful prefetches
     * and @p issuedDelta new prefetch fills since the last call.
     * Periodically adjusts the degree.
     */
    void feedback(std::uint64_t usefulDelta, std::uint64_t issuedDelta);

    unsigned degree() const { return degree_; }

    /** Snapshot stream table and throttle state. */
    void
    save(SnapWriter &w) const
    {
        for (const Stream &s : streams_) {
            w.b(s.valid);
            w.b(s.confirmed);
            w.i64(s.lastLine);
            w.i64(s.direction);
            w.u64(s.lruTick);
        }
        w.u32(degree_);
        w.u64(tick_);
        w.u64(pendingUseful_);
        w.u64(pendingIssued_);
    }

    void
    restore(SnapReader &r)
    {
        for (Stream &s : streams_) {
            s.valid = r.b();
            s.confirmed = r.b();
            s.lastLine = r.i64();
            s.direction = static_cast<int>(r.i64());
            s.lruTick = r.u64();
        }
        degree_ = r.u32();
        tick_ = r.u64();
        pendingUseful_ = r.u64();
        pendingIssued_ = r.u64();
    }

  private:
    struct Stream
    {
        bool valid = false;
        bool confirmed = false;
        std::int64_t lastLine = 0;
        int direction = 0;       //!< +1 or -1 once confirmed
        std::uint64_t lruTick = 0;
    };

    Stream *findStream(std::int64_t line);
    Stream &allocateStream(std::int64_t line);

    SIM_SNAPSHOT_FIELDS(9);

    PrefetcherConfig config_;
    std::vector<Stream> streams_;
    unsigned degree_;
    std::uint64_t tick_ = 0;

    std::uint64_t pendingUseful_ = 0;
    std::uint64_t pendingIssued_ = 0;

    std::uint64_t &issued_;
    std::uint64_t &throttleUps_;
    std::uint64_t &throttleDowns_;
};

} // namespace cdfsim::mem

#endif // CDFSIM_MEM_PREFETCHER_HH
