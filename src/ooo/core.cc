#include "ooo/core.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"
#include "ooo/trace_env.hh"

namespace cdfsim::ooo
{

namespace
{

/** Uops per instruction cache line (8B encoding per uop). */
constexpr Addr kUopsPerLine = kLineBytes / 8;

} // namespace

Core::Core(const CoreConfig &config, const isa::Program &program,
           isa::MemoryImage &memory, StatRegistry &stats)
    : config_(config),
      stats_(stats),
      oracle_(program, memory),
      walker_(program, memory),
      cdfWalker_(program, memory),
      raWalker_(program, memory),
      mem_(config.mem, stats),
      bp_(config.bp, stats),
      prf_(config.physRegs),
      rob_(config.robSize),
      lsq_(config.lqSize, config.sqSize),
      rs_(config.rsSize),
      frontQ_(config.fetchQueueSize),
      critQ_(config.fetchQueueSize),
      statCycles_(stats.counter("core.cycles")),
      statRetired_(stats.counter("core.retired_instrs")),
      statFetched_(stats.counter("core.fetched_uops")),
      statFetchedWrongPath_(stats.counter("core.fetched_wrongpath_uops")),
      statRenamed_(stats.counter("core.renamed_uops")),
      statRenamedCritical_(stats.counter("core.renamed_critical_uops")),
      statIssued_(stats.counter("core.issued_uops")),
      statBranches_(stats.counter("core.branches")),
      statMispredicts_(stats.counter("core.mispredicts")),
      statLlcMissLoads_(stats.counter("core.llc_miss_loads")),
      statDepViolations_(stats.counter("core.dependence_violations")),
      statMemOrderViolations_(
          stats.counter("core.memory_order_violations")),
      statCdfEpisodes_(stats.counter("core.cdf_episodes")),
      statCdfExitsUopMiss_(stats.counter("core.cdf_exits_uop_miss")),
      statRunaheadEpisodes_(stats.counter("core.runahead_episodes")),
      statRunaheadUops_(stats.counter("core.runahead_uops")),
      statRunaheadLoads_(stats.counter("core.runahead_loads")),
      statRunaheadTraceMiss_(
          stats.counter("core.runahead_trace_misses"))
{
    if (config_.physRegs < config_.robSize + kNumArchRegs) {
        fatal("physRegs (", config_.physRegs,
              ") must cover ROB + architectural state");
    }

    regWaiters_.resize(config_.physRegs);
    completions_.reserve(config_.robSize + 8);
    completionsScratch_.reserve(config_.robSize + 8);
    mem_.enableProfile(config_.profileStages);

    const bool wantsCdfStructures =
        config_.mode == CoreMode::Cdf || config_.observeCriticality;

    if (wantsCdfStructures) {
        loadCct_ = std::make_unique<cdf::CriticalCountTable>(
            config_.cdf.loadTable, stats_, "cct_loads");
        branchCct_ = std::make_unique<cdf::CriticalCountTable>(
            config_.cdf.branchTable, stats_, "cct_branches");
        maskCache_ =
            std::make_unique<cdf::MaskCache>(config_.cdf.maskCache, stats_);
        uopCache_ = std::make_unique<cdf::CriticalUopCache>(
            config_.cdf.uopCache, stats_);
        fillBuffer_ = std::make_unique<cdf::FillBuffer>(
            config_.cdf.fillBuffer, *maskCache_, *uopCache_, stats_);
    }

    if (config_.mode == CoreMode::Cdf) {
        const auto &p = config_.cdf.partition;
        robPart_ = std::make_unique<cdf::SectionPartition>(
            "rob", config_.robSize, p.robStep, p.minSection,
            p.stallThreshold, p.dynamic, p.initialCriticalFrac, stats_);
        lqPart_ = std::make_unique<cdf::SectionPartition>(
            "lq", config_.lqSize, p.lsqStep, p.minLsqSection,
            p.stallThreshold, p.dynamic, p.initialCriticalFrac, stats_);
        sqPart_ = std::make_unique<cdf::SectionPartition>(
            "sq", config_.sqSize, p.lsqStep, p.minLsqSection,
            p.stallThreshold, p.dynamic, p.initialCriticalFrac, stats_);
        dbq_ = std::make_unique<cdf::DelayedBranchQueue>(
            config_.cdf.dbqEntries);
        cmq_ = std::make_unique<cdf::CriticalMapQueue>(
            config_.cdf.cmqEntries);
    }

    if (config_.mode != CoreMode::Cdf) {
        // No RS partitioning outside CDF; observational criticality
        // marks (Fig. 1 mode) must not trip the critical cap.
        rs_.setCriticalCap(config_.rsSize);
    }

    if (config_.mode == CoreMode::Pre) {
        stallTable_ = std::make_unique<cdf::CriticalCountTable>(
            config_.pre.stallTable, stats_, "pre_stall_table");
        maskCache_ =
            std::make_unique<cdf::MaskCache>(config_.pre.maskCache, stats_);
        uopCache_ = std::make_unique<cdf::CriticalUopCache>(
            config_.pre.uopCache, stats_);
        fillBuffer_ = std::make_unique<cdf::FillBuffer>(
            config_.pre.fillBuffer, *maskCache_, *uopCache_, stats_);
    }
}

Core::~Core() = default;

// ---------------------------------------------------------------------
// Instruction lifecycle
// ---------------------------------------------------------------------

DynInst *
Core::makeInst(const isa::ExecRecord &rec, SeqNum ts, bool onPath)
{
    const std::uint32_t idx = inflightPool_.allocate();
    DynInst *inst = &inflightPool_.at(idx);
    inst->poolIdx = idx;
    inst->prevIdx = inflightTail_;
    if (inflightTail_ != kNoInst)
        inflightPool_.at(inflightTail_).nextIdx = idx;
    else
        inflightHead_ = idx;
    inflightTail_ = idx;

    inst->fetchSeq = fetchSeqCounter_++;
    inst->ts = ts;
    inst->pc = rec.pc;
    inst->uop = rec.uop;
    inst->onPath = onPath;
    inst->memAddr = rec.memAddr;
    inst->taken = rec.taken;
    inst->actualTarget = rec.nextPc;
    inst->fetchCycle = now_;
    inst->readyAtRename = now_ + config_.frontendDepth;

    ++statFetched_;
    if (!onPath)
        ++statFetchedWrongPath_;
    if (traceTs(ts)) {
        std::fprintf(stderr,
                     "[%lu] MAKE ts=%lu pc=%lu onPath=%d %s\n", now_,
                     ts, rec.pc, onPath,
                     isa::toString(rec.uop).c_str());
    }
    return inst;
}

void
Core::destroyInst(DynInst *inst)
{
    if (inst->prevIdx != kNoInst)
        inflightPool_.at(inst->prevIdx).nextIdx = inst->nextIdx;
    else
        inflightHead_ = inst->nextIdx;
    if (inst->nextIdx != kNoInst)
        inflightPool_.at(inst->nextIdx).prevIdx = inst->prevIdx;
    else
        inflightTail_ = inst->prevIdx;
    inflightPool_.free(inst->poolIdx);
}

// ---------------------------------------------------------------------
// Tick and run
// ---------------------------------------------------------------------

const char *
StageProfile::name(unsigned stage)
{
    static const char *const kNames[kNumStages] = {
        "retire", "completion", "execute", "rename", "fetch", "stats",
        "skip",
    };
    SIM_ASSERT(stage < kNumStages, "bad stage");
    return kNames[stage];
}

void
Core::tickProfiled()
{
    using clock = std::chrono::steady_clock;
    auto last = clock::now();
    auto lap = [&](StageProfile::Stage s) {
        const auto t = clock::now();
        profile_.ns[s] += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                t - last)
                .count());
        last = t;
    };

    ++profile_.ticks;
    retireStage();
    lap(StageProfile::Retire);
    if (halted_)
        return;
    completionStage();
    lap(StageProfile::Completion);
    executeStage();
    lap(StageProfile::Execute);
    renameStage();
    lap(StageProfile::Rename);
    fetchStage();
    lap(StageProfile::Fetch);
    statsStage();
    lap(StageProfile::Stats);
}

void
Core::tick()
{
    ++now_;
    ++statCycles_;

    if (config_.profileStages) {
        tickProfiled();
    } else {
        retireStage();
        if (halted_)
            return;
        completionStage();
        executeStage();
        renameStage();
        fetchStage();
        statsStage();
    }
    if (halted_)
        return;

    if (config_.deadlockCycles != 0 &&
        now_ - lastRetireCycle_ > config_.deadlockCycles) {
        const DynInst *h = rob_.head();
        const DynInst *fq =
            frontQ_.empty() ? nullptr : frontQ_.front();
        panic("deadlock: no retirement for ", config_.deadlockCycles,
              " cycles at cycle ", now_, " retired=", retiredInstrs_,
              " robOcc=", rob_.occupancy(),
              " robCritOcc=", rob_.criticalOccupancy(),
              " robCritCap=", rob_.criticalCap(),
              " cdfMode=", cdfMode_, " draining=", cdfDraining_,
              " head=",
              h ? std::to_string(h->ts) + "/st" +
                      std::to_string(static_cast<int>(h->state)) +
                      "/crit" + std::to_string(h->criticalStream) +
                      "/rr" + std::to_string(h->renamedRegular)
                : "none",
              " frontQ=", frontQ_.size(),
              " front=",
              fq ? std::to_string(fq->ts) + "/crit" +
                       std::to_string(fq->critical)
                 : "none",
              " critQ=", critQ_.size(), " cmq=",
              cmq_ ? std::to_string(cmq_->size()) : "-", " dbq=",
              dbq_ ? std::to_string(dbq_->size()) : "-",
              " regNextTs=", regNextTs_, " regWp=", regWrongPath_,
              " covered=", critCoveredUpTo_,
              " nextFetchTs=", nextFetchTs_, " wrongPath=", wrongPath_,
              " fetchHalt=", fetchDoneHalt_, " stallUntil=",
              fetchStallUntil_, " raActive=", raActive_,
              " rsOcc=", rs_.occupancy(), " prfFree=", prf_.numFree(),
              " critStuck=", critWpStuck_, " headUop=",
              h ? isa::toString(h->uop) : "-", " s1=",
              h ? std::to_string(h->physSrc1) + "@" +
                      std::to_string(prf_.readyAt(
                          h->physSrc1 == kInvalidReg ? 0
                                                     : h->physSrc1))
                : "-",
              " s2=",
              h ? std::to_string(h->physSrc2) + "@" +
                      std::to_string(prf_.readyAt(
                          h->physSrc2 == kInvalidReg ? 0
                                                     : h->physSrc2))
                : "-");
    }
}

CoreResult
Core::run(std::uint64_t maxRetired, Cycle maxCycles)
{
    while (!halted_ && retiredInstrs_ < maxRetired &&
           now_ < maxCycles) {
        // Fast-forward provably dead cycles. On a jump, re-check the
        // loop condition (the budget may expire inside the gap); the
        // following tick() then executes the event cycle normally.
        // The quiescence scan is gated on cheap heuristics so busy
        // phases pay a compare, not a scan: a cycle that retired
        // cannot be the start of a dead window, and a failed scan
        // rate-limits itself (skipRecheckAt_). Gating only delays
        // skips — the skipped cycles are pure no-ops either way — so
        // stats stay bit-identical.
        if (config_.skipIdleCycles && now_ > lastRetireCycle_ &&
            now_ >= skipRecheckAt_ && maybeSkipIdleCycles(maxCycles))
            continue;
        tick();
    }
    return result();
}

void
Core::resetMeasurement()
{
    stats_.resetAll();
    measureStartCycle_ = now_;
    measureStartRetired_ = retiredInstrs_;
    mlpWhenActive_.reset();
    uselessMlpWhenActive_.reset();
    fig1CriticalFrac_.reset();
    fullWindowStallCycles_ = 0;
    cdfModeCycles_ = 0;
    skippedCycles_ = 0;
    skipEvents_ = 0;
}

CoreResult
Core::result() const
{
    CoreResult r;
    r.retiredInstrs = retiredInstrs_ - measureStartRetired_;
    r.cycles = now_ - measureStartCycle_;
    r.ipc = r.cycles == 0
                ? 0.0
                : static_cast<double>(r.retiredInstrs) /
                      static_cast<double>(r.cycles);
    r.mlp = mlpWhenActive_.mean();
    r.uselessMlp = uselessMlpWhenActive_.mean();
    r.dramBytes = stats_.get("dram.bytes_read") +
                  stats_.get("dram.bytes_written");
    const double kinstr =
        r.retiredInstrs == 0 ? 1.0 : r.retiredInstrs / 1000.0;
    r.branchMpki = static_cast<double>(statMispredicts_) / kinstr;
    r.llcMpki = static_cast<double>(statLlcMissLoads_) / kinstr;
    r.cdfModeFraction =
        r.cycles == 0 ? 0.0
                      : static_cast<double>(cdfModeCycles_) / r.cycles;
    r.fullWindowStallFraction =
        r.cycles == 0
            ? 0.0
            : static_cast<double>(fullWindowStallCycles_) / r.cycles;
    r.robCriticalFraction = fig1CriticalFrac_.mean();
    r.halted = halted_;
    return r;
}

// ---------------------------------------------------------------------
// Fetch
// ---------------------------------------------------------------------

bool
Core::frontStopped() const
{
    return fetchDoneHalt_ || fetchStallUntil_ > now_;
}

/**
 * Gate fetch on the instruction cache: crossing into a new line
 * costs an I-cache access; a miss stalls fetch until the fill.
 * Returns false when fetch must stop this cycle.
 */
bool
Core::icacheGate(Addr pc, unsigned &budget)
{
    const Addr line = pc / kUopsPerLine;
    if (line == lastFetchLine_)
        return true;
    const Cycle ready = mem_.instrAccess(pc, now_);
    lastFetchLine_ = line;
    if (ready > now_ + config_.mem.l1i.latency) {
        fetchStallUntil_ = ready;
        budget = 0;
        return false;
    }
    return true;
}

void
Core::fetchStage()
{
    if (raActive_ && now_ >= raEndCycle_)
        exitRunahead();

    if (frontStopped())
        return;

    unsigned budget = config_.width;

    if (raActive_) {
        // Precise Runahead: the frontend fetches stalling slices from
        // the uop cache instead of the normal stream.
        runaheadStep(budget);
        return;
    }

    if (config_.mode == CoreMode::Cdf && cdfMode_) {
        // Both fetch engines run in parallel with their own
        // bandwidth (separate structures: uop cache vs I-cache).
        unsigned critBudget = config_.width;
        if (!cdfDraining_)
            fetchCriticalCdf(critBudget);
        fetchRegularCdf(budget);
        return;
    }

    fetchRegularBaseline(budget);
}

void
Core::fetchRegularBaseline(unsigned &budget)
{
    while (budget > 0) {
        if (frontQ_.full())
            return;

        // Pick the next record: oracle when on the correct path,
        // functional wrong-path walk otherwise.
        isa::ExecRecord rec;
        SeqNum ts;
        if (!wrongPath_) {
            if (!oracle_.hasRecord(nextFetchTs_)) {
                fetchDoneHalt_ = true;
                return;
            }
            rec = oracle_.at(nextFetchTs_);
            ts = nextFetchTs_;

            // CDF entry check at basic-block starts.
            if (config_.mode == CoreMode::Cdf && fetchAtBbStart_) {
                maybeEnterCdfMode(rec.pc, ts);
                if (cdfMode_)
                    return;
            }
        } else {
            if (!oracle_.program().validPc(wrongPathPc_))
                return; // fetching garbage: stall until recovery
            const isa::Uop &wuop = oracle_.program().at(wrongPathPc_);
            if (wuop.isHalt())
                return;
            rec = walker_.execute(wrongPathPc_);
            ts = ++wrongPathTs_;
        }

        if (!icacheGate(rec.pc, budget))
            return;

        DynInst *inst = makeInst(rec, ts, !wrongPath_);
        inst->critical = false;

        // Fig. 1 observation: mark using the trained mask cache.
        if (config_.observeCriticality && maskCache_) {
            if (fetchAtBbStart_) {
                fetchBbStartPc_ = rec.pc;
                fetchBbOffset_ = 0;
            }
            auto mask = maskCache_->lookup(fetchBbStartPc_);
            if (mask && fetchBbOffset_ < 64 &&
                ((*mask >> fetchBbOffset_) & 1)) {
                inst->critical = true;
            }
        }

        bool endGroup = false;
        if (inst->isBranch()) {
            ++statBranches_;
            inst->hasBpCheckpoint = true;
            inst->bpCheckpoint = bp_.checkpoint();
            auto pred = bp_.predict(rec.pc, rec.uop);
            inst->predTaken = pred.taken;
            inst->predTarget = pred.target;
            inst->btbMissBubble = pred.btbMiss;

            if (!wrongPath_) {
                const bool correct = pred.taken == rec.taken &&
                                     (!pred.taken ||
                                      pred.target == rec.nextPc);
                inst->mispredicted = !correct;
                if (inst->mispredicted) {
                    wrongPath_ = true;
                    wrongPathTs_ = ts;
                    wrongPathPc_ =
                        pred.taken ? pred.target : rec.pc + 1;
                    walker_.restart(oracle_.frontierRegs());
                } else {
                    ++nextFetchTs_;
                }
            } else {
                wrongPathPc_ = pred.taken ? pred.target : rec.pc + 1;
            }

            if (pred.taken)
                endGroup = true;
            if (pred.btbMiss) {
                fetchStallUntil_ = now_ + config_.btbMissPenalty;
                endGroup = true;
            }
            fetchAtBbStart_ = true;
            ++fetchBbOffset_; // branch occupies a slot in its block
        } else {
            if (!wrongPath_) {
                ++nextFetchTs_;
            } else {
                ++wrongPathPc_;
            }
            fetchAtBbStart_ = false;
            ++fetchBbOffset_;
            if (rec.uop.isHalt()) {
                fetchDoneHalt_ = true;
                endGroup = true;
            }
        }

        frontQ_.push(inst);
        --budget;
        if (endGroup)
            return;
    }
}

void
Core::statsStage()
{
    // MLP sampling (Fig. 14): outstanding DRAM misses when active.
    const unsigned demand = mem_.outstandingDemandMisses(now_);
    const unsigned useless = mem_.outstandingUselessMisses(now_);
    if (demand + useless > 0) {
        mlpWhenActive_.add(static_cast<double>(demand + useless));
        uselessMlpWhenActive_.add(static_cast<double>(useless));
    }
    if (cdfMode_)
        ++cdfModeCycles_;

    // After a CDF episode ends, the critical sections shrink as
    // their instructions retire (Section 3.6). Pending critical
    // uops in critQ_ still need slots, so release only once the
    // critical frontend has drained.
    if (!cdfMode_ && robPart_ && rob_.criticalCap() > 0 &&
        critQ_.empty()) {
        releasePartitionCaps();
    }

    // Dynamic partition evaluation (Section 3.5).
    if (cdfMode_ && robPart_) {
        robPart_->evaluate(
            static_cast<unsigned>(rob_.criticalOccupancy()),
            static_cast<unsigned>(rob_.nonCriticalOccupancy()));
        lqPart_->evaluate(
            static_cast<unsigned>(lsq_.lq().criticalOccupancy()),
            static_cast<unsigned>(lsq_.lq().nonCriticalOccupancy()));
        sqPart_->evaluate(
            static_cast<unsigned>(lsq_.sq().criticalOccupancy()),
            static_cast<unsigned>(lsq_.sq().nonCriticalOccupancy()));
        applyPartitionCaps();
    }
}

} // namespace cdfsim::ooo
