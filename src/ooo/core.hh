/**
 * @file
 * The execution-driven, cycle-level out-of-order core, with the CDF
 * mechanism (paper Section 3) and the Precise Runahead comparator
 * (Section 4.1) integrated into its pipeline.
 *
 * The timing model binds every correct-path instruction to the
 * functional oracle, so the retired instruction stream is correct by
 * construction and checked by assertion (timestamps must retire
 * contiguously). Wrong-path fetch is modelled functionally through
 * WrongPathWalker so speculative memory traffic is realistic.
 */

#ifndef CDFSIM_OOO_CORE_HH
#define CDFSIM_OOO_CORE_HH

#include <array>
#include <deque>
#include <memory>
#include <queue>
#include <vector>

#include "bp/predictor.hh"
#include "cdf/critical_table.hh"
#include "common/audit.hh"
#include "cdf/fifos.hh"
#include "cdf/fill_buffer.hh"
#include "cdf/mask_cache.hh"
#include "cdf/partition.hh"
#include "cdf/uop_cache.hh"
#include "common/circular_queue.hh"
#include "common/flat_map.hh"
#include "common/histogram.hh"
#include "common/pool.hh"
#include "common/serialize.hh"
#include "common/stats.hh"
#include "isa/oracle.hh"
#include "mem/hierarchy.hh"
#include "ooo/core_config.hh"
#include "ooo/dyn_inst.hh"
#include "ooo/lsq.hh"
#include "ooo/rename.hh"
#include "ooo/rob.hh"
#include "ooo/rs.hh"

namespace cdfsim::ooo
{

/** Aggregate results of a simulation run. */
struct CoreResult
{
    std::uint64_t retiredInstrs = 0;
    Cycle cycles = 0;
    double ipc = 0.0;
    double mlp = 0.0;            //!< mean outstanding DRAM misses (>0)
    double uselessMlp = 0.0;     //!< wrong-path share of outstanding
    std::uint64_t dramBytes = 0;
    double branchMpki = 0.0;
    double llcMpki = 0.0;
    double cdfModeFraction = 0.0;   //!< cycles in CDF mode
    double fullWindowStallFraction = 0.0;
    double robCriticalFraction = 0.0; //!< Fig. 1 sample (observe mode)
    bool halted = false;
};

/**
 * Host-time spent in each pipeline stage, filled only when
 * CoreConfig::profileStages is set. Host-side measurement only: it
 * never enters the stat registry, so profiled and unprofiled runs
 * stay architecturally bit-identical.
 */
struct StageProfile
{
    enum Stage : unsigned
    {
        Retire,
        Completion,
        Execute,
        Rename,
        Fetch,
        Stats,
        Skip, //!< idle-cycle fast-forward (quiescence checks + jumps)
        kNumStages
    };

    std::array<std::uint64_t, kNumStages> ns{};
    std::uint64_t ticks = 0;

    /** Host time inside the memory hierarchy, by deepest level
     *  reached (a breakdown *within* the stage rows above). */
    mem::MemLevelProfile mem;

    static const char *name(unsigned stage);
};

/** The core. */
class Core
{
  public:
    /**
     * @param config Core configuration (mode selects baseline/CDF/PRE).
     * @param program The uop program to run.
     * @param memory Initial data memory (mutated by execution).
     * @param stats Statistic registry (shared with the hierarchy).
     */
    Core(const CoreConfig &config, const isa::Program &program,
         isa::MemoryImage &memory, StatRegistry &stats);

    Core(const Core &) = delete;
    Core &operator=(const Core &) = delete;
    ~Core();

    /** Advance one cycle. */
    void tick();

    /**
     * Run until @p maxRetired instructions retired, the program
     * halts, or @p maxCycles elapse. Returns the results summary.
     */
    CoreResult run(std::uint64_t maxRetired,
                   Cycle maxCycles = kNeverCycle);

    /**
     * Reset measurement statistics (after warmup): zeroes the stat
     * registry and the internal IPC/MLP accounting, keeping all
     * microarchitectural state (caches, predictors, CDF tables).
     */
    void resetMeasurement();

    bool halted() const { return halted_; }
    Cycle cycle() const { return now_; }
    std::uint64_t retired() const { return retiredInstrs_; }
    bool inCdfMode() const { return cdfMode_; }
    bool inRunahead() const { return raActive_; }

    /** Build the result summary from the current counters. */
    CoreResult result() const;

    const CoreConfig &config() const { return config_; }
    mem::MemHierarchy &memHierarchy() { return mem_; }
    StatRegistry &stats() { return stats_; }

    /** Critical partition capacity (for examples/visualization). */
    unsigned robCriticalCap() const { return rob_.criticalCap(); }
    std::size_t robOccupancy() const { return rob_.occupancy(); }

    /** Per-stage host-time breakdown (CoreConfig::profileStages). */
    StageProfile
    profile() const
    {
        StageProfile p = profile_;
        p.mem = mem_.profile();
        return p;
    }

    /** Cycles fast-forwarded by the idle-skip path since the last
     *  resetMeasurement(). Host-side bookkeeping only — never a stat
     *  counter, so skip-on and skip-off runs serialize identically. */
    std::uint64_t skippedCycles() const { return skippedCycles_; }

    /** Number of fast-forward jumps (each skips >= 1 cycle). */
    std::uint64_t skipEvents() const { return skipEvents_; }

    /**
     * RS wakeup-cache agreement walk: every resident entry's cached
     * rsNextTry must be consistent with actual operand readiness in
     * the PRF, and every parked entry must hold a live registration
     * in the per-register waiter lists it depends on. Always
     * compiled (the walk is load-bearing for the idle-skip bound);
     * sampled from the execute stage in Audit builds.
     */
    void auditRsWakeupCache() const;

    /**
     * Rename-map/free-list agreement walk: every regular-RAT entry
     * must name an in-range physical register, map each arch
     * register to a distinct one, and never overlap the free list;
     * the critical RAT is held to bounds + uniqueness while it is
     * live (critRatCopied_). Always compiled; sampled from the
     * rename stage in Audit builds and run after every restore.
     */
    void auditRenameMaps() const;

    /**
     * LSQ/ROB age-ordering walk: both ROB sections and both LSQ
     * queues hold live pool entries in strictly increasing timestamp
     * order, the LQ holds only loads and the SQ only stores, and
     * every LSQ entry is also resident in the ROB. Always compiled;
     * sampled from the retire stage in Audit builds.
     */
    void auditLsqRobAge() const;

    /**
     * Serialize the complete architectural + microarchitectural core
     * state (core_snapshot.cc). Host-only measurement state (stage
     * profile, idle-skip bookkeeping) is excluded, so the payload is
     * independent of profileStages/skipIdleCycles. The stat registry
     * is NOT included — the owning Simulator snapshots it so the
     * registry is captured exactly once.
     */
    void saveState(SnapWriter &w) const;

    /**
     * Inverse of saveState() into a core built with the SAME config
     * (asserted structurally where cheap; guaranteed by the warmup
     * cache key). After restore, running the core is bit-identical
     * to running the original, and a re-snapshot is byte-identical.
     */
    void restoreState(SnapReader &r);

  private:
    friend struct cdfsim::AuditPeer; //!< test-only corruption access

    // --- Pipeline stages (called in reverse order each tick) ---
    void tickProfiled();
    void retireStage();
    void completionStage();
    void executeStage();
    void renameStage();
    void renameCritical(unsigned &slots);
    bool renameRegularOne();
    void fetchStage();
    void fetchRegularBaseline(unsigned &budget);
    void fetchCriticalCdf(unsigned &budget);
    void fetchRegularCdf(unsigned &budget);
    void statsStage();

    // --- Instruction lifecycle ---
    DynInst *makeInst(const isa::ExecRecord &rec, SeqNum ts, bool onPath);
    void destroyInst(DynInst *inst);

    // --- Execution helpers ---
    void issueOne(DynInst *inst);
    bool tryIssueLoad(DynInst *inst);
    void issueStore(DynInst *inst);
    void scheduleCompletion(DynInst *inst, Cycle when);
    void finishInst(DynInst *inst);
    void addRsWaiter(RegId reg, const DynInst *inst);
    void wakeRsWaiters(RegId reg);

    // --- Recovery ---
    void recoverFromBranch(DynInst *branch);
    void dependenceViolationRecovery(SeqNum violTs);
    void memoryOrderViolation(DynInst *load);
    void squashYoungerThan(SeqNum flushTs);

    // --- CDF mode control ---
    void maybeEnterCdfMode(Addr pc, SeqNum seq);
    void drainCriticalFrontend();
    void beginCdfExit();
    void finishCdfExit();
    void abortCdfMode();
    void applyPartitionCaps();
    void releasePartitionCaps();

    // --- PRE (runahead) ---
    void maybeEnterRunahead(const DynInst *head);
    void runaheadStep(unsigned &budget);
    void exitRunahead();

    // --- Retire-side criticality training ---
    void trainOnRetire(const DynInst *inst);

    bool icacheGate(Addr pc, unsigned &budget);
    bool frontStopped() const;

    // --- Idle-cycle fast-forward (core_skip.cc) ---
    /**
     * If the core is provably quiescent, jump now_ to just before
     * the next event (bounded by @p maxCycles and the deadlock
     * watchdog), bulk-applying every per-cycle stat. Returns true if
     * any cycles were skipped; the caller re-enters the run loop and
     * the next tick() executes the event cycle normally.
     */
    bool maybeSkipIdleCycles(Cycle maxCycles);

    /** What a blocked rename stage charges each stalled cycle. */
    enum class RenameStallKind : unsigned char
    {
        Progress, //!< rename would advance: not quiescent
        Quiet,    //!< blocked with no per-cycle counter side effect
        RobNote,  //!< blocked charging robPart_->noteStall(false)
        LqNote,   //!< blocked charging lqPart_->noteStall(false)
        SqNote,   //!< blocked charging sqPart_->noteStall(false)
    };
    RenameStallKind classifyRenameStall(Cycle &bound) const;

    /** Same idea for the critical rename stage (renameCritical). */
    enum class CritRenameStallKind : unsigned char
    {
        Progress,    //!< would rename or copy the critical RAT
        Quiet,       //!< blocked with no counter side effect
        CritRobNote, //!< blocked charging robPart_->noteStall(true)
        CritLqNote,  //!< blocked charging lqPart_->noteStall(true)
        CritSqNote,  //!< blocked charging sqPart_->noteStall(true)
    };
    CritRenameStallKind classifyCritRenameStall(Cycle &bound) const;

    Cycle nextEventCycle();
    void bulkAccountSkippedCycles(std::uint64_t n);

    // --- Snapshot helpers (core_snapshot.cc) ---
    std::uint32_t encInst(const DynInst *inst) const;
    DynInst *decInst(std::uint32_t idx);

    // ------------------------------------------------------------------
    SIM_SNAPSHOT_FIELDS(126);

    CoreConfig config_;
    StatRegistry &stats_;
    isa::OracleStream oracle_;
    isa::WrongPathWalker walker_;     //!< regular-mode wrong path
    isa::WrongPathWalker cdfWalker_;  //!< CDF-mode shared wrong path
    isa::WrongPathWalker raWalker_;   //!< PRE runahead shadow execution
    mem::MemHierarchy mem_;
    bp::BranchPredictor bp_;

    PhysRegFile prf_;
    RenameMap rat_;
    RenameMap critRat_;
    Rob rob_;
    Lsq lsq_;
    ReservationStations rs_;

    /** Master in-flight pool: slab-allocated, threaded into an
     *  intrusive doubly-linked list in fetch order via
     *  DynInst::{prev,next}Idx. No per-instruction heap traffic. */
    SlabPool<DynInst> inflightPool_;
    std::uint32_t inflightHead_ = kNoInst; //!< oldest in flight
    std::uint32_t inflightTail_ = kNoInst; //!< youngest in flight

    /** RS entries parked until a physical register is written:
     *  (pool handle, fetchSeq) pairs, validated at wake time. */
    std::vector<std::vector<std::pair<std::uint32_t, SeqNum>>>
        regWaiters_;

    CircularQueue<DynInst *> frontQ_;   //!< regular stream, pre-rename
    CircularQueue<DynInst *> critQ_;    //!< critical stream, pre-rename

    // Pending stores that left the RS with address done but data
    // outstanding; completed when the data register becomes ready.
    std::vector<DynInst *> pendingStores_;

    // Completion event queue ordered by cycle. A raw min-heap
    // (push_heap/pop_heap over a reusable vector, the exact
    // operations std::priority_queue performs) so the squash filter
    // can rebuild it without re-heapifying: draining a min-heap
    // yields ascending order, and an ascending sequence laid down
    // in order *is* a valid heap with the same layout the
    // equivalent push_heap calls would produce. Same-cycle pop
    // order — which feeds predictor updates — is therefore
    // bit-identical to the old priority_queue.
    struct CompletionEvent
    {
        Cycle when;
        DynInst *inst;
        bool operator>(const CompletionEvent &o) const
        {
            return when > o.when;
        }
    };
    std::vector<CompletionEvent> completions_;
    std::vector<CompletionEvent> completionsScratch_;

    // --- Frontend state (regular mode) ---
    Cycle now_ = 0;
    SeqNum fetchSeqCounter_ = 0;     //!< unique fetch ids
    SeqNum nextFetchTs_ = 0;         //!< next oracle index to fetch
    bool wrongPath_ = false;
    Addr wrongPathPc_ = 0;
    SeqNum wrongPathTs_ = 0;
    Cycle fetchStallUntil_ = 0;
    Addr lastFetchLine_ = ~Addr{0};
    bool fetchDoneHalt_ = false;
    SeqNum nextRetireTs_ = 0;
    bool halted_ = false;
    Cycle lastRetireCycle_ = 0;
    std::uint64_t retiredInstrs_ = 0;

    // Basic-block tracking at fetch (uop-cache probing, Fig. 1 marks).
    bool fetchAtBbStart_ = true;
    Addr fetchBbStartPc_ = 0;
    unsigned fetchBbOffset_ = 0;

    // Retire-side basic-block tracking for the Fill Buffer.
    bool retirePrevWasBranch_ = true;

    // --- CDF machinery ---
    std::unique_ptr<cdf::CriticalCountTable> loadCct_;
    std::unique_ptr<cdf::CriticalCountTable> branchCct_;
    std::unique_ptr<cdf::MaskCache> maskCache_;
    std::unique_ptr<cdf::CriticalUopCache> uopCache_;
    std::unique_ptr<cdf::FillBuffer> fillBuffer_;
    std::unique_ptr<cdf::SectionPartition> robPart_;
    std::unique_ptr<cdf::SectionPartition> lqPart_;
    std::unique_ptr<cdf::SectionPartition> sqPart_;
    std::unique_ptr<cdf::DelayedBranchQueue> dbq_;
    std::unique_ptr<cdf::CriticalMapQueue> cmq_;

    bool cdfMode_ = false;
    bool cdfDraining_ = false;
    Cycle cdfCooldownUntil_ = 0;
    bool critRatCopied_ = false;
    SeqNum cdfStartTs_ = 0;
    SeqNum regRenamedThroughTs_ = 0;  //!< last ts regular rename passed

    // Critical fetch cursor. The active trace is COPIED out of the
    // uop cache: a concurrent fill-buffer walk may replace the
    // cached trace mid-emission.
    Addr critFetchPc_ = 0;
    SeqNum critFetchBaseTs_ = 0;   //!< ts of the current BB's first uop
    bool critOnPath_ = true;
    bool critTraceValid_ = false;
    cdf::BbTrace critTrace_;
    unsigned critTraceIdx_ = 0;
    SeqNum critProcessedThroughTs_ = 0; //!< BBs fully handled

    // Regular-stream cursor in CDF mode.
    SeqNum regNextTs_ = 0;
    bool regWrongPath_ = false;

    /** First ts NOT yet covered by a critical-fetch-processed BB. */
    SeqNum critCoveredUpTo_ = 0;
    /** Next wrong-path ts the critical fetch will assign. */
    SeqNum critWpNextTs_ = 0;
    /** wpRecords_ index of the current wrong-path BB's first uop. */
    std::size_t critWpBbBase_ = 0;

    /** Critical-stream instructions by ts (for CMQ replay transfer). */
    FlatMap<SeqNum, DynInst *> criticalByTs_{kInvalidSeq};

    /** Per-BB criticality bits handed from critical to regular fetch. */
    struct BbInfo
    {
        SeqNum baseTs;
        std::vector<bool> critBits;
    };
    std::deque<BbInfo> bbInfoQ_;

    // Wrong-path records produced by critical fetch for the regular
    // stream to consume (both streams share one divergence).
    struct WpRecord
    {
        isa::ExecRecord rec;
        SeqNum ts;
        bool critical;
    };
    std::vector<WpRecord> wpRecords_;
    std::size_t wpConsumeIdx_ = 0;

    // DBQ checkpoints: branch checkpoints taken at critical fetch for
    // branches that travel only in the regular stream.
    struct DbqCheckpoint
    {
        SeqNum ts;
        bp::BpCheckpoint ckpt;
        bool mispredicted;
        bool btbMiss;
        bp::TagePredictionInfo tageInfo;
    };
    std::vector<DbqCheckpoint> dbqCkpts_;

    /** Wrong-path critical fetch ran into unwalkable code; idle. */
    bool critWpStuck_ = false;

    // --- PRE machinery ---
    std::unique_ptr<cdf::CriticalCountTable> stallTable_;
    bool raActive_ = false;
    Cycle raEndCycle_ = 0;
    Addr raPc_ = 0;
    bool raTraceValid_ = false;
    cdf::BbTrace raTrace_;
    unsigned raTraceIdx_ = 0;
    std::vector<isa::ExecRecord> raBbRecs_;
    std::bitset<kNumArchRegs> raTaint_;
    bp::BpCheckpoint raBpCkpt_;
    std::uint64_t raChainLoads_ = 0;
    unsigned raEpisodeLoads_ = 0;
    /** Last committed address per static load (stale-value model). */
    FlatMap<Addr, Addr> lastRetiredLoadAddr_{~Addr{0}};
    Cycle stallStartCycle_ = 0;
    bool stallCounting_ = false;

    // Oldest branch checkpoint found in the last squash, used by the
    // violation-recovery paths to rewind speculative predictor state.
    bool squashOldestCkptValid_ = false;
    SeqNum squashOldestCkptTs_ = 0;
    bp::BpCheckpoint squashOldestCkpt_;

    // Deferred memory-order violation (processed after RS selection).
    DynInst *pendingMemViolation_ = nullptr;
    // Deferred dependence violation detected at rename replay.
    SeqNum pendingDepViolationTs_ = kInvalidSeq;

    // --- Measurement ---
    StageProfile profile_;
    Cycle measureStartCycle_ = 0;
    std::uint64_t measureStartRetired_ = 0;
    // Host-side skip bookkeeping (see skippedCycles()).
    std::uint64_t skippedCycles_ = 0;
    std::uint64_t skipEvents_ = 0;
    // Earliest cycle the run loop may re-attempt a quiescence scan
    // after one failed to jump; purely a host-time rate limiter.
    Cycle skipRecheckAt_ = 0;
    mutable AuditSampler rsAudit_{4096};
    mutable AuditSampler renameAudit_{8192};
    mutable AuditSampler lsqRobAudit_{4096};
    RunningMean mlpWhenActive_;
    RunningMean uselessMlpWhenActive_;
    RunningMean fig1CriticalFrac_;
    std::uint64_t fullWindowStallCycles_ = 0;
    std::uint64_t cdfModeCycles_ = 0;

    // Cached stat counters.
    std::uint64_t &statCycles_;
    std::uint64_t &statRetired_;
    std::uint64_t &statFetched_;
    std::uint64_t &statFetchedWrongPath_;
    std::uint64_t &statRenamed_;
    std::uint64_t &statRenamedCritical_;
    std::uint64_t &statIssued_;
    std::uint64_t &statBranches_;
    std::uint64_t &statMispredicts_;
    std::uint64_t &statLlcMissLoads_;
    std::uint64_t &statDepViolations_;
    std::uint64_t &statMemOrderViolations_;
    std::uint64_t &statCdfEpisodes_;
    std::uint64_t &statCdfExitsUopMiss_;
    std::uint64_t &statRunaheadEpisodes_;
    std::uint64_t &statRunaheadUops_;
    std::uint64_t &statRunaheadLoads_;
    std::uint64_t &statRunaheadTraceMiss_;
};

} // namespace cdfsim::ooo

#endif // CDFSIM_OOO_CORE_HH
