/**
 * @file
 * Core backend: rename/dispatch (regular + critical streams),
 * scheduling and execution, completion, retirement, and all
 * recovery paths (branch mispredicts, memory-order violations,
 * CDF dependence violations).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/audit.hh"
#include "common/logging.hh"
#include "ooo/core.hh"
#include "ooo/trace_env.hh"

namespace cdfsim::ooo
{

// ---------------------------------------------------------------------
// Rename / dispatch
// ---------------------------------------------------------------------

void
Core::renameStage()
{
    SIM_AUDIT_ONLY(if (renameAudit_.due()) auditRenameMaps();)
    unsigned slots = config_.width;
    // The Issue logic prefers the critical rename stage whenever it
    // has work (Section 3.5); total bandwidth is shared.
    if (config_.mode == CoreMode::Cdf)
        renameCritical(slots);
    while (slots > 0) {
        if (!renameRegularOne())
            break;
        --slots;
    }
    if (pendingDepViolationTs_ != kInvalidSeq) {
        const SeqNum ts = pendingDepViolationTs_;
        pendingDepViolationTs_ = kInvalidSeq;
        dependenceViolationRecovery(ts);
    }
}

void
Core::renameCritical(unsigned &slots)
{
    while (slots > 0 && !critQ_.empty()) {
        DynInst *inst = critQ_.front();
        if (inst->readyAtRename > now_)
            return;

        // The critical RAT is a copy of the regular RAT taken after
        // the last pre-CDF instruction renamed (Section 3.4).
        if (!critRatCopied_) {
            if (regRenamedThroughTs_ < cdfStartTs_)
                return;
            critRat_.copyFrom(rat_);
            rat_.clearAllPoison();
            critRatCopied_ = true;
        }

        if (!prf_.hasFree())
            return;
        if (!rob_.canInsert(true)) {
            robPart_->noteStall(true);
            return;
        }
        if (!rs_.canInsert(true)) {
            robPart_->noteStall(true);
            return;
        }
        if (inst->isLoad() && !lsq_.lq().canInsert(true)) {
            lqPart_->noteStall(true);
            return;
        }
        if (inst->isStore() && !lsq_.sq().canInsert(true)) {
            sqPart_->noteStall(true);
            return;
        }
        if (cmq_->full())
            return;

        RenameResult rr = critRat_.rename(inst->uop, prf_);
        inst->physSrc1 = rr.physSrc1;
        inst->physSrc2 = rr.physSrc2;
        inst->physDst = rr.physDst;
        inst->oldPhysDstCrit = rr.oldPhysDst;
        inst->renamedCritical = true;
        inst->state = InstState::Renamed;
        inst->renameCycle = now_;

        rob_.insert(inst, true);
        rs_.insert(inst);
        if (inst->isLoad())
            lsq_.lq().insert(inst, true);
        if (inst->isStore())
            lsq_.sq().insert(inst, true);

        if (traceTs(inst->ts))
            std::fprintf(stderr, "[%lu] CRITRENAME ts=%lu\n", now_,
                         inst->ts);
        cmq_->push({inst->ts, inst->uop.dst, inst->physDst,
                    kInvalidReg});
        criticalByTs_[inst->ts] = inst;

        critQ_.pop();
        --slots;
        ++statRenamed_;
        ++statRenamedCritical_;
    }
}

bool
Core::renameRegularOne()
{
    if (frontQ_.empty())
        return false;
    DynInst *inst = frontQ_.front();
    if (inst->readyAtRename > now_)
        return false;

    // CDF: critical uops in the regular stream replay the rename
    // performed in the critical stream and are then discarded
    // (Section 3.4); the poison-bit check detects dependence
    // violations (Section 3.6).
    if (inst->cdfFetched && inst->critical) {
        if (cmq_->empty() || cmq_->front().ts != inst->ts)
            return false; // critical rename has not produced it yet

        if (rat_.readsPoisoned(inst->uop)) {
            pendingDepViolationTs_ = inst->ts;
            return false;
        }

        if (traceTs(inst->ts))
            std::fprintf(stderr, "[%lu] REPLAY ts=%lu\n", now_,
                         inst->ts);
        cdf::CmqEntry e = cmq_->pop();
        DynInst *const *slot = criticalByTs_.find(inst->ts);
        SIM_ASSERT(slot != nullptr,
                   "CMQ replay with no critical-stream instruction");
        DynInst *real = *slot;
        real->hasPoisonSnapshot = true;
        real->poisonSnapshot = rat_.poisonBits();
        if (inst->uop.writesReg()) {
            RegId old = rat_.replay(e.archDst, e.physDst);
            rat_.clearPoison(e.archDst);
            real->oldPhysDst = old;
            real->renamedRegular = true;
        } else {
            real->renamedRegular = true;
        }
        if (inst->onPath)
            regRenamedThroughTs_ = inst->ts + 1;
        frontQ_.pop();
        destroyInst(inst); // the copy is filtered out at rename
        ++statRenamed_;
        return true;
    }

    // Regular rename path (baseline, PRE, and non-critical CDF uops).
    if (!prf_.hasFree())
        return false;
    if (!rob_.canInsert(false)) {
        if (robPart_)
            robPart_->noteStall(false);
        return false;
    }
    if (!rs_.canInsert(false))
        return false;
    if (inst->isLoad() && !lsq_.lq().canInsert(false)) {
        if (lqPart_)
            lqPart_->noteStall(false);
        return false;
    }
    if (inst->isStore() && !lsq_.sq().canInsert(false)) {
        if (sqPart_)
            sqPart_->noteStall(false);
        return false;
    }

    RenameResult rr = rat_.rename(inst->uop, prf_);
    inst->physSrc1 = rr.physSrc1;
    inst->physSrc2 = rr.physSrc2;
    inst->physDst = rr.physDst;
    inst->oldPhysDst = rr.oldPhysDst;
    inst->renamedRegular = true;
    inst->state = InstState::Renamed;
    inst->renameCycle = now_;

    // Non-critical uops poison their destinations during CDF
    // (Section 3.6) so later critical replays can detect missed
    // producers. The pre-rename poison state is snapshotted so a
    // flush can restore it (the poison bits live in the RAT and are
    // checkpointed with it).
    inst->hasPoisonSnapshot = true;
    inst->poisonSnapshot = rat_.poisonBits();
    if (cdfMode_ && inst->cdfFetched && inst->uop.writesReg())
        rat_.setPoison(inst->uop.dst);

    const bool critSection = false;
    rob_.insert(inst, critSection);
    if (!inst->uop.isHalt() && inst->uop.op != isa::Opcode::Nop)
        rs_.insert(inst);
    else
        scheduleCompletion(inst, now_ + 1); // nop/halt complete fast
    if (inst->isLoad())
        lsq_.lq().insert(inst, critSection);
    if (inst->isStore())
        lsq_.sq().insert(inst, critSection);

    if (inst->onPath)
        regRenamedThroughTs_ = inst->ts + 1;
    frontQ_.pop();
    ++statRenamed_;
    return true;
}

// ---------------------------------------------------------------------
// Execute
// ---------------------------------------------------------------------

void
Core::executeStage()
{
    // Stores whose address resolved earlier but whose data lagged.
    std::erase_if(pendingStores_, [&](DynInst *st) {
        if (prf_.isReady(st->physSrc2, now_)) {
            scheduleCompletion(st, now_ + 1);
            return true;
        }
        return false;
    });

    unsigned loads = 0;
    unsigned stores = 0;

    auto ready = [&](DynInst *inst) {
        if (inst->state != InstState::Renamed)
            return false;
        // Scheduling cache: a prior evaluation recorded when this
        // entry can possibly become ready (a producer's broadcast
        // ready-time, or "parked" until a register wakeup). Skipping
        // early evaluations cannot change the outcome: a finite
        // readyAt is broadcast exactly once per producer, and a
        // parked entry is unparked by wakeRsWaiters the moment any
        // awaited register is written.
        if (inst->rsNextTry > now_)
            return false;
        const Cycle r1 = inst->physSrc1 == kInvalidReg
                             ? 0
                             : prf_.readyAt(inst->physSrc1);
        // Loads need only the address register; store address
        // generation likewise proceeds without the data. A load
        // blocked on store-forwarding data re-attempts through
        // accept() below (the store may retire or its data reg
        // may be recycled, so no ready-gate is kept on it).
        const bool memOp = inst->isLoad() || inst->isStore();
        const Cycle r2 = (memOp || inst->physSrc2 == kInvalidReg)
                             ? 0
                             : prf_.readyAt(inst->physSrc2);
        const Cycle wait = std::max(r1, r2);
        if (wait <= now_)
            return true;
        inst->rsNextTry = wait;
        if (r1 == kNeverCycle)
            addRsWaiter(inst->physSrc1, inst);
        if (r2 == kNeverCycle)
            addRsWaiter(inst->physSrc2, inst);
        return false;
    };

    auto accept = [&](DynInst *inst) {
        if (inst->isLoad()) {
            if (loads >= config_.maxLoadsPerCycle)
                return false;
            if (!tryIssueLoad(inst))
                return false;
            ++loads;
        } else if (inst->isStore()) {
            if (stores >= config_.maxStoresPerCycle)
                return false;
            issueStore(inst);
            ++stores;
        } else {
            issueOne(inst);
        }
        ++statIssued_;
        return true;
    };

    rs_.selectAndIssue(config_.issueWidth, ready, accept);
    SIM_AUDIT_ONLY(if (rsAudit_.due()) auditRsWakeupCache();)

    if (pendingMemViolation_) {
        DynInst *ld = pendingMemViolation_;
        pendingMemViolation_ = nullptr;
        memoryOrderViolation(ld);
    }
}

void
Core::issueOne(DynInst *inst)
{
    inst->state = InstState::Issued;
    scheduleCompletion(inst, now_ + isa::executeLatency(inst->uop.op));
}

bool
Core::tryIssueLoad(DynInst *inst)
{
    const Cycle agen = now_ + 1;
    inst->addrKnown = true;

    bool olderUnknown = false;
    DynInst *st = lsq_.forwardingStore(inst, &olderUnknown);
    // Loads speculate past older stores with unresolved addresses;
    // the violation check at store address-generation catches any
    // mistakes (Section 3.5).
    if (st) {
        if (!prf_.isReady(st->physSrc2, now_))
            return false; // retry: stays in the RS until data is ready
        inst->forwardSrcTs = st->ts;
        inst->state = InstState::Issued;
        scheduleCompletion(inst, agen + 1);
        return true;
    }

    const auto kind = inst->onPath ? mem::AccessKind::DemandLoad
                                   : mem::AccessKind::WrongPathLoad;
    auto res = mem_.dataAccess(inst->memAddr, kind, agen);
    inst->llcMiss = res.llcMiss;
    inst->l1Miss = !res.l1Hit;
    if (res.llcMiss && inst->onPath)
        ++statLlcMissLoads_;
    inst->forwardSrcTs = 0;
    inst->state = InstState::Issued;
    scheduleCompletion(inst, res.ready);
    return true;
}

void
Core::issueStore(DynInst *inst)
{
    inst->state = InstState::Issued;
    inst->addrKnown = true;

    // Memory-ordering violation search (defer the flush until the
    // RS selection loop has finished).
    if (inst->onPath && !pendingMemViolation_) {
        if (DynInst *ld = lsq_.violatingLoad(inst); ld && ld->onPath)
            pendingMemViolation_ = ld;
    }

    if (prf_.isReady(inst->physSrc2, now_))
        scheduleCompletion(inst, now_ + 1);
    else
        pendingStores_.push_back(inst);
}

void
Core::addRsWaiter(RegId reg, const DynInst *inst)
{
    regWaiters_[reg].emplace_back(inst->poolIdx, inst->fetchSeq);
}

void
Core::wakeRsWaiters(RegId reg)
{
    auto &waiters = regWaiters_[reg];
    if (waiters.empty())
        return;
    for (const auto &[idx, seq] : waiters) {
        // The waiter may have been squashed (and its slot recycled)
        // since parking; the (handle, fetchSeq) pair detects that.
        if (!inflightPool_.alive(idx))
            continue;
        DynInst &w = inflightPool_.at(idx);
        if (w.fetchSeq == seq)
            w.rsNextTry = 0;
    }
    waiters.clear();
}

void
Core::scheduleCompletion(DynInst *inst, Cycle when)
{
    inst->completionCycle = when;
    // Broadcast the wakeup time immediately so dependents can be
    // scheduled back-to-back.
    if (inst->physDst != kInvalidReg) {
        prf_.setReadyAt(inst->physDst, when);
        wakeRsWaiters(inst->physDst);
    }
    completions_.push_back({when, inst});
    std::push_heap(completions_.begin(), completions_.end(),
                   std::greater<CompletionEvent>{});
}

// ---------------------------------------------------------------------
// Completion
// ---------------------------------------------------------------------

void
Core::completionStage()
{
    while (!completions_.empty() &&
           completions_.front().when <= now_) {
        std::pop_heap(completions_.begin(), completions_.end(),
                      std::greater<CompletionEvent>{});
        DynInst *inst = completions_.back().inst;
        completions_.pop_back();
        finishInst(inst);
    }
}

void
Core::finishInst(DynInst *inst)
{
    inst->state = InstState::Completed;

    if (inst->isBranch() && inst->onPath) {
        bp_.update(inst->pc, inst->uop, inst->taken,
                   inst->actualTarget, inst->tageInfo);
        if (inst->mispredicted)
            recoverFromBranch(inst);
    }
}

// ---------------------------------------------------------------------
// Retire
// ---------------------------------------------------------------------

void
Core::retireStage()
{
    SIM_AUDIT_ONLY(if (lsqRobAudit_.due()) auditLsqRobAge();)

    for (unsigned n = 0; n < config_.width; ++n) {
        DynInst *h = rob_.head();
        if (!h || h->state != InstState::Completed)
            break;
        // A critical-stream uop cannot retire before its regular
        // stream copy replayed the rename (the RAT must be
        // committed in program order).
        if (h->criticalStream && !h->renamedRegular)
            break;

        SIM_ASSERT(h->onPath, "wrong-path instruction reached retire");
        SIM_ASSERT(h->ts == nextRetireTs_,
                   "out-of-order retirement: ts ", h->ts, " expected ",
                   nextRetireTs_);
        SIM_AUDIT(!h->doomed, "doomed instruction reached retire");
        SIM_AUDIT(inflightPool_.alive(h->poolIdx),
                  "retiring instruction is not live in the slab pool");
        ++nextRetireTs_;

        if (h->isLoad()) {
            lsq_.lq().retire(h);
            if (config_.mode == CoreMode::Pre)
                lastRetiredLoadAddr_[h->pc] = h->memAddr;
        }
        if (h->isStore()) {
            lsq_.sq().retire(h);
            mem_.dataAccess(h->memAddr, mem::AccessKind::DemandStore,
                            now_);
        }
        rob_.popHead();

        if (h->renamedRegular && h->oldPhysDst != kInvalidReg)
            prf_.release(h->oldPhysDst);

        const bool isHalt = h->uop.isHalt();
        ++retiredInstrs_;
        ++statRetired_;
        lastRetireCycle_ = now_;

        trainOnRetire(h);

        criticalByTs_.erase(h->ts);
        destroyInst(h);

        if (isHalt) {
            halted_ = true;
            return;
        }
    }

    // Periodically let the oracle window shrink.
    if ((retiredInstrs_ & 0xFFF) == 0 && retiredInstrs_ > 0)
        oracle_.releaseBelow(nextRetireTs_);

    // Full-window-stall classification: the window is stalled when
    // the ROB cannot accept new instructions and the oldest
    // instruction is an outstanding load miss.
    DynInst *h = rob_.head();
    const bool robFull =
        rob_.occupancy() >= config_.robSize ||
        (!rob_.canInsert(false) && !frontQ_.empty() &&
         frontQ_.front()->readyAtRename <= now_);
    if (robFull && h && h->state != InstState::Completed) {
        ++fullWindowStallCycles_;
        if (config_.observeCriticality) {
            std::uint64_t crit = 0;
            std::uint64_t total = 0;
            for (const auto *q :
                 {&rob_.criticalSection(), &rob_.nonCriticalSection()}) {
                for (const DynInst *i : *q) {
                    ++total;
                    if (i->critical)
                        ++crit;
                }
            }
            if (total > 0) {
                fig1CriticalFrac_.add(static_cast<double>(crit) /
                                      static_cast<double>(total));
            }
        }
        if (config_.mode == CoreMode::Pre && h->isLoad() &&
            h->llcMiss) {
            maybeEnterRunahead(h);
        }
    } else {
        stallCounting_ = false;
    }
}

void
Core::trainOnRetire(const DynInst *h)
{
    if (h->mispredicted)
        ++statMispredicts_;

    if (loadCct_ && h->isLoad())
        loadCct_->update(h->pc, h->llcMiss);
    if (branchCct_ && h->uop.isCondBranch())
        branchCct_->update(h->pc, h->mispredicted);

    if (fillBuffer_) {
        bool seed = false;
        if (config_.mode == CoreMode::Pre) {
            seed = h->isLoad() && stallTable_->isCritical(h->pc);
        } else if (h->isLoad()) {
            seed = loadCct_->isCritical(h->pc);
        } else if (h->uop.isCondBranch() &&
                   config_.cdf.markCriticalBranches) {
            seed = branchCct_->isCritical(h->pc);
        }

        cdf::RetiredUopInfo info;
        info.pc = h->pc;
        info.uop = h->uop;
        info.memWordAddr = h->memWord();
        info.seedCritical = seed;
        info.startsBasicBlock = retirePrevWasBranch_;
        auto wr = fillBuffer_->onRetire(info, retiredInstrs_, now_);
        retirePrevWasBranch_ = h->isBranch();

        // Criticality-density driven threshold-mode switching
        // (Section 3.2).
        if (wr.performed && loadCct_) {
            if (wr.density < config_.cdf.densitySwitchLow) {
                loadCct_->setMode(cdf::ThresholdMode::Permissive);
                branchCct_->setMode(cdf::ThresholdMode::Permissive);
            } else if (wr.density > config_.cdf.densitySwitchHigh) {
                loadCct_->setMode(cdf::ThresholdMode::Strict);
                branchCct_->setMode(cdf::ThresholdMode::Strict);
            }
        }
    }
    if (maskCache_)
        maskCache_->maybeReset(retiredInstrs_);
}

// ---------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------

void
Core::squashYoungerThan(SeqNum flushTs)
{
    // Collect the doomed set first so the completion heap and other
    // side structures can be filtered before any memory is freed.
    std::vector<DynInst *> squashed;
    squashOldestCkptValid_ = false;
    for (std::uint32_t i = inflightHead_; i != kNoInst;
         i = inflightPool_.at(i).nextIdx) {
        DynInst &inst = inflightPool_.at(i);
        if (inst.ts > flushTs) {
            inst.doomed = true;
            squashed.push_back(&inst);
        }
    }
    // NOTE: even when no in-flight instruction is younger than the
    // flush point, the FIFO flushes further down must still run:
    // wrong-path basic blocks with no critical uops leave DBQ /
    // wpRecords / BbInfo entries behind without any instruction.

    // Track the oldest squashed branch checkpoint so violation
    // recoveries can rewind the predictor's speculative history.
    auto noteCkpt = [&](SeqNum ts, const bp::BpCheckpoint &c) {
        if (!squashOldestCkptValid_ || ts < squashOldestCkptTs_) {
            squashOldestCkptValid_ = true;
            squashOldestCkptTs_ = ts;
            squashOldestCkpt_ = c;
        }
    };
    for (DynInst *inst : squashed) {
        if (inst->hasBpCheckpoint)
            noteCkpt(inst->ts, inst->bpCheckpoint);
    }
    for (const DbqCheckpoint &c : dbqCkpts_) {
        if (c.ts > flushTs)
            noteCkpt(c.ts, c.ckpt);
    }
    // Completion heap: drain in heap order, keep survivors. The
    // drained sequence is ascending, so the survivor vector is
    // already a valid min-heap with exactly the layout the old
    // re-push loop produced — swap it in, no rebuild.
    completionsScratch_.clear();
    completionsScratch_.reserve(completions_.size());
    while (!completions_.empty()) {
        std::pop_heap(completions_.begin(), completions_.end(),
                      std::greater<CompletionEvent>{});
        const CompletionEvent ev = completions_.back();
        completions_.pop_back();
        if (!ev.inst->doomed)
            completionsScratch_.push_back(ev);
    }
    completions_.swap(completionsScratch_);
    // The swapped-in survivor sequence must still be a valid
    // min-heap (the rebuild argument above) and must reference no
    // doomed instruction — a stale pointer here would be freed below
    // and dereferenced at completion time.
    SIM_AUDIT_ONLY({
        SIM_AUDIT(std::is_heap(completions_.begin(),
                               completions_.end(),
                               std::greater<CompletionEvent>{}),
                  "completion heap lost heap order in squash rebuild");
        for (const CompletionEvent &ev : completions_)
            SIM_AUDIT(!ev.inst->doomed,
                      "doomed instruction survived the completion-heap "
                      "squash filter");
    })

    std::erase_if(pendingStores_,
                  [&](const DynInst *st) { return st->doomed; });
    if (pendingMemViolation_ && pendingMemViolation_->doomed)
        pendingMemViolation_ = nullptr;

    // Frontend queues (entries are ts-ordered within each queue).
    for (auto *q : {&frontQ_, &critQ_}) {
        std::size_t kept = q->size();
        while (kept > 0 && q->at(kept - 1)->ts > flushTs)
            --kept;
        q->truncate(kept);
    }

    rob_.flushYounger(flushTs);
    rs_.flushYounger(flushTs);
    lsq_.lq().flushYounger(flushTs);
    lsq_.sq().flushYounger(flushTs);

    if (dbq_)
        cdf::flushYounger(*dbq_, flushTs);
    if (cmq_)
        cdf::flushYounger(*cmq_, flushTs);
    std::erase_if(dbqCkpts_,
                  [&](const DbqCheckpoint &c) { return c.ts > flushTs; });
    std::erase_if(wpRecords_,
                  [&](const WpRecord &w) { return w.ts > flushTs; });
    if (wpConsumeIdx_ > wpRecords_.size())
        wpConsumeIdx_ = wpRecords_.size();
    while (!bbInfoQ_.empty() && bbInfoQ_.back().baseTs > flushTs)
        bbInfoQ_.pop_back();

    // Undo renames youngest-first and release physical registers.
    std::sort(squashed.begin(), squashed.end(),
              [](const DynInst *a, const DynInst *b) {
                  return a->ts > b->ts;
              });

    // Restore the poison bits to their state before the oldest
    // squashed regular rename (they are RAT state and flush with it).
    for (auto it = squashed.rbegin(); it != squashed.rend(); ++it) {
        if ((*it)->hasPoisonSnapshot) {
            rat_.setPoisonBits((*it)->poisonSnapshot);
            break;
        }
    }

    for (DynInst *inst : squashed) {
        if (inst->uop.writesReg()) {
            if (inst->renamedRegular)
                rat_.undo(inst->uop.dst, inst->oldPhysDst);
            if (inst->renamedCritical)
                critRat_.undo(inst->uop.dst, inst->oldPhysDstCrit);
        }
        if (inst->physDst != kInvalidReg)
            prf_.release(inst->physDst);
        DynInst **slot = criticalByTs_.find(inst->ts);
        if (slot && *slot == inst)
            criticalByTs_.erase(inst->ts);
        destroyInst(inst);
    }

    if (regRenamedThroughTs_ > flushTs + 1)
        regRenamedThroughTs_ = flushTs + 1;

    // Doomed-flag/liveness agreement: every instruction still on the
    // in-flight list survived the flush, so none may be younger than
    // the flush point or still carry the doomed mark, and the
    // intrusive links must agree with the pool's liveness bitmap.
    SIM_AUDIT_ONLY({
        std::uint32_t prev = kNoInst;
        for (std::uint32_t i = inflightHead_; i != kNoInst;
             i = inflightPool_.at(i).nextIdx) {
            SIM_AUDIT(inflightPool_.alive(i),
                      "in-flight list references a freed pool slot");
            const DynInst &inst = inflightPool_.at(i);
            SIM_AUDIT(inst.prevIdx == prev,
                      "in-flight list prev/next links disagree");
            SIM_AUDIT(!inst.doomed,
                      "doomed instruction survived the squash walk");
            SIM_AUDIT(inst.ts <= flushTs,
                      "instruction younger than the flush point "
                      "survived the squash");
            prev = i;
        }
        SIM_AUDIT(inflightTail_ == prev,
                  "in-flight tail does not terminate the list");
    })
}

void
Core::recoverFromBranch(DynInst *branch)
{
    SIM_ASSERT(branch->onPath, "recovery on a wrong-path branch");
    const SeqNum flushTs = branch->ts;

    if (raActive_)
        exitRunahead(); // before the checkpoint rewind below

    squashYoungerThan(flushTs);
    SIM_ASSERT(branch->hasBpCheckpoint, "branch without checkpoint");
    bp_.recover(branch->bpCheckpoint, branch->taken, branch->pc);

    fetchStallUntil_ = now_ + config_.mispredictRedirect;
    lastFetchLine_ = ~Addr{0};
    fetchDoneHalt_ = false;

    if (config_.mode == CoreMode::Cdf && cdfMode_) {
        if (branch->cdfFetched) {
            // CDF mode survives the mispredict (Section 3.6): fix
            // the DBQ entry so the regular stream follows the
            // corrected path, and restart critical fetch there.
            for (std::size_t i = 0; i < dbq_->size(); ++i) {
                if (dbq_->at(i).ts == branch->ts) {
                    dbq_->at(i).taken = branch->taken;
                    dbq_->at(i).target = branch->actualTarget;
                }
            }
            critOnPath_ = true;
            cdfWalker_.deactivate();
            critTraceValid_ = false;
            critTraceIdx_ = 0;
            critFetchPc_ = branch->actualTarget;
            critFetchBaseTs_ = branch->ts + 1;
            critCoveredUpTo_ = branch->ts + 1;
            wpRecords_.clear();
            wpConsumeIdx_ = 0;
            regWrongPath_ = false;
            if (regNextTs_ > branch->ts + 1)
                regNextTs_ = branch->ts + 1;
            cdfDraining_ = false;
        } else {
            // Recovery to a branch fetched before CDF mode began
            // ends CDF mode (exit condition (c), Section 3.6).
            abortCdfMode();
            wrongPath_ = false;
            walker_.deactivate();
            nextFetchTs_ = branch->ts + 1;
            fetchAtBbStart_ = true;
        }
        return;
    }

    wrongPath_ = false;
    walker_.deactivate();
    nextFetchTs_ = branch->ts + 1;
    fetchAtBbStart_ = true;
}

void
Core::dependenceViolationRecovery(SeqNum violTs)
{
    ++statDepViolations_;
    SIM_ASSERT(violTs > 0, "dependence violation at ts 0");
    squashYoungerThan(violTs - 1);
    if (squashOldestCkptValid_)
        bp_.restore(squashOldestCkpt_);
    abortCdfMode();
    wrongPath_ = false;
    walker_.deactivate();
    nextFetchTs_ = violTs;
    fetchAtBbStart_ = true;
    fetchDoneHalt_ = false;
    fetchStallUntil_ = now_ + config_.mispredictRedirect;
    lastFetchLine_ = ~Addr{0};
}

void
Core::memoryOrderViolation(DynInst *load)
{
    ++statMemOrderViolations_;
    SeqNum t = load->ts;
    SIM_ASSERT(t > 0, "memory-order violation at ts 0");
    if (raActive_)
        exitRunahead();
    // In CDF mode, restart from the oldest point the regular stream
    // has not yet fetched: uops older than that exist only in the
    // critical stream and must not be refetched, while younger
    // non-critical uops may not have been fetched at all yet.
    if (cdfMode_ && regNextTs_ < t)
        t = std::max<SeqNum>(regNextTs_, 1);
    squashYoungerThan(t - 1);
    if (squashOldestCkptValid_)
        bp_.restore(squashOldestCkpt_);
    if (cdfMode_)
        abortCdfMode();
    wrongPath_ = false;
    walker_.deactivate();
    nextFetchTs_ = t;
    fetchAtBbStart_ = true;
    fetchDoneHalt_ = false;
    fetchStallUntil_ = now_ + config_.mispredictRedirect;
    lastFetchLine_ = ~Addr{0};
}

// ---------------------------------------------------------------------
// Audit walks
// ---------------------------------------------------------------------

void
Core::auditLsqRobAge() const
{
    rob_.auditAgeOrder();
    lsq_.auditAgeOrder();

    // Every resident entry must still be live in the slab pool; a
    // stale pointer here means a double destroy or a missed squash.
    const auto checkAlive = [this](const DynInst *inst,
                                   const char *what) {
        SIM_ASSERT(inflightPool_.alive(inst->poolIdx), what,
                   " entry ts ", inst->ts,
                   " is not live in the slab pool");
    };
    for (const auto *q :
         {&rob_.criticalSection(), &rob_.nonCriticalSection()}) {
        for (const DynInst *inst : *q)
            checkAlive(inst, "ROB");
    }

    // Loads and stores leave the LSQ no later than the ROB (retire
    // pops both, flushes truncate both by timestamp), so every LSQ
    // entry must also be ROB-resident. Both ROB sections are
    // timestamp-sorted, so membership is two binary searches.
    const auto inRob = [this](const DynInst *inst) {
        for (const auto *q :
             {&rob_.criticalSection(), &rob_.nonCriticalSection()}) {
            const auto it = std::lower_bound(
                q->begin(), q->end(), inst->ts,
                [](const DynInst *e, SeqNum ts) { return e->ts < ts; });
            if (it != q->end() && *it == inst)
                return true;
        }
        return false;
    };
    const auto checkQueue = [&](const MemQueue &mq, const char *what) {
        mq.forEach([&](DynInst *inst) {
            checkAlive(inst, what);
            SIM_ASSERT(inRob(inst), what, " entry ts ", inst->ts,
                       " is not resident in the ROB");
        });
    };
    checkQueue(lsq_.lq(), "LQ");
    checkQueue(lsq_.sq(), "SQ");
}

} // namespace cdfsim::ooo
