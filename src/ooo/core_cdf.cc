/**
 * @file
 * CDF mode control and the dual fetch engines (paper Section 3.3):
 * the critical fetch logic walking Critical Uop Cache traces with
 * its own next-PC logic and branch prediction, and the regular fetch
 * stream that replays the Delayed Branch Queue so both streams
 * follow one control-flow path.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <unordered_set>

#include "common/logging.hh"
#include "ooo/core.hh"
#include "ooo/trace_env.hh"

namespace cdfsim::ooo
{

void
Core::applyPartitionCaps()
{
    if (!robPart_)
        return;
    rob_.setCriticalCap(robPart_->criticalCap());
    lsq_.lq().setCriticalCap(lqPart_->criticalCap());
    lsq_.sq().setCriticalCap(sqPart_->criticalCap());
    // RS and PRF critical budgets scale with the ROB split
    // (Section 3.5).
    const unsigned rsCap = static_cast<unsigned>(
        static_cast<std::uint64_t>(config_.rsSize) *
        robPart_->criticalCap() / config_.robSize);
    rs_.setCriticalCap(std::max(rsCap, 4u));
}

void
Core::releasePartitionCaps()
{
    // Gradual release: cap shrinks to current occupancy so pending
    // critical instructions drain, then to zero (Section 3.6,
    // "Exiting CDF mode").
    rob_.setCriticalCap(
        static_cast<unsigned>(rob_.criticalOccupancy()));
    lsq_.lq().setCriticalCap(
        static_cast<unsigned>(lsq_.lq().criticalOccupancy()));
    lsq_.sq().setCriticalCap(
        static_cast<unsigned>(lsq_.sq().criticalOccupancy()));
    rs_.setCriticalCap(
        static_cast<unsigned>(rs_.criticalOccupancy()));
}

void
Core::maybeEnterCdfMode(Addr pc, SeqNum seq)
{
    if (cdfMode_ || !uopCache_ || config_.mode != CoreMode::Cdf)
        return;
    if (now_ < cdfCooldownUntil_)
        return;
    // Do not start a new episode while the previous one's critical
    // instructions are still draining.
    if (!critQ_.empty() || !cmq_->empty() ||
        rob_.criticalOccupancy() > 0) {
        return;
    }
    const cdf::BbTrace *t = uopCache_->lookup(pc, now_);
    if (!t)
        return;

    SIM_ASSERT(dbq_->empty(), "stale DBQ entries at CDF entry: ",
               dbq_->size(), " oldest ts ",
               dbq_->empty() ? 0 : dbq_->front().ts);

    cdfMode_ = true;
    cdfDraining_ = false;
    ++statCdfEpisodes_;

    cdfStartTs_ = seq;
    critRatCopied_ = false;

    critFetchPc_ = pc;
    critFetchBaseTs_ = seq;
    critOnPath_ = true;
    critTraceValid_ = false;
    critTraceIdx_ = 0;
    critCoveredUpTo_ = seq;

    regNextTs_ = seq;
    regWrongPath_ = false;
    critWpStuck_ = false;
    wpRecords_.clear();
    wpConsumeIdx_ = 0;
    bbInfoQ_.clear();
    dbqCkpts_.clear();
    criticalByTs_.clear();

    applyPartitionCaps();
}

void
Core::beginCdfExit()
{
    cdfDraining_ = true;
    critTraceValid_ = false;
    cdfCooldownUntil_ = now_ + config_.cdf.reentryCooldown;
}

/**
 * Drop critical uops still waiting in critQ_ and demote their
 * regular-stream copies to normal renaming. Once CDF mode ends the
 * poison machinery is off, so letting them rename through the (now
 * stale) critical RAT would silently miss dependence violations.
 */
void
Core::drainCriticalFrontend()
{
    if (critQ_.empty()) {
        critRatCopied_ = false;
        return;
    }
    std::unordered_set<SeqNum> dropped;
    while (!critQ_.empty()) {
        DynInst *inst = critQ_.pop();
        if (traceTs(inst->ts))
            std::fprintf(stderr, "[%lu] DROP ts=%lu\n", now_,
                         inst->ts);
        dropped.insert(inst->ts);
        destroyInst(inst);
    }
    for (std::size_t i = 0; i < frontQ_.size(); ++i) {
        DynInst *copy = frontQ_.at(i);
        if (copy->critical && copy->cdfFetched &&
            dropped.count(copy->ts)) {
            if (traceTs(copy->ts))
                std::fprintf(stderr, "[%lu] DEMOTE ts=%lu\n", now_,
                             copy->ts);
            copy->critical = false;
        }
    }
    critRatCopied_ = false;
}

void
Core::finishCdfExit()
{
    SIM_ASSERT(cdfMode_, "finishCdfExit outside CDF mode");
    cdfMode_ = false;
    cdfDraining_ = false;
    drainCriticalFrontend();
    critTraceValid_ = false;
    critWpStuck_ = false;
    cdfWalker_.deactivate();
    critOnPath_ = true;

    // Regular fetch resumes where the CDF regular stream stopped.
    wrongPath_ = false;
    walker_.deactivate();
    nextFetchTs_ = regNextTs_;
    fetchAtBbStart_ = true;

    wpRecords_.clear();
    wpConsumeIdx_ = 0;
    bbInfoQ_.clear();
    dbqCkpts_.clear();
    rat_.clearAllPoison();
    // Note: the CMQ may still hold entries for critical uops that
    // are fetched but not yet replayed by regular rename; rename
    // keeps draining it. The partition shrinks as the remaining
    // critical instructions retire (handled in statsStage).
}

void
Core::abortCdfMode()
{
    if (!cdfMode_)
        return;
    cdfMode_ = false;
    cdfDraining_ = false;
    cdfCooldownUntil_ = now_ + config_.cdf.reentryCooldown;
    // Keep the DBQ/CMQ contents that survived the flush: regular
    // stream copies already fetched still need their replays for
    // critical uops that made it into the backend.
    drainCriticalFrontend();
    critTraceValid_ = false;
    critWpStuck_ = false;
    cdfWalker_.deactivate();
    critOnPath_ = true;
    dbqCkpts_.clear();
    wpRecords_.clear();
    wpConsumeIdx_ = 0;
    bbInfoQ_.clear();
    rat_.clearAllPoison();
    releasePartitionCaps();
}

// ---------------------------------------------------------------------
// Critical fetch engine
// ---------------------------------------------------------------------

void
Core::fetchCriticalCdf(unsigned &budget)
{
    if (critWpStuck_)
        return; // idle until the pending mispredict recovery redirects

    while (budget > 0) {
        if (critQ_.full() || dbq_->full())
            return;

        // Acquire (and copy) the trace for the block at the cursor.
        if (!critTraceValid_) {
            const cdf::BbTrace *t =
                uopCache_->lookup(critFetchPc_, now_);
            if (!t) {
                ++statCdfExitsUopMiss_;
                beginCdfExit();
                return;
            }
            critTrace_ = *t;
            critTraceValid_ = true;
            critTraceIdx_ = 0;

            if (!critOnPath_) {
                // Wrong path: functionally walk the whole block now
                // so the regular stream has records to consume.
                // Commit records only if the whole block is walkable.
                std::vector<WpRecord> walked;
                walked.reserve(critTrace_.blockLength);
                bool ok = true;
                for (unsigned off = 0; off < critTrace_.blockLength;
                     ++off) {
                    const Addr pc = critTrace_.startPc + off;
                    if (!oracle_.program().validPc(pc) ||
                        oracle_.program().at(pc).isHalt()) {
                        ok = false;
                        break;
                    }
                    WpRecord w;
                    w.rec = cdfWalker_.execute(pc);
                    w.ts = critWpNextTs_ + off;
                    w.critical = false;
                    walked.push_back(w);
                }
                if (!ok) {
                    critTraceValid_ = false;
                    critWpStuck_ = true;
                    return;
                }
                critWpNextTs_ += critTrace_.blockLength;
                critWpBbBase_ = wpRecords_.size();
                for (auto &w : walked)
                    wpRecords_.push_back(std::move(w));
                for (const auto &tu : critTrace_.uops) {
                    wpRecords_[critWpBbBase_ + tu.offsetInBlock]
                        .critical = true;
                }
            } else {
                // On-path: publish this BB's criticality bits for
                // the regular fetch stream.
                BbInfo info;
                info.baseTs = critFetchBaseTs_;
                info.critBits.assign(critTrace_.blockLength, false);
                for (const auto &tu : critTrace_.uops)
                    info.critBits[tu.offsetInBlock] = true;
                bbInfoQ_.push_back(std::move(info));
            }
        }

        const unsigned len = critTrace_.blockLength;
        const bool lastUopIsBranch = critTrace_.endsInBranch;

        // Emit critical uops of the current trace. The terminating
        // branch (if critical) is emitted during finalization below
        // so its prediction state is attached atomically.
        while (critTraceIdx_ < critTrace_.uops.size()) {
            const cdf::TraceUop &tu = critTrace_.uops[critTraceIdx_];
            if (lastUopIsBranch && tu.offsetInBlock == len - 1)
                break; // leave the branch for finalization
            if (budget == 0 || critQ_.full())
                return;

            isa::ExecRecord rec;
            SeqNum ts;
            if (critOnPath_) {
                ts = critFetchBaseTs_ + tu.offsetInBlock;
                if (!oracle_.hasRecord(ts)) {
                    beginCdfExit(); // program ends inside this block
                    return;
                }
                rec = oracle_.at(ts);
                SIM_ASSERT(rec.pc ==
                               critTrace_.startPc + tu.offsetInBlock,
                           "critical fetch desynchronized from oracle");
            } else {
                const WpRecord &w =
                    wpRecords_[critWpBbBase_ + tu.offsetInBlock];
                rec = w.rec;
                ts = w.ts;
            }

            DynInst *inst = makeInst(rec, ts, critOnPath_);
            inst->critical = true;
            inst->criticalStream = true;
            inst->cdfFetched = true;
            critQ_.push(inst);
            --budget;
            ++critTraceIdx_;
        }

        // Finalize the basic block.
        if (!lastUopIsBranch) {
            // Halt-terminated (or unchainable) block: stop fetching
            // critical uops and drain (Section 3.6).
            if (critOnPath_)
                critCoveredUpTo_ = critFetchBaseTs_ + len;
            beginCdfExit();
            return;
        }

        const bool branchCritical =
            !critTrace_.uops.empty() &&
            critTrace_.uops.back().offsetInBlock == len - 1;
        if (branchCritical && (budget == 0 || critQ_.full()))
            return; // need a slot for the branch uop next cycle

        // Predict the block-terminating branch exactly once
        // (Section 3.3) and log it in the DBQ.
        const Addr branchPc = critTrace_.branchPc;
        const isa::Uop &buop = oracle_.program().at(branchPc);
        SIM_ASSERT(buop.isBranch(), "trace branchPc is not a branch");

        bp::BpCheckpoint ckpt = bp_.checkpoint();
        bp::BranchPrediction pred = bp_.predict(branchPc, buop);

        SeqNum branchTs;
        bool misp = false;
        if (critOnPath_) {
            branchTs = critFetchBaseTs_ + len - 1;
            if (!oracle_.hasRecord(branchTs)) {
                beginCdfExit();
                return;
            }
            const isa::ExecRecord &brec = oracle_.at(branchTs);
            misp = pred.taken != brec.taken ||
                   (pred.taken && pred.target != brec.nextPc);
        } else {
            branchTs =
                wpRecords_[critWpBbBase_ + len - 1].ts;
        }

        dbq_->push({branchTs, pred.taken, pred.target});

        if (branchCritical) {
            isa::ExecRecord rec;
            if (critOnPath_) {
                rec = oracle_.at(branchTs);
            } else {
                rec = wpRecords_[critWpBbBase_ + len - 1].rec;
            }
            DynInst *binst = makeInst(rec, branchTs, critOnPath_);
            binst->critical = true;
            binst->criticalStream = true;
            binst->cdfFetched = true;
            binst->hasBpCheckpoint = true;
            binst->bpCheckpoint = ckpt;
            binst->predTaken = pred.taken;
            binst->predTarget = pred.target;
            binst->btbMissBubble = pred.btbMiss;
            binst->tageInfo = pred.tageInfo;
            binst->mispredicted = critOnPath_ && misp;
            critQ_.push(binst);
            --budget;
            ++statBranches_;
        } else {
            dbqCkpts_.push_back(
                {branchTs, ckpt, misp, pred.btbMiss, pred.tageInfo});
        }

        const Addr nextPc = pred.taken ? pred.target : branchPc + 1;
        if (critOnPath_) {
            critCoveredUpTo_ = critFetchBaseTs_ + len;
            if (misp) {
                critOnPath_ = false;
                cdfWalker_.restart(oracle_.frontierRegs());
                critWpNextTs_ = branchTs + 1;
            } else {
                critFetchBaseTs_ += len;
            }
        }
        critFetchPc_ = nextPc;
        critTraceValid_ = false;
        critTraceIdx_ = 0;

        // Chaining to the next trace costs one slot of uop-cache
        // bandwidth even when the block contributed no critical
        // uops; this also bounds the loop for all-empty regions.
        if (budget > 0)
            --budget;

        if (pred.btbMiss) {
            // Target resolves a stage later: charge a bubble.
            budget = 0;
        }
    }
}

// ---------------------------------------------------------------------
// Regular fetch stream in CDF mode
// ---------------------------------------------------------------------

void
Core::fetchRegularCdf(unsigned &budget)
{
    while (budget > 0) {
        if (frontQ_.full())
            return;

        // Graceful exit: the regular stream caught up with the
        // critical fetch and no delayed branches remain.
        if (cdfDraining_ && !regWrongPath_ &&
            regNextTs_ >= critCoveredUpTo_ &&
            wpConsumeIdx_ >= wpRecords_.size()) {
            finishCdfExit();
            return;
        }

        isa::ExecRecord rec;
        SeqNum ts;
        bool onPath;
        bool critFlag = false;

        if (!regWrongPath_) {
            if (regNextTs_ >= critCoveredUpTo_)
                return; // the critical fetch leads; wait
            rec = oracle_.at(regNextTs_);
            ts = regNextTs_;
            onPath = true;

            // Criticality bits from the BB info queue.
            while (!bbInfoQ_.empty()) {
                const BbInfo &bi = bbInfoQ_.front();
                if (ts >= bi.baseTs + bi.critBits.size()) {
                    bbInfoQ_.pop_front();
                    continue;
                }
                if (ts >= bi.baseTs)
                    critFlag = bi.critBits[ts - bi.baseTs];
                break;
            }
        } else {
            if (wpConsumeIdx_ >= wpRecords_.size())
                return; // wait for the critical fetch's walker
            const WpRecord &w = wpRecords_[wpConsumeIdx_];
            rec = w.rec;
            ts = w.ts;
            critFlag = w.critical;
            onPath = false;
        }

        // Branches need their DBQ entry; without it the stream
        // cannot know which way to go yet.
        cdf::DbqEntry dbqEntry{};
        if (rec.uop.isBranch()) {
            if (dbq_->empty())
                return;
            SIM_ASSERT(dbq_->front().ts == ts,
                       "DBQ head out of sync: ", dbq_->front().ts,
                       " vs ", ts);
            dbqEntry = dbq_->front();
        }

        if (!icacheGate(rec.pc, budget))
            return;

        DynInst *inst = makeInst(rec, ts, onPath);
        inst->cdfFetched = true;
        inst->critical = critFlag;

        if (rec.uop.isBranch()) {
            dbq_->pop();
            inst->predTaken = dbqEntry.taken;
            inst->predTarget = dbqEntry.target;

            if (!critFlag) {
                // Non-critical branch: it executes in the backend
                // via the regular stream and carries the checkpoint
                // taken at critical-fetch prediction time.
                auto it = std::find_if(
                    dbqCkpts_.begin(), dbqCkpts_.end(),
                    [&](const DbqCheckpoint &c) { return c.ts == ts; });
                if (it != dbqCkpts_.end()) {
                    inst->hasBpCheckpoint = true;
                    inst->bpCheckpoint = it->ckpt;
                    inst->btbMissBubble = it->btbMiss;
                    dbqCkpts_.erase(it);
                }
                ++statBranches_;
            }

            if (onPath) {
                const bool wrong =
                    dbqEntry.taken != rec.taken ||
                    (dbqEntry.taken && dbqEntry.target != rec.nextPc);
                inst->mispredicted = !critFlag && wrong;
                if (critFlag) {
                    // The critical copy owns the mispredict flag.
                    inst->mispredicted = false;
                }
                regNextTs_ = ts + 1;
                if (wrong)
                    regWrongPath_ = true;
            }
        } else {
            if (onPath) {
                regNextTs_ = ts + 1;
                if (rec.uop.isHalt())
                    fetchDoneHalt_ = true;
            }
        }
        if (!onPath)
            ++wpConsumeIdx_;

        frontQ_.push(inst);
        --budget;
        if (rec.uop.isHalt() && onPath)
            return;
    }
}

} // namespace cdfsim::ooo
