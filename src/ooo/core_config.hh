/**
 * @file
 * Configuration of the OoO core, the CDF mechanism and the Precise
 * Runahead comparator. Defaults reproduce Table 1 of the paper
 * (Intel Sunny-Cove-like core at 3.2 GHz).
 */

#ifndef CDFSIM_OOO_CORE_CONFIG_HH
#define CDFSIM_OOO_CORE_CONFIG_HH

#include <cstdint>

#include "bp/predictor.hh"
#include "cdf/critical_table.hh"
#include "cdf/fill_buffer.hh"
#include "cdf/mask_cache.hh"
#include "cdf/partition.hh"
#include "cdf/uop_cache.hh"
#include "mem/hierarchy.hh"

namespace cdfsim::ooo
{

/** Which execution paradigm the core runs. */
enum class CoreMode : std::uint8_t
{
    Baseline,   //!< plain OoO core with prefetching
    Cdf,        //!< Criticality Driven Fetch
    Pre,        //!< Precise Runahead comparator
};

/** CDF-specific knobs (Sections 3.2-3.6). */
struct CdfKnobs
{
    bool markCriticalBranches = true;   //!< ablation: Section 4.2
    cdf::CriticalTableConfig loadTable{};
    // Mispredicting ~15% of the time is already "hard to predict",
    // so the increment outweighs the decay substantially.
    cdf::CriticalTableConfig branchTable{
        64, 2, /*strictBits=*/4, /*strictThreshold=*/10,
        /*permissiveBits=*/3, /*permissiveThreshold=*/4,
        /*missInc=*/6, /*hitDec=*/1};
    cdf::FillBufferConfig fillBuffer{};
    cdf::MaskCacheConfig maskCache{};
    cdf::UopCacheConfig uopCache{};
    cdf::PartitionConfig partition{};
    unsigned dbqEntries = 256;          //!< Table 1
    unsigned cmqEntries = 256;          //!< Table 1
    /** Critical-density hysteresis for threshold-mode switching. */
    double densitySwitchLow = 0.05;
    double densitySwitchHigh = 0.30;
    /** Cycles to wait after a CDF exit before re-entering. */
    unsigned reentryCooldown = 64;
};

/** Precise Runahead knobs (Section 4.1 methodology). */
struct PreKnobs
{
    /** Stalling-load tracking (replaces branch marking). */
    cdf::CriticalTableConfig stallTable{
        64, 2, /*strictBits=*/4, /*strictThreshold=*/4,
        /*permissiveBits=*/2, /*permissiveThreshold=*/1,
        /*missInc=*/2, /*hitDec=*/1};
    /**
     * PRE keeps whole stalling slices regardless of density (the
     * density guard is a CDF policy for window expansion, which PRE
     * does not do).
     */
    cdf::FillBufferConfig fillBuffer{1024, 10000, /*minDensity=*/0.0,
                                     /*maxDensity=*/1.0,
                                     /*useMaskCache=*/true};
    cdf::MaskCacheConfig maskCache{};
    cdf::UopCacheConfig uopCache{};
    unsigned minStallCyclesToEnter = 4;  //!< hysteresis before runahead
    unsigned bbScanLimit = 48; //!< fwd scan to align on a cached block
    unsigned maxChainLoadsPerEpisode = 32;
};

/** The core proper (Table 1 baseline). */
struct CoreConfig
{
    CoreMode mode = CoreMode::Baseline;

    unsigned width = 6;            //!< fetch/decode/rename/retire width
    unsigned issueWidth = 6;       //!< RS -> FU dispatch width
    unsigned robSize = 352;
    unsigned rsSize = 160;
    unsigned lqSize = 128;
    unsigned sqSize = 72;
    unsigned physRegs = 512;
    unsigned frontendDepth = 5;    //!< fetch-to-rename latency
    unsigned fetchQueueSize = 64;
    unsigned mispredictRedirect = 4; //!< extra redirect cycles on flush
    unsigned btbMissPenalty = 2;
    unsigned maxLoadsPerCycle = 3;
    unsigned maxStoresPerCycle = 2;

    /**
     * Run CDF's criticality training (CCT + Fill Buffer + Mask
     * Cache) in observation-only mode on a baseline core, so the
     * ROB-occupancy breakdown of Fig. 1 can be measured.
     */
    bool observeCriticality = false;

    CdfKnobs cdf{};
    PreKnobs pre{};
    mem::HierarchyConfig mem{};
    bp::PredictorConfig bp{};

    /** Watchdog: panic if retirement stalls this long (0 = off). */
    Cycle deadlockCycles = 2'000'000;

    /**
     * Fast-forward provably quiescent cycles to the next event
     * (memory completion, fetch-stall expiry, RS wakeup bound)
     * instead of ticking through them one by one. Bit-identical to
     * ticking — every per-cycle stat is bulk-applied in closed form
     * and test_stat_gate holds with it on or off — so this is a pure
     * host-speed knob; turn it off only to simplify debugging.
     */
    bool skipIdleCycles = true;

    /**
     * Record host time per pipeline stage (Core::profile()). Purely
     * a host-side measurement: it must never change architectural
     * behaviour or any stat counter.
     */
    bool profileStages = false;

    /**
     * Scale window resources for the Fig. 17 study: ROB, RS, LQ, SQ
     * and PRF all multiply by @p factor (rounded), as the paper
     * scales "other core structures proportionately".
     */
    void
    scaleWindow(double factor)
    {
        auto scale = [factor](unsigned v) {
            return static_cast<unsigned>(v * factor + 0.5);
        };
        robSize = scale(robSize);
        rsSize = scale(rsSize);
        lqSize = scale(lqSize);
        sqSize = scale(sqSize);
        physRegs = scale(physRegs);
    }
};

} // namespace cdfsim::ooo

#endif // CDFSIM_OOO_CORE_CONFIG_HH
