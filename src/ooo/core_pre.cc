/**
 * @file
 * Precise Runahead comparator (paper Section 4.1 methodology).
 *
 * PRE is implemented with the same marking and fetching machinery as
 * CDF, except (a) only loads that cause full-window stalls seed the
 * dependence-chain walk, (b) chains are fetched from the Critical
 * Uop Cache only during a full-window stall, and (c) runahead
 * execution is discarded: chain loads are issued as prefetches with
 * no architectural effect. Runahead execution uses the free RS/PRF
 * entries, so entry/exit is cheap (no EMQ; see the paper's PRE
 * notes).
 *
 * Chain values are produced by a shadow functional walk seeded from
 * the fetch-frontier register state, with taint tracking rooted at
 * the stalled load's destination: chain loads whose address depends
 * on the outstanding miss prefetch garbage, exactly the wasted
 * traffic Figs. 14-15 attribute to runahead.
 */

#include "common/logging.hh"
#include "ooo/core.hh"

namespace cdfsim::ooo
{

namespace
{

/** Deterministic garbage line address for taint-dependent loads. */
Addr
garbageAddr(Addr pc, std::uint64_t salt)
{
    std::uint64_t h = pc * 0x9E3779B97F4A7C15ull + salt;
    h ^= h >> 29;
    h *= 0xBF58476D1CE4E5B9ull;
    h ^= h >> 32;
    // A wild region far above normal workload footprints.
    return (Addr{1} << 38) + (h % (1u << 22)) * kLineBytes;
}

} // namespace

void
Core::maybeEnterRunahead(const DynInst *head)
{
    if (config_.mode != CoreMode::Pre || raActive_)
        return;

    if (!stallCounting_) {
        stallCounting_ = true;
        stallStartCycle_ = now_;
        // PRE's criticality signal: this load caused a full-window
        // stall.
        stallTable_->update(head->pc, true);
    }

    if (now_ - stallStartCycle_ < config_.pre.minStallCyclesToEnter)
        return;
    if (wrongPath_ || nextFetchTs_ == 0)
        return; // no reliable frontier to run ahead from
    if (head->completionCycle == kNeverCycle ||
        head->completionCycle <= now_)
        return;

    // Start runahead at the next un-fetched instruction.
    if (!oracle_.hasRecord(nextFetchTs_ - 1))
        return;
    const Addr startPc = oracle_.at(nextFetchTs_ - 1).nextPc;
    if (!oracle_.program().validPc(startPc))
        return;

    raActive_ = true;
    ++statRunaheadEpisodes_;
    raEndCycle_ = head->completionCycle;
    raTraceValid_ = false;
    raTraceIdx_ = 0;
    raEpisodeLoads_ = 0;
    raBpCkpt_ = bp_.checkpoint();
    raWalker_.restart(oracle_.frontierRegs());

    // Runahead only has the values that are actually available in
    // the physical registers: any architectural register whose
    // newest in-flight producer has not completed is unknown. Seed
    // the taint from the in-flight window (the walker's shadow
    // registers are oracle values, which the machine does not have
    // for outstanding loads and their dependents).
    // Outstanding LOAD results are unknown, and so is anything
    // data-dependent on them; pure ALU chains re-execute fine in
    // runahead and stay available. Walk the window in program
    // order, propagating unavailability through the dataflow.
    raTaint_.reset();
    for (std::uint32_t i = inflightHead_; i != kNoInst;
         i = inflightPool_.at(i).nextIdx) {
        const DynInst &inst = inflightPool_.at(i);
        if (!inst.onPath || !inst.uop.writesReg())
            continue;
        bool tainted = false;
        if (inst.state != InstState::Completed) {
            if (inst.uop.src1 != kInvalidReg &&
                raTaint_[inst.uop.src1])
                tainted = true;
            if (inst.uop.src2 != kInvalidReg &&
                raTaint_[inst.uop.src2])
                tainted = true;
            if (inst.isLoad())
                tainted = true;
        }
        raTaint_[inst.uop.dst] = tainted;
    }

    // The frontend usually stops mid-block; walk forward through the
    // shadow state until a cached basic-block boundary is reached so
    // chain fetch can engage (chains are tagged by block starts).
    Addr pc = startPc;
    for (unsigned i = 0; i < config_.pre.bbScanLimit; ++i) {
        if (uopCache_->contains(pc))
            break;
        if (!oracle_.program().validPc(pc) ||
            oracle_.program().at(pc).isHalt()) {
            break;
        }
        const isa::Uop &uop = oracle_.program().at(pc);
        isa::ExecRecord rec = raWalker_.execute(pc);
        bool tainted = false;
        if (uop.src1 != kInvalidReg && raTaint_[uop.src1])
            tainted = true;
        if (uop.src2 != kInvalidReg && raTaint_[uop.src2])
            tainted = true;
        if (uop.writesReg())
            raTaint_[uop.dst] = tainted;
        pc = rec.nextPc;
    }
    raPc_ = pc;
}

void
Core::exitRunahead()
{
    raActive_ = false;
    raTraceValid_ = false;
    raWalker_.deactivate();
    // Branch predictions made while fetching chains are speculative
    // only; restore the checkpoint taken at entry.
    bp_.restore(raBpCkpt_);
}

void
Core::runaheadStep(unsigned &budget)
{
    if (now_ >= raEndCycle_) {
        exitRunahead();
        return;
    }

    // Runahead loads share the core's load ports and MSHRs: cap the
    // per-cycle issue rate and pause when the miss buffers are full,
    // as real PRE is bound by the free backend resources. A
    // per-episode budget bounds how much (possibly wrong) chain
    // traffic one stall can generate.
    unsigned loadBudget = config_.maxLoadsPerCycle;
    if (mem_.outstandingDemandMisses(now_) >= config_.mem.l1d.mshrs)
        return;
    if (raEpisodeLoads_ >= config_.pre.maxChainLoadsPerEpisode)
        return;

    while (budget > 0) {
        if (!raTraceValid_) {
            const cdf::BbTrace *t = uopCache_->lookup(raPc_, now_);
            if (!t) {
                ++statRunaheadTraceMiss_;
                return; // no chain to fetch from here
            }
            raTrace_ = *t;
            raTraceValid_ = true;
            raTraceIdx_ = 0;

            // Shadow-execute the whole block, propagating taint.
            raBbRecs_.clear();
            raBbRecs_.reserve(raTrace_.blockLength);
            for (unsigned off = 0; off < raTrace_.blockLength;
                 ++off) {
                const Addr pc = raTrace_.startPc + off;
                if (!oracle_.program().validPc(pc) ||
                    oracle_.program().at(pc).isHalt()) {
                    raTraceValid_ = false;
                    return; // unwalkable: runahead idles
                }
                const isa::Uop &uop = oracle_.program().at(pc);
                isa::ExecRecord rec = raWalker_.execute(pc);
                bool tainted = false;
                if (uop.src1 != kInvalidReg && raTaint_[uop.src1])
                    tainted = true;
                if (uop.src2 != kInvalidReg && raTaint_[uop.src2])
                    tainted = true;
                if (uop.writesReg())
                    raTaint_[uop.dst] = tainted;
                // A load whose address chain involves an
                // unavailable register computes with stale values:
                // usually the PREVIOUS committed address of the same
                // static load (harmless re-reference), sometimes an
                // arbitrary wrong line (the extra memory traffic the
                // paper attributes to runahead).
                if (tainted && uop.isLoad()) {
                    const Addr *last = lastRetiredLoadAddr_.find(pc);
                    if (last && (raChainLoads_ & 3) != 0) {
                        rec.memAddr = *last;
                    } else {
                        rec.memAddr = garbageAddr(pc, raChainLoads_);
                    }
                }
                raBbRecs_.push_back(rec);
            }
        }

        // Issue the chain (critical) uops of the block.
        while (raTraceIdx_ < raTrace_.uops.size() && budget > 0) {
            const cdf::TraceUop &tu = raTrace_.uops[raTraceIdx_];
            const isa::ExecRecord &rec =
                raBbRecs_[tu.offsetInBlock];
            if (rec.uop.isLoad()) {
                if (loadBudget == 0)
                    return; // load ports exhausted this cycle
                ++statRunaheadUops_;
                --budget;
                ++raTraceIdx_;
                ++statRunaheadLoads_;
                ++raChainLoads_;
                ++raEpisodeLoads_;
                --loadBudget;
                // Skip lines already present or in flight at the
                // LLC: runahead prefetches each miss once. The
                // memoized classifier answers repeat probes of the
                // same chain without walking the tag arrays.
                if (mem_.wouldMissLlc(rec.memAddr)) {
                    mem_.dataAccess(rec.memAddr,
                                    mem::AccessKind::RunaheadLoad,
                                    now_);
                }
            } else {
                ++statRunaheadUops_;
                --budget;
                ++raTraceIdx_;
            }
        }
        if (raTraceIdx_ < raTrace_.uops.size())
            return; // budget exhausted mid-block

        // Chain to the next block via a (speculative) prediction.
        if (!raTrace_.endsInBranch) {
            raTraceValid_ = false;
            return; // cannot chain further this stall
        }
        const Addr branchPc = raTrace_.branchPc;
        const isa::Uop &buop = oracle_.program().at(branchPc);
        auto pred = bp_.predict(branchPc, buop);
        raPc_ = pred.taken ? pred.target : branchPc + 1;
        raTraceValid_ = false;
        raTraceIdx_ = 0;
        // Chaining costs a slot of chain-fetch bandwidth even for
        // blocks that contributed no chain uops (bounds this loop).
        if (budget > 0)
            --budget;
        if (!oracle_.program().validPc(raPc_))
            return;
    }
}

} // namespace cdfsim::ooo
