/**
 * @file
 * Idle-cycle fast-forward: when the core is provably quiescent —
 * every pipeline stage would be a no-op until some future event —
 * jump the clock to just before that event instead of ticking
 * through the gap one dead cycle at a time.
 *
 * The contract is bit-identity with ticking (test_stat_gate and the
 * on/off fuzz suite in tests/test_skip.cc hold it): a cycle may only
 * be skipped when its tick would change nothing except the
 * per-cycle accounting this file bulk-applies in closed form:
 *
 *   - core.cycles (statCycles_),
 *   - the full-window-stall classification at the retire tail
 *     (fullWindowStallCycles_ / stallCounting_),
 *   - the every-cycle MLP sample (outstanding DRAM miss counts are
 *     constant across the window because the jump never crosses a
 *     CycleCountRing event — RunningMean::addRepeated is exact for
 *     integral values),
 *   - the partition stall counter a blocked rename charges
 *     (SectionPartition::noteStallN).
 *
 * Everything else is shown frozen: the completion heap's earliest
 * entry, the RS wakeup cache's lower bound (rsNextTry; parked
 * entries wake only from the completion broadcast, which cannot run
 * while quiescent), fetch-stall expiry, memory-hierarchy events
 * (MSHR completions and MLP-ring transitions via
 * MemHierarchy::earliestEvent), pending store-data readiness, and
 * the PRE entry controller's minimum-stall threshold all bound the
 * jump; the deadlock watchdog and the run budget cap it so the
 * watchdog panic and the maxCycles exit land on exactly the cycles
 * they would have ticking.
 */

#include <algorithm>
#include <chrono>

#include "common/logging.hh"
#include "ooo/core.hh"

namespace cdfsim::ooo
{

/**
 * Classify what the rename stage would do this cycle without doing
 * it: replicates renameRegularOne()'s check order exactly (the while
 * loop in renameStage() breaks on the first false return, so at most
 * one classification — and one noteStall — happens per cycle). When
 * the front uop is not yet through the frontend pipe, @p bound is
 * lowered to its readyAtRename; every other input is frozen while
 * the core is quiescent, so the classification holds for the whole
 * window. Requires renameCritical() to be a no-op — the caller
 * checks classifyCritRenameStall() — which freezes the CMQ.
 */
Core::RenameStallKind
Core::classifyRenameStall(Cycle &bound) const
{
    if (frontQ_.empty())
        return RenameStallKind::Quiet;
    const DynInst *inst = frontQ_.front();
    if (inst->readyAtRename > now_) {
        bound = std::min(bound, inst->readyAtRename);
        return RenameStallKind::Quiet;
    }

    // CDF replay front: blocked only while the critical stream has
    // not produced the matching CMQ entry (that check precedes the
    // poison probe, so the blocked path has no side effects). With
    // critQ_ empty the CMQ cannot gain entries, so a match means
    // rename would advance.
    if (inst->cdfFetched && inst->critical) {
        if (cmq_->empty() || cmq_->front().ts != inst->ts)
            return RenameStallKind::Quiet;
        return RenameStallKind::Progress;
    }

    if (!prf_.hasFree())
        return RenameStallKind::Quiet;
    if (!rob_.canInsert(false))
        return robPart_ ? RenameStallKind::RobNote
                        : RenameStallKind::Quiet;
    if (!rs_.canInsert(false))
        return RenameStallKind::Quiet;
    if (inst->isLoad() && !lsq_.lq().canInsert(false))
        return lqPart_ ? RenameStallKind::LqNote
                       : RenameStallKind::Quiet;
    if (inst->isStore() && !lsq_.sq().canInsert(false))
        return sqPart_ ? RenameStallKind::SqNote
                       : RenameStallKind::Quiet;
    return RenameStallKind::Progress;
}

/**
 * Classify what renameCritical() would do this cycle without doing
 * it, replicating its check order exactly (the while loop pops at
 * most zero entries when blocked, and charges at most one noteStall
 * per cycle). Only meaningful when config_.mode == Cdf — the only
 * mode whose renameStage calls renameCritical().
 */
Core::CritRenameStallKind
Core::classifyCritRenameStall(Cycle &bound) const
{
    if (critQ_.empty())
        return CritRenameStallKind::Quiet;
    const DynInst *inst = critQ_.front();
    if (inst->readyAtRename > now_) {
        bound = std::min(bound, inst->readyAtRename);
        return CritRenameStallKind::Quiet;
    }
    if (!critRatCopied_) {
        // Copying the critical RAT (and clearing poison) is a side
        // effect; it unblocks the cycle regular rename passes the
        // episode start, which the caller separately proves cannot
        // happen inside the window.
        return regRenamedThroughTs_ >= cdfStartTs_
                   ? CritRenameStallKind::Progress
                   : CritRenameStallKind::Quiet;
    }
    if (!prf_.hasFree())
        return CritRenameStallKind::Quiet;
    if (!rob_.canInsert(true))
        return CritRenameStallKind::CritRobNote;
    if (!rs_.canInsert(true))
        return CritRenameStallKind::CritRobNote; // RS shares the charge
    if (inst->isLoad() && !lsq_.lq().canInsert(true))
        return CritRenameStallKind::CritLqNote;
    if (inst->isStore() && !lsq_.sq().canInsert(true))
        return CritRenameStallKind::CritSqNote;
    if (cmq_->full())
        return CritRenameStallKind::Quiet;
    return CritRenameStallKind::Progress;
}

/**
 * First cycle strictly after now_ whose tick can do anything beyond
 * the bulk-accounted per-cycle stats. Returns now_ + 1 whenever the
 * core is not provably quiescent — the caller then just ticks.
 */
Cycle
Core::nextEventCycle()
{
    const Cycle tickNext = now_ + 1;

    // Modes with genuinely per-cycle machinery are never skipped:
    // runahead (budgeted shadow fetch every cycle) and the Fig. 1
    // observation run (fig1CriticalFrac_ samples are non-integral,
    // so no closed-form bulk update exists). CDF episodes ARE
    // skippable: both fetch engines and the partition controller are
    // modelled below.
    if (halted_ || raActive_ || config_.observeCriticality)
        return tickNext;

    // Deferred violations are consumed in the same tick they are
    // set; a leftover means the next tick acts on it.
    if (pendingMemViolation_ != nullptr ||
        pendingDepViolationTs_ != kInvalidSeq)
        return tickNext;

    // Post-episode partition release runs every cycle while the
    // critical cap drains; let it. (In CDF mode the caps are live
    // and handled by the partition bound below.)
    if (!cdfMode_ && robPart_ && rob_.criticalCap() > 0)
        return tickNext;

    Cycle bound = kNeverCycle;

    // Completion heap: nothing may finish inside the window. This
    // also freezes every PRF ready time and the RS wakeup broadcast.
    if (!completions_.empty()) {
        if (completions_.front().when <= tickNext)
            return tickNext;
        bound = completions_.front().when;
    }

    // Retire: the ROB head must not be retirable. Its state can only
    // change through the completion heap, bounded above.
    const DynInst *h = rob_.head();
    if (h && h->state == InstState::Completed &&
        !(h->criticalStream && !h->renamedRegular))
        return tickNext;

    // Rename: blocked, with a window-constant (at most one) stall
    // counter charge per stream.
    const RenameStallKind regKind = classifyRenameStall(bound);
    if (regKind == RenameStallKind::Progress)
        return tickNext;
    CritRenameStallKind critKind = CritRenameStallKind::Quiet;
    if (config_.mode == CoreMode::Cdf) {
        critKind = classifyCritRenameStall(bound);
        if (critKind == CritRenameStallKind::Progress)
            return tickNext;
    }

    // Fetch: stalled, permanently halted, or provably stuck. An
    // oracle-dry frontend re-latches fetchDoneHalt_ at the next
    // fetched tick, which is idempotent and reordering-safe (the
    // latch is not a stat and fetch stays blocked either way).
    // Checked before the O(entries) scans below: an active frontend
    // is the common reason a retire-free cycle is not quiescent, and
    // this detects it in O(1).
    if (!fetchDoneHalt_) {
        if (fetchStallUntil_ > now_) {
            bound = std::min(bound, fetchStallUntil_);
        } else if (cdfMode_) {
            // Critical engine: a no-op only when structurally blocked
            // — its output queues full or the wrong-path walker stuck
            // — or stopped entirely by drain mode. The queues drain
            // through renameCritical / the regular engine, both shown
            // blocked here.
            if (!cdfDraining_ && !critWpStuck_ && !critQ_.full() &&
                !dbq_->full())
                return tickNext;
            // Regular engine.
            if (!frontQ_.full()) {
                if (cdfDraining_ && !regWrongPath_ &&
                    regNextTs_ >= critCoveredUpTo_ &&
                    wpConsumeIdx_ >= wpRecords_.size())
                    return tickNext; // graceful exit would fire
                if (!regWrongPath_) {
                    // Blocked only while waiting on the critical
                    // fetch's lead or on a DBQ entry for a branch.
                    if (regNextTs_ < critCoveredUpTo_ &&
                        !(oracle_.hasRecord(regNextTs_) &&
                          oracle_.at(regNextTs_).uop.isBranch() &&
                          dbq_->empty()))
                        return tickNext; // would fetch
                } else {
                    if (wpConsumeIdx_ < wpRecords_.size() &&
                        !(wpRecords_[wpConsumeIdx_]
                              .rec.uop.isBranch() &&
                          dbq_->empty()))
                        return tickNext; // would consume wp records
                }
            }
        } else if (frontQ_.full()) {
            // Backpressured; rename (bounded above) must free a slot.
        } else if (wrongPath_) {
            if (oracle_.program().validPc(wrongPathPc_) &&
                !oracle_.program().at(wrongPathPc_).isHalt())
                return tickNext; // would fetch wrong-path uops
        } else {
            if (oracle_.hasRecord(nextFetchTs_))
                return tickNext; // would fetch real uops
        }
    }

    // Execute: no resident RS entry may be (re)examined before the
    // bound. Entries due now must go through the scheduler — their
    // cached retry cycle can be stale-low after a port refusal.
    bool anyDue = false;
    const Cycle rsBound = rs_.earliestRetry(now_, anyDue);
    if (anyDue)
        return tickNext;
    bound = std::min(bound, rsBound);

    // Stores waiting on data complete the first cycle >= the data
    // register's ready time (frozen: no completions in the window).
    for (const DynInst *st : pendingStores_) {
        const Cycle r = st->physSrc2 == kInvalidReg
                            ? 0
                            : prf_.readyAt(st->physSrc2);
        if (r <= now_)
            return tickNext;
        bound = std::min(bound, r);
    }

    // Memory hierarchy: MSHR completions and outstanding-miss ring
    // transitions. The MLP bulk update requires the latter — the
    // sampled counts are constant strictly inside the window.
    bound = std::min(bound, mem_.earliestEvent(now_));

    // CDF partition controller: statsStage runs evaluate() on every
    // in-mode cycle. With the per-cycle charge pattern frozen (the
    // rename classifications above), the first evaluate() that
    // actually resizes a cap is computable in closed form; resizes
    // change canInsert() outcomes, so that cycle must be ticked.
    // Zero-resize threshold crossings only cycle the counters and
    // are replayed by SectionPartition::advanceCounters().
    if (cdfMode_ && robPart_) {
        const auto partitionBound = [&](cdf::SectionPartition &p,
                                        bool chargeCrit,
                                        bool chargeNonCrit,
                                        std::size_t critOcc,
                                        std::size_t nonCritOcc) {
            const Cycle k = p.cyclesUntilCapChange(
                chargeCrit, chargeNonCrit,
                static_cast<unsigned>(critOcc),
                static_cast<unsigned>(nonCritOcc));
            if (k != kNeverCycle)
                bound = std::min(bound, now_ + k);
        };
        partitionBound(*robPart_,
                       critKind == CritRenameStallKind::CritRobNote,
                       regKind == RenameStallKind::RobNote,
                       rob_.criticalOccupancy(),
                       rob_.nonCriticalOccupancy());
        partitionBound(*lqPart_,
                       critKind == CritRenameStallKind::CritLqNote,
                       regKind == RenameStallKind::LqNote,
                       lsq_.lq().criticalOccupancy(),
                       lsq_.lq().nonCriticalOccupancy());
        partitionBound(*sqPart_,
                       critKind == CritRenameStallKind::CritSqNote,
                       regKind == RenameStallKind::SqNote,
                       lsq_.sq().criticalOccupancy(),
                       lsq_.sq().nonCriticalOccupancy());
    }

    // PRE entry controller: during a classified full-window stall on
    // an LLC-miss load it runs every cycle from the retire tail.
    // After the first stalled cycle (which latched stallCounting_
    // and charged the stall table) it is side-effect free until
    // either a frozen disqualifier keeps it out for the whole window
    // or the minimum-stall threshold passes — in which case entry
    // must happen on exactly that cycle.
    const bool robFull =
        rob_.occupancy() >= config_.robSize ||
        (!rob_.canInsert(false) && !frontQ_.empty() &&
         frontQ_.front()->readyAtRename <= now_);
    const bool stallNow =
        robFull && h && h->state != InstState::Completed;
    if (stallNow && config_.mode == CoreMode::Pre && h->isLoad() &&
        h->llcMiss) {
        if (!stallCounting_)
            return tickNext; // first stalled cycle: side effects
        const bool disqualified =
            wrongPath_ || nextFetchTs_ == 0 ||
            h->completionCycle == kNeverCycle ||
            h->completionCycle <= now_ ||
            !oracle_.hasRecord(nextFetchTs_ - 1) ||
            !oracle_.program().validPc(
                oracle_.at(nextFetchTs_ - 1).nextPc);
        if (!disqualified) {
            bound = std::min(bound,
                             stallStartCycle_ +
                                 config_.pre.minStallCyclesToEnter);
        }
    }

    return std::max(bound, tickNext);
}

/**
 * Apply the per-cycle accounting for @p n skipped cycles in closed
 * form. Every input below is constant across the window (see
 * nextEventCycle()), so this is exactly n iterations of the
 * corresponding per-tick code.
 */
void
Core::bulkAccountSkippedCycles(std::uint64_t n)
{
    statCycles_ += n;

    // statsStage: the MLP sample. The outstanding counts cannot
    // change strictly inside the window (the jump stops at the first
    // ring event), so the sample repeats the same integral value.
    const unsigned demand = mem_.outstandingDemandMisses(now_);
    const unsigned useless = mem_.outstandingUselessMisses(now_);
    if (demand + useless > 0) {
        mlpWhenActive_.addRepeated(
            static_cast<double>(demand + useless), n);
        uselessMlpWhenActive_.addRepeated(static_cast<double>(useless),
                                          n);
    }

    // statsStage: CDF mode-residency accounting.
    if (cdfMode_)
        cdfModeCycles_ += n;

    // retireStage tail: full-window-stall classification. All inputs
    // are frozen (readyAtRename's comparison against the advancing
    // clock is window-constant because the jump is bounded by it).
    const DynInst *h = rob_.head();
    const bool robFull =
        rob_.occupancy() >= config_.robSize ||
        (!rob_.canInsert(false) && !frontQ_.empty() &&
         frontQ_.front()->readyAtRename <= now_);
    if (robFull && h && h->state != InstState::Completed)
        fullWindowStallCycles_ += n;
    else
        stallCounting_ = false;

    // renameStage: the per-cycle stall-counter charges (one per
    // stream), then — in CDF mode — statsStage's per-cycle
    // partition evaluate() replayed in closed form.
    Cycle unusedBound = kNeverCycle;
    const RenameStallKind regKind = classifyRenameStall(unusedBound);
    if (regKind == RenameStallKind::Progress)
        panic("bulk-accounting cycles while rename can progress");
    CritRenameStallKind critKind = CritRenameStallKind::Quiet;
    if (config_.mode == CoreMode::Cdf) {
        critKind = classifyCritRenameStall(unusedBound);
        if (critKind == CritRenameStallKind::Progress)
            panic("bulk-accounting cycles while critical rename can "
                  "progress");
    }

    if (cdfMode_ && robPart_) {
        robPart_->advanceCounters(
            critKind == CritRenameStallKind::CritRobNote,
            regKind == RenameStallKind::RobNote, n,
            static_cast<unsigned>(rob_.criticalOccupancy()),
            static_cast<unsigned>(rob_.nonCriticalOccupancy()));
        lqPart_->advanceCounters(
            critKind == CritRenameStallKind::CritLqNote,
            regKind == RenameStallKind::LqNote, n,
            static_cast<unsigned>(lsq_.lq().criticalOccupancy()),
            static_cast<unsigned>(lsq_.lq().nonCriticalOccupancy()));
        sqPart_->advanceCounters(
            critKind == CritRenameStallKind::CritSqNote,
            regKind == RenameStallKind::SqNote, n,
            static_cast<unsigned>(lsq_.sq().criticalOccupancy()),
            static_cast<unsigned>(lsq_.sq().nonCriticalOccupancy()));
    } else {
        switch (regKind) {
        case RenameStallKind::RobNote:
            robPart_->noteStallN(false, n);
            break;
        case RenameStallKind::LqNote:
            lqPart_->noteStallN(false, n);
            break;
        case RenameStallKind::SqNote:
            sqPart_->noteStallN(false, n);
            break;
        default:
            break;
        }
        switch (critKind) {
        case CritRenameStallKind::CritRobNote:
            robPart_->noteStallN(true, n);
            break;
        case CritRenameStallKind::CritLqNote:
            lqPart_->noteStallN(true, n);
            break;
        case CritRenameStallKind::CritSqNote:
            sqPart_->noteStallN(true, n);
            break;
        default:
            break;
        }
    }
}

bool
Core::maybeSkipIdleCycles(Cycle maxCycles)
{
    using clock = std::chrono::steady_clock;
    const bool prof = config_.profileStages;
    const auto t0 = prof ? clock::now() : clock::time_point{};

    bool skipped = false;
    Cycle target = nextEventCycle();

    // The watchdog must fire on exactly the cycle it would have
    // firing ticking; that tick runs the (no-op) stages first, so
    // even the panic message matches.
    if (config_.deadlockCycles != 0) {
        const Cycle panicAt =
            config_.deadlockCycles >= kNeverCycle - lastRetireCycle_
                ? kNeverCycle
                : lastRetireCycle_ + config_.deadlockCycles + 1;
        target = std::min(target, panicAt);
    }

    if (target != kNeverCycle || maxCycles != kNeverCycle) {
        // Cycles through maxCycles would still be ticked by the run
        // loop (quiescently); anything past the budget is cut. With
        // no event and a finite budget the jump lands on the budget.
        const Cycle jumpTo =
            std::min(target == kNeverCycle ? maxCycles : target - 1,
                     maxCycles);
        if (jumpTo > now_) {
            const std::uint64_t n = jumpTo - now_;
            bulkAccountSkippedCycles(n);
            now_ = jumpTo;
            skippedCycles_ += n;
            ++skipEvents_;
            skipped = true;
        }
    }
    // else: quiescent forever with no budget and no watchdog — fall
    // back to ticking, preserving the no-skip livelock behaviour.

    // A failed scan means some stage is active; activity rarely dies
    // within a cycle or two, so back off instead of rescanning every
    // retire-free cycle. Costs at most the backoff in missed skip
    // opportunity per window, never bit-identity.
    if (!skipped)
        skipRecheckAt_ = now_ + 4;

    if (prof) {
        profile_.ns[StageProfile::Skip] += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                clock::now() - t0)
                .count());
    }
    return skipped;
}

/**
 * RS wakeup-cache audit (see ROADMAP "audit coverage growth"; the
 * idle-skip bound leans on rsNextTry, so silent corruption here
 * would now skew timing, not just scheduling order).
 *
 * Invariants:
 *  - every resident RS entry is Renamed;
 *  - a parked entry (rsNextTry == kNeverCycle) has a never-ready
 *    effective source and a live (pool handle, fetchSeq)
 *    registration on at least one such source;
 *  - a finite cached retry cycle equals the recomputed operand
 *    ready bound (sources of live entries cannot be recycled:
 *    the renewing instruction is younger and retires later);
 *  - a non-empty waiter list implies its register is never-ready
 *    (the completion broadcast clears the whole list), and every
 *    live registration points at a resident entry that names the
 *    register as an effective source and is parked or just woken.
 * Stale registrations (dead pool slot or recycled fetchSeq) are
 * legal; wakeRsWaiters filters them.
 */
void
Core::auditRsWakeupCache() const
{
    rs_.forEach([&](const DynInst *inst) {
        SIM_ASSERT(inst->state == InstState::Renamed,
                   "RS entry ts ", inst->ts, " is not in Renamed state");
        const Cycle r1 = inst->physSrc1 == kInvalidReg
                             ? 0
                             : prf_.readyAt(inst->physSrc1);
        const bool memOp = inst->isLoad() || inst->isStore();
        const Cycle r2 = (memOp || inst->physSrc2 == kInvalidReg)
                             ? 0
                             : prf_.readyAt(inst->physSrc2);
        const Cycle wait = std::max(r1, r2);
        if (inst->rsNextTry == kNeverCycle) {
            SIM_ASSERT(wait == kNeverCycle,
                       "RS entry ts ", inst->ts,
                       " parked but no source is never-ready");
            bool registered = false;
            auto findWaiter = [&](RegId r, Cycle ready) {
                if (r == kInvalidReg || ready != kNeverCycle)
                    return;
                for (const auto &[idx, seq] : regWaiters_[r]) {
                    if (idx == inst->poolIdx && seq == inst->fetchSeq)
                        registered = true;
                }
            };
            findWaiter(inst->physSrc1, r1);
            if (!memOp)
                findWaiter(inst->physSrc2, r2);
            SIM_ASSERT(registered,
                       "RS entry ts ", inst->ts,
                       " parked with no live waiter registration");
        } else if (inst->rsNextTry != 0) {
            SIM_ASSERT(wait != kNeverCycle,
                       "RS entry ts ", inst->ts,
                       " caches a finite retry cycle ",
                       inst->rsNextTry,
                       " but a source is never-ready");
            SIM_ASSERT(inst->rsNextTry == wait,
                       "RS entry ts ", inst->ts,
                       " caches retry cycle ", inst->rsNextTry,
                       " but its operands are ready at ", wait);
        }
    });

    for (std::size_t i = 0; i < regWaiters_.size(); ++i) {
        const RegId r = static_cast<RegId>(i);
        const auto &waiters = regWaiters_[i];
        if (waiters.empty())
            continue;
        SIM_ASSERT(prf_.readyAt(r) == kNeverCycle,
                   "waiter list for phys reg ", r,
                   " is non-empty but the register is ready at ",
                   prf_.readyAt(r));
        for (const auto &[idx, seq] : waiters) {
            if (!inflightPool_.alive(idx))
                continue; // squashed and freed: stale, legal
            const DynInst &w = inflightPool_.at(idx);
            if (w.fetchSeq != seq)
                continue; // slot recycled: stale, legal
            SIM_ASSERT(w.state == InstState::Renamed,
                       "live waiter ts ", w.ts, " on phys reg ", r,
                       " is not resident in the RS");
            const bool wMemOp = w.isLoad() || w.isStore();
            SIM_ASSERT(w.physSrc1 == r ||
                           (!wMemOp && w.physSrc2 == r),
                       "live waiter ts ", w.ts,
                       " does not read phys reg ", r);
            SIM_ASSERT(w.rsNextTry == 0 ||
                           w.rsNextTry == kNeverCycle,
                       "live waiter ts ", w.ts,
                       " caches a finite retry cycle ", w.rsNextTry);
        }
    }
}

} // namespace cdfsim::ooo
