/**
 * @file
 * Complete snapshot/restore of the out-of-order core, plus the
 * rename-map audit walk that restore leans on.
 *
 * Serialization order mirrors the member declaration order of
 * ooo::Core, with one deliberate exception: the in-flight slab pool
 * is written FIRST so restore can re-materialize every DynInst
 * before any container that references instructions by pool handle
 * is decoded. Host-only measurement state (stage profile, idle-skip
 * bookkeeping, audit samplers) is excluded, which keeps the payload
 * independent of the profileStages/skipIdleCycles host knobs; those
 * counters are reset to zero on restore. The stat registry is
 * snapshotted by the owning Simulator, never here.
 */

#include <cstdint>

#include "common/logging.hh"
#include "ooo/core.hh"

namespace cdfsim::ooo
{

namespace
{

/** Presence echo for the config-gated CDF/PRE components: the
 *  snapshot records whether each unique_ptr existed, and restore
 *  asserts the receiving core made the same construction decisions
 *  (guaranteed when configs match, as the warmup key enforces). */
template <typename T>
void
savePresence(SnapWriter &w, const std::unique_ptr<T> &p)
{
    w.b(p != nullptr);
}

template <typename T>
void
checkPresence(SnapReader &r, const std::unique_ptr<T> &p)
{
    const bool had = r.b();
    SIM_ASSERT(had == (p != nullptr),
               "snapshot/core disagree on optional component "
               "presence (config mismatch?)");
}

} // namespace

std::uint32_t
Core::encInst(const DynInst *inst) const
{
    return inst ? inst->poolIdx : kNoInst;
}

DynInst *
Core::decInst(std::uint32_t idx)
{
    if (idx == kNoInst)
        return nullptr;
    SIM_ASSERT(inflightPool_.alive(idx),
               "snapshot references dead pool slot ", idx);
    return &inflightPool_.at(idx);
}

void
Core::saveState(SnapWriter &w) const
{
    const auto enc = [this](SnapWriter &sw, const DynInst *inst) {
        sw.u32(encInst(inst));
    };

    // Functional front: oracle, wrong-path walkers.
    oracle_.save(w);
    walker_.save(w);
    cdfWalker_.save(w);
    raWalker_.save(w);

    // Memory system and predictors.
    mem_.save(w);
    bp_.save(w);

    // Rename state.
    prf_.save(w);
    rat_.save(w);
    critRat_.save(w);

    // The in-flight pool before anything that references it.
    inflightPool_.save(
        w, [](SnapWriter &sw, const DynInst &d) { d.save(sw); });
    w.u32(inflightHead_);
    w.u32(inflightTail_);

    // Backend containers (pool handles).
    rob_.save(w, [&](const DynInst *i) { return encInst(i); });
    lsq_.save(w, [&](const DynInst *i) { return encInst(i); });
    rs_.save(w, [&](const DynInst *i) { return encInst(i); });

    w.u64(regWaiters_.size());
    for (const auto &waiters : regWaiters_) {
        w.u32(static_cast<std::uint32_t>(waiters.size()));
        for (const auto &[handle, seq] : waiters) {
            w.u32(handle);
            w.u64(seq);
        }
    }

    frontQ_.save(w, enc);
    critQ_.save(w, enc);

    w.u32(static_cast<std::uint32_t>(pendingStores_.size()));
    for (const DynInst *inst : pendingStores_)
        w.u32(encInst(inst));

    // The completion min-heap, layout-verbatim: restoring the vector
    // in order reproduces the identical heap array, so same-cycle
    // pop order (which feeds predictor updates) is preserved.
    w.u32(static_cast<std::uint32_t>(completions_.size()));
    for (const CompletionEvent &e : completions_) {
        w.u64(e.when);
        w.u32(encInst(e.inst));
    }

    // Frontend scalars.
    w.u64(now_);
    w.u64(fetchSeqCounter_);
    w.u64(nextFetchTs_);
    w.b(wrongPath_);
    w.u64(wrongPathPc_);
    w.u64(wrongPathTs_);
    w.u64(fetchStallUntil_);
    w.u64(lastFetchLine_);
    w.b(fetchDoneHalt_);
    w.u64(nextRetireTs_);
    w.b(halted_);
    w.u64(lastRetireCycle_);
    w.u64(retiredInstrs_);
    w.b(fetchAtBbStart_);
    w.u64(fetchBbStartPc_);
    w.u32(fetchBbOffset_);
    w.b(retirePrevWasBranch_);

    // CDF components (presence echoes first, then contents).
    savePresence(w, loadCct_);
    savePresence(w, branchCct_);
    savePresence(w, maskCache_);
    savePresence(w, uopCache_);
    savePresence(w, fillBuffer_);
    savePresence(w, robPart_);
    savePresence(w, lqPart_);
    savePresence(w, sqPart_);
    savePresence(w, dbq_);
    savePresence(w, cmq_);
    if (loadCct_)
        loadCct_->save(w);
    if (branchCct_)
        branchCct_->save(w);
    if (maskCache_)
        maskCache_->save(w);
    if (uopCache_)
        uopCache_->save(w);
    if (fillBuffer_)
        fillBuffer_->save(w);
    if (robPart_)
        robPart_->save(w);
    if (lqPart_)
        lqPart_->save(w);
    if (sqPart_)
        sqPart_->save(w);
    if (dbq_) {
        dbq_->save(w, [](SnapWriter &sw, const cdf::DbqEntry &e) {
            cdf::save(sw, e);
        });
    }
    if (cmq_) {
        cmq_->save(w, [](SnapWriter &sw, const cdf::CmqEntry &e) {
            cdf::save(sw, e);
        });
    }

    // CDF scalars and queues.
    w.b(cdfMode_);
    w.b(cdfDraining_);
    w.u64(cdfCooldownUntil_);
    w.b(critRatCopied_);
    w.u64(cdfStartTs_);
    w.u64(regRenamedThroughTs_);
    w.u64(critFetchPc_);
    w.u64(critFetchBaseTs_);
    w.b(critOnPath_);
    w.b(critTraceValid_);
    cdf::save(w, critTrace_);
    w.u32(critTraceIdx_);
    w.u64(critProcessedThroughTs_);
    w.u64(regNextTs_);
    w.b(regWrongPath_);
    w.u64(critCoveredUpTo_);
    w.u64(critWpNextTs_);
    w.u64(critWpBbBase_);

    criticalByTs_.save(w, [&](SnapWriter &sw, const DynInst *inst) {
        sw.u32(encInst(inst));
    });

    w.u32(static_cast<std::uint32_t>(bbInfoQ_.size()));
    for (const BbInfo &bb : bbInfoQ_) {
        w.u64(bb.baseTs);
        w.u32(static_cast<std::uint32_t>(bb.critBits.size()));
        for (bool bit : bb.critBits)
            w.b(bit);
    }

    w.u32(static_cast<std::uint32_t>(wpRecords_.size()));
    for (const WpRecord &wp : wpRecords_) {
        isa::save(w, wp.rec);
        w.u64(wp.ts);
        w.b(wp.critical);
    }
    w.u64(wpConsumeIdx_);

    w.u32(static_cast<std::uint32_t>(dbqCkpts_.size()));
    for (const DbqCheckpoint &c : dbqCkpts_) {
        w.u64(c.ts);
        bp::save(w, c.ckpt);
        w.b(c.mispredicted);
        w.b(c.btbMiss);
        bp::save(w, c.tageInfo);
    }
    w.b(critWpStuck_);

    // PRE machinery.
    savePresence(w, stallTable_);
    if (stallTable_)
        stallTable_->save(w);
    w.b(raActive_);
    w.u64(raEndCycle_);
    w.u64(raPc_);
    w.b(raTraceValid_);
    cdf::save(w, raTrace_);
    w.u32(raTraceIdx_);
    w.u32(static_cast<std::uint32_t>(raBbRecs_.size()));
    for (const isa::ExecRecord &rec : raBbRecs_)
        isa::save(w, rec);
    static_assert(kNumArchRegs <= 64, "taint snapshot width");
    w.u64(raTaint_.to_ullong());
    bp::save(w, raBpCkpt_);
    w.u64(raChainLoads_);
    w.u32(raEpisodeLoads_);
    lastRetiredLoadAddr_.save(
        w, [](SnapWriter &sw, Addr a) { sw.u64(a); });
    w.u64(stallStartCycle_);
    w.b(stallCounting_);

    // Squash/violation deferred state.
    w.b(squashOldestCkptValid_);
    w.u64(squashOldestCkptTs_);
    bp::save(w, squashOldestCkpt_);
    w.u32(encInst(pendingMemViolation_));
    w.u64(pendingDepViolationTs_);

    // Measurement accounting that feeds result(). The stage profile
    // and skip bookkeeping are host-only and excluded by design.
    w.u64(measureStartCycle_);
    w.u64(measureStartRetired_);
    mlpWhenActive_.save(w);
    uselessMlpWhenActive_.save(w);
    fig1CriticalFrac_.save(w);
    w.u64(fullWindowStallCycles_);
    w.u64(cdfModeCycles_);
}

void
Core::restoreState(SnapReader &r)
{
    oracle_.restore(r);
    walker_.restore(r);
    cdfWalker_.restore(r);
    raWalker_.restore(r);

    mem_.restore(r);
    bp_.restore(r);

    prf_.restore(r);
    rat_.restore(r);
    critRat_.restore(r);

    inflightPool_.restore(
        r, [](SnapReader &sr, DynInst &d) { d.restore(sr); });
    inflightHead_ = r.u32();
    inflightTail_ = r.u32();

    rob_.restore(r, [&](std::uint32_t idx) { return decInst(idx); });
    lsq_.restore(r, [&](std::uint32_t idx) { return decInst(idx); });
    rs_.restore(r, [&](std::uint32_t idx) { return decInst(idx); });

    const std::uint64_t numRegs = r.u64();
    SIM_ASSERT(numRegs == regWaiters_.size(),
               "snapshot phys reg count differs from this core's");
    for (auto &waiters : regWaiters_) {
        waiters.resize(r.u32());
        for (auto &[handle, seq] : waiters) {
            handle = r.u32();
            seq = r.u64();
        }
    }

    frontQ_.restore(r,
                    [&](SnapReader &sr) { return decInst(sr.u32()); });
    critQ_.restore(r,
                   [&](SnapReader &sr) { return decInst(sr.u32()); });

    pendingStores_.resize(r.u32());
    for (DynInst *&inst : pendingStores_)
        inst = decInst(r.u32());

    completions_.resize(r.u32());
    for (CompletionEvent &e : completions_) {
        e.when = r.u64();
        e.inst = decInst(r.u32());
    }

    now_ = r.u64();
    fetchSeqCounter_ = r.u64();
    nextFetchTs_ = r.u64();
    wrongPath_ = r.b();
    wrongPathPc_ = r.u64();
    wrongPathTs_ = r.u64();
    fetchStallUntil_ = r.u64();
    lastFetchLine_ = r.u64();
    fetchDoneHalt_ = r.b();
    nextRetireTs_ = r.u64();
    halted_ = r.b();
    lastRetireCycle_ = r.u64();
    retiredInstrs_ = r.u64();
    fetchAtBbStart_ = r.b();
    fetchBbStartPc_ = r.u64();
    fetchBbOffset_ = r.u32();
    retirePrevWasBranch_ = r.b();

    checkPresence(r, loadCct_);
    checkPresence(r, branchCct_);
    checkPresence(r, maskCache_);
    checkPresence(r, uopCache_);
    checkPresence(r, fillBuffer_);
    checkPresence(r, robPart_);
    checkPresence(r, lqPart_);
    checkPresence(r, sqPart_);
    checkPresence(r, dbq_);
    checkPresence(r, cmq_);
    if (loadCct_)
        loadCct_->restore(r);
    if (branchCct_)
        branchCct_->restore(r);
    if (maskCache_)
        maskCache_->restore(r);
    if (uopCache_)
        uopCache_->restore(r);
    if (fillBuffer_)
        fillBuffer_->restore(r);
    if (robPart_)
        robPart_->restore(r);
    if (lqPart_)
        lqPart_->restore(r);
    if (sqPart_)
        sqPart_->restore(r);
    if (dbq_) {
        dbq_->restore(r, [](SnapReader &sr) {
            cdf::DbqEntry e;
            cdf::restore(sr, e);
            return e;
        });
    }
    if (cmq_) {
        cmq_->restore(r, [](SnapReader &sr) {
            cdf::CmqEntry e;
            cdf::restore(sr, e);
            return e;
        });
    }

    cdfMode_ = r.b();
    cdfDraining_ = r.b();
    cdfCooldownUntil_ = r.u64();
    critRatCopied_ = r.b();
    cdfStartTs_ = r.u64();
    regRenamedThroughTs_ = r.u64();
    critFetchPc_ = r.u64();
    critFetchBaseTs_ = r.u64();
    critOnPath_ = r.b();
    critTraceValid_ = r.b();
    cdf::restore(r, critTrace_);
    critTraceIdx_ = r.u32();
    critProcessedThroughTs_ = r.u64();
    regNextTs_ = r.u64();
    regWrongPath_ = r.b();
    critCoveredUpTo_ = r.u64();
    critWpNextTs_ = r.u64();
    critWpBbBase_ = r.u64();

    criticalByTs_.restore(
        r, [&](SnapReader &sr) { return decInst(sr.u32()); });

    bbInfoQ_.resize(r.u32());
    for (BbInfo &bb : bbInfoQ_) {
        bb.baseTs = r.u64();
        bb.critBits.resize(r.u32());
        for (std::size_t i = 0; i < bb.critBits.size(); ++i)
            bb.critBits[i] = r.b();
    }

    wpRecords_.resize(r.u32());
    for (WpRecord &wp : wpRecords_) {
        isa::restore(r, wp.rec);
        wp.ts = r.u64();
        wp.critical = r.b();
    }
    wpConsumeIdx_ = r.u64();

    dbqCkpts_.resize(r.u32());
    for (DbqCheckpoint &c : dbqCkpts_) {
        c.ts = r.u64();
        bp::restore(r, c.ckpt);
        c.mispredicted = r.b();
        c.btbMiss = r.b();
        bp::restore(r, c.tageInfo);
    }
    critWpStuck_ = r.b();

    checkPresence(r, stallTable_);
    if (stallTable_)
        stallTable_->restore(r);
    raActive_ = r.b();
    raEndCycle_ = r.u64();
    raPc_ = r.u64();
    raTraceValid_ = r.b();
    cdf::restore(r, raTrace_);
    raTraceIdx_ = r.u32();
    raBbRecs_.resize(r.u32());
    for (isa::ExecRecord &rec : raBbRecs_)
        isa::restore(r, rec);
    raTaint_ = std::bitset<kNumArchRegs>(r.u64());
    bp::restore(r, raBpCkpt_);
    raChainLoads_ = r.u64();
    raEpisodeLoads_ = r.u32();
    lastRetiredLoadAddr_.restore(
        r, [](SnapReader &sr) { return Addr{sr.u64()}; });
    stallStartCycle_ = r.u64();
    stallCounting_ = r.b();

    squashOldestCkptValid_ = r.b();
    squashOldestCkptTs_ = r.u64();
    bp::restore(r, squashOldestCkpt_);
    pendingMemViolation_ = decInst(r.u32());
    pendingDepViolationTs_ = r.u64();

    measureStartCycle_ = r.u64();
    measureStartRetired_ = r.u64();
    mlpWhenActive_.restore(r);
    uselessMlpWhenActive_.restore(r);
    fig1CriticalFrac_.restore(r);
    fullWindowStallCycles_ = r.u64();
    cdfModeCycles_ = r.u64();

    // Host-only measurement state: reset rather than restored. The
    // idle-skip rate limiter restarts at "recheck immediately", which
    // is stat-transparent (skip decisions never touch the registry).
    profile_ = StageProfile{};
    skippedCycles_ = 0;
    skipEvents_ = 0;
    skipRecheckAt_ = 0;

    SIM_AUDIT_ONLY(auditRenameMaps();)
}

void
Core::auditRenameMaps() const
{
    std::vector<std::uint8_t> seen(prf_.size(), 0);
    for (RegId a = 0; a < kNumArchRegs; ++a) {
        const RegId p = rat_.lookup(a);
        SIM_ASSERT(p < prf_.size(),
                   "regular RAT maps arch reg ", a,
                   " to out-of-range phys reg ", p);
        SIM_ASSERT(!seen[p],
                   "regular RAT maps two arch regs to phys reg ", p);
        seen[p] = 1;
    }
    for (RegId p : prf_.freeRegs()) {
        SIM_ASSERT(p < prf_.size(),
                   "free list holds out-of-range phys reg ", p);
        SIM_ASSERT(!seen[p],
                   "phys reg ", p,
                   " is both RAT-mapped and on the free list");
    }
    if (critRatCopied_) {
        std::vector<std::uint8_t> critSeen(prf_.size(), 0);
        for (RegId a = 0; a < kNumArchRegs; ++a) {
            const RegId p = critRat_.lookup(a);
            SIM_ASSERT(p < prf_.size(),
                       "critical RAT maps arch reg ", a,
                       " to out-of-range phys reg ", p);
            SIM_ASSERT(!critSeen[p],
                       "critical RAT maps two arch regs to phys reg ",
                       p);
            critSeen[p] = 1;
        }
    }
}

} // namespace cdfsim::ooo
