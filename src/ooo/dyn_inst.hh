/**
 * @file
 * The in-flight dynamic instruction record shared by every pipeline
 * stage of the OoO core.
 */

#ifndef CDFSIM_OOO_DYN_INST_HH
#define CDFSIM_OOO_DYN_INST_HH

#include <cstdint>

#include "bp/predictor.hh"
#include "common/serialize.hh"
#include "common/types.hh"
#include "isa/uop.hh"

namespace cdfsim::ooo
{

/** Null handle in the core's in-flight instruction pool. */
inline constexpr std::uint32_t kNoInst = 0xFFFF'FFFFu;

/** Progress of an instruction through the backend. */
enum class InstState : std::uint8_t
{
    Fetched,
    Renamed,     //!< in ROB/RS (and LSQ if memory)
    Issued,      //!< sent to an execution pipe
    Completed,   //!< result produced; waiting to retire
};

/** One in-flight dynamic instruction. */
struct DynInst
{
    // --- Identity ---
    SeqNum fetchSeq = 0;     //!< unique, monotonic in fetch order
    SeqNum ts = 0;           //!< program-order timestamp (oracle index)
    Addr pc = 0;
    isa::Uop uop;
    bool onPath = true;      //!< false for wrong-path instructions

    // --- CDF attributes ---
    bool critical = false;     //!< marked critical by trace construction
    bool cdfFetched = false;   //!< fetched while CDF mode was active
    bool criticalStream = false; //!< travelled via the critical pipeline

    // --- Functional outcome (bound at fetch) ---
    Addr memAddr = 0;          //!< effective address (memory ops)
    bool taken = false;        //!< actual branch direction
    Addr actualTarget = 0;     //!< actual next PC
    bool predTaken = false;
    Addr predTarget = 0;
    bool mispredicted = false; //!< prediction differed from outcome
    bool btbMissBubble = false;
    bp::TagePredictionInfo tageInfo; //!< for resolution-time training

    // --- Rename state ---
    RegId physDst = kInvalidReg;
    RegId oldPhysDst = kInvalidReg;      //!< regular RAT prior mapping
    RegId oldPhysDstCrit = kInvalidReg;  //!< critical RAT prior mapping
    RegId physSrc1 = kInvalidReg;
    RegId physSrc2 = kInvalidReg;
    bool renamedRegular = false;   //!< updated the regular RAT
    bool renamedCritical = false;  //!< updated the critical RAT
    bool hasPoisonSnapshot = false;
    std::uint64_t poisonSnapshot = 0; //!< poison bits pre-this-rename

    // --- Execution state ---
    InstState state = InstState::Fetched;
    Cycle fetchCycle = 0;
    Cycle renameCycle = 0;
    Cycle readyAtRename = 0;   //!< earliest cycle rename may process it
    Cycle completionCycle = kNeverCycle;
    /** Earliest cycle the RS scheduler must re-examine this entry:
     *  0 = examine now, kNeverCycle = parked until a register
     *  wakeup clears it. Pure scheduling cache, never architectural. */
    Cycle rsNextTry = 0;
    bool llcMiss = false;      //!< this load went to DRAM
    bool l1Miss = false;
    SeqNum forwardSrcTs = 0;   //!< ts of SQ entry forwarded from (0: mem)
    bool addrKnown = false;    //!< agen done (memory disambiguation)

    // --- Recovery state ---
    bool hasBpCheckpoint = false;
    bp::BpCheckpoint bpCheckpoint;
    /** Transient mark set while a squash collects its victims. */
    bool doomed = false;

    /** Handle of this instruction in the core's slab pool, plus the
     *  intrusive links of the master in-flight list (fetch order). */
    std::uint32_t poolIdx = kNoInst;
    std::uint32_t prevIdx = kNoInst;
    std::uint32_t nextIdx = kNoInst;

    bool isLoad() const { return uop.isLoad(); }
    bool isStore() const { return uop.isStore(); }
    bool isBranch() const { return uop.isBranch(); }
    bool completed() const { return state == InstState::Completed; }

    /** 8-byte-aligned word address for disambiguation. */
    Addr memWord() const { return memAddr >> 3; }

    /** Snapshot every field verbatim (field order above), so a
     *  restored record re-snapshots byte-identically. */
    void
    save(SnapWriter &w) const
    {
        w.u64(fetchSeq);
        w.u64(ts);
        w.u64(pc);
        isa::save(w, uop);
        w.b(onPath);
        w.b(critical);
        w.b(cdfFetched);
        w.b(criticalStream);
        w.u64(memAddr);
        w.b(taken);
        w.u64(actualTarget);
        w.b(predTaken);
        w.u64(predTarget);
        w.b(mispredicted);
        w.b(btbMissBubble);
        bp::save(w, tageInfo);
        w.u16(physDst);
        w.u16(oldPhysDst);
        w.u16(oldPhysDstCrit);
        w.u16(physSrc1);
        w.u16(physSrc2);
        w.b(renamedRegular);
        w.b(renamedCritical);
        w.b(hasPoisonSnapshot);
        w.u64(poisonSnapshot);
        w.u8(static_cast<std::uint8_t>(state));
        w.u64(fetchCycle);
        w.u64(renameCycle);
        w.u64(readyAtRename);
        w.u64(completionCycle);
        w.u64(rsNextTry);
        w.b(llcMiss);
        w.b(l1Miss);
        w.u64(forwardSrcTs);
        w.b(addrKnown);
        w.b(hasBpCheckpoint);
        bp::save(w, bpCheckpoint);
        w.b(doomed);
        w.u32(poolIdx);
        w.u32(prevIdx);
        w.u32(nextIdx);
    }

    void
    restore(SnapReader &r)
    {
        fetchSeq = r.u64();
        ts = r.u64();
        pc = r.u64();
        isa::restore(r, uop);
        onPath = r.b();
        critical = r.b();
        cdfFetched = r.b();
        criticalStream = r.b();
        memAddr = r.u64();
        taken = r.b();
        actualTarget = r.u64();
        predTaken = r.b();
        predTarget = r.u64();
        mispredicted = r.b();
        btbMissBubble = r.b();
        bp::restore(r, tageInfo);
        physDst = r.u16();
        oldPhysDst = r.u16();
        oldPhysDstCrit = r.u16();
        physSrc1 = r.u16();
        physSrc2 = r.u16();
        renamedRegular = r.b();
        renamedCritical = r.b();
        hasPoisonSnapshot = r.b();
        poisonSnapshot = r.u64();
        state = static_cast<InstState>(r.u8());
        fetchCycle = r.u64();
        renameCycle = r.u64();
        readyAtRename = r.u64();
        completionCycle = r.u64();
        rsNextTry = r.u64();
        llcMiss = r.b();
        l1Miss = r.b();
        forwardSrcTs = r.u64();
        addrKnown = r.b();
        hasBpCheckpoint = r.b();
        bp::restore(r, bpCheckpoint);
        doomed = r.b();
        poolIdx = r.u32();
        prevIdx = r.u32();
        nextIdx = r.u32();
    }

    SIM_SNAPSHOT_FIELDS(41);
};

} // namespace cdfsim::ooo

#endif // CDFSIM_OOO_DYN_INST_HH
