/**
 * @file
 * Partitioned load and store queues with timestamp-based memory
 * disambiguation (paper Section 3.5, "Memory Disambiguation").
 *
 * Entries within each section are in program order; disambiguation
 * searches both sections and compares timestamps, exactly the
 * "two sets of (smaller) ordered queues" the paper describes.
 */

#ifndef CDFSIM_OOO_LSQ_HH
#define CDFSIM_OOO_LSQ_HH

#include <deque>

#include "common/audit.hh"
#include "common/logging.hh"
#include "common/serialize.hh"
#include "ooo/dyn_inst.hh"

namespace cdfsim::ooo
{

/** One partitioned queue (used for both the LQ and the SQ). */
class MemQueue
{
  public:
    explicit MemQueue(unsigned size) : size_(size), critCap_(0) {}

    unsigned size() const { return size_; }
    unsigned criticalCap() const { return critCap_; }

    void
    setCriticalCap(unsigned cap)
    {
        SIM_ASSERT(cap <= size_, "critical cap exceeds queue");
        critCap_ = cap;
    }

    bool
    canInsert(bool critical) const
    {
        if (critical)
            return crit_.size() < critCap_;
        return nonCrit_.size() < size_ - critCap_;
    }

    void
    insert(DynInst *inst, bool critical)
    {
        SIM_ASSERT(canInsert(critical), "LSQ section overflow");
        auto &q = critical ? crit_ : nonCrit_;
        SIM_ASSERT(q.empty() || q.back()->ts < inst->ts,
                   "LSQ section out of program order");
        q.push_back(inst);
    }

    /** Remove a specific retiring instruction (it is a head). */
    void
    retire(DynInst *inst)
    {
        if (!crit_.empty() && crit_.front() == inst) {
            crit_.pop_front();
            return;
        }
        SIM_ASSERT(!nonCrit_.empty() && nonCrit_.front() == inst,
                   "retiring instruction is not an LSQ head");
        nonCrit_.pop_front();
    }

    unsigned
    flushYounger(SeqNum flushTs)
    {
        unsigned dropped = 0;
        for (auto *q : {&crit_, &nonCrit_}) {
            while (!q->empty() && q->back()->ts > flushTs) {
                q->pop_back();
                ++dropped;
            }
        }
        return dropped;
    }

    std::size_t occupancy() const { return crit_.size() + nonCrit_.size(); }
    std::size_t criticalOccupancy() const { return crit_.size(); }
    std::size_t nonCriticalOccupancy() const { return nonCrit_.size(); }

    /** Visit every entry (both sections), in no particular order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (DynInst *i : crit_)
            fn(i);
        for (DynInst *i : nonCrit_)
            fn(i);
    }

    void
    clear()
    {
        crit_.clear();
        nonCrit_.clear();
    }

    /**
     * Age-order walk (see Rob::auditAgeOrder): both sections must
     * hold non-null entries in strictly increasing timestamp order
     * under a cap that fits the capacity. @p name labels the queue
     * ("LQ"/"SQ") in the panic message. Always compiled; sampled
     * from the retire stage in Audit builds.
     */
    void
    auditAgeOrder(const char *name) const
    {
        SIM_ASSERT(critCap_ <= size_, name,
                   " critical cap exceeds capacity");
        for (const auto *q : {&crit_, &nonCrit_}) {
            const DynInst *prev = nullptr;
            for (const DynInst *inst : *q) {
                SIM_ASSERT(inst != nullptr, "null ", name, " entry");
                SIM_ASSERT(!prev || prev->ts < inst->ts, name,
                           " section out of age order");
                prev = inst;
            }
        }
    }

    /** Snapshot both sections as pool handles via @p enc
     *  (DynInst* -> u32); forEach() cannot reconstruct the section
     *  split, hence the member codec. */
    template <typename EncFn>
    void
    save(SnapWriter &w, EncFn &&enc) const
    {
        w.u32(critCap_);
        w.u32(static_cast<std::uint32_t>(crit_.size()));
        for (const DynInst *inst : crit_)
            w.u32(enc(inst));
        w.u32(static_cast<std::uint32_t>(nonCrit_.size()));
        for (const DynInst *inst : nonCrit_)
            w.u32(enc(inst));
    }

    template <typename DecFn>
    void
    restore(SnapReader &r, DecFn &&dec)
    {
        critCap_ = r.u32();
        crit_.clear();
        nonCrit_.clear();
        for (std::uint32_t n = r.u32(); n-- > 0;)
            crit_.push_back(dec(r.u32()));
        for (std::uint32_t n = r.u32(); n-- > 0;)
            nonCrit_.push_back(dec(r.u32()));
    }

  private:
    friend struct cdfsim::AuditPeer; //!< test-only corruption access

    SIM_SNAPSHOT_FIELDS(4);

    unsigned size_;
    unsigned critCap_;
    std::deque<DynInst *> crit_;
    std::deque<DynInst *> nonCrit_;
};

/** Load + store queues with the disambiguation searches. */
class Lsq
{
  public:
    Lsq(unsigned lqSize, unsigned sqSize) : lq_(lqSize), sq_(sqSize) {}

    MemQueue &lq() { return lq_; }
    MemQueue &sq() { return sq_; }
    const MemQueue &lq() const { return lq_; }
    const MemQueue &sq() const { return sq_; }

    /**
     * Store-to-load forwarding search for @p load (whose address is
     * known): the youngest older store to the same word.
     *
     * @return the store, or nullptr. @p blockedOnUnknownAddr is set
     * when an older store with an unresolved address exists — the
     * caller decides whether to speculate past it.
     */
    DynInst *
    forwardingStore(const DynInst *load, bool *olderUnknownAddr) const
    {
        DynInst *best = nullptr;
        bool unknown = false;
        sq_.forEach([&](DynInst *st) {
            if (st->ts >= load->ts)
                return;
            if (!st->addrKnown) {
                unknown = true;
                return;
            }
            if (st->memWord() != load->memWord())
                return;
            if (!best || st->ts > best->ts)
                best = st;
        });
        if (olderUnknownAddr)
            *olderUnknownAddr = unknown;
        return best;
    }

    /**
     * Ordering-violation search when @p store resolves its address:
     * the OLDEST younger load on the same word that already executed
     * and did not forward from this store or a younger one.
     */
    DynInst *
    violatingLoad(const DynInst *store) const
    {
        DynInst *worst = nullptr;
        lq_.forEach([&](DynInst *ld) {
            if (ld->ts <= store->ts || !ld->addrKnown)
                return;
            if (ld->state != InstState::Issued &&
                ld->state != InstState::Completed)
                return;
            if (ld->memWord() != store->memWord())
                return;
            if (ld->forwardSrcTs >= store->ts)
                return; // got its data from this store or younger
            if (!worst || ld->ts < worst->ts)
                worst = ld;
        });
        return worst;
    }

    /**
     * Age-order + kind walk: both queues pass their section walks,
     * every LQ entry is a load, and every SQ entry is a store.
     * Always compiled; sampled from the retire stage in Audit
     * builds (Core::auditLsqRobAge adds the cross-checks against
     * the ROB and the instruction pool).
     */
    void
    auditAgeOrder() const
    {
        lq_.auditAgeOrder("LQ");
        sq_.auditAgeOrder("SQ");
        lq_.forEach([](DynInst *inst) {
            SIM_ASSERT(inst->isLoad(), "non-load in the LQ");
        });
        sq_.forEach([](DynInst *inst) {
            SIM_ASSERT(inst->isStore(), "non-store in the SQ");
        });
    }

    /** Snapshot both queues (delegates the pointer codec). */
    template <typename EncFn>
    void
    save(SnapWriter &w, EncFn &&enc) const
    {
        lq_.save(w, enc);
        sq_.save(w, enc);
    }

    template <typename DecFn>
    void
    restore(SnapReader &r, DecFn &&dec)
    {
        lq_.restore(r, dec);
        sq_.restore(r, dec);
    }

  private:
    SIM_SNAPSHOT_FIELDS(2);

    MemQueue lq_;
    MemQueue sq_;
};

} // namespace cdfsim::ooo

#endif // CDFSIM_OOO_LSQ_HH
