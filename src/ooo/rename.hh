/**
 * @file
 * Register Alias Table, physical register file bookkeeping and the
 * free list.
 *
 * The CDF implementation keeps two RenameMaps: the regular RAT and
 * the critical RAT (a copy taken when CDF mode begins, Section 3.4).
 * Both draw physical registers from one shared FreeList /
 * scoreboard. The regular RAT additionally carries the per-register
 * poison bits used to detect critical-stream dependence violations
 * (Section 3.6, Fig. 11).
 */

#ifndef CDFSIM_OOO_RENAME_HH
#define CDFSIM_OOO_RENAME_HH

#include <array>
#include <bitset>
#include <vector>

#include "common/audit.hh"
#include "common/logging.hh"
#include "common/serialize.hh"
#include "common/types.hh"
#include "isa/uop.hh"

namespace cdfsim::ooo
{

/** Shared physical register state: free list plus ready times. */
class PhysRegFile
{
  public:
    explicit PhysRegFile(unsigned numPhysRegs)
        : readyAt_(numPhysRegs, 0)
    {
        SIM_ASSERT(numPhysRegs > kNumArchRegs + 8,
                   "too few physical registers");
        // Regs [0, kNumArchRegs) boot as the committed arch state;
        // the rest are free.
        freeList_.reserve(numPhysRegs);
        for (RegId p = numPhysRegs; p-- > kNumArchRegs;)
            freeList_.push_back(p);
    }

    bool hasFree() const { return !freeList_.empty(); }
    std::size_t numFree() const { return freeList_.size(); }
    std::size_t size() const { return readyAt_.size(); }

    RegId
    allocate()
    {
        SIM_ASSERT(!freeList_.empty(), "phys reg underflow");
        RegId p = freeList_.back();
        freeList_.pop_back();
        readyAt_[p] = kNeverCycle;
        return p;
    }

    void
    release(RegId p)
    {
        SIM_ASSERT(p < readyAt_.size(), "bad phys reg");
        freeList_.push_back(p);
    }

    /** Value of @p p becomes available at @p cycle. */
    void
    setReadyAt(RegId p, Cycle cycle)
    {
        SIM_ASSERT(p < readyAt_.size(), "bad phys reg");
        readyAt_[p] = cycle;
    }

    Cycle
    readyAt(RegId p) const
    {
        SIM_ASSERT(p < readyAt_.size(), "bad phys reg");
        return readyAt_[p];
    }

    bool
    isReady(RegId p, Cycle now) const
    {
        return p == kInvalidReg || readyAt_[p] <= now;
    }

    /** Free-list view for the rename-map audit walk. */
    const std::vector<RegId> &freeRegs() const { return freeList_; }

    /** Snapshot ready times and the free list verbatim (allocation
     *  order is architectural: it decides future mappings). */
    void
    save(SnapWriter &w) const
    {
        w.u32(static_cast<std::uint32_t>(readyAt_.size()));
        for (Cycle c : readyAt_)
            w.u64(c);
        w.u32(static_cast<std::uint32_t>(freeList_.size()));
        for (RegId p : freeList_)
            w.u16(p);
    }

    void
    restore(SnapReader &r)
    {
        const std::uint32_t n = r.u32();
        SIM_ASSERT(n == readyAt_.size(),
                   "snapshot phys reg count differs from this core's");
        for (Cycle &c : readyAt_)
            c = r.u64();
        freeList_.resize(r.u32());
        for (RegId &p : freeList_)
            p = r.u16();
    }

  private:
    SIM_SNAPSHOT_FIELDS(2);

    friend struct cdfsim::AuditPeer;

    std::vector<Cycle> readyAt_;
    std::vector<RegId> freeList_;
};

/** The outcome of renaming one uop. */
struct RenameResult
{
    RegId physSrc1 = kInvalidReg;
    RegId physSrc2 = kInvalidReg;
    RegId physDst = kInvalidReg;
    RegId oldPhysDst = kInvalidReg;
};

/** One Register Alias Table. */
class RenameMap
{
  public:
    RenameMap()
    {
        for (RegId a = 0; a < kNumArchRegs; ++a)
            table_[a] = a;
    }

    /** Rename @p uop, allocating the destination from @p prf. */
    RenameResult
    rename(const isa::Uop &uop, PhysRegFile &prf)
    {
        RenameResult r;
        if (uop.src1 != kInvalidReg)
            r.physSrc1 = table_[uop.src1];
        if (uop.src2 != kInvalidReg)
            r.physSrc2 = table_[uop.src2];
        if (uop.writesReg()) {
            r.oldPhysDst = table_[uop.dst];
            r.physDst = prf.allocate();
            table_[uop.dst] = r.physDst;
        }
        return r;
    }

    /**
     * Replay a rename performed elsewhere (the CMQ path): update the
     * mapping to an already-allocated physical register.
     */
    RegId
    replay(RegId archDst, RegId physDst)
    {
        SIM_ASSERT(archDst < kNumArchRegs, "bad arch reg");
        RegId old = table_[archDst];
        table_[archDst] = physDst;
        return old;
    }

    /** Undo one rename during squash walk (youngest first). */
    void
    undo(RegId archDst, RegId oldPhysDst)
    {
        SIM_ASSERT(archDst < kNumArchRegs, "bad arch reg");
        table_[archDst] = oldPhysDst;
    }

    RegId
    lookup(RegId archReg) const
    {
        SIM_ASSERT(archReg < kNumArchRegs, "bad arch reg");
        return table_[archReg];
    }

    /** Copy mappings (critical RAT creation at CDF entry). */
    void copyFrom(const RenameMap &other) { table_ = other.table_; }

    // --- Poison bits (regular RAT only; Section 3.6) ---

    void setPoison(RegId archReg) { poison_[archReg] = true; }
    void clearPoison(RegId archReg) { poison_[archReg] = false; }
    bool poisoned(RegId archReg) const { return poison_[archReg]; }
    void clearAllPoison() { poison_.reset(); }

    /** Snapshot/restore the poison bits (flush recovery). */
    std::uint64_t
    poisonBits() const
    {
        static_assert(kNumArchRegs <= 64, "poison snapshot width");
        return poison_.to_ullong();
    }

    void setPoisonBits(std::uint64_t bits) { poison_ = bits; }

    /** True when any source of @p uop reads a poisoned register. */
    bool
    readsPoisoned(const isa::Uop &uop) const
    {
        return (uop.src1 != kInvalidReg && poison_[uop.src1]) ||
               (uop.src2 != kInvalidReg && poison_[uop.src2]);
    }

    /** Snapshot the mapping table and the poison bits. */
    void
    save(SnapWriter &w) const
    {
        for (RegId p : table_)
            w.u16(p);
        w.u64(poisonBits());
    }

    void
    restore(SnapReader &r)
    {
        for (RegId &p : table_)
            p = r.u16();
        setPoisonBits(r.u64());
    }

  private:
    SIM_SNAPSHOT_FIELDS(2);

    friend struct cdfsim::AuditPeer;

    std::array<RegId, kNumArchRegs> table_;
    std::bitset<kNumArchRegs> poison_;
};

} // namespace cdfsim::ooo

#endif // CDFSIM_OOO_RENAME_HH
