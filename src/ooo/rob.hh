/**
 * @file
 * Partitioned reorder buffer (paper Section 3.5).
 *
 * Two program-ordered sections — critical and non-critical — share
 * one capacity budget. In baseline mode everything lives in the
 * non-critical section. Retirement compares the timestamps of the
 * two section heads and retires the older, which is exactly the
 * paper's dual-retire-pointer scheme. Flushes truncate each section
 * from the back (entries are timestamp-ordered within a section).
 */

#ifndef CDFSIM_OOO_ROB_HH
#define CDFSIM_OOO_ROB_HH

#include <deque>

#include "common/audit.hh"
#include "common/logging.hh"
#include "common/serialize.hh"
#include "ooo/dyn_inst.hh"

namespace cdfsim::ooo
{

/** The reorder buffer. */
class Rob
{
  public:
    explicit Rob(unsigned size) : size_(size), critCap_(0) {}

    unsigned size() const { return size_; }

    /** Capacity currently granted to the critical section. */
    unsigned criticalCap() const { return critCap_; }

    /** Update partition capacities (from the partition controller). */
    void
    setCriticalCap(unsigned cap)
    {
        SIM_ASSERT(cap <= size_, "critical cap exceeds ROB");
        critCap_ = cap;
    }

    bool
    canInsert(bool critical) const
    {
        if (critical)
            return crit_.size() < critCap_;
        return nonCrit_.size() < size_ - critCap_;
    }

    void
    insert(DynInst *inst, bool critical)
    {
        SIM_ASSERT(canInsert(critical), "ROB section overflow");
        auto &q = critical ? crit_ : nonCrit_;
        SIM_ASSERT(q.empty() || q.back()->ts < inst->ts,
                   "ROB section out of program order");
        q.push_back(inst);
    }

    bool empty() const { return crit_.empty() && nonCrit_.empty(); }

    std::size_t
    occupancy() const
    {
        return crit_.size() + nonCrit_.size();
    }

    std::size_t criticalOccupancy() const { return crit_.size(); }
    std::size_t nonCriticalOccupancy() const { return nonCrit_.size(); }

    /** The globally oldest instruction (minimum timestamp head). */
    DynInst *
    head() const
    {
        if (crit_.empty())
            return nonCrit_.empty() ? nullptr : nonCrit_.front();
        if (nonCrit_.empty())
            return crit_.front();
        return crit_.front()->ts < nonCrit_.front()->ts
                   ? crit_.front()
                   : nonCrit_.front();
    }

    /** Remove the head returned by head(). */
    void
    popHead()
    {
        DynInst *h = head();
        SIM_ASSERT(h, "popHead on empty ROB");
        if (!crit_.empty() && crit_.front() == h)
            crit_.pop_front();
        else
            nonCrit_.pop_front();
    }

    /**
     * Drop every instruction with ts > @p flushTs. Returns how many
     * were dropped (callers walk the master list for cleanup).
     */
    unsigned
    flushYounger(SeqNum flushTs)
    {
        unsigned dropped = 0;
        for (auto *q : {&crit_, &nonCrit_}) {
            while (!q->empty() && q->back()->ts > flushTs) {
                q->pop_back();
                ++dropped;
            }
        }
        return dropped;
    }

    /** Iteration support for stall analysis (Fig. 1). */
    const std::deque<DynInst *> &criticalSection() const { return crit_; }

    const std::deque<DynInst *> &
    nonCriticalSection() const
    {
        return nonCrit_;
    }

    void
    clear()
    {
        crit_.clear();
        nonCrit_.clear();
    }

    /**
     * Age-order walk: both sections must hold non-null entries in
     * strictly increasing timestamp order, under a critical cap that
     * fits the capacity. insert() asserts each of these pairwise at
     * insert time; the walk catches later corruption of resident
     * state. Always compiled (tests call it in any build type);
     * sampled from the retire stage in Audit builds.
     */
    void
    auditAgeOrder() const
    {
        SIM_ASSERT(critCap_ <= size_,
                   "ROB critical cap exceeds capacity");
        for (const auto *q : {&crit_, &nonCrit_}) {
            const DynInst *prev = nullptr;
            for (const DynInst *inst : *q) {
                SIM_ASSERT(inst != nullptr, "null ROB entry");
                SIM_ASSERT(!prev || prev->ts < inst->ts,
                           "ROB section out of age order");
                prev = inst;
            }
        }
    }

    /** Snapshot both sections as pool handles via @p enc
     *  (DynInst* -> u32); capacity is config-fixed and excluded. */
    template <typename EncFn>
    void
    save(SnapWriter &w, EncFn &&enc) const
    {
        w.u32(critCap_);
        w.u32(static_cast<std::uint32_t>(crit_.size()));
        for (const DynInst *inst : crit_)
            w.u32(enc(inst));
        w.u32(static_cast<std::uint32_t>(nonCrit_.size()));
        for (const DynInst *inst : nonCrit_)
            w.u32(enc(inst));
    }

    template <typename DecFn>
    void
    restore(SnapReader &r, DecFn &&dec)
    {
        critCap_ = r.u32();
        crit_.clear();
        nonCrit_.clear();
        for (std::uint32_t n = r.u32(); n-- > 0;)
            crit_.push_back(dec(r.u32()));
        for (std::uint32_t n = r.u32(); n-- > 0;)
            nonCrit_.push_back(dec(r.u32()));
    }

  private:
    friend struct cdfsim::AuditPeer; //!< test-only corruption access

    SIM_SNAPSHOT_FIELDS(4);

    unsigned size_;
    unsigned critCap_;
    std::deque<DynInst *> crit_;
    std::deque<DynInst *> nonCrit_;
};

} // namespace cdfsim::ooo

#endif // CDFSIM_OOO_ROB_HH
