/**
 * @file
 * Reservation stations with oldest-first, critical-preferred
 * selection (paper Section 3.5, "Issue and Dispatch").
 */

#ifndef CDFSIM_OOO_RS_HH
#define CDFSIM_OOO_RS_HH

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "ooo/dyn_inst.hh"
#include "ooo/rename.hh"

namespace cdfsim::ooo
{

/** The reservation station pool. */
class ReservationStations
{
  public:
    explicit ReservationStations(unsigned size)
        : size_(size), critCap_(0)
    {
        entries_.reserve(size);
    }

    unsigned size() const { return size_; }

    /** Cap on critical uops resident in the RS (scales with ROB). */
    void setCriticalCap(unsigned cap) { critCap_ = cap; }

    bool
    canInsert(bool critical) const
    {
        if (entries_.size() >= size_)
            return false;
        if (critical && critCount_ >= critCap_)
            return false;
        return true;
    }

    void
    insert(DynInst *inst)
    {
        SIM_ASSERT(canInsert(inst->critical), "RS overflow");
        entries_.push_back(inst);
        if (inst->critical)
            ++critCount_;
    }

    /**
     * Select up to @p maxPick ready instructions: critical uops
     * first, then oldest timestamp (Section 3.5). Selected entries
     * are removed. @p ready decides readiness; @p accept may refuse
     * an instruction (e.g. a load port limit), leaving it resident.
     */
    template <typename ReadyFn, typename AcceptFn>
    unsigned
    selectAndIssue(unsigned maxPick, ReadyFn &&ready, AcceptFn &&accept)
    {
        if (entries_.empty() || maxPick == 0)
            return 0;

        // Gather ready candidates and order: critical first, oldest
        // first within a class.
        scratch_.clear();
        for (DynInst *inst : entries_) {
            if (ready(inst))
                scratch_.push_back(inst);
        }
        std::sort(scratch_.begin(), scratch_.end(),
                  [](const DynInst *a, const DynInst *b) {
                      if (a->critical != b->critical)
                          return a->critical;
                      return a->ts < b->ts;
                  });

        unsigned issued = 0;
        for (DynInst *inst : scratch_) {
            if (issued >= maxPick)
                break;
            if (!accept(inst))
                continue;
            remove(inst);
            ++issued;
        }
        return issued;
    }

    void
    remove(DynInst *inst)
    {
        auto it = std::find(entries_.begin(), entries_.end(), inst);
        SIM_ASSERT(it != entries_.end(), "RS remove: not resident");
        if (inst->critical)
            --critCount_;
        entries_.erase(it);
    }

    unsigned
    flushYounger(SeqNum flushTs)
    {
        unsigned dropped = 0;
        std::erase_if(entries_, [&](DynInst *inst) {
            if (inst->ts > flushTs) {
                if (inst->critical)
                    --critCount_;
                ++dropped;
                return true;
            }
            return false;
        });
        return dropped;
    }

    std::size_t occupancy() const { return entries_.size(); }
    std::size_t criticalOccupancy() const { return critCount_; }
    bool full() const { return entries_.size() >= size_; }

    void
    clear()
    {
        entries_.clear();
        critCount_ = 0;
    }

  private:
    unsigned size_;
    unsigned critCap_;
    unsigned critCount_ = 0;
    std::vector<DynInst *> entries_;
    std::vector<DynInst *> scratch_;
};

} // namespace cdfsim::ooo

#endif // CDFSIM_OOO_RS_HH
