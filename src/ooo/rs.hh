/**
 * @file
 * Reservation stations with oldest-first, critical-preferred
 * selection (paper Section 3.5, "Issue and Dispatch").
 */

#ifndef CDFSIM_OOO_RS_HH
#define CDFSIM_OOO_RS_HH

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "common/serialize.hh"
#include "ooo/dyn_inst.hh"
#include "ooo/rename.hh"

namespace cdfsim::ooo
{

/**
 * The reservation station pool.
 *
 * Entries are held in two per-class vectors (critical / regular)
 * kept sorted by timestamp, so the (critical-first, oldest-first)
 * selection order of Section 3.5 falls out of plain iteration with
 * no per-cycle sort. Insertions are append-only in the common case:
 * within a class, dispatch hands instructions over in ts order and
 * flushes only ever remove a youngest suffix, so the back of each
 * vector stays the youngest entry (a sorted insert covers the
 * remaining cases).
 */
class ReservationStations
{
  public:
    explicit ReservationStations(unsigned size)
        : size_(size), critCap_(0)
    {
        crit_.reserve(size);
        reg_.reserve(size);
    }

    unsigned size() const { return size_; }

    /** Cap on critical uops resident in the RS (scales with ROB). */
    void setCriticalCap(unsigned cap) { critCap_ = cap; }

    bool
    canInsert(bool critical) const
    {
        if (crit_.size() + reg_.size() >= size_)
            return false;
        if (critical && crit_.size() >= critCap_)
            return false;
        return true;
    }

    void
    insert(DynInst *inst)
    {
        SIM_ASSERT(canInsert(inst->critical), "RS overflow");
        auto &v = inst->critical ? crit_ : reg_;
        if (!v.empty() && v.back()->ts > inst->ts) {
            v.insert(std::upper_bound(
                         v.begin(), v.end(), inst,
                         [](const DynInst *a, const DynInst *b) {
                             return a->ts < b->ts;
                         }),
                     inst);
        } else {
            v.push_back(inst);
        }
    }

    /**
     * Select up to @p maxPick ready instructions: critical uops
     * first, then oldest timestamp (Section 3.5). Selected entries
     * are removed. @p ready decides readiness; @p accept may refuse
     * an instruction (e.g. a load port limit), leaving it resident.
     */
    template <typename ReadyFn, typename AcceptFn>
    unsigned
    selectAndIssue(unsigned maxPick, ReadyFn &&ready, AcceptFn &&accept)
    {
        scratch_.clear();
        unsigned issued = 0;
        for (auto *v : {&crit_, &reg_}) {
            for (DynInst *inst : *v) {
                if (issued >= maxPick)
                    break;
                if (!ready(inst) || !accept(inst))
                    continue;
                scratch_.push_back(inst);
                ++issued;
            }
        }
        for (DynInst *inst : scratch_)
            remove(inst);
        return issued;
    }

    void
    remove(DynInst *inst)
    {
        auto &v = inst->critical ? crit_ : reg_;
        auto it = std::find(v.begin(), v.end(), inst);
        SIM_ASSERT(it != v.end(), "RS remove: not resident");
        v.erase(it);
    }

    unsigned
    flushYounger(SeqNum flushTs)
    {
        unsigned dropped = 0;
        for (auto *v : {&crit_, &reg_}) {
            while (!v->empty() && v->back()->ts > flushTs) {
                v->pop_back();
                ++dropped;
            }
        }
        return dropped;
    }

    /**
     * Lower bound on the next cycle any resident entry could issue,
     * from the rsNextTry wakeup cache. Entries due at or before
     * @p now set @p anyDue (the scheduler must run — their cached
     * retry cycle is not a future bound); parked entries
     * (kNeverCycle) wake only via the completion broadcast, which
     * cannot run while the core is quiescent, so they do not bound
     * the skip. Returns kNeverCycle when no entry has a finite
     * future retry cycle.
     */
    Cycle
    earliestRetry(Cycle now, bool &anyDue) const
    {
        Cycle earliest = kNeverCycle;
        for (const auto *v : {&crit_, &reg_}) {
            for (const DynInst *inst : *v) {
                if (inst->rsNextTry <= now)
                    anyDue = true;
                else if (inst->rsNextTry < earliest)
                    earliest = inst->rsNextTry;
            }
        }
        return earliest;
    }

    /** Visit every resident entry (audit walks). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto *v : {&crit_, &reg_})
            for (const DynInst *inst : *v)
                fn(inst);
    }

    std::size_t occupancy() const { return crit_.size() + reg_.size(); }
    std::size_t criticalOccupancy() const { return crit_.size(); }
    bool full() const { return occupancy() >= size_; }

    void
    clear()
    {
        crit_.clear();
        reg_.clear();
    }

    /** Snapshot both classes as pool handles via @p enc
     *  (DynInst* -> u32). The issue scratch vector is transient
     *  (cleared at the top of every selectAndIssue) and excluded. */
    template <typename EncFn>
    void
    save(SnapWriter &w, EncFn &&enc) const
    {
        w.u32(critCap_);
        w.u32(static_cast<std::uint32_t>(crit_.size()));
        for (const DynInst *inst : crit_)
            w.u32(enc(inst));
        w.u32(static_cast<std::uint32_t>(reg_.size()));
        for (const DynInst *inst : reg_)
            w.u32(enc(inst));
    }

    template <typename DecFn>
    void
    restore(SnapReader &r, DecFn &&dec)
    {
        critCap_ = r.u32();
        crit_.clear();
        reg_.clear();
        for (std::uint32_t n = r.u32(); n-- > 0;)
            crit_.push_back(dec(r.u32()));
        for (std::uint32_t n = r.u32(); n-- > 0;)
            reg_.push_back(dec(r.u32()));
    }

  private:
    SIM_SNAPSHOT_FIELDS(5);

    unsigned size_;
    unsigned critCap_;
    std::vector<DynInst *> crit_; //!< ts-sorted critical entries
    std::vector<DynInst *> reg_;  //!< ts-sorted regular entries
    std::vector<DynInst *> scratch_;
};

} // namespace cdfsim::ooo

#endif // CDFSIM_OOO_RS_HH
