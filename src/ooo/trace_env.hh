/**
 * @file
 * CDFSIM_TRACE_TS debug tracing: one shared, parse-once helper for
 * the per-instruction event trace scattered across the core's
 * translation units. The previous per-TU copies each cached the
 * getenv pointer but re-read the environment inside the init lambda
 * and never checked the sscanf result, so a malformed value (e.g.
 * "123" with no colon) silently traced the half-parsed range.
 */

#ifndef CDFSIM_OOO_TRACE_ENV_HH
#define CDFSIM_OOO_TRACE_ENV_HH

#include <cstdio>
#include <cstdlib>

#include "common/types.hh"

namespace cdfsim::ooo
{

/** Inclusive ts range selected by CDFSIM_TRACE_TS=LO:HI. */
struct TraceTsRange
{
    unsigned long lo = 1;
    unsigned long hi = 0; //!< lo > hi: tracing disabled
};

/**
 * Parse CDFSIM_TRACE_TS exactly once per process. Malformed values
 * disable tracing with a warning instead of tracing a garbage range.
 */
inline const TraceTsRange &
traceTsRange()
{
    static const TraceTsRange range = [] {
        TraceTsRange r;
        const char *env = std::getenv("CDFSIM_TRACE_TS");
        if (!env)
            return r;
        unsigned long lo = 0;
        unsigned long hi = 0;
        if (std::sscanf(env, "%lu:%lu", &lo, &hi) == 2) {
            r.lo = lo;
            r.hi = hi;
        } else {
            std::fprintf(stderr,
                         "warning: malformed CDFSIM_TRACE_TS '%s' "
                         "(want LO:HI); tracing disabled\n",
                         env);
        }
        return r;
    }();
    return range;
}

/** Should events for timestamp @p ts be traced to stderr? */
inline bool
traceTs(SeqNum ts)
{
    const TraceTsRange &r = traceTsRange();
    return ts >= r.lo && ts <= r.hi;
}

} // namespace cdfsim::ooo

#endif // CDFSIM_OOO_TRACE_ENV_HH
