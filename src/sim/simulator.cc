#include "sim/simulator.hh"

#include <cmath>

#include "common/logging.hh"

namespace cdfsim::sim
{

Simulator::Simulator(const ooo::CoreConfig &config,
                     workloads::Workload workload)
    : config_(config), workload_(std::move(workload))
{
    if (workload_.init)
        workload_.init(memory_);
    core_ = std::make_unique<ooo::Core>(config_, workload_.program,
                                        memory_, stats_);
}

Simulator::~Simulator() = default;

RunResult
Simulator::run(const RunSpec &spec)
{
    // Warmup: caches, predictors and (for CDF/PRE) the criticality
    // tables and uop cache train here, mirroring the paper's
    // 200M-instruction warmup at reduced scale.
    if (spec.warmupInstrs > 0)
        core_->run(spec.warmupInstrs, spec.maxCycles);
    core_->resetMeasurement();

    core_->run(core_->retired() + spec.measureInstrs, spec.maxCycles);

    RunResult r;
    r.workload = workload_.name;
    r.mode = config_.mode;
    r.core = core_->result();
    r.energy = energy::Model::evaluate(config_, stats_,
                                       r.core.cycles);
    r.stats = stats_;
    return r;
}

RunResult
runWorkload(const std::string &workloadName, ooo::CoreMode mode,
            const RunSpec &spec, const ooo::CoreConfig &base)
{
    ooo::CoreConfig config = base;
    config.mode = mode;
    Simulator sim(config, workloads::makeWorkload(workloadName));
    return sim.run(spec);
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double logSum = 0.0;
    for (double v : values) {
        SIM_ASSERT(v > 0.0, "geomean needs positive values");
        logSum += std::log(v);
    }
    return std::exp(logSum / static_cast<double>(values.size()));
}

} // namespace cdfsim::sim
