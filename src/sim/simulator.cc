#include "sim/simulator.hh"

#include <cmath>

#include "common/logging.hh"

namespace cdfsim::sim
{

Simulator::Simulator(const ooo::CoreConfig &config,
                     workloads::Workload workload)
    : config_(config), workload_(std::move(workload))
{
    if (workload_.init)
        workload_.init(memory_);
    core_ = std::make_unique<ooo::Core>(config_, workload_.program,
                                        memory_, stats_);
}

Simulator::~Simulator() = default;

namespace
{

/** now + budget, saturating at kNeverCycle. */
Cycle
phaseDeadline(Cycle now, Cycle budget)
{
    return budget >= kNeverCycle - now ? kNeverCycle : now + budget;
}

} // namespace

RunResult
Simulator::run(const RunSpec &spec)
{
    RunResult r;

    // Warmup: caches, predictors and (for CDF/PRE) the criticality
    // tables and uop cache train here, mirroring the paper's
    // 200M-instruction warmup at reduced scale. The cycle budget is
    // relative to the phase start so warmup cycles never eat the
    // measurement budget (and re-running an already-advanced
    // Simulator keeps working).
    if (spec.warmupInstrs > 0) {
        const std::uint64_t target = core_->retired() + spec.warmupInstrs;
        core_->run(target,
                   phaseDeadline(core_->cycle(), spec.maxCycles));
        r.warmupTruncated =
            !core_->halted() && core_->retired() < target;
    }
    core_->resetMeasurement();

    const std::uint64_t target = core_->retired() + spec.measureInstrs;
    core_->run(target, phaseDeadline(core_->cycle(), spec.maxCycles));
    r.halted = core_->halted();
    r.truncated = !r.halted && core_->retired() < target;
    r.workload = workload_.name;
    r.mode = config_.mode;
    r.core = core_->result();
    r.energy = energy::Model::evaluate(config_, stats_,
                                       r.core.cycles);
    r.stats = stats_;
    r.profile = core_->profile();
    r.skippedCycles = core_->skippedCycles();
    r.skipEvents = core_->skipEvents();
    return r;
}

const char *
RunResult::status() const
{
    if (halted)
        return "halted";
    if (warmupTruncated)
        return "warmup_truncated";
    if (truncated)
        return "truncated";
    return "ok";
}

RunResult
runWorkload(const std::string &workloadName, ooo::CoreMode mode,
            const RunSpec &spec, const ooo::CoreConfig &base)
{
    ooo::CoreConfig config = base;
    config.mode = mode;
    Simulator sim(config, workloads::makeWorkload(workloadName));
    return sim.run(spec);
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double logSum = 0.0;
    for (double v : values) {
        SIM_ASSERT(v > 0.0, "geomean needs positive values");
        logSum += std::log(v);
    }
    return std::exp(logSum / static_cast<double>(values.size()));
}

double
geomeanPositive(const std::vector<double> &values,
                std::size_t *excluded)
{
    std::vector<double> kept;
    kept.reserve(values.size());
    for (double v : values) {
        if (v > 0.0)
            kept.push_back(v);
    }
    if (excluded)
        *excluded = values.size() - kept.size();
    return geomean(kept);
}

} // namespace cdfsim::sim
