#include "sim/simulator.hh"

#include <cmath>

#include "common/logging.hh"

namespace cdfsim::sim
{

namespace
{

/** Build the shared pristine image for a workload (init applied). */
std::shared_ptr<const isa::MemoryImage>
makePristine(const workloads::Workload &workload)
{
    auto image = std::make_shared<isa::MemoryImage>();
    if (workload.init)
        workload.init(*image);
    return image;
}

} // namespace

Simulator::Simulator(const ooo::CoreConfig &config,
                     workloads::Workload workload)
    : Simulator(config,
                std::make_shared<const workloads::Workload>(
                    std::move(workload)),
                nullptr)
{
}

Simulator::Simulator(
    const ooo::CoreConfig &config,
    std::shared_ptr<const workloads::Workload> workload,
    std::shared_ptr<const isa::MemoryImage> pristine)
    : config_(config), workload_(std::move(workload)),
      pristine_(pristine ? std::move(pristine)
                         : makePristine(*workload_)),
      memory_(*pristine_) // COW: copies the page table, not pages
{
    core_ = std::make_unique<ooo::Core>(config_, workload_->program,
                                        memory_, stats_);
}

Simulator::~Simulator() = default;

namespace
{

/** now + budget, saturating at kNeverCycle. */
Cycle
phaseDeadline(Cycle now, Cycle budget)
{
    return budget >= kNeverCycle - now ? kNeverCycle : now + budget;
}

} // namespace

RunResult
Simulator::run(const RunSpec &spec)
{
    return measure(spec, warmup(spec));
}

bool
Simulator::warmup(const RunSpec &spec)
{
    // Warmup: caches, predictors and (for CDF/PRE) the criticality
    // tables and uop cache train here, mirroring the paper's
    // 200M-instruction warmup at reduced scale. The cycle budget is
    // relative to the phase start so warmup cycles never eat the
    // measurement budget (and re-running an already-advanced
    // Simulator keeps working).
    if (spec.warmupInstrs == 0)
        return false;
    const std::uint64_t target = core_->retired() + spec.warmupInstrs;
    core_->run(target, phaseDeadline(core_->cycle(), spec.maxCycles));
    return !core_->halted() && core_->retired() < target;
}

RunResult
Simulator::measure(const RunSpec &spec, bool warmupTruncated)
{
    RunResult r;
    r.warmupTruncated = warmupTruncated;
    core_->resetMeasurement();

    const std::uint64_t target = core_->retired() + spec.measureInstrs;
    core_->run(target, phaseDeadline(core_->cycle(), spec.maxCycles));
    r.halted = core_->halted();
    r.truncated = !r.halted && core_->retired() < target;
    r.workload = workload_->name;
    r.mode = config_.mode;
    r.core = core_->result();
    r.energy = energy::Model::evaluate(config_, stats_,
                                       r.core.cycles);
    r.stats = stats_;
    r.profile = core_->profile();
    r.skippedCycles = core_->skippedCycles();
    r.skipEvents = core_->skipEvents();
    return r;
}

void
Simulator::saveState(SnapWriter &w) const
{
    // Stats first: every counter by name, so a restored registry has
    // exactly the key set of the warmed one (counters created lazily
    // during warmup included — a fresh same-config registry might
    // not have allocated them yet).
    const auto &counters = stats_.all();
    w.u64(counters.size());
    for (const auto &[name, value] : counters) {
        w.str(name);
        w.u64(value);
    }
    memory_.saveDelta(w, *pristine_);
    core_->saveState(w);
}

void
Simulator::restoreState(SnapReader &r)
{
    stats_.resetAll();
    for (std::uint64_t n = r.u64(); n-- > 0;) {
        const std::string name = r.str();
        stats_.counter(name) = r.u64();
    }
    memory_.restoreDelta(r, *pristine_);
    core_->restoreState(r);
}

const char *
RunResult::status() const
{
    if (halted)
        return "halted";
    if (warmupTruncated)
        return "warmup_truncated";
    if (truncated)
        return "truncated";
    return "ok";
}

RunResult
runWorkload(const std::string &workloadName, ooo::CoreMode mode,
            const RunSpec &spec, const ooo::CoreConfig &base)
{
    ooo::CoreConfig config = base;
    config.mode = mode;
    Simulator sim(config, workloads::makeWorkload(workloadName));
    return sim.run(spec);
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double logSum = 0.0;
    for (double v : values) {
        SIM_ASSERT(v > 0.0, "geomean needs positive values");
        logSum += std::log(v);
    }
    return std::exp(logSum / static_cast<double>(values.size()));
}

double
geomeanPositive(const std::vector<double> &values,
                std::size_t *excluded)
{
    std::vector<double> kept;
    kept.reserve(values.size());
    for (double v : values) {
        if (v > 0.0)
            kept.push_back(v);
    }
    if (excluded)
        *excluded = values.size() - kept.size();
    return geomean(kept);
}

} // namespace cdfsim::sim
