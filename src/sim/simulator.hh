/**
 * @file
 * High-level simulation facade: build a core for a workload, warm it
 * up, measure, and report. This is the public API the examples and
 * the benchmark harnesses drive.
 */

#ifndef CDFSIM_SIM_SIMULATOR_HH
#define CDFSIM_SIM_SIMULATOR_HH

#include <memory>
#include <string>

#include "common/serialize.hh"
#include "common/stats.hh"
#include "energy/energy_model.hh"
#include "ooo/core.hh"
#include "workloads/workloads.hh"

namespace cdfsim::sim
{

/** What to run and for how long. */
struct RunSpec
{
    std::uint64_t warmupInstrs = 300'000;
    std::uint64_t measureInstrs = 200'000;
    /**
     * Hard safety stop, PER PHASE: warmup and measurement each get
     * this many cycles of budget relative to the cycle they start
     * at, so a slow warmup can never eat into the measurement
     * window. A phase that exhausts its budget marks the run
     * truncated in RunResult instead of silently under-measuring.
     */
    Cycle maxCycles = 400'000'000;
};

/** Everything a run produces. */
struct RunResult
{
    std::string workload;
    ooo::CoreMode mode = ooo::CoreMode::Baseline;
    ooo::CoreResult core;
    energy::EnergyReport energy;
    StatRegistry stats; //!< snapshot of the counters
    /** Host-time per pipeline stage (CoreConfig::profileStages).
     *  Host-side only: deliberately kept out of toJson(RunResult)
     *  so profiled and unprofiled artifacts compare bit-identically
     *  outside the "timing" object. */
    ooo::StageProfile profile;

    /** Measurement-phase cycles fast-forwarded by the idle-skip path
     *  and the number of jumps. Host-side only, same contract as
     *  `profile`: excluded from toJson(RunResult), surfaced in the
     *  bench "timing" object (timing.skipped_cycles/skip_events). */
    std::uint64_t skippedCycles = 0;
    std::uint64_t skipEvents = 0;

    /** The program ran out of instructions before measurement ended. */
    bool halted = false;
    /** Warmup hit its cycle budget before warmupInstrs retired. */
    bool warmupTruncated = false;
    /** Measurement hit its cycle budget before measureInstrs retired. */
    bool truncated = false;

    /** True when the measurement window is trustworthy. */
    bool
    ok() const
    {
        return !halted && !truncated && !warmupTruncated;
    }

    /** Short status tag for tables/logs: "ok", "halted", ... */
    const char *status() const;
};

/**
 * Owns one core + memory + stats for one workload run.
 *
 * Usage:
 * @code
 *   Simulator sim(config, workloads::makeWorkload("astar"));
 *   RunResult r = sim.run({});
 * @endcode
 *
 * run() is exactly warmup() followed by measure(); the split exists
 * so the warmup checkpointing layer (sim/snapshot.hh, SweepRunner)
 * can snapshot at the phase boundary with saveState() and later
 * resume a fresh same-config Simulator from it with restoreState().
 * A restored simulator is indistinguishable from one that warmed up
 * itself: measure() after restoreState() produces byte-identical
 * results.
 */
class Simulator
{
  public:
    Simulator(const ooo::CoreConfig &config,
              workloads::Workload workload);

    /**
     * Shared-workload constructor: the program and the pristine
     * post-init memory image are immutable and shared across every
     * Simulator for the same workload (SweepRunner builds them once
     * per name). The data memory starts as a copy-on-write copy of
     * @p pristine, so cells only pay for the pages they dirty.
     */
    Simulator(const ooo::CoreConfig &config,
              std::shared_ptr<const workloads::Workload> workload,
              std::shared_ptr<const isa::MemoryImage> pristine);
    ~Simulator();

    /** Warm up, reset stats, measure, and summarize. */
    RunResult run(const RunSpec &spec);

    /** Run only the warmup phase; returns "warmup was truncated".
     *  run(spec) == measure(spec, warmup(spec)), byte for byte. */
    bool warmup(const RunSpec &spec);

    /** Reset the measurement window and run the measure phase.
     *  @p warmupTruncated is echoed into the result (it is warmup
     *  provenance, carried by checkpoints for restored runs). */
    RunResult measure(const RunSpec &spec, bool warmupTruncated);

    /**
     * Serialize the complete simulator state: every stat counter,
     * the memory delta against the shared pristine image, and the
     * full core (pipeline, predictors, caches, CDF/PRE machinery,
     * interpreter/oracle cursors). Call at a phase boundary (after
     * warmup()); host-only profiling state is excluded by contract.
     */
    void saveState(SnapWriter &w) const;

    /** Inverse of saveState(). The simulator must have been built
     *  with the same config and workload as the saved one. */
    void restoreState(SnapReader &r);

    ooo::Core &core() { return *core_; }
    StatRegistry &stats() { return stats_; }
    const workloads::Workload &workload() const { return *workload_; }

  private:
    SIM_SNAPSHOT_FIELDS(6);

    ooo::CoreConfig config_;
    std::shared_ptr<const workloads::Workload> workload_;
    /** Post-init memory image; memory_ deltas are taken against it. */
    std::shared_ptr<const isa::MemoryImage> pristine_;
    StatRegistry stats_;
    isa::MemoryImage memory_;
    std::unique_ptr<ooo::Core> core_;
};

/**
 * Convenience one-shot: run @p workloadName under @p mode with the
 * default Table-1 configuration.
 */
RunResult runWorkload(const std::string &workloadName,
                      ooo::CoreMode mode, const RunSpec &spec = {},
                      const ooo::CoreConfig &base = {});

/** Geometric mean of a vector of ratios (all must be positive). */
double geomean(const std::vector<double> &values);

/**
 * Geometric mean over only the positive entries. Non-positive
 * entries (a halted/zero-IPC run yields a 0 ratio) are excluded
 * rather than asserting; @p excluded, when non-null, receives how
 * many were dropped so callers can warn visibly.
 */
double geomeanPositive(const std::vector<double> &values,
                       std::size_t *excluded = nullptr);

} // namespace cdfsim::sim

#endif // CDFSIM_SIM_SIMULATOR_HH
