#include "sim/snapshot.hh"

#include <cstdio>
#include <fstream>
#include <iterator>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

namespace cdfsim::sim
{

namespace
{

/** 8-byte container magic ("CDFSNAP" + format generation). */
constexpr char kMagic[8] = {'C', 'D', 'F', 'S', 'N', 'A', 'P', '1'};

void
save(SnapWriter &w, const cdf::CriticalTableConfig &c)
{
    w.u32(c.entries);
    w.u32(c.ways);
    w.u32(c.strictBits);
    w.u32(c.strictThreshold);
    w.u32(c.permissiveBits);
    w.u32(c.permissiveThreshold);
    w.u32(c.missInc);
    w.u32(c.hitDec);
}

void
save(SnapWriter &w, const cdf::FillBufferConfig &c)
{
    w.u32(c.capacity);
    w.u64(c.refillIntervalInstrs);
    w.f64(c.minDensity);
    w.f64(c.maxDensity);
    w.b(c.useMaskCache);
}

void
save(SnapWriter &w, const cdf::MaskCacheConfig &c)
{
    w.u32(c.entries);
    w.u32(c.ways);
    w.u64(c.resetIntervalInstrs);
}

void
save(SnapWriter &w, const cdf::UopCacheConfig &c)
{
    w.u32(c.capacityLines);
    w.u32(c.fillLatency);
}

void
save(SnapWriter &w, const cdf::PartitionConfig &c)
{
    w.b(c.dynamic);
    w.u32(c.stallThreshold);
    w.u32(c.robStep);
    w.u32(c.lsqStep);
    w.u32(c.minSection);
    w.u32(c.minLsqSection);
    w.f64(c.initialCriticalFrac);
}

void
save(SnapWriter &w, const mem::CacheConfig &c)
{
    w.str(c.name);
    w.u64(c.sizeBytes);
    w.u32(c.ways);
    w.u32(c.latency);
    w.u32(c.mshrs);
}

void
save(SnapWriter &w, const mem::DramConfig &c)
{
    w.u32(c.channels);
    w.u32(c.bankGroups);
    w.u32(c.banksPerGroup);
    w.u32(c.rowBytes);
    w.u32(c.tRp);
    w.u32(c.tCl);
    w.u32(c.tRcd);
    w.u32(c.tBurst);
    w.u32(c.controllerLatency);
}

void
save(SnapWriter &w, const mem::PrefetcherConfig &c)
{
    w.u32(c.streams);
    w.u32(c.trainDistance);
    w.u32(c.minDegree);
    w.u32(c.maxDegree);
    w.u32(c.initialDegree);
    w.u32(c.evalIntervalFills);
    w.f64(c.lowAccuracy);
    w.f64(c.highAccuracy);
}

void
save(SnapWriter &w, const mem::HierarchyConfig &c)
{
    save(w, c.l1i);
    save(w, c.l1d);
    save(w, c.llc);
    save(w, c.dram);
    save(w, c.prefetcher);
    w.b(c.prefetcherEnabled);
}

void
save(SnapWriter &w, const bp::TageConfig &c)
{
    w.u32(c.numTables);
    w.u32(c.tableBitsLog2);
    w.u32(c.tagBits);
    w.u32(c.counterBits);
    w.u32(c.usefulBits);
    w.u32(c.minHistory);
    w.u32(c.maxHistory);
    w.u32(c.bimodalBitsLog2);
    w.u32(c.loopEntries);
    w.u32(c.loopConfidenceMax);
    w.u32(c.scEntriesLog2);
    w.u32(c.scThreshold);
}

void
save(SnapWriter &w, const bp::PredictorConfig &c)
{
    save(w, c.tage);
    w.u64(c.btbEntries);
    w.u64(c.rasDepth);
}

void
save(SnapWriter &w, const ooo::CdfKnobs &c)
{
    w.b(c.markCriticalBranches);
    save(w, c.loadTable);
    save(w, c.branchTable);
    save(w, c.fillBuffer);
    save(w, c.maskCache);
    save(w, c.uopCache);
    save(w, c.partition);
    w.u32(c.dbqEntries);
    w.u32(c.cmqEntries);
    w.f64(c.densitySwitchLow);
    w.f64(c.densitySwitchHigh);
    w.u32(c.reentryCooldown);
}

void
save(SnapWriter &w, const ooo::PreKnobs &c)
{
    save(w, c.stallTable);
    save(w, c.fillBuffer);
    save(w, c.maskCache);
    save(w, c.uopCache);
    w.u32(c.minStallCyclesToEnter);
    w.u32(c.bbScanLimit);
    w.u32(c.maxChainLoadsPerEpisode);
}

/**
 * Every CoreConfig field that can influence warmup state, in
 * declaration order. skipIdleCycles and profileStages are host-only
 * knobs whose setting is proven not to change any architectural
 * state (test_skip / test_stat_gate), so they are excluded: a
 * profiled run reuses an unprofiled run's checkpoint.
 */
void
saveWarmupRelevant(SnapWriter &w, const ooo::CoreConfig &c)
{
    w.u8(static_cast<std::uint8_t>(c.mode));
    w.u32(c.width);
    w.u32(c.issueWidth);
    w.u32(c.robSize);
    w.u32(c.rsSize);
    w.u32(c.lqSize);
    w.u32(c.sqSize);
    w.u32(c.physRegs);
    w.u32(c.frontendDepth);
    w.u32(c.fetchQueueSize);
    w.u32(c.mispredictRedirect);
    w.u32(c.btbMissPenalty);
    w.u32(c.maxLoadsPerCycle);
    w.u32(c.maxStoresPerCycle);
    w.b(c.observeCriticality);
    save(w, c.cdf);
    save(w, c.pre);
    save(w, c.mem);
    save(w, c.bp);
    w.u64(c.deadlockCycles);
}

} // namespace

std::uint64_t
warmupKey(const std::string &workload, const ooo::CoreConfig &config,
          const RunSpec &spec)
{
    SnapWriter w;
    w.str(workload);
    saveWarmupRelevant(w, config);
    w.u64(spec.warmupInstrs);
    w.u64(spec.maxCycles);
    return w.fnv1a();
}

std::string
checkpointFileName(std::uint64_t key)
{
    char name[64];
    std::snprintf(name, sizeof(name), "ckpt_%016llx.cdfsnap",
                  static_cast<unsigned long long>(key));
    return name;
}

bool
saveCheckpointFile(const std::string &path, std::uint64_t key,
                   const Checkpoint &ckpt)
{
    SnapWriter header;
    for (char c : kMagic)
        header.u8(static_cast<std::uint8_t>(c));
    header.u32(kCheckpointSchemaVersion);
    header.u64(key);
    header.b(ckpt.warmupTruncated);
    header.u64(ckpt.payload.size());
    {
        // Same FNV-1a as SnapWriter::fnv1a(), over the payload only.
        std::uint64_t h = 0xCBF29CE484222325ull;
        for (std::uint8_t byte : ckpt.payload) {
            h ^= byte;
            h *= 0x100000001B3ull;
        }
        header.u64(h);
    }

    // Temp file + rename: concurrent benches pointed at the same
    // --ckpt-dir either see the complete file or none at all. The
    // temp name carries the pid so two concurrent writers never
    // interleave into one temp file; the final rename is
    // last-writer-wins over byte-identical content (the on-disk
    // determinism test checks the *renamed* file, which embeds no
    // pid or timestamp).
    const std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(getpid()));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            std::fprintf(stderr,
                         "warning: cannot write checkpoint %s\n",
                         tmp.c_str());
            return false;
        }
        out.write(
            reinterpret_cast<const char *>(header.bytes().data()),
            static_cast<std::streamsize>(header.size()));
        out.write(
            reinterpret_cast<const char *>(ckpt.payload.data()),
            static_cast<std::streamsize>(ckpt.payload.size()));
        if (!out) {
            std::fprintf(stderr,
                         "warning: short write on checkpoint %s\n",
                         tmp.c_str());
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::fprintf(stderr,
                     "warning: cannot rename checkpoint %s -> %s\n",
                     tmp.c_str(), path.c_str());
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

std::optional<Checkpoint>
loadCheckpointFile(const std::string &path, std::uint64_t key)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::vector<std::uint8_t> file(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());

    // Header: magic(8) schema(4) key(8) truncated(1) size(8) fnv(8).
    constexpr std::size_t kHeaderBytes = 8 + 4 + 8 + 1 + 8 + 8;
    if (file.size() < kHeaderBytes)
        return std::nullopt;
    SnapReader r(file.data(), kHeaderBytes);
    for (char c : kMagic) {
        if (r.u8() != static_cast<std::uint8_t>(c))
            return std::nullopt;
    }
    if (r.u32() != kCheckpointSchemaVersion)
        return std::nullopt;
    if (r.u64() != key)
        return std::nullopt;
    Checkpoint ckpt;
    ckpt.warmupTruncated = r.b();
    const std::uint64_t payloadSize = r.u64();
    const std::uint64_t payloadFnv = r.u64();
    if (file.size() - kHeaderBytes != payloadSize)
        return std::nullopt;

    ckpt.payload.assign(file.begin() + kHeaderBytes, file.end());
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (std::uint8_t byte : ckpt.payload) {
        h ^= byte;
        h *= 0x100000001B3ull;
    }
    if (h != payloadFnv)
        return std::nullopt;
    return ckpt;
}

} // namespace cdfsim::sim
