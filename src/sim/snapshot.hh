/**
 * @file
 * Warmup checkpointing: keys, in-memory checkpoints, and the on-disk
 * container format.
 *
 * A warmup checkpoint captures the complete post-warmup simulator
 * state (Simulator::saveState) so that sweep cells sharing the same
 * (workload, mode, warmup-relevant config, warmup length) can warm
 * once and restore many times — in-process via SweepRunner's
 * memoization, and across processes via bench::Harness --ckpt-dir.
 *
 * Restoring a checkpoint and measuring is bit-identical to warming
 * up and measuring in one sitting (enforced by tests/test_snapshot
 * and the ckpt_roundtrip ctest chain), so checkpoints are a pure
 * wall-clock optimization: every stat, result and JSON artifact is
 * unchanged.
 */

#ifndef CDFSIM_SIM_SNAPSHOT_HH
#define CDFSIM_SIM_SNAPSHOT_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/serialize.hh"
#include "ooo/core_config.hh"
#include "sim/simulator.hh"

namespace cdfsim::sim
{

/** Bumped whenever any save()/restore() layout changes. Stale
 *  on-disk checkpoints are rejected, never migrated. */
inline constexpr std::uint32_t kCheckpointSchemaVersion = 1;

/** A complete post-warmup simulator state. */
struct Checkpoint
{
    std::vector<std::uint8_t> payload; //!< Simulator::saveState bytes
    bool warmupTruncated = false;      //!< warmup hit its cycle budget
};

/**
 * FNV-1a key identifying a warmup: two cells share a checkpoint iff
 * their keys match. Hashes the serializer bytes of (workload name,
 * every CoreConfig field EXCEPT the host-only knobs skipIdleCycles
 * and profileStages, spec.warmupInstrs, spec.maxCycles).
 * measureInstrs is deliberately excluded — it only affects the
 * post-restore phase.
 */
std::uint64_t warmupKey(const std::string &workload,
                        const ooo::CoreConfig &config,
                        const RunSpec &spec);

/** "ckpt_<16-hex-digit-key>.cdfsnap" — the file name used under
 *  --ckpt-dir. Deterministic: no timestamps, pids or hostnames. */
std::string checkpointFileName(std::uint64_t key);

/**
 * Atomically write @p ckpt to @p path (temp file + rename, so a
 * concurrent reader never sees a torn file). The container embeds a
 * magic, the schema version, an echo of @p key and an FNV-1a payload
 * checksum. Returns false (with a warning on stderr) on I/O errors;
 * checkpointing is an optimization, so failures never abort a sweep.
 */
bool saveCheckpointFile(const std::string &path, std::uint64_t key,
                        const Checkpoint &ckpt);

/**
 * Load and validate a checkpoint. Returns nullopt when the file is
 * missing, torn, from another schema version, or keyed differently
 * (a stale artifact after a config change) — callers then just warm
 * up from scratch.
 */
std::optional<Checkpoint> loadCheckpointFile(const std::string &path,
                                             std::uint64_t key);

} // namespace cdfsim::sim

#endif // CDFSIM_SIM_SNAPSHOT_HH
