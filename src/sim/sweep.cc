#include "sim/sweep.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "sim/snapshot.hh"

namespace cdfsim::sim
{

SweepRunner::SweepRunner(unsigned threads) : threads_(threads)
{
    if (threads_ == 0) {
        threads_ = std::thread::hardware_concurrency();
        if (threads_ == 0)
            threads_ = 1;
    }
}

namespace
{

/** The immutable per-workload-name state every cell shares: the
 *  program and the pristine post-init memory image. */
struct SharedWorkload
{
    std::shared_ptr<const workloads::Workload> workload;
    std::shared_ptr<const isa::MemoryImage> pristine;
    /** Construction failure (e.g. unknown name); every cell naming
     *  this workload reports it as its own cell error. */
    std::string error;
};

/** One warmup-key equivalence class of cells. */
struct WarmupGroup
{
    std::mutex mutex;
    std::condition_variable cv;
    /** 0 = unclaimed, 1 = a leader is warming, 2 = checkpoint ready
     *  (ckpt is immutable from then on), 3 = the leader failed and
     *  followers must warm themselves. */
    int state = 0;
    std::size_t members = 0;
    Checkpoint ckpt;
};

} // namespace

std::vector<SweepOutcome>
SweepRunner::runAll(const std::vector<SweepCell> &cells,
                    const SweepProgressFn &progress)
{
    std::vector<SweepOutcome> outcomes(cells.size());
    ckptStats_ = CkptStats{};

    // Build each workload once, serially: the program and pristine
    // memory image are immutable afterwards and shared by every cell
    // (cells copy the image copy-on-write, paying only for pages
    // they dirty).
    std::unordered_map<std::string, SharedWorkload> shared;
    for (const SweepCell &cell : cells) {
        SharedWorkload &s = shared[cell.workload];
        if (s.workload || !s.error.empty())
            continue;
        try {
            s.workload = std::make_shared<const workloads::Workload>(
                workloads::makeWorkload(cell.workload));
            auto image = std::make_shared<isa::MemoryImage>();
            if (s.workload->init)
                s.workload->init(*image);
            s.pristine = std::move(image);
        } catch (const std::exception &e) {
            s = SharedWorkload{};
            s.error = e.what();
        }
    }

    // Group cells by warmup key. Cells with no warmup phase are not
    // memoized (there is nothing to share).
    std::vector<std::uint64_t> keys(cells.size(), 0);
    std::vector<bool> memoized(cells.size(), false);
    std::unordered_map<std::uint64_t, std::unique_ptr<WarmupGroup>>
        groups;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (cells[i].spec.warmupInstrs == 0)
            continue;
        ooo::CoreConfig keyConfig = cells[i].config;
        keyConfig.mode = cells[i].mode;
        keys[i] =
            warmupKey(cells[i].workload, keyConfig, cells[i].spec);
        memoized[i] = true;
        auto &group = groups[keys[i]];
        if (!group)
            group = std::make_unique<WarmupGroup>();
        ++group->members;
    }

    std::mutex ckptStatsMutex;
    auto countHit = [&](double restoreSeconds) {
        std::lock_guard<std::mutex> lock(ckptStatsMutex);
        ++ckptStats_.hits;
        ckptStats_.restoreSeconds += restoreSeconds;
    };
    auto countMiss = [&]() {
        std::lock_guard<std::mutex> lock(ckptStatsMutex);
        ++ckptStats_.misses;
    };

    /** Restore @p simulator from the group's ready checkpoint. */
    auto restoreFrom = [&](Simulator &simulator,
                           const WarmupGroup &group) -> bool {
        const auto t0 = std::chrono::steady_clock::now();
        SnapReader reader(group.ckpt.payload);
        simulator.restoreState(reader);
        countHit(std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count());
        return group.ckpt.warmupTruncated;
    };

    /** Warm @p simulator through the group: lead, follow, or (after
     *  a leader failure) self-warm. Returns warmupTruncated. */
    auto warmShared = [&](Simulator &simulator, WarmupGroup &group,
                          std::uint64_t key,
                          const RunSpec &spec) -> bool {
        std::unique_lock<std::mutex> lock(group.mutex);
        if (group.state == 0) {
            if (!ckptDir_.empty()) {
                // Another process may have warmed this key already.
                auto loaded = loadCheckpointFile(
                    ckptDir_ + "/" + checkpointFileName(key), key);
                if (loaded) {
                    group.ckpt = std::move(*loaded);
                    group.state = 2;
                    lock.unlock();
                    return restoreFrom(simulator, group);
                }
            }
            group.state = 1; // this cell leads
            lock.unlock();
            try {
                const bool truncated = simulator.warmup(spec);
                Checkpoint fresh;
                fresh.warmupTruncated = truncated;
                // Snapshotting costs host time; skip it when nobody
                // could ever consume it (singleton group, no disk
                // cache).
                if (group.members > 1 || !ckptDir_.empty()) {
                    SnapWriter writer;
                    simulator.saveState(writer);
                    fresh.payload = writer.take();
                }
                lock.lock();
                group.ckpt = std::move(fresh);
                group.state = 2;
                group.cv.notify_all();
                lock.unlock();
            } catch (...) {
                lock.lock();
                group.state = 3;
                group.cv.notify_all();
                lock.unlock();
                throw;
            }
            countMiss();
            if (!ckptDir_.empty() && !group.ckpt.payload.empty()) {
                saveCheckpointFile(ckptDir_ + "/" +
                                       checkpointFileName(key),
                                   key, group.ckpt);
            }
            return group.ckpt.warmupTruncated;
        }
        group.cv.wait(lock,
                      [&group] { return group.state >= 2; });
        if (group.state == 2) {
            lock.unlock();
            return restoreFrom(simulator, group);
        }
        // The leader died; its error is captured in its own outcome.
        // Warm independently so this cell still gets a fair run.
        lock.unlock();
        countMiss();
        return simulator.warmup(spec);
    };

    std::atomic<std::size_t> nextCell{0};
    std::atomic<std::size_t> doneCells{0};
    std::mutex progressMutex;

    auto worker = [&]() {
        for (;;) {
            const std::size_t i =
                nextCell.fetch_add(1, std::memory_order_relaxed);
            if (i >= cells.size())
                return;

            SweepOutcome &out = outcomes[i];
            out.cell = cells[i];
            out.cell.config.mode = out.cell.mode;
            try {
                const SharedWorkload &s = shared.at(out.cell.workload);
                if (!s.workload)
                    throw PanicError(s.error);
                Simulator simulator(out.cell.config, s.workload,
                                    s.pristine);
                bool warmupTruncated;
                if (memoized[i]) {
                    warmupTruncated =
                        warmShared(simulator, *groups.at(keys[i]),
                                   keys[i], out.cell.spec);
                } else {
                    warmupTruncated = simulator.warmup(out.cell.spec);
                }
                out.run = simulator.measure(out.cell.spec,
                                            warmupTruncated);
            } catch (const std::exception &e) {
                out.error = e.what();
            }
            out.run.workload = out.cell.workload;
            out.run.mode = out.cell.mode;

            const std::size_t done =
                doneCells.fetch_add(1, std::memory_order_relaxed) + 1;
            if (progress) {
                std::lock_guard<std::mutex> lock(progressMutex);
                progress(out, done, cells.size());
            }
        }
    };

    const unsigned n = static_cast<unsigned>(
        std::min<std::size_t>(threads_, cells.size()));
    if (n <= 1) {
        worker();
        return outcomes;
    }

    std::vector<std::thread> pool;
    pool.reserve(n);
    for (unsigned t = 0; t < n; ++t)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();
    return outcomes;
}

const char *
toString(ooo::CoreMode mode)
{
    switch (mode) {
      case ooo::CoreMode::Baseline: return "baseline";
      case ooo::CoreMode::Cdf: return "cdf";
      case ooo::CoreMode::Pre: return "pre";
    }
    return "unknown";
}

Json
toJson(const RunSpec &spec)
{
    Json j = Json::object();
    j["warmup_instrs"] = spec.warmupInstrs;
    j["measure_instrs"] = spec.measureInstrs;
    j["max_cycles"] = spec.maxCycles;
    return j;
}

Json
toJson(const ooo::CoreResult &core)
{
    Json j = Json::object();
    j["retired_instrs"] = core.retiredInstrs;
    j["cycles"] = core.cycles;
    j["ipc"] = core.ipc;
    j["mlp"] = core.mlp;
    j["useless_mlp"] = core.uselessMlp;
    j["dram_bytes"] = core.dramBytes;
    j["branch_mpki"] = core.branchMpki;
    j["llc_mpki"] = core.llcMpki;
    j["cdf_mode_fraction"] = core.cdfModeFraction;
    j["full_window_stall_fraction"] = core.fullWindowStallFraction;
    j["rob_critical_fraction"] = core.robCriticalFraction;
    return j;
}

Json
toJson(const energy::EnergyReport &energy)
{
    Json j = Json::object();
    j["core_area_mm2"] = energy.coreAreaMm2;
    j["extra_area_mm2"] = energy.extraAreaMm2;
    j["dynamic_uj"] = energy.dynamicUj;
    j["static_uj"] = energy.staticUj;
    j["dram_uj"] = energy.dramUj;
    j["total_uj"] = energy.totalUj;
    Json comps = Json::object();
    for (const auto &c : energy.components)
        comps[c.name] = c.dynamicUj;
    j["components_uj"] = std::move(comps);
    return j;
}

Json
toJson(const RunResult &run)
{
    Json j = Json::object();
    j["workload"] = run.workload;
    j["mode"] = toString(run.mode);
    j["status"] = run.status();
    j["halted"] = run.halted;
    j["warmup_truncated"] = run.warmupTruncated;
    j["truncated"] = run.truncated;
    j["core"] = toJson(run.core);
    j["energy"] = toJson(run.energy);
    j["stats"] = run.stats.toJson();
    return j;
}

Json
toJson(const SweepOutcome &outcome)
{
    Json j = Json::object();
    j["workload"] = outcome.cell.workload;
    j["variant"] = outcome.cell.variant;
    j["mode"] = toString(outcome.cell.mode);
    j["spec"] = toJson(outcome.cell.spec);
    if (!outcome.error.empty()) {
        j["status"] = "error";
        j["error"] = outcome.error;
        return j;
    }
    Json run = toJson(outcome.run);
    // workload/mode already identify the row at this level.
    j["status"] = outcome.run.status();
    j["halted"] = outcome.run.halted;
    j["warmup_truncated"] = outcome.run.warmupTruncated;
    j["truncated"] = outcome.run.truncated;
    j["core"] = std::move(run["core"]);
    j["energy"] = std::move(run["energy"]);
    j["stats"] = std::move(run["stats"]);
    return j;
}

} // namespace cdfsim::sim
