#include "sim/sweep.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace cdfsim::sim
{

SweepRunner::SweepRunner(unsigned threads) : threads_(threads)
{
    if (threads_ == 0) {
        threads_ = std::thread::hardware_concurrency();
        if (threads_ == 0)
            threads_ = 1;
    }
}

std::vector<SweepOutcome>
SweepRunner::runAll(const std::vector<SweepCell> &cells,
                    const SweepProgressFn &progress) const
{
    std::vector<SweepOutcome> outcomes(cells.size());

    std::atomic<std::size_t> nextCell{0};
    std::atomic<std::size_t> doneCells{0};
    std::mutex progressMutex;

    auto worker = [&]() {
        for (;;) {
            const std::size_t i =
                nextCell.fetch_add(1, std::memory_order_relaxed);
            if (i >= cells.size())
                return;

            SweepOutcome &out = outcomes[i];
            out.cell = cells[i];
            out.cell.config.mode = out.cell.mode;
            try {
                Simulator simulator(
                    out.cell.config,
                    workloads::makeWorkload(out.cell.workload));
                out.run = simulator.run(out.cell.spec);
            } catch (const std::exception &e) {
                out.error = e.what();
            }
            out.run.workload = out.cell.workload;
            out.run.mode = out.cell.mode;

            const std::size_t done =
                doneCells.fetch_add(1, std::memory_order_relaxed) + 1;
            if (progress) {
                std::lock_guard<std::mutex> lock(progressMutex);
                progress(out, done, cells.size());
            }
        }
    };

    const unsigned n = static_cast<unsigned>(
        std::min<std::size_t>(threads_, cells.size()));
    if (n <= 1) {
        worker();
        return outcomes;
    }

    std::vector<std::thread> pool;
    pool.reserve(n);
    for (unsigned t = 0; t < n; ++t)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();
    return outcomes;
}

const char *
toString(ooo::CoreMode mode)
{
    switch (mode) {
      case ooo::CoreMode::Baseline: return "baseline";
      case ooo::CoreMode::Cdf: return "cdf";
      case ooo::CoreMode::Pre: return "pre";
    }
    return "unknown";
}

Json
toJson(const RunSpec &spec)
{
    Json j = Json::object();
    j["warmup_instrs"] = spec.warmupInstrs;
    j["measure_instrs"] = spec.measureInstrs;
    j["max_cycles"] = spec.maxCycles;
    return j;
}

Json
toJson(const ooo::CoreResult &core)
{
    Json j = Json::object();
    j["retired_instrs"] = core.retiredInstrs;
    j["cycles"] = core.cycles;
    j["ipc"] = core.ipc;
    j["mlp"] = core.mlp;
    j["useless_mlp"] = core.uselessMlp;
    j["dram_bytes"] = core.dramBytes;
    j["branch_mpki"] = core.branchMpki;
    j["llc_mpki"] = core.llcMpki;
    j["cdf_mode_fraction"] = core.cdfModeFraction;
    j["full_window_stall_fraction"] = core.fullWindowStallFraction;
    j["rob_critical_fraction"] = core.robCriticalFraction;
    return j;
}

Json
toJson(const energy::EnergyReport &energy)
{
    Json j = Json::object();
    j["core_area_mm2"] = energy.coreAreaMm2;
    j["extra_area_mm2"] = energy.extraAreaMm2;
    j["dynamic_uj"] = energy.dynamicUj;
    j["static_uj"] = energy.staticUj;
    j["dram_uj"] = energy.dramUj;
    j["total_uj"] = energy.totalUj;
    Json comps = Json::object();
    for (const auto &c : energy.components)
        comps[c.name] = c.dynamicUj;
    j["components_uj"] = std::move(comps);
    return j;
}

Json
toJson(const RunResult &run)
{
    Json j = Json::object();
    j["workload"] = run.workload;
    j["mode"] = toString(run.mode);
    j["status"] = run.status();
    j["halted"] = run.halted;
    j["warmup_truncated"] = run.warmupTruncated;
    j["truncated"] = run.truncated;
    j["core"] = toJson(run.core);
    j["energy"] = toJson(run.energy);
    j["stats"] = run.stats.toJson();
    return j;
}

Json
toJson(const SweepOutcome &outcome)
{
    Json j = Json::object();
    j["workload"] = outcome.cell.workload;
    j["variant"] = outcome.cell.variant;
    j["mode"] = toString(outcome.cell.mode);
    j["spec"] = toJson(outcome.cell.spec);
    if (!outcome.error.empty()) {
        j["status"] = "error";
        j["error"] = outcome.error;
        return j;
    }
    Json run = toJson(outcome.run);
    // workload/mode already identify the row at this level.
    j["status"] = outcome.run.status();
    j["halted"] = outcome.run.halted;
    j["warmup_truncated"] = outcome.run.warmupTruncated;
    j["truncated"] = outcome.run.truncated;
    j["core"] = std::move(run["core"]);
    j["energy"] = std::move(run["energy"]);
    j["stats"] = std::move(run["stats"]);
    return j;
}

} // namespace cdfsim::sim
