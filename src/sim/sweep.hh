/**
 * @file
 * Parallel sweep execution over a declarative run matrix.
 *
 * Every figure/ablation harness is the same shape: a matrix of
 * (workload x core mode x config overrides x run spec) cells, each
 * of which builds one independent Simulator and produces one
 * RunResult. Cells share no mutable state (each owns its memory
 * image, stat registry and PRNGs), so SweepRunner fans them out
 * over a thread pool and the results are bit-identical to a serial
 * run — only wall-clock time changes.
 *
 * This header also owns the JSON serialization of results
 * (toJson), so sweeps can be persisted as diffable BENCH_*.json
 * artifacts and tracked across PRs.
 */

#ifndef CDFSIM_SIM_SWEEP_HH
#define CDFSIM_SIM_SWEEP_HH

#include <functional>
#include <string>
#include <vector>

#include "common/json.hh"
#include "sim/simulator.hh"

namespace cdfsim::sim
{

/** One cell of the run matrix. */
struct SweepCell
{
    std::string workload;            //!< workloads::makeWorkload name
    std::string variant = "default"; //!< harness label, e.g. "cdf_nobr"
    ooo::CoreMode mode = ooo::CoreMode::Baseline;
    ooo::CoreConfig config{}; //!< mode is overwritten from `mode`
    RunSpec spec{};
};

/** A cell plus everything running it produced. */
struct SweepOutcome
{
    SweepCell cell;
    RunResult run;
    /** Non-empty when the cell died with a panic/fatal error. */
    std::string error;
    /** The cell belongs to another shard and was never executed
     *  (bench::Harness --shard). Not a failure: the row simply has
     *  no data in this process. */
    bool skipped = false;

    bool failed() const { return !error.empty() || !run.ok(); }
};

/** Called after each cell completes (serialized; any thread). */
using SweepProgressFn = std::function<void(
    const SweepOutcome &outcome, std::size_t done, std::size_t total)>;

/**
 * Thread-pool executor for a run matrix.
 *
 * runAll() preserves cell order in its result vector regardless of
 * completion order, so downstream aggregation (tables, geomeans,
 * JSON) is deterministic. A panicking cell is captured into
 * SweepOutcome::error instead of tearing down the whole sweep.
 *
 * Cells sharing a warmup (same sim::warmupKey — workload, mode,
 * warmup-relevant config and warmup length) warm up ONCE: the first
 * cell of each group to start acts as leader, snapshots its state at
 * the warmup/measure boundary (Simulator::saveState), and the rest
 * restore from that in-memory checkpoint instead of re-simulating
 * the warmup. With setCheckpointDir(), checkpoints additionally
 * spill to / load from disk, so separate bench processes over the
 * same matrix (fig13 then fig14...) share warmups too. Restoring is
 * bit-identical to warming (tests/test_snapshot), so memoization
 * changes wall-clock time only — never a stat, result or artifact.
 */
class SweepRunner
{
  public:
    /** @param threads Worker count; 0 = hardware concurrency. */
    explicit SweepRunner(unsigned threads = 0);

    unsigned threads() const { return threads_; }

    /** Spill/load warmup checkpoints under @p dir (empty string
     *  disables the on-disk cache; in-memory sharing still runs).
     *  The directory must already exist. */
    void setCheckpointDir(std::string dir) { ckptDir_ = std::move(dir); }
    const std::string &checkpointDir() const { return ckptDir_; }

    /** Host-side accounting of the last runAll() (bench "timing"). */
    struct CkptStats
    {
        std::uint64_t hits = 0;   //!< cells that restored a checkpoint
        std::uint64_t misses = 0; //!< cells that warmed from scratch
        double restoreSeconds = 0.0; //!< host time in restoreState()
    };
    const CkptStats &ckptStats() const { return ckptStats_; }

    std::vector<SweepOutcome>
    runAll(const std::vector<SweepCell> &cells,
           const SweepProgressFn &progress = {});

  private:
    unsigned threads_;
    std::string ckptDir_;
    CkptStats ckptStats_;
};

/** Lower-case mode name: "baseline", "cdf", "pre". */
const char *toString(ooo::CoreMode mode);

// --- JSON serialization of results (schema in README.md) ---
Json toJson(const RunSpec &spec);
Json toJson(const ooo::CoreResult &core);
Json toJson(const energy::EnergyReport &energy);
Json toJson(const RunResult &run);
Json toJson(const SweepOutcome &outcome);

} // namespace cdfsim::sim

#endif // CDFSIM_SIM_SWEEP_HH
