#include "sim/sweep_spec.hh"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "workloads/workloads.hh"

namespace cdfsim::sim
{

namespace
{

[[noreturn]] void
specError(const std::string &where, const std::string &what)
{
    throw std::runtime_error(where + ": " + what);
}

// --- Typed JSON accessors that name the offending path ---------------

bool
needBool(const Json &v, const std::string &where)
{
    if (v.type() != Json::Type::Bool)
        specError(where, "expected a boolean");
    return v.asBool();
}

double
needNumber(const Json &v, const std::string &where)
{
    if (v.type() != Json::Type::Int && v.type() != Json::Type::Uint &&
        v.type() != Json::Type::Double)
        specError(where, "expected a number");
    return v.asNumber();
}

std::uint64_t
needUint(const Json &v, const std::string &where)
{
    if (v.type() == Json::Type::Uint)
        return v.asUint();
    if (v.type() == Json::Type::Int && v.asNumber() >= 0)
        return v.asUint();
    specError(where, "expected a non-negative integer");
}

unsigned
needU32(const Json &v, const std::string &where)
{
    const std::uint64_t u = needUint(v, where);
    if (u > 0xFFFFFFFFull)
        specError(where, "value does not fit in 32 bits");
    return static_cast<unsigned>(u);
}

const std::string &
needString(const Json &v, const std::string &where)
{
    if (v.type() != Json::Type::String)
        specError(where, "expected a string");
    return v.asString();
}

const Json &
needObject(const Json &v, const std::string &where)
{
    if (v.type() != Json::Type::Object)
        specError(where, "expected an object");
    return v;
}

const Json &
needArray(const Json &v, const std::string &where)
{
    if (v.type() != Json::Type::Array)
        specError(where, "expected an array");
    return v;
}

/** Reject members outside @p allowed — typos must not silently
 *  no-op in a file that claims to describe an experiment. */
void
rejectUnknownMembers(const Json &obj, const std::string &where,
                     std::initializer_list<const char *> allowed)
{
    for (const auto &kv : obj.members()) {
        bool known = false;
        for (const char *a : allowed)
            known = known || kv.first == a;
        if (!known)
            specError(where + "." + kv.first, "unknown member");
    }
}

// --- Sub-struct appliers for the override registry -------------------

bool
applyTableOverride(cdf::CriticalTableConfig &table,
                   const std::string &field, const Json &value,
                   const std::string &where)
{
    if (field == "entries")
        table.entries = needU32(value, where);
    else if (field == "ways")
        table.ways = needU32(value, where);
    else if (field == "strict_bits")
        table.strictBits = needU32(value, where);
    else if (field == "strict_threshold")
        table.strictThreshold = needU32(value, where);
    else if (field == "permissive_bits")
        table.permissiveBits = needU32(value, where);
    else if (field == "permissive_threshold")
        table.permissiveThreshold = needU32(value, where);
    else if (field == "miss_inc")
        table.missInc = needU32(value, where);
    else if (field == "hit_dec")
        table.hitDec = needU32(value, where);
    else
        return false;
    return true;
}

bool
applyPartitionOverride(cdf::PartitionConfig &part,
                       const std::string &field, const Json &value,
                       const std::string &where)
{
    if (field == "dynamic")
        part.dynamic = needBool(value, where);
    else if (field == "stall_threshold")
        part.stallThreshold = needU32(value, where);
    else if (field == "rob_step")
        part.robStep = needU32(value, where);
    else if (field == "lsq_step")
        part.lsqStep = needU32(value, where);
    else if (field == "min_section")
        part.minSection = needU32(value, where);
    else if (field == "min_lsq_section")
        part.minLsqSection = needU32(value, where);
    else if (field == "initial_critical_frac")
        part.initialCriticalFrac = needNumber(value, where);
    else
        return false;
    return true;
}

bool
applyFillBufferOverride(cdf::FillBufferConfig &fb,
                        const std::string &field, const Json &value,
                        const std::string &where)
{
    if (field == "capacity")
        fb.capacity = needU32(value, where);
    else if (field == "refill_interval_instrs")
        fb.refillIntervalInstrs = needUint(value, where);
    else if (field == "min_density")
        fb.minDensity = needNumber(value, where);
    else if (field == "max_density")
        fb.maxDensity = needNumber(value, where);
    else if (field == "use_mask_cache")
        fb.useMaskCache = needBool(value, where);
    else
        return false;
    return true;
}

/** Strip @p prefix from @p key into @p rest. */
bool
splitPrefix(const std::string &key, const char *prefix,
            std::string &rest)
{
    const std::size_t n = std::strlen(prefix);
    if (key.size() <= n || key.compare(0, n, prefix) != 0 ||
        key[n] != '.')
        return false;
    rest = key.substr(n + 1);
    return true;
}

} // namespace

void
applyConfigOverride(ooo::CoreConfig &config, const std::string &key,
                    const Json &value, const std::string &where)
{
    std::string rest;

    // Core-level knobs.
    if (key == "scale_window") {
        config.scaleWindow(needNumber(value, where));
        return;
    }
    if (key == "observe_criticality") {
        config.observeCriticality = needBool(value, where);
        return;
    }
    if (key == "skip_idle_cycles") {
        config.skipIdleCycles = needBool(value, where);
        return;
    }
    if (key == "width") {
        config.width = needU32(value, where);
        return;
    }
    if (key == "issue_width") {
        config.issueWidth = needU32(value, where);
        return;
    }
    if (key == "rob_size") {
        config.robSize = needU32(value, where);
        return;
    }
    if (key == "rs_size") {
        config.rsSize = needU32(value, where);
        return;
    }
    if (key == "lq_size") {
        config.lqSize = needU32(value, where);
        return;
    }
    if (key == "sq_size") {
        config.sqSize = needU32(value, where);
        return;
    }
    if (key == "phys_regs") {
        config.physRegs = needU32(value, where);
        return;
    }
    if (key == "frontend_depth") {
        config.frontendDepth = needU32(value, where);
        return;
    }
    if (key == "fetch_queue_size") {
        config.fetchQueueSize = needU32(value, where);
        return;
    }

    // CDF knobs.
    if (key == "cdf.mark_critical_branches") {
        config.cdf.markCriticalBranches = needBool(value, where);
        return;
    }
    if (key == "cdf.density_switch_low") {
        config.cdf.densitySwitchLow = needNumber(value, where);
        return;
    }
    if (key == "cdf.density_switch_high") {
        config.cdf.densitySwitchHigh = needNumber(value, where);
        return;
    }
    if (key == "cdf.reentry_cooldown") {
        config.cdf.reentryCooldown = needU32(value, where);
        return;
    }
    if (key == "cdf.dbq_entries") {
        config.cdf.dbqEntries = needU32(value, where);
        return;
    }
    if (key == "cdf.cmq_entries") {
        config.cdf.cmqEntries = needU32(value, where);
        return;
    }
    if (splitPrefix(key, "cdf.load_table", rest)) {
        if (applyTableOverride(config.cdf.loadTable, rest, value,
                               where))
            return;
    } else if (splitPrefix(key, "cdf.branch_table", rest)) {
        if (applyTableOverride(config.cdf.branchTable, rest, value,
                               where))
            return;
    } else if (splitPrefix(key, "pre.stall_table", rest)) {
        if (applyTableOverride(config.pre.stallTable, rest, value,
                               where))
            return;
    } else if (splitPrefix(key, "cdf.partition", rest)) {
        if (applyPartitionOverride(config.cdf.partition, rest, value,
                                   where))
            return;
    } else if (splitPrefix(key, "cdf.fill_buffer", rest)) {
        if (applyFillBufferOverride(config.cdf.fillBuffer, rest,
                                    value, where))
            return;
    } else if (splitPrefix(key, "pre.fill_buffer", rest)) {
        if (applyFillBufferOverride(config.pre.fillBuffer, rest,
                                    value, where))
            return;
    }

    specError(where, "unknown config override key '" + key + "'");
}

ooo::CoreMode
parseCoreMode(const std::string &text, const std::string &where)
{
    if (text == "baseline")
        return ooo::CoreMode::Baseline;
    if (text == "cdf")
        return ooo::CoreMode::Cdf;
    if (text == "pre")
        return ooo::CoreMode::Pre;
    specError(where, "unknown mode '" + text +
                         "' (want baseline, cdf or pre)");
}

namespace
{

SpecWindow
parseWindow(const Json &obj, const std::string &where)
{
    needObject(obj, where);
    rejectUnknownMembers(
        obj, where, {"warmup_instrs", "measure_instrs", "max_cycles"});
    SpecWindow w;
    if (const Json *v = obj.find("warmup_instrs"))
        w.warmupInstrs = needUint(*v, where + ".warmup_instrs");
    if (const Json *v = obj.find("measure_instrs"))
        w.measureInstrs = needUint(*v, where + ".measure_instrs");
    if (const Json *v = obj.find("max_cycles"))
        w.maxCycles = needUint(*v, where + ".max_cycles");
    return w;
}

std::vector<SpecOverride>
parseOverrides(const Json &obj, const std::string &where)
{
    needObject(obj, where);
    std::vector<SpecOverride> out;
    out.reserve(obj.members().size());
    for (const auto &kv : obj.members())
        out.push_back({kv.first, kv.second});
    return out;
}

SpecVariant
parseVariant(const Json &obj, const std::string &where)
{
    needObject(obj, where);
    rejectUnknownMembers(obj, where,
                         {"name", "mode", "config", "spec"});
    SpecVariant v;
    const Json *name = obj.find("name");
    if (!name)
        specError(where, "variant needs a \"name\"");
    v.name = needString(*name, where + ".name");
    if (v.name.empty())
        specError(where + ".name", "variant name must be non-empty");
    const Json *mode = obj.find("mode");
    if (!mode)
        specError(where, "variant needs a \"mode\"");
    v.mode = parseCoreMode(needString(*mode, where + ".mode"),
                           where + ".mode");
    if (const Json *cfg = obj.find("config"))
        v.config = parseOverrides(*cfg, where + ".config");
    if (const Json *spec = obj.find("spec"))
        v.window = parseWindow(*spec, where + ".spec");
    return v;
}

SpecAxis
parseAxis(const Json &obj, const std::string &where)
{
    needObject(obj, where);
    rejectUnknownMembers(obj, where, {"name", "values"});
    SpecAxis axis;
    const Json *name = obj.find("name");
    if (!name)
        specError(where, "axis needs a \"name\"");
    axis.name = needString(*name, where + ".name");
    const Json *values = obj.find("values");
    if (!values)
        specError(where, "axis needs a \"values\" array");
    needArray(*values, where + ".values");
    if (values->size() == 0)
        specError(where + ".values", "axis has no values");
    for (std::size_t i = 0; i < values->items().size(); ++i) {
        const std::string vw =
            where + ".values[" + std::to_string(i) + "]";
        const Json &vj = values->items()[i];
        needObject(vj, vw);
        rejectUnknownMembers(vj, vw, {"tag", "config", "spec"});
        SpecAxisValue val;
        const Json *tag = vj.find("tag");
        if (!tag)
            specError(vw, "axis value needs a \"tag\"");
        val.tag = needString(*tag, vw + ".tag");
        if (const Json *cfg = vj.find("config"))
            val.config = parseOverrides(*cfg, vw + ".config");
        if (const Json *spec = vj.find("spec"))
            val.window = parseWindow(*spec, vw + ".spec");
        axis.values.push_back(std::move(val));
    }
    return axis;
}

} // namespace

SpecGroup &
SweepSpec::group(std::vector<std::string> workloads)
{
    const auto &all = workloads::allWorkloadNames();
    std::vector<std::string> resolved;
    auto appendUnique = [&resolved](const std::string &name) {
        if (std::find(resolved.begin(), resolved.end(), name) ==
            resolved.end())
            resolved.push_back(name);
    };
    const std::string where =
        "groups[" + std::to_string(groups_.size()) + "].workloads";
    for (const auto &entry : workloads) {
        if (entry == "*") {
            for (const auto &name : all)
                appendUnique(name);
            continue;
        }
        if (!entry.empty() && entry[0] == '@') {
            const std::string setName = entry.substr(1);
            bool found = false;
            for (const auto &[sn, members] : workloadSets_) {
                if (sn != setName)
                    continue;
                for (const auto &name : members)
                    appendUnique(name);
                found = true;
                break;
            }
            if (!found)
                specError(where,
                          "unknown workload set '" + setName + "'");
            continue;
        }
        if (std::find(all.begin(), all.end(), entry) == all.end())
            specError(where, "unknown workload '" + entry + "'");
        appendUnique(entry);
    }
    if (resolved.empty())
        specError(where, "group names no workloads");
    groups_.push_back({std::move(resolved), {}, false, {}, {}});
    return groups_.back();
}

SweepSpec
SweepSpec::fromJson(const Json &doc, const std::string &where)
{
    needObject(doc, where);
    rejectUnknownMembers(doc, where,
                         {"sweep", "schema_version", "defaults",
                          "workload_sets", "groups"});
    const Json *name = doc.find("sweep");
    if (!name)
        specError(where, "spec needs a \"sweep\" name");
    const Json *version = doc.find("schema_version");
    if (!version)
        specError(where, "spec needs a \"schema_version\"");
    if (needUint(*version, where + ".schema_version") != 1)
        specError(where + ".schema_version",
                  "unsupported schema version (want 1)");

    SweepSpec spec(needString(*name, where + ".sweep"));

    if (const Json *defaults = doc.find("defaults"))
        parseWindow(*defaults, where + ".defaults")
            .applyTo(spec.defaults_);

    if (const Json *sets = doc.find("workload_sets")) {
        needObject(*sets, where + ".workload_sets");
        for (const auto &[setName, list] : sets->members()) {
            const std::string sw =
                where + ".workload_sets." + setName;
            needArray(list, sw);
            std::vector<std::string> names;
            for (std::size_t i = 0; i < list.items().size(); ++i)
                names.push_back(needString(
                    list.items()[i],
                    sw + "[" + std::to_string(i) + "]"));
            spec.defineWorkloadSet(setName, std::move(names));
        }
    }

    const Json *groups = doc.find("groups");
    if (!groups)
        specError(where, "spec needs a \"groups\" array");
    needArray(*groups, where + ".groups");
    if (groups->size() == 0)
        specError(where + ".groups", "spec has no groups");

    for (std::size_t gi = 0; gi < groups->items().size(); ++gi) {
        const std::string gw =
            where + ".groups[" + std::to_string(gi) + "]";
        const Json &gj = groups->items()[gi];
        needObject(gj, gw);
        rejectUnknownMembers(
            gj, gw, {"workloads", "axes", "zip", "spec", "variants"});

        const Json *wl = gj.find("workloads");
        if (!wl)
            specError(gw, "group needs a \"workloads\" array");
        needArray(*wl, gw + ".workloads");
        std::vector<std::string> names;
        for (std::size_t i = 0; i < wl->items().size(); ++i)
            names.push_back(
                needString(wl->items()[i],
                           gw + ".workloads[" + std::to_string(i) +
                               "]"));
        // group() validates names/sets and reports as groups[gi]; it
        // throws with a path relative to the spec root, so prefix the
        // file for parity with the other messages here.
        SpecGroup *g = nullptr;
        try {
            g = &spec.group(std::move(names));
        } catch (const std::runtime_error &e) {
            throw std::runtime_error(where + ": " +
                                     std::string(e.what()));
        }

        if (const Json *zip = gj.find("zip"))
            g->zip = needBool(*zip, gw + ".zip");
        if (const Json *sw = gj.find("spec"))
            g->window = parseWindow(*sw, gw + ".spec");
        if (const Json *axes = gj.find("axes")) {
            needArray(*axes, gw + ".axes");
            for (std::size_t ai = 0; ai < axes->items().size(); ++ai)
                g->axes.push_back(parseAxis(
                    axes->items()[ai],
                    gw + ".axes[" + std::to_string(ai) + "]"));
        }

        const Json *variants = gj.find("variants");
        if (!variants)
            specError(gw, "group needs a \"variants\" array");
        needArray(*variants, gw + ".variants");
        if (variants->size() == 0)
            specError(gw + ".variants", "group has no variants");
        for (std::size_t vi = 0; vi < variants->items().size(); ++vi)
            g->variants.push_back(parseVariant(
                variants->items()[vi],
                gw + ".variants[" + std::to_string(vi) + "]"));

        if (g->zip && !g->axes.empty()) {
            const std::size_t n = g->axes.front().values.size();
            for (const SpecAxis &axis : g->axes) {
                if (axis.values.size() != n)
                    specError(gw + ".axes",
                              "zipped axes have unequal lengths");
            }
        }
    }
    return spec;
}

SweepSpec
SweepSpec::fromFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error(path + ": cannot read spec file");
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    Json doc = Json::parse(buf.str(), &error);
    if (doc.isNull())
        throw std::runtime_error(path + ": " + error);
    return fromJson(doc, path);
}

std::vector<std::string>
SweepSpec::workloadUnion() const
{
    std::vector<std::string> out;
    for (const SpecGroup &g : groups_) {
        for (const auto &name : g.workloads) {
            if (std::find(out.begin(), out.end(), name) == out.end())
                out.push_back(name);
        }
    }
    return out;
}

std::vector<SweepCell>
SweepSpec::expand(const ooo::CoreConfig &base,
                  const std::vector<std::string> &filter) const
{
    std::vector<SweepCell> cells;
    std::set<std::string> seen;

    for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
        const SpecGroup &g = groups_[gi];
        const std::string gw =
            name_ + ": groups[" + std::to_string(gi) + "]";

        // --workloads semantics: restrict to the filter, in FILTER
        // order (the legacy benches iterate h.workloads(), which
        // preserves the user's order). Groups whose workloads are
        // all filtered out contribute nothing.
        std::vector<std::string> effective;
        if (filter.empty()) {
            effective = g.workloads;
        } else {
            for (const auto &want : filter) {
                if (std::find(g.workloads.begin(), g.workloads.end(),
                              want) != g.workloads.end())
                    effective.push_back(want);
            }
        }

        // Axis-value combinations, first axis outermost. The
        // odometer counts the LAST axis fastest; zip mode advances
        // every axis together.
        std::size_t combos = 1;
        if (g.zip && !g.axes.empty()) {
            combos = g.axes.front().values.size();
        } else {
            for (const SpecAxis &axis : g.axes)
                combos *= axis.values.size();
        }

        for (std::size_t c = 0; c < combos; ++c) {
            // Per-axis value index for combination c.
            std::vector<std::size_t> pick(g.axes.size(), 0);
            if (g.zip) {
                for (std::size_t a = 0; a < g.axes.size(); ++a)
                    pick[a] = c;
            } else {
                std::size_t rem = c;
                for (std::size_t a = g.axes.size(); a-- > 0;) {
                    pick[a] = rem % g.axes[a].values.size();
                    rem /= g.axes[a].values.size();
                }
            }

            for (const auto &workload : effective) {
                for (std::size_t vi = 0; vi < g.variants.size();
                     ++vi) {
                    const SpecVariant &v = g.variants[vi];
                    const std::string vw =
                        gw + ".variants[" + std::to_string(vi) + "]";

                    SweepCell cell;
                    cell.workload = workload;
                    cell.mode = v.mode;
                    cell.config = base;
                    cell.spec = defaults_;
                    g.window.applyTo(cell.spec);

                    std::string variantName = v.name;
                    for (std::size_t a = 0; a < g.axes.size(); ++a) {
                        const SpecAxisValue &val =
                            g.axes[a].values[pick[a]];
                        for (const SpecOverride &o : val.config)
                            applyConfigOverride(
                                cell.config, o.key, o.value,
                                gw + ".axes[" + std::to_string(a) +
                                    "].config." + o.key);
                        val.window.applyTo(cell.spec);
                        if (!val.tag.empty())
                            variantName += "@" + val.tag;
                    }
                    for (const SpecOverride &o : v.config)
                        applyConfigOverride(cell.config, o.key,
                                            o.value,
                                            vw + ".config." + o.key);
                    v.window.applyTo(cell.spec);

                    cell.variant = std::move(variantName);
                    cell.config.mode = cell.mode;

                    const std::string id =
                        cell.workload + "/" + cell.variant;
                    if (!seen.insert(id).second)
                        specError(vw, "duplicate cell " + id);
                    cells.push_back(std::move(cell));
                }
            }
        }
    }
    return cells;
}

} // namespace cdfsim::sim
