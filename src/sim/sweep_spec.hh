/**
 * @file
 * Declarative sweep descriptions (ROADMAP: "Config sweeps as data").
 *
 * Every figure/ablation bench runs the same shape of matrix —
 * (workload x mode x config overrides x run window) — but each used
 * to hand-write it as C++ loops. SweepSpec is the data form of that
 * matrix: named workload sets, variant lists, config-override axes
 * (cross-product or zipped) and run-window overrides, expanded into
 * the exact SweepCell list SweepRunner consumes. A spec can be built
 * in C++ (the bench binaries declare their grids this way) or parsed
 * from a schema-versioned JSON file (under `bench/specs/`, run by
 * the generic `bench_sweep_spec` driver), and both forms expand to
 * identical cell lists.
 *
 * Expansion order is deterministic and part of the contract: for
 * each group in declaration order, for each axis-value combination
 * (first axis outermost; zipped axes advance in lockstep), for each
 * workload, for each variant. This reproduces the legacy bench
 * loops cell-for-cell, which the spec-vs-legacy identity ctests
 * pin at bench_compare --tolerance 0.
 *
 * Validation failures throw std::runtime_error with a message that
 * names the offending spec path (e.g. "groups[2].variants[1].mode").
 */

#ifndef CDFSIM_SIM_SWEEP_SPEC_HH
#define CDFSIM_SIM_SWEEP_SPEC_HH

#include <string>
#include <utility>
#include <vector>

#include "common/json.hh"
#include "sim/sweep.hh"

namespace cdfsim::sim
{

/** One dotted-key config override, e.g. {"cdf.partition.dynamic",
 *  false}. Keys are the snake_case JSON names, not C++ members. */
struct SpecOverride
{
    std::string key;
    Json value;
};

/**
 * A partial RunSpec: only fields explicitly set override the level
 * below (defaults -> group -> axis value -> variant).
 */
struct SpecWindow
{
    /** Sentinel for "keep the inherited value". */
    static constexpr std::uint64_t kKeep = ~std::uint64_t{0};

    std::uint64_t warmupInstrs = kKeep;
    std::uint64_t measureInstrs = kKeep;
    std::uint64_t maxCycles = kKeep;

    void
    applyTo(RunSpec &spec) const
    {
        if (warmupInstrs != kKeep)
            spec.warmupInstrs = warmupInstrs;
        if (measureInstrs != kKeep)
            spec.measureInstrs = measureInstrs;
        if (maxCycles != kKeep)
            spec.maxCycles = maxCycles;
    }
};

/** One point on an axis: a tag appended to variant names plus the
 *  overrides it stands for. */
struct SpecAxisValue
{
    std::string tag;
    std::vector<SpecOverride> config;
    SpecWindow window;

    /** Builder sugar: append one config override. */
    SpecAxisValue &
    set(std::string key, Json value)
    {
        config.push_back({std::move(key), std::move(value)});
        return *this;
    }
};

/** One config-override axis (e.g. the Fig. 17 window scale). */
struct SpecAxis
{
    std::string name;
    std::vector<SpecAxisValue> values;

    /** Builder sugar: append a value and return it for .set(). */
    SpecAxisValue &
    value(std::string tag)
    {
        values.push_back({std::move(tag), {}, {}});
        return values.back();
    }
};

/** One run variant within a group (e.g. "cdf_nobr"). */
struct SpecVariant
{
    std::string name;
    ooo::CoreMode mode = ooo::CoreMode::Baseline;
    std::vector<SpecOverride> config;
    SpecWindow window;

    /** Builder sugar: append one config override. */
    SpecVariant &
    set(std::string key, Json value)
    {
        config.push_back({std::move(key), std::move(value)});
        return *this;
    }
};

/** A (workloads x axes x variants) block of the matrix. */
struct SpecGroup
{
    std::vector<std::string> workloads;
    std::vector<SpecAxis> axes;
    /** Advance all axes in lockstep instead of a cross product
     *  (every axis must then have the same number of values). */
    bool zip = false;
    SpecWindow window;
    std::vector<SpecVariant> variants;

    /** Builder sugar: append a variant and return it for .set(). */
    SpecVariant &
    variant(std::string name, ooo::CoreMode mode)
    {
        variants.push_back({std::move(name), mode, {}, {}});
        return variants.back();
    }

    /** Builder sugar: append an axis and return it. */
    SpecAxis &
    axis(std::string name)
    {
        axes.push_back({std::move(name), {}});
        return axes.back();
    }
};

/**
 * A complete declarative sweep. See the README "Sweep specs" section
 * for the JSON schema (sweep_spec_schema_version 1).
 */
class SweepSpec
{
  public:
    explicit SweepSpec(std::string name) : name_(std::move(name)) {}

    /** Parse a spec document. @p where prefixes every error message
     *  (normally the file path). Throws std::runtime_error. */
    static SweepSpec fromJson(const Json &doc,
                              const std::string &where);

    /** Read + parse a spec file. Throws std::runtime_error. */
    static SweepSpec fromFile(const std::string &path);

    const std::string &name() const { return name_; }

    /** The sweep-wide RunSpec every cell starts from. */
    RunSpec &defaults() { return defaults_; }
    const RunSpec &defaults() const { return defaults_; }

    /** Define a named workload set usable as "@name" in groups. */
    void
    defineWorkloadSet(std::string name,
                      std::vector<std::string> workloads)
    {
        workloadSets_.emplace_back(std::move(name),
                                   std::move(workloads));
    }

    /**
     * Append a group. @p workloads entries may be literal workload
     * names, "@set" references, or "*" (every workload); they are
     * resolved and validated immediately. Throws on unknown names.
     */
    SpecGroup &group(std::vector<std::string> workloads);

    const std::vector<SpecGroup> &groups() const { return groups_; }

    /** Every distinct workload any group names, in first-appearance
     *  order — the "available" list for a --workloads filter. */
    std::vector<std::string> workloadUnion() const;

    /**
     * Expand to the cell list, in the documented deterministic
     * order. @p filter, when non-empty, restricts each group to the
     * filter's workloads in FILTER order (matching the legacy
     * benches' --workloads semantics); entries no group names are
     * ignored here — validate them against workloadUnion() first.
     * Throws std::runtime_error on duplicate (workload, variant)
     * cells or invalid overrides, naming the spec path.
     */
    std::vector<SweepCell>
    expand(const ooo::CoreConfig &base,
           const std::vector<std::string> &filter = {}) const;

  private:
    std::string name_;
    RunSpec defaults_{};
    std::vector<std::pair<std::string, std::vector<std::string>>>
        workloadSets_;
    std::vector<SpecGroup> groups_;
};

/**
 * Apply one dotted snake_case override (see the README schema table
 * for the key registry) to @p config. "scale_window" is an action:
 * it calls CoreConfig::scaleWindow. Throws std::runtime_error
 * prefixed with @p where on unknown keys or type mismatches.
 */
void applyConfigOverride(ooo::CoreConfig &config,
                         const std::string &key, const Json &value,
                         const std::string &where);

/** Parse "baseline"/"cdf"/"pre"; throws naming @p where otherwise. */
ooo::CoreMode parseCoreMode(const std::string &text,
                            const std::string &where);

} // namespace cdfsim::sim

#endif // CDFSIM_SIM_SWEEP_SPEC_HH
