#include "workloads/workloads.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/types.hh"

namespace cdfsim::workloads
{

namespace
{

using isa::ProgramBuilder;

// --- Register conventions shared by every kernel ---
constexpr RegId rCnt = 0;        // main loop countdown
constexpr RegId rStreamBase = 1;
constexpr RegId rBigBase = 2;
constexpr RegId rPtr = 3;        // pointer-chase cursor
constexpr RegId rLcg = 4;        // xorshift state
constexpr RegId rStreamMask = 5; // stream index mask (in words)
constexpr RegId rBigMask = 6;    // big-array index mask (in words)
constexpr RegId rInd = 7;        // induction variable
constexpr RegId rT0 = 8;
constexpr RegId rT1 = 9;
constexpr RegId rT2 = 10;
constexpr RegId rT3 = 11;
constexpr RegId rT4 = 12;
constexpr RegId rT5 = 13;
constexpr RegId rAcc = 14;
constexpr RegId rScratchBase = 15;
constexpr RegId rFillBase = 16; // r16..r29 are filler temps
constexpr RegId rC13 = 30;
constexpr RegId rC7 = 31;
constexpr RegId rC17 = 32;
constexpr RegId rC3 = 33;       // word->byte shift
constexpr RegId rC1 = 34;
constexpr RegId rLink = 35;

// --- Memory map (byte addresses) ---
constexpr Addr kStreamBase = 0x1000'0000;
constexpr Addr kBigBase = 0x4000'0000;
constexpr Addr kChainBase = 0x8000'0000;
constexpr Addr kScratchBase = 0xC000'0000;

/** Standard prologue: constants and array bases. */
void
emitPrologue(ProgramBuilder &b, std::int64_t iterations)
{
    b.movi(rCnt, iterations);
    b.movi(rStreamBase, static_cast<std::int64_t>(kStreamBase));
    b.movi(rBigBase, static_cast<std::int64_t>(kBigBase));
    b.movi(rScratchBase, static_cast<std::int64_t>(kScratchBase));
    b.movi(rLcg, 0x2545F4914F6CDD1D);
    b.movi(rInd, 0);
    b.movi(rAcc, 0);
    b.movi(rC13, 13);
    b.movi(rC7, 7);
    b.movi(rC17, 17);
    b.movi(rC3, 3);
    b.movi(rC1, 1);
}

/** xorshift64 step on rLcg (6 uops). */
void
emitLcg(ProgramBuilder &b)
{
    b.shl(rT0, rLcg, rC13);
    b.xor_(rLcg, rLcg, rT0);
    b.shr(rT0, rLcg, rC7);
    b.xor_(rLcg, rLcg, rT0);
    b.shl(rT0, rLcg, rC17);
    b.xor_(rLcg, rLcg, rT0);
}

/**
 * dst = mem64[base + (idx & mask) * 8]; clobbers tmp. 4 uops.
 */
void
emitIndexedLoad(ProgramBuilder &b, RegId dst, RegId base, RegId idx,
                RegId mask, RegId tmp)
{
    b.and_(tmp, idx, mask);
    b.shl(tmp, tmp, rC3);
    b.add(tmp, tmp, base);
    b.load(dst, tmp, 0);
}

/**
 * Predictable ALU filler: @p n uops across the filler temps with
 * short dependency chains that never touch critical registers.
 */
void
emitFiller(ProgramBuilder &b, unsigned n)
{
    for (unsigned i = 0; i < n; ++i) {
        const RegId d = rFillBase + (i % 14);
        const RegId s = rFillBase + ((i + 5) % 14);
        if (i % 3 == 0)
            b.add(d, d, s);
        else if (i % 3 == 1)
            b.xor_(d, d, s);
        else
            b.addi(d, d, 7);
    }
}

/** Fill [base, base + words*8) with rng values masked by valueMask. */
void
fillRandom(isa::MemoryImage &mem, Addr base, std::uint64_t words,
           Random &rng, std::uint64_t valueMask = ~0ull)
{
    for (std::uint64_t w = 0; w < words; ++w)
        mem.write(base + w * 8, rng.next() & valueMask);
}

/**
 * Build a single-cycle random permutation chain: each word holds
 * the byte address of the next element (Sattolo's algorithm), so a
 * pointer chase visits every element before repeating.
 */
void
fillChain(isa::MemoryImage &mem, Addr base, std::uint64_t words,
          Random &rng)
{
    std::vector<std::uint32_t> perm(words);
    for (std::uint64_t i = 0; i < words; ++i)
        perm[i] = static_cast<std::uint32_t>(i);
    for (std::uint64_t i = words - 1; i > 0; --i) {
        const std::uint64_t j = rng.below(i);
        std::swap(perm[i], perm[j]);
    }
    for (std::uint64_t i = 0; i < words; ++i)
        mem.write(base + i * 8, base + perm[i] * 8ull);
}

constexpr std::int64_t kForever = 1'000'000'000;

// =====================================================================
// Kernels
// =====================================================================

/**
 * astar-like: a streaming load feeds a data-dependent random index
 * into a large array (an LLC miss), guarded by a hard-to-predict
 * branch on the loaded value (paper Fig. 2). Misses are independent
 * across iterations, so a larger effective window directly buys MLP.
 */
Workload
astarLike(std::uint64_t seed)
{
    constexpr std::uint64_t streamWords = 1ull << 13;  // 64KB: LLC-hot
    constexpr std::uint64_t bigWords = 1ull << 22;     // 32MB
    ProgramBuilder b("astar_like");
    emitPrologue(b, kForever);
    b.movi(rStreamMask, streamWords - 1);
    b.movi(rBigMask, bigWords - 1);
    auto loop = b.makeLabel();
    auto skip = b.makeLabel();
    b.bind(loop);
    b.addi(rInd, rInd, 1);
    // Streaming index load (prefetch-friendly / LLC-resident).
    emitIndexedLoad(b, rT1, rStreamBase, rInd, rStreamMask, rT0);
    // Mix in the induction variable so the index stream does not
    // cycle with the (small) index array.
    b.add(rT1, rT1, rInd);
    // Critical: random-index load into the big array.
    emitIndexedLoad(b, rT2, rBigBase, rT1, rBigMask, rT0);
    // Hard-to-predict branch on the loaded value (~25% taken).
    b.and_(rT3, rT2, rC3);
    b.bnez(rT3, skip);
    b.add(rAcc, rAcc, rT2);
    b.addi(rAcc, rAcc, 3);
    b.bind(skip);
    emitFiller(b, 26);
    b.addi(rCnt, rCnt, -1);
    b.bnez(rCnt, loop);
    b.halt();

    Workload w;
    w.name = "astar";
    w.description = "random-index misses behind a hard branch";
    w.program = b.build();
    w.init = [seed](isa::MemoryImage &mem) {
        Random rng(seed ^ 0xA57A);
        fillRandom(mem, kStreamBase, streamWords, rng);
        fillRandom(mem, kBigBase, bigWords, rng);
    };
    return w;
}

/**
 * mcf-like: serial pointer chasing (dependent misses) with a
 * hard-to-predict branch on the node payload. No MLP to extract;
 * CDF gains via early initiation and critical-branch resolution,
 * while runahead chains taint on the outstanding miss.
 */
Workload
mcfLike(std::uint64_t seed)
{
    constexpr std::uint64_t chainWords = 1ull << 21; // 16MB
    ProgramBuilder b("mcf_like");
    emitPrologue(b, kForever);
    b.movi(rPtr, static_cast<std::int64_t>(kChainBase));
    b.movi(rT4, static_cast<std::int64_t>(kChainBase) + 8 * 7);
    auto loop = b.makeLabel();
    auto skip = b.makeLabel();
    b.bind(loop);
    // Two interleaved pointer chains: a little MLP exists, gated by
    // hard-to-predict payload branches between the hops.
    b.load(rPtr, rPtr, 0);       // critical: dependent miss, chain A
    b.shr(rT1, rPtr, rC3);       // pseudo payload from the address
    b.and_(rT2, rT1, rC3);
    b.beqz(rT2, skip);           // hard branch (~25% taken)
    b.add(rAcc, rAcc, rT1);
    b.bind(skip);
    b.load(rT4, rT4, 0);         // critical: chain B
    emitFiller(b, 18);
    b.addi(rCnt, rCnt, -1);
    b.bnez(rCnt, loop);
    b.halt();

    Workload w;
    w.name = "mcf";
    w.description = "pointer chase with hard payload branches";
    w.program = b.build();
    w.init = [seed](isa::MemoryImage &mem) {
        Random rng(seed ^ 0x3CF);
        fillChain(mem, kChainBase, chainWords, rng);
    };
    return w;
}

/**
 * lbm-like: wide streaming (prefetcher-covered) plus an
 * LCG-indexed independent miss every iteration; full-window stalls
 * are short, starving runahead, while CDF still extracts MLP.
 */
Workload
lbmLike(std::uint64_t seed)
{
    constexpr std::uint64_t streamWords = 1ull << 21; // 16MB stream
    constexpr std::uint64_t bigWords = 1ull << 18;    // 2MB: ~50% hit
    ProgramBuilder b("lbm_like");
    emitPrologue(b, kForever);
    b.movi(rStreamMask, streamWords - 1);
    b.movi(rBigMask, bigWords - 1);
    auto loop = b.makeLabel();
    b.bind(loop);
    b.addi(rInd, rInd, 1);
    // Three streaming loads + one streaming store (prefetchable).
    emitIndexedLoad(b, rT1, rStreamBase, rInd, rStreamMask, rT0);
    emitIndexedLoad(b, rT2, rStreamBase, rInd, rStreamMask, rT0);
    b.fadd(rT3, rT1, rT2);
    emitIndexedLoad(b, rT4, rStreamBase, rInd, rStreamMask, rT0);
    b.fmul(rT3, rT3, rT4);
    b.and_(rT0, rInd, rStreamMask);
    b.shl(rT0, rT0, rC3);
    b.add(rT0, rT0, rScratchBase);
    b.store(rT0, 0, rT3);
    // Independent random miss (register-computed index) only every
    // fourth iteration: full-window stalls stay short.
    emitLcg(b);
    auto noMiss = b.makeLabel();
    b.and_(rT5, rInd, rC3);
    b.bnez(rT5, noMiss);
    emitIndexedLoad(b, rT5, rBigBase, rLcg, rBigMask, rT0);
    b.add(rAcc, rAcc, rT5);
    b.bind(noMiss);
    emitFiller(b, 10);
    b.addi(rCnt, rCnt, -1);
    b.bnez(rCnt, loop);
    b.halt();

    Workload w;
    w.name = "lbm";
    w.description = "streaming with short stalls + independent misses";
    w.program = b.build();
    w.init = [seed](isa::MemoryImage &mem) {
        Random rng(seed ^ 0x1B);
        fillRandom(mem, kStreamBase, streamWords, rng);
        fillRandom(mem, kBigBase, 1ull << 18, rng); // values immaterial
    };
    return w;
}

/**
 * bzip2-like: long stretches of branchy, predictable-latency integer
 * work with a stall-causing load only every ~32 iterations. CDF's
 * win is faster initiation of the distant load.
 */
Workload
bzipLike(std::uint64_t seed, const char *name = "bzip2",
         unsigned gapIters = 32, unsigned fillerPerIter = 20)
{
    constexpr std::uint64_t bigWords = 1ull << 22;
    ProgramBuilder b(name);
    emitPrologue(b, kForever);
    b.movi(rBigMask, bigWords - 1);
    b.movi(rStreamMask, gapIters - 1); // reused as the gap mask
    auto loop = b.makeLabel();
    auto noMiss = b.makeLabel();
    auto skip = b.makeLabel();
    b.bind(loop);
    b.addi(rInd, rInd, 1);
    emitLcg(b);
    // A mildly hard branch on LCG bits (~12% taken).
    b.and_(rT1, rLcg, rC7);
    b.bnez(rT1, skip);
    b.addi(rAcc, rAcc, 1);
    b.bind(skip);
    emitFiller(b, fillerPerIter);
    // The distant critical load: only when (ind & gapMask) == 0.
    b.and_(rT2, rInd, rStreamMask);
    b.bnez(rT2, noMiss);
    emitIndexedLoad(b, rT3, rBigBase, rLcg, rBigMask, rT0);
    b.add(rAcc, rAcc, rT3);
    b.bind(noMiss);
    b.addi(rCnt, rCnt, -1);
    b.bnez(rCnt, loop);
    b.halt();

    Workload w;
    w.name = name;
    w.description = "stall-causing loads spaced far apart";
    w.program = b.build();
    w.init = [seed](isa::MemoryImage &mem) {
        Random rng(seed ^ 0xB21);
        fillRandom(mem, kBigBase, 1ull << 18, rng);
    };
    return w;
}

/**
 * soplex-like: sparse-matrix traversal; an index vector (streamed)
 * selects values from a footprint ~4x the LLC, with a value branch.
 */
Workload
soplexLike(std::uint64_t seed)
{
    constexpr std::uint64_t streamWords = 1ull << 13;
    constexpr std::uint64_t medWords = 1ull << 19; // 4MB: ~75% miss
    ProgramBuilder b("soplex_like");
    emitPrologue(b, kForever);
    b.movi(rStreamMask, streamWords - 1);
    b.movi(rBigMask, medWords - 1);
    auto loop = b.makeLabel();
    auto skip = b.makeLabel();
    b.bind(loop);
    b.addi(rInd, rInd, 1);
    emitIndexedLoad(b, rT1, rStreamBase, rInd, rStreamMask, rT0);
    emitIndexedLoad(b, rT2, rBigBase, rT1, rBigMask, rT0);
    b.and_(rT3, rT2, rC1);
    b.bnez(rT3, skip); // ~50% hard branch on sparse value
    b.fmul(rT4, rT2, rT1);
    b.fadd(rAcc, rAcc, rT4);
    b.bind(skip);
    emitFiller(b, 14);
    b.addi(rCnt, rCnt, -1);
    b.bnez(rCnt, loop);
    b.halt();

    Workload w;
    w.name = "soplex";
    w.description = "sparse matrix with value-dependent branches";
    w.program = b.build();
    w.init = [seed](isa::MemoryImage &mem) {
        Random rng(seed ^ 50);
        fillRandom(mem, kStreamBase, streamWords, rng);
        fillRandom(mem, kBigBase, medWords, rng);
    };
    return w;
}

/**
 * libquantum-like: pure gate sweep over a huge amplitude array;
 * the stream prefetcher covers nearly everything. Neither mechanism
 * helps; runahead merely duplicates prefetches.
 */
Workload
libquantumLike(std::uint64_t seed)
{
    constexpr std::uint64_t streamWords = 1ull << 22; // 32MB
    ProgramBuilder b("libquantum_like");
    emitPrologue(b, kForever);
    b.movi(rStreamMask, streamWords - 1);
    auto loop = b.makeLabel();
    auto skip = b.makeLabel();
    b.bind(loop);
    b.addi(rInd, rInd, 1);
    emitIndexedLoad(b, rT1, rStreamBase, rInd, rStreamMask, rT0);
    b.xor_(rT2, rT1, rC13);          // toggle control bit
    b.and_(rT3, rInd, rC1);
    b.beqz(rT3, skip);               // alternating: well-predicted
    b.add(rAcc, rAcc, rT2);
    b.bind(skip);
    b.and_(rT0, rInd, rStreamMask);
    b.shl(rT0, rT0, rC3);
    b.add(rT0, rT0, rStreamBase);
    b.store(rT0, 0, rT2);
    emitFiller(b, 6);
    b.addi(rCnt, rCnt, -1);
    b.bnez(rCnt, loop);
    b.halt();

    Workload w;
    w.name = "libquantum";
    w.description = "prefetcher-covered streaming sweep";
    w.program = b.build();
    w.init = [seed](isa::MemoryImage &mem) {
        Random rng(seed ^ 0x11B);
        fillRandom(mem, kStreamBase, streamWords, rng, 0xFF);
    };
    return w;
}

/**
 * CactuBSSN-like: stencil whose chain loads become address-tainted
 * during runahead (the stencil offset is loaded under the
 * outstanding miss), reproducing PRE's excess memory traffic.
 */
Workload
cactuLike(std::uint64_t seed)
{
    constexpr std::uint64_t bigWords = 1ull << 22;
    ProgramBuilder b("cactu_like");
    emitPrologue(b, kForever);
    b.movi(rBigMask, bigWords - 1);
    auto loop = b.makeLabel();
    b.bind(loop);
    b.addi(rInd, rInd, 1);
    // A register-computable first miss feeding a value-dependent
    // second hop: runahead can prefetch the first level but its
    // second-level chains compute with unavailable data, producing
    // the wrong-address traffic the paper attributes to runahead on
    // CactuBSSN.
    emitLcg(b);
    emitIndexedLoad(b, rT1, rBigBase, rLcg, rBigMask, rT0);
    emitIndexedLoad(b, rT2, rBigBase, rT1, rBigMask, rT0);
    b.fadd(rAcc, rAcc, rT2);
    emitFiller(b, 16);
    b.addi(rCnt, rCnt, -1);
    b.bnez(rCnt, loop);
    b.halt();

    Workload w;
    w.name = "cactu";
    w.description = "dependent stencil loads (runahead taints)";
    w.program = b.build();
    w.init = [seed](isa::MemoryImage &mem) {
        Random rng(seed ^ 0xCAC);
        fillRandom(mem, kBigBase, bigWords, rng);
    };
    return w;
}

/**
 * Dense-critical family (GemsFDTD / zeusmp / fotonik3d / roms):
 * several independent register-computed misses in a short loop.
 * Criticality density is high, so CDF cannot skip much, while
 * runahead prefetches the register-computable future addresses
 * accurately and far ahead.
 */
Workload
denseLike(std::uint64_t seed, const char *name, unsigned missesPerIter,
          unsigned fillerPerIter)
{
    constexpr std::uint64_t bigWords = 1ull << 22;
    ProgramBuilder b(name);
    emitPrologue(b, kForever);
    b.movi(rBigMask, bigWords - 1);
    auto loop = b.makeLabel();
    auto noA = b.makeLabel();
    b.bind(loop);
    b.addi(rInd, rInd, 1);
    emitLcg(b);
    // An independent (register-computable) miss every other
    // iteration: the baseline window exposes only moderate MLP,
    // while runahead can compute and prefetch these far ahead.
    b.and_(rT5, rInd, rC1);
    b.bnez(rT5, noA);
    emitIndexedLoad(b, rT2, rBigBase, rLcg, rBigMask, rT0);
    // A dependent second hop (value-indexed): serial for everyone.
    emitIndexedLoad(b, rT3, rBigBase, rT2, rBigMask, rT0);
    b.add(rAcc, rAcc, rT3);
    b.bind(noA);
    (void)missesPerIter;
    emitFiller(b, fillerPerIter);
    b.addi(rCnt, rCnt, -1);
    b.bnez(rCnt, loop);
    b.halt();

    Workload w;
    w.name = name;
    w.description = "dense independent misses (runahead-friendly)";
    w.program = b.build();
    w.init = [seed](isa::MemoryImage &mem) {
        Random rng(seed ^ 0xDE45E);
        fillRandom(mem, kBigBase, 1ull << 18, rng);
    };
    return w;
}

/**
 * Neutral family (leslie3d / wrf / parest): moderate LLC-resident
 * working sets and predictable control; there is little for either
 * mechanism to accelerate.
 */
Workload
neutralLike(std::uint64_t seed, const char *name, unsigned filler,
            std::uint64_t wsWords)
{
    ProgramBuilder b(name);
    emitPrologue(b, kForever);
    b.movi(rBigMask, static_cast<std::int64_t>(wsWords - 1));
    auto loop = b.makeLabel();
    b.bind(loop);
    b.addi(rInd, rInd, 1);
    emitLcg(b);
    emitIndexedLoad(b, rT1, rBigBase, rLcg, rBigMask, rT0);
    b.fadd(rAcc, rAcc, rT1);
    emitIndexedLoad(b, rT2, rBigBase, rInd, rBigMask, rT0);
    b.fmul(rT3, rT1, rT2);
    b.add(rAcc, rAcc, rT3);
    emitFiller(b, filler);
    b.addi(rCnt, rCnt, -1);
    b.bnez(rCnt, loop);
    b.halt();

    Workload w;
    w.name = name;
    w.description = "LLC-resident working set; little to accelerate";
    w.program = b.build();
    w.init = [seed, wsWords](isa::MemoryImage &mem) {
        Random rng(seed ^ 0x7E0);
        fillRandom(mem, kBigBase, wsWords, rng);
    };
    return w;
}

/**
 * sphinx3-like: the critical load's index register is produced by a
 * DIFFERENT instruction on alternating control paths, so
 * Fill-Buffer masks keep missing producers and CDF suffers
 * dependence violations (paper Fig. 12's pattern).
 */
Workload
sphinxLike(std::uint64_t seed)
{
    constexpr std::uint64_t medWords = 1ull << 19;
    ProgramBuilder b("sphinx_like");
    emitPrologue(b, kForever);
    b.movi(rBigMask, medWords - 1);
    auto loop = b.makeLabel();
    auto pathB = b.makeLabel();
    auto join = b.makeLabel();
    b.bind(loop);
    b.addi(rInd, rInd, 1);
    emitLcg(b);
    b.and_(rT1, rLcg, rC1);
    b.bnez(rT1, pathB);          // ~50% data-dependent path choice
    b.shr(rT2, rLcg, rC7);       // path A produces the index in rT2
    b.jmp(join);
    b.bind(pathB);
    b.shr(rT2, rLcg, rC13);      // path B produces it differently
    b.bind(join);
    emitIndexedLoad(b, rT3, rBigBase, rT2, rBigMask, rT0);
    b.add(rAcc, rAcc, rT3);
    emitFiller(b, 12);
    b.addi(rCnt, rCnt, -1);
    b.bnez(rCnt, loop);
    b.halt();

    Workload w;
    w.name = "sphinx3";
    w.description = "path-dependent producers defeat mask accumulation";
    w.program = b.build();
    w.init = [seed](isa::MemoryImage &mem) {
        Random rng(seed ^ 0x5F1);
        fillRandom(mem, kBigBase, medWords, rng);
    };
    return w;
}

/**
 * omnetpp-like: event-queue pointer chasing with long dependence
 * chains that overflow the Fill Buffer, plus branchy dispatch.
 */
Workload
omnetppLike(std::uint64_t seed)
{
    constexpr std::uint64_t chainWords = 1ull << 20;
    ProgramBuilder b("omnetpp_like");
    emitPrologue(b, kForever);
    b.movi(rPtr, static_cast<std::int64_t>(kChainBase));
    auto loop = b.makeLabel();
    auto skip1 = b.makeLabel();
    auto skip2 = b.makeLabel();
    b.bind(loop);
    b.load(rPtr, rPtr, 0);
    b.shr(rT1, rPtr, rC3);
    b.and_(rT2, rT1, rC7);
    b.beqz(rT2, skip1);
    b.addi(rAcc, rAcc, 1);
    b.bind(skip1);
    emitFiller(b, 30);
    b.and_(rT3, rT1, rC1);
    b.bnez(rT3, skip2);
    b.add(rAcc, rAcc, rT1);
    b.bind(skip2);
    emitFiller(b, 30);
    b.addi(rCnt, rCnt, -1);
    b.bnez(rCnt, loop);
    b.halt();

    Workload w;
    w.name = "omnetpp";
    w.description = "event-queue chasing with dispatch branches";
    w.program = b.build();
    w.init = [seed](isa::MemoryImage &mem) {
        Random rng(seed ^ 0x03E7);
        fillChain(mem, kChainBase, chainWords, rng);
    };
    return w;
}

} // namespace

std::vector<std::string>
allWorkloadNames()
{
    return {"astar",   "mcf",       "soplex",  "bzip2",      "nab",
            "lbm",     "libquantum", "cactu",   "gems",       "zeusmp",
            "fotonik", "roms",       "leslie3d", "sphinx3",    "wrf",
            "parest",  "omnetpp"};
}

Workload
makeWorkload(const std::string &name, std::uint64_t seed)
{
    if (name == "astar")
        return astarLike(seed);
    if (name == "mcf")
        return mcfLike(seed);
    if (name == "soplex")
        return soplexLike(seed);
    if (name == "bzip2")
        return bzipLike(seed, "bzip2", 48, 22);
    if (name == "nab")
        return bzipLike(seed ^ 0xAB, "nab", 96, 26);
    if (name == "lbm")
        return lbmLike(seed);
    if (name == "libquantum")
        return libquantumLike(seed);
    if (name == "cactu")
        return cactuLike(seed);
    if (name == "gems")
        return denseLike(seed, "gems", 3, 3);
    if (name == "zeusmp")
        return denseLike(seed ^ 1, "zeusmp", 2, 2);
    if (name == "fotonik")
        return denseLike(seed ^ 2, "fotonik", 3, 5);
    if (name == "roms")
        return denseLike(seed ^ 3, "roms", 2, 4);
    if (name == "leslie3d")
        return neutralLike(seed, "leslie3d", 10, 1ull << 13);
    if (name == "sphinx3")
        return sphinxLike(seed);
    if (name == "wrf")
        return neutralLike(seed ^ 5, "wrf", 16, 1ull << 13);
    if (name == "parest")
        return neutralLike(seed ^ 6, "parest", 8, 1ull << 12);
    if (name == "omnetpp")
        return omnetppLike(seed);
    fatal("unknown workload '", name, "'");
}

Workload
makeRandomWorkload(std::uint64_t seed, unsigned bodyBlocks,
                   unsigned iterations)
{
    Random rng(seed);
    ProgramBuilder b("random_" + std::to_string(seed));

    // Registers: r0 loop counter, r1 memory base, r2..r11 data.
    b.movi(0, iterations);
    b.movi(1, static_cast<std::int64_t>(kScratchBase));
    for (RegId r = 2; r <= 11; ++r)
        b.movi(r, static_cast<std::int64_t>(rng.below(1000)));

    auto loop = b.makeLabel();
    b.bind(loop);

    for (unsigned blk = 0; blk < bodyBlocks; ++blk) {
        const unsigned len = 2 + static_cast<unsigned>(rng.below(6));
        for (unsigned i = 0; i < len; ++i) {
            const RegId d = 2 + static_cast<RegId>(rng.below(10));
            const RegId s1 = 2 + static_cast<RegId>(rng.below(10));
            const RegId s2 = 2 + static_cast<RegId>(rng.below(10));
            switch (rng.below(10)) {
              case 0: b.add(d, s1, s2); break;
              case 1: b.sub(d, s1, s2); break;
              case 2: b.xor_(d, s1, s2); break;
              case 3: b.mul(d, s1, s2); break;
              case 4: b.cmplt(d, s1, s2); break;
              case 5: b.addi(d, s1,
                             static_cast<std::int64_t>(rng.below(64)));
                      break;
              case 6: { // load from a bounded scratch region
                  b.movi(12, 1023);
                  b.and_(13, s1, 12);
                  b.movi(12, 3);
                  b.shl(13, 13, 12);
                  b.add(13, 13, 1);
                  b.load(d, 13, 0);
                  break;
              }
              case 7: { // store into the scratch region
                  b.movi(12, 1023);
                  b.and_(13, s1, 12);
                  b.movi(12, 3);
                  b.shl(13, 13, 12);
                  b.add(13, 13, 1);
                  b.store(13, 0, s2);
                  break;
              }
              default: b.or_(d, s1, s2); break;
            }
        }
        // A data-dependent forward branch over a small block.
        if (rng.below(2) == 0) {
            auto skip = b.makeLabel();
            const RegId c = 2 + static_cast<RegId>(rng.below(10));
            b.movi(13, 1 + static_cast<std::int64_t>(rng.below(7)));
            b.and_(12, c, 13);
            if (rng.below(2) == 0)
                b.beqz(12, skip);
            else
                b.bnez(12, skip);
            b.addi(2 + static_cast<RegId>(rng.below(10)), 2, 1);
            b.xor_(2 + static_cast<RegId>(rng.below(10)), 3, 4);
            b.bind(skip);
        }
    }

    b.addi(0, 0, -1);
    b.bnez(0, loop);
    b.halt();

    Workload w;
    w.name = "random_" + std::to_string(seed);
    w.description = "random property-test program";
    w.program = b.build();
    const std::uint64_t memSeed = seed ^ 0xF00D;
    w.init = [memSeed](isa::MemoryImage &mem) {
        Random r2(memSeed);
        fillRandom(mem, kScratchBase, 4096, r2);
    };
    return w;
}

} // namespace cdfsim::workloads
