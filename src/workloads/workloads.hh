/**
 * @file
 * Synthetic SPEC-like workload kernels (the trace substitute).
 *
 * The paper evaluates memory-intensive SPEC CPU2006/2017 SimPoints.
 * Without those traces, each benchmark is replaced by a kernel
 * engineered to the characteristic that drives that benchmark's
 * behaviour in the paper's evaluation (Section 4.2):
 *
 *  - astar/mcf/soplex/bzip: hard-to-predict branches on critical
 *    paths, random or pointer-chased LLC misses;
 *  - lbm/libquantum: streaming with short or prefetch-covered
 *    stalls;
 *  - bzip/nab: stall-causing loads spaced far apart;
 *  - GemsFDTD/zeusmp/fotonik3d/roms: dense critical code where PRE's
 *    unbounded prefetch distance beats CDF;
 *  - leslie3d/sphinx3/wrf/parest/omnetpp: neutral mixes where
 *    neither mechanism helps;
 *  - CactuBSSN: chains that taint during runahead, producing PRE's
 *    excess memory traffic.
 *
 * Kernels are deterministic given the seed.
 */

#ifndef CDFSIM_WORKLOADS_WORKLOADS_HH
#define CDFSIM_WORKLOADS_WORKLOADS_HH

#include <functional>
#include <string>
#include <vector>

#include "common/random.hh"
#include "isa/memory_image.hh"
#include "isa/program.hh"

namespace cdfsim::workloads
{

/** A runnable workload: program plus initial memory contents. */
struct Workload
{
    std::string name;
    std::string description;
    isa::Program program;
    std::function<void(isa::MemoryImage &)> init;

    /** Convenience: build a freshly initialized memory image. */
    isa::MemoryImage
    makeMemory() const
    {
        isa::MemoryImage mem;
        if (init)
            init(mem);
        return mem;
    }
};

/** The benchmark names used across Figs. 13-17. */
std::vector<std::string> allWorkloadNames();

/** Construct the named workload. Fatal on unknown names. */
Workload makeWorkload(const std::string &name,
                      std::uint64_t seed = 0x5EED);

/**
 * A random (but always-terminating) program over the full ISA, used
 * by the end-to-end equivalence property tests. Programs consist of
 * a bounded outer loop around randomized straight-line/branchy
 * bodies with loads, stores and (occasionally) calls.
 */
Workload makeRandomWorkload(std::uint64_t seed,
                            unsigned bodyBlocks = 8,
                            unsigned iterations = 400);

} // namespace cdfsim::workloads

#endif // CDFSIM_WORKLOADS_WORKLOADS_HH
