/**
 * @file
 * Unit tests for the SIM_AUDIT invariant layer (common/audit.hh).
 *
 * Each audited structure is exercised twice: auditInvariants() must
 * stay silent on a structure driven only through its public API, and
 * must panic once AuditPeer (the test-only friend) corrupts private
 * state in the specific way the check exists to catch. This target is
 * compiled with CDFSIM_AUDIT=1, so the hot-path SIM_AUDIT_ONLY hooks
 * are live here too and one test proves a sampled mutator hook
 * actually fires without any direct auditInvariants() call.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "common/audit.hh"
#include "common/cycle_ring.hh"
#include "common/flat_map.hh"
#include "common/logging.hh"
#include "common/pool.hh"

static_assert(SIM_AUDIT_ENABLED,
              "test_audit must be compiled with CDFSIM_AUDIT=1");

namespace cdfsim
{

/**
 * The test-only backdoor audited structures befriend. Every helper
 * performs one deliberate, targeted corruption of private state.
 */
struct AuditPeer
{
    // --- SlabPool ---------------------------------------------------
    template <typename T>
    static void
    flagDeadSlotLive(SlabPool<T> &pool)
    {
        // The freelist still holds the slot, so the bitmap now
        // disagrees with both the live count and the freelist.
        SIM_ASSERT(!pool.freeList_.empty(), "test needs a free slot");
        pool.alive_[pool.freeList_.back()] = 1;
    }

    template <typename T>
    static void
    duplicateFreeListEntry(SlabPool<T> &pool)
    {
        SIM_ASSERT(pool.freeList_.size() >= 2,
                   "test needs two free slots");
        pool.freeList_[0] = pool.freeList_[1];
    }

    template <typename T>
    static void
    inflateLiveCount(SlabPool<T> &pool)
    {
        ++pool.live_;
    }

    // --- FlatMap ----------------------------------------------------
    template <typename K, typename V>
    static void
    dropSlotKeepingSize(FlatMap<K, V> &map)
    {
        for (auto &slot : map.slots_) {
            if (slot.key != map.empty_) {
                slot.key = map.empty_;
                return;
            }
        }
        SIM_ASSERT(false, "test needs an occupied slot");
    }

    template <typename K, typename V>
    static void
    breakProbeChain(FlatMap<K, V> &map)
    {
        // Teleport an entry two slots past its home, leaving an empty
        // slot on its probe path — exactly what a buggy
        // backward-shift delete produces. Occupancy stays equal to
        // size_ so only the chain check can fire.
        for (std::size_t i = 0; i < map.slots_.size(); ++i) {
            if (map.slots_[i].key == map.empty_)
                continue;
            const std::size_t j = (i + 2) & map.mask_;
            if (map.slots_[(i + 1) & map.mask_].key != map.empty_ ||
                map.slots_[j].key != map.empty_)
                continue;
            map.slots_[j] = map.slots_[i];
            map.slots_[i].key = map.empty_;
            return;
        }
        SIM_ASSERT(false, "test found no slot it could displace");
    }

    // --- MonotonicCycleRing -----------------------------------------
    static void
    swapLiveEntries(MonotonicCycleRing &ring)
    {
        SIM_ASSERT(ring.count_ >= 2, "test needs two live entries");
        const std::size_t mask = ring.buf_.size() - 1;
        std::swap(ring.buf_[ring.head_ & mask],
                  ring.buf_[(ring.head_ + ring.count_ - 1) & mask]);
    }

    static void
    overflowCount(MonotonicCycleRing &ring)
    {
        ring.count_ = ring.buf_.size() + 1;
    }

    // --- CycleCountRing ---------------------------------------------
    static void
    inflateOutstanding(CycleCountRing &ring)
    {
        ++ring.outstanding_;
    }
};

} // namespace cdfsim

namespace
{

using cdfsim::AuditPeer;
using cdfsim::AuditSampler;
using cdfsim::CycleCountRing;
using cdfsim::FlatMap;
using cdfsim::MonotonicCycleRing;
using cdfsim::PanicError;
using cdfsim::SlabPool;

// ---------------------------------------------------------------- pool

TEST(AuditPool, SilentOnValidStructure)
{
    SlabPool<int> pool(8);
    std::vector<std::uint32_t> handles;
    for (int i = 0; i < 20; ++i)
        handles.push_back(pool.allocate());
    for (std::size_t i = 0; i < handles.size(); i += 2)
        pool.free(handles[i]);
    EXPECT_NO_THROW(pool.auditInvariants());
}

TEST(AuditPool, FiresOnLivenessBitmapCorruption)
{
    SlabPool<int> pool(8);
    pool.allocate();
    AuditPeer::flagDeadSlotLive(pool);
    EXPECT_THROW(pool.auditInvariants(), PanicError);
}

TEST(AuditPool, FiresOnDuplicatedFreeListEntry)
{
    SlabPool<int> pool(8);
    const auto a = pool.allocate();
    const auto b = pool.allocate();
    pool.free(a);
    pool.free(b);
    AuditPeer::duplicateFreeListEntry(pool);
    EXPECT_THROW(pool.auditInvariants(), PanicError);
}

TEST(AuditPool, FiresOnLiveCountDrift)
{
    SlabPool<int> pool(8);
    pool.allocate();
    AuditPeer::inflateLiveCount(pool);
    EXPECT_THROW(pool.auditInvariants(), PanicError);
}

TEST(AuditPool, DoubleAllocationOfLiveSlotPanics)
{
    // The always-on SIM_ASSERT in allocate(): a freelist corruption
    // that hands out a live slot must be caught at the allocation
    // site, not only by the sampled walk.
    SlabPool<int> pool(8);
    pool.allocate();
    AuditPeer::flagDeadSlotLive(pool);
    EXPECT_THROW(pool.allocate(), PanicError);
}

// ------------------------------------------------------------ flat map

TEST(AuditFlatMap, SilentOnValidStructure)
{
    FlatMap<std::uint64_t, int> map(~0ull);
    for (std::uint64_t k = 1; k <= 200; ++k)
        map[k] = static_cast<int>(k);
    for (std::uint64_t k = 1; k <= 200; k += 3)
        map.erase(k);
    EXPECT_NO_THROW(map.auditInvariants());
}

TEST(AuditFlatMap, FiresOnSizeDrift)
{
    FlatMap<std::uint64_t, int> map(~0ull);
    map[7] = 1;
    map[9] = 2;
    AuditPeer::dropSlotKeepingSize(map);
    EXPECT_THROW(map.auditInvariants(), PanicError);
}

TEST(AuditFlatMap, FiresOnBrokenProbeChain)
{
    FlatMap<std::uint64_t, int> map(~0ull);
    map[42] = 1;
    AuditPeer::breakProbeChain(map);
    EXPECT_THROW(map.auditInvariants(), PanicError);
}

// --------------------------------------------------- monotonic ring

TEST(AuditCycleRing, SilentOnValidStructure)
{
    MonotonicCycleRing ring(4);
    for (cdfsim::Cycle c : {30u, 10u, 20u, 50u, 40u, 15u})
        ring.push(c);
    ring.pruneUpTo(15);
    EXPECT_NO_THROW(ring.auditInvariants());
    EXPECT_EQ(ring.earliest(), 20u);
}

TEST(AuditCycleRing, FiresOnSortOrderLoss)
{
    MonotonicCycleRing ring(4);
    ring.push(10);
    ring.push(20);
    AuditPeer::swapLiveEntries(ring);
    EXPECT_THROW(ring.auditInvariants(), PanicError);
}

TEST(AuditCycleRing, FiresOnCountOverflow)
{
    MonotonicCycleRing ring(4);
    AuditPeer::overflowCount(ring);
    EXPECT_THROW(ring.auditInvariants(), PanicError);
}

TEST(AuditCycleRing, SampledPushHookFiresWithoutDirectCall)
{
    // Corrupt the ring, then keep pushing through the public API: the
    // SIM_AUDIT_ONLY sampler inside push() must trip the walk on its
    // own within one sampling interval. Proves the hot-path wiring,
    // not just the walk.
    MonotonicCycleRing ring(4);
    ring.push(10);
    ring.push(20);
    AuditPeer::swapLiveEntries(ring);
    EXPECT_THROW(
        {
            for (int i = 0; i < 2048; ++i)
                ring.push(1000 + i);
        },
        PanicError);
}

// --------------------------------------------------- count ring

TEST(AuditCountRing, SilentOnValidStructure)
{
    CycleCountRing ring(16);
    for (cdfsim::Cycle c : {5u, 9u, 9u, 12u, 40u})
        ring.add(c);
    ring.advanceTo(9);
    EXPECT_NO_THROW(ring.auditInvariants());
    EXPECT_EQ(ring.outstanding(), 2u);
}

TEST(AuditCountRing, FiresOnOutstandingDrift)
{
    CycleCountRing ring(16);
    ring.add(5);
    AuditPeer::inflateOutstanding(ring);
    EXPECT_THROW(ring.auditInvariants(), PanicError);
}

// --------------------------------------------------------- the macros

TEST(AuditMacro, FiresOnFalseCondition)
{
    EXPECT_THROW(SIM_AUDIT(1 + 1 == 3, "arithmetic broke"),
                 PanicError);
}

TEST(AuditMacro, SilentOnTrueCondition)
{
    EXPECT_NO_THROW(SIM_AUDIT(1 + 1 == 2, "arithmetic broke"));
}

TEST(AuditMacro, MessageNamesConditionAndLocation)
{
    try {
        SIM_AUDIT(false, "extra context ", 42);
        FAIL() << "SIM_AUDIT(false) did not panic";
    } catch (const PanicError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("audit:"), std::string::npos) << what;
        EXPECT_NE(what.find("false"), std::string::npos) << what;
        EXPECT_NE(what.find("test_audit.cc"), std::string::npos)
            << what;
        EXPECT_NE(what.find("extra context 42"), std::string::npos)
            << what;
    }
}

TEST(AuditMacro, AuditOnlyStatementRuns)
{
    int sideEffect = 0;
    SIM_AUDIT_ONLY(sideEffect = 7;)
    EXPECT_EQ(sideEffect, 7);
}

// --------------------------------------------------------- the sampler

TEST(AuditSamplerTest, DueExactlyOncePerInterval)
{
    AuditSampler sampler(4);
    EXPECT_EQ(sampler.interval(), 4u);
    int fired = 0;
    for (int i = 1; i <= 12; ++i) {
        if (sampler.due()) {
            ++fired;
            EXPECT_EQ(i % 4, 0) << "fired off-cadence at call " << i;
        }
    }
    EXPECT_EQ(fired, 3);
}

TEST(AuditSamplerTest, CadenceIsDeterministic)
{
    AuditSampler a(1024);
    AuditSampler b(1024);
    for (int i = 0; i < 5000; ++i)
        EXPECT_EQ(a.due(), b.due()) << "diverged at call " << i;
}

} // namespace
