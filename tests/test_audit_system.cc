/**
 * @file
 * Corruption tests for the system-level audit walks: the core's RS
 * wakeup cache (Core::auditRsWakeupCache), its rename maps
 * (Core::auditRenameMaps), its LSQ/ROB age ordering
 * (Core::auditLsqRobAge), the memory hierarchy's LLC probe memo
 * (MemHierarchy::auditProbeCache), and the CDF side tables
 * (CriticalCountTable::auditInvariants, MaskCache::auditInvariants).
 *
 * Unlike tests/test_audit.cc — which covers the header-only audited
 * containers and deliberately links only cdfsim_common — these walks
 * live in library object code, are always compiled (their bounds are
 * load-bearing for the idle-skip fast-forward path) and assert with
 * the always-on SIM_ASSERT. The tests therefore use the regular full
 * link and need no forced CDFSIM_AUDIT: each walk must stay silent on
 * a core driven mid-flight through the public API, and must panic
 * once AuditPeer (the befriended test-only backdoor) applies one
 * targeted corruption of private state.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>

#include "cdf/critical_table.hh"
#include "cdf/mask_cache.hh"
#include "common/audit.hh"
#include "common/logging.hh"
#include "common/types.hh"
#include "mem/hierarchy.hh"
#include "ooo/core.hh"
#include "ooo/dyn_inst.hh"
#include "ooo/rename.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

namespace cdfsim
{

/**
 * The test-only backdoor (forward-declared in common/audit.hh) that
 * Core and MemHierarchy befriend. Every mutating helper performs one
 * deliberate, targeted corruption of private state.
 */
struct AuditPeer
{
    // --- Core: RS wakeup cache --------------------------------------

    /** First resident RS entry matching @p pred (nullptr if none). */
    template <typename Pred>
    static ooo::DynInst *
    findRsEntry(ooo::Core &c, Pred &&pred)
    {
        ooo::DynInst *hit = nullptr;
        c.rs_.forEach([&](const ooo::DynInst *inst) {
            if (!hit && pred(*inst))
                hit = const_cast<ooo::DynInst *>(inst);
        });
        return hit;
    }

    /** The operand-ready bound the audit walk recomputes. */
    static Cycle
    operandReadyBound(const ooo::Core &c, const ooo::DynInst &inst)
    {
        const Cycle r1 = inst.physSrc1 == kInvalidReg
                             ? 0
                             : c.prf_.readyAt(inst.physSrc1);
        const bool memOp = inst.isLoad() || inst.isStore();
        const Cycle r2 = (memOp || inst.physSrc2 == kInvalidReg)
                             ? 0
                             : c.prf_.readyAt(inst.physSrc2);
        return std::max(r1, r2);
    }

    /**
     * Overwrite a resident entry's cached retry cycle with a finite
     * value that cannot match the recomputed operand-ready bound —
     * exactly the drift a missed wakeup broadcast would leave behind.
     */
    static bool
    skewRsRetryCycle(ooo::Core &c)
    {
        ooo::DynInst *victim =
            findRsEntry(c, [](const ooo::DynInst &) { return true; });
        if (!victim)
            return false;
        const Cycle wait = operandReadyBound(c, *victim);
        victim->rsNextTry =
            wait == kNeverCycle ? Cycle{12'345} : wait + 1;
        return true;
    }

    /**
     * Register a ghost waiter on a register that is already ready:
     * the completion broadcast clears whole lists, so a non-empty
     * list on a ready register can only mean a lost broadcast.
     */
    static void
    ghostWaiterOnReadyReg(ooo::Core &c)
    {
        for (std::size_t r = 0; r < c.regWaiters_.size(); ++r) {
            if (c.prf_.readyAt(static_cast<RegId>(r)) == kNeverCycle)
                continue;
            c.regWaiters_[r].emplace_back(0u, ~SeqNum{0});
            return;
        }
        SIM_ASSERT(false, "test found no ready physical register");
    }

    /**
     * Strip a parked entry's waiter registrations, leaving it
     * unwakeable — the bug class the registration invariant exists
     * to catch.
     */
    static bool
    orphanParkedRsEntry(ooo::Core &c)
    {
        ooo::DynInst *parked =
            findRsEntry(c, [](const ooo::DynInst &inst) {
                return inst.rsNextTry == kNeverCycle;
            });
        if (!parked)
            return false;
        auto scrub = [&](RegId r) {
            if (r == kInvalidReg)
                return;
            std::erase_if(c.regWaiters_[r], [&](const auto &p) {
                return p.first == parked->poolIdx &&
                       p.second == parked->fetchSeq;
            });
        };
        scrub(parked->physSrc1);
        if (!(parked->isLoad() || parked->isStore()))
            scrub(parked->physSrc2);
        return true;
    }

    // --- MemHierarchy: LLC probe memo -------------------------------

    /** Flip the memoized answer of a current-generation entry. */
    static bool
    flipCurrentGenProbeEntry(mem::MemHierarchy &m)
    {
        const std::uint64_t gen =
            m.l1d_.tagGeneration() + m.llc_.tagGeneration();
        for (auto &e : m.probeCache_) {
            if (e.line == ~Addr{0} || e.gen != gen)
                continue;
            e.miss = !e.miss;
            return true;
        }
        return false;
    }

    /** Copy a current-generation entry into a slot it cannot hash
     *  to, as a buggy indexing change would. */
    static bool
    teleportProbeEntry(mem::MemHierarchy &m)
    {
        const std::uint64_t gen =
            m.l1d_.tagGeneration() + m.llc_.tagGeneration();
        constexpr std::size_t slots =
            mem::MemHierarchy::kProbeCacheSlots;
        for (std::size_t i = 0; i < slots; ++i) {
            const auto &e = m.probeCache_[i];
            if (e.line == ~Addr{0} || e.gen != gen)
                continue;
            m.probeCache_[(i + 1) % slots] = e;
            return true;
        }
        return false;
    }

    // --- CDF side tables: CCT and mask cache ------------------------

    static cdf::CriticalCountTable *
    loadCct(ooo::Core &c)
    {
        return c.loadCct_.get();
    }

    static cdf::MaskCache *
    maskCache(ooo::Core &c)
    {
        return c.maskCache_.get();
    }

    /** Clone a valid CCT tag into a second way of the same set. */
    static bool
    duplicateCctTag(cdf::CriticalCountTable &t)
    {
        const unsigned ways = t.config_.ways;
        for (std::size_t set = 0; set < t.sets_; ++set) {
            auto *base = &t.entries_[set * ways];
            for (unsigned w = 0; w < ways; ++w) {
                if (!base[w].valid)
                    continue;
                const unsigned other = (w + 1) % ways;
                base[other].valid = true;
                base[other].tag = base[w].tag;
                return true;
            }
        }
        return false;
    }

    /** Stamp a valid CCT entry newer than the allocation clock. */
    static bool
    skewCctLruTick(cdf::CriticalCountTable &t)
    {
        for (auto &e : t.entries_) {
            if (!e.valid)
                continue;
            e.lruTick = t.tick_ + 1;
            return true;
        }
        return false;
    }

    /** Move a valid CCT entry into a set its tag cannot hash to. */
    static bool
    teleportCctEntry(cdf::CriticalCountTable &t)
    {
        const unsigned ways = t.config_.ways;
        if (t.sets_ < 2)
            return false;
        for (std::size_t set = 0; set < t.sets_; ++set) {
            auto *base = &t.entries_[set * ways];
            for (unsigned w = 0; w < ways; ++w) {
                if (!base[w].valid)
                    continue;
                t.entries_[((set + 1) % t.sets_) * ways] = base[w];
                return true;
            }
        }
        return false;
    }

    /** Clone a valid mask cache tag into a second way of its set. */
    static bool
    duplicateMaskTag(cdf::MaskCache &m)
    {
        const unsigned ways = m.config_.ways;
        for (std::size_t set = 0; set < m.sets_; ++set) {
            auto *base = &m.entries_[set * ways];
            for (unsigned w = 0; w < ways; ++w) {
                if (!base[w].valid)
                    continue;
                const unsigned other = (w + 1) % ways;
                base[other].valid = true;
                base[other].tag = base[w].tag;
                return true;
            }
        }
        return false;
    }

    /** Stamp a valid mask cache entry ahead of the clock. */
    static bool
    skewMaskLruTick(cdf::MaskCache &m)
    {
        for (auto &e : m.entries_) {
            if (!e.valid)
                continue;
            e.lruTick = m.tick_ + 1;
            return true;
        }
        return false;
    }

    // --- Core: LSQ/ROB age ordering ---------------------------------

    /** Swap two adjacent entries of a ROB section, breaking the
     *  strictly-increasing timestamp order. */
    static bool
    swapAdjacentRobEntries(ooo::Core &c)
    {
        for (auto *q : {&c.rob_.crit_, &c.rob_.nonCrit_}) {
            if (q->size() >= 2) {
                std::swap((*q)[0], (*q)[1]);
                return true;
            }
        }
        return false;
    }

    /** Swap two adjacent entries of an LQ section. */
    static bool
    swapAdjacentLqEntries(ooo::Core &c)
    {
        auto &lq = c.lsq_.lq();
        for (auto *q : {&lq.crit_, &lq.nonCrit_}) {
            if (q->size() >= 2) {
                std::swap((*q)[0], (*q)[1]);
                return true;
            }
        }
        return false;
    }

    /** Duplicate a resident load into the store queue — the kind
     *  confusion a dispatch bug would produce. */
    static bool
    loadIntoStoreQueue(ooo::Core &c)
    {
        auto &lq = c.lsq_.lq();
        for (auto *q : {&lq.crit_, &lq.nonCrit_}) {
            if (!q->empty()) {
                c.lsq_.sq().nonCrit_.push_back(q->front());
                return true;
            }
        }
        return false;
    }

    /** Grant the ROB's critical section more capacity than the ROB
     *  has. */
    static void
    robCapOverSize(ooo::Core &c)
    {
        c.rob_.critCap_ = c.rob_.size_ + 1;
    }

    /** Erase the ROB entry backing an LQ head, leaving an LSQ entry
     *  with no ROB residence (a missed-squash shape). */
    static bool
    vanishRobEntryForLqHead(ooo::Core &c)
    {
        auto &lq = c.lsq_.lq();
        const ooo::DynInst *victim = nullptr;
        for (auto *q : {&lq.crit_, &lq.nonCrit_}) {
            if (!q->empty()) {
                victim = q->front();
                break;
            }
        }
        if (!victim)
            return false;
        for (auto *q : {&c.rob_.crit_, &c.rob_.nonCrit_}) {
            auto it = std::find(q->begin(), q->end(), victim);
            if (it != q->end()) {
                q->erase(it);
                return true;
            }
        }
        return false;
    }

    // --- Core: rename maps ------------------------------------------

    /** Point an arch reg at a physical register that does not exist. */
    static void
    ratOutOfRange(ooo::Core &c)
    {
        c.rat_.table_[0] = static_cast<RegId>(c.prf_.size());
    }

    /** Map two arch regs onto the same physical register. */
    static void
    ratDuplicateMapping(ooo::Core &c)
    {
        c.rat_.table_[1] = c.rat_.table_[0];
    }

    /** Push a RAT-mapped register back onto the free list, the
     *  double-release a squash-walk bug would produce. */
    static void
    freeListOverlap(ooo::Core &c)
    {
        c.prf_.freeList_.push_back(c.rat_.lookup(0));
    }

    /** Duplicate a mapping in the critical RAT, if one is live. */
    static bool
    critRatDuplicateMapping(ooo::Core &c)
    {
        if (!c.critRatCopied_)
            return false;
        c.critRat_.table_[1] = c.critRat_.table_[0];
        return true;
    }
};

} // namespace cdfsim

namespace
{

using cdfsim::Addr;
using cdfsim::AuditPeer;
using cdfsim::PanicError;

/**
 * A core paused mid-flight on a memory-bound workload: run() stops
 * between cycles once the retire target is reached, leaving live
 * in-flight state (RS entries, waiter lists) for the helpers to
 * corrupt. mcf keeps dependents parked on outstanding DRAM misses.
 */
class AuditSystem : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        cdfsim::ooo::CoreConfig cfg;
        sim_ = std::make_unique<cdfsim::sim::Simulator>(
            cfg, cdfsim::workloads::makeWorkload("mcf"));
        auto &core = sim_->core();
        for (int i = 0; i < 64 && !core.halted(); ++i) {
            core.run(core.retired() + 2'000);
            if (AuditPeer::findRsEntry(
                    core, [](const cdfsim::ooo::DynInst &) {
                        return true;
                    }))
                return;
        }
        FAIL() << "could not pause the core with a non-empty RS";
    }

    cdfsim::ooo::Core &core() { return sim_->core(); }
    cdfsim::mem::MemHierarchy &mem()
    {
        return sim_->core().memHierarchy();
    }

    /** Memoize a handful of probe answers at the current tag
     *  generation (the baseline core never probes on its own). */
    void
    populateProbeCache()
    {
        for (Addr line = 0; line < 16 * cdfsim::kLineBytes;
             line += cdfsim::kLineBytes)
            mem().wouldMissLlc(line);
    }

    std::unique_ptr<cdfsim::sim::Simulator> sim_;
};

// ------------------------------------------------- RS wakeup cache

TEST_F(AuditSystem, RsWakeupSilentOnDrivenCore)
{
    EXPECT_NO_THROW(core().auditRsWakeupCache());
}

TEST_F(AuditSystem, RsWakeupFiresOnSkewedRetryCycle)
{
    ASSERT_TRUE(AuditPeer::skewRsRetryCycle(core()));
    EXPECT_THROW(core().auditRsWakeupCache(), PanicError);
}

TEST_F(AuditSystem, RsWakeupFiresOnGhostWaiter)
{
    AuditPeer::ghostWaiterOnReadyReg(core());
    EXPECT_THROW(core().auditRsWakeupCache(), PanicError);
}

TEST_F(AuditSystem, RsWakeupFiresOnOrphanedParkedEntry)
{
    // Step forward until a parked entry (never-ready source) is in
    // the RS; on mcf one appears almost immediately, but the stop
    // point is workload state, not something the test controls.
    auto &c = core();
    bool orphaned = AuditPeer::orphanParkedRsEntry(c);
    for (int i = 0; i < 64 && !orphaned && !c.halted(); ++i) {
        c.run(c.retired() + 2'000);
        orphaned = AuditPeer::orphanParkedRsEntry(c);
    }
    if (!orphaned)
        GTEST_SKIP() << "no parked RS entry at any stop point";
    EXPECT_THROW(c.auditRsWakeupCache(), PanicError);
}

// ------------------------------------------------- LLC probe memo

TEST_F(AuditSystem, ProbeCacheSilentAfterProbes)
{
    populateProbeCache();
    EXPECT_NO_THROW(mem().auditProbeCache());
}

TEST_F(AuditSystem, ProbeCacheFiresOnFlippedAnswer)
{
    populateProbeCache();
    ASSERT_TRUE(AuditPeer::flipCurrentGenProbeEntry(mem()));
    EXPECT_THROW(mem().auditProbeCache(), PanicError);
}

TEST_F(AuditSystem, ProbeCacheFiresOnTeleportedEntry)
{
    populateProbeCache();
    ASSERT_TRUE(AuditPeer::teleportProbeEntry(mem()));
    EXPECT_THROW(mem().auditProbeCache(), PanicError);
}

// ------------------------------------------------- rename maps

TEST_F(AuditSystem, RenameMapsSilentOnDrivenCore)
{
    EXPECT_NO_THROW(core().auditRenameMaps());
}

TEST_F(AuditSystem, RenameMapsFireOnOutOfRangeEntry)
{
    AuditPeer::ratOutOfRange(core());
    EXPECT_THROW(core().auditRenameMaps(), PanicError);
}

TEST_F(AuditSystem, RenameMapsFireOnDuplicateMapping)
{
    AuditPeer::ratDuplicateMapping(core());
    EXPECT_THROW(core().auditRenameMaps(), PanicError);
}

TEST_F(AuditSystem, RenameMapsFireOnFreeListOverlap)
{
    AuditPeer::freeListOverlap(core());
    EXPECT_THROW(core().auditRenameMaps(), PanicError);
}

// ------------------------------------------------- LSQ/ROB ordering

TEST_F(AuditSystem, LsqRobSilentOnDrivenCore)
{
    EXPECT_NO_THROW(core().auditLsqRobAge());
}

TEST_F(AuditSystem, LsqRobFiresOnRobAgeSwap)
{
    // The fixture pauses with a non-empty RS, so the ROB holds the
    // same in-flight instructions — two adjacent ones to swap.
    ASSERT_TRUE(AuditPeer::swapAdjacentRobEntries(core()));
    EXPECT_THROW(core().auditLsqRobAge(), PanicError);
}

TEST_F(AuditSystem, LsqRobFiresOnLqAgeSwap)
{
    // mcf keeps multiple loads in flight, but the pause point is
    // workload state; step until two LQ entries coexist.
    auto &c = core();
    bool corrupted = AuditPeer::swapAdjacentLqEntries(c);
    for (int i = 0; i < 64 && !corrupted && !c.halted(); ++i) {
        c.run(c.retired() + 2'000);
        corrupted = AuditPeer::swapAdjacentLqEntries(c);
    }
    if (!corrupted)
        GTEST_SKIP() << "never saw two resident LQ entries";
    EXPECT_THROW(c.auditLsqRobAge(), PanicError);
}

TEST_F(AuditSystem, LsqRobFiresOnLoadInStoreQueue)
{
    auto &c = core();
    bool corrupted = AuditPeer::loadIntoStoreQueue(c);
    for (int i = 0; i < 64 && !corrupted && !c.halted(); ++i) {
        c.run(c.retired() + 2'000);
        corrupted = AuditPeer::loadIntoStoreQueue(c);
    }
    if (!corrupted)
        GTEST_SKIP() << "never saw a resident LQ entry";
    EXPECT_THROW(c.auditLsqRobAge(), PanicError);
}

TEST_F(AuditSystem, LsqRobFiresOnCapOverSize)
{
    AuditPeer::robCapOverSize(core());
    EXPECT_THROW(core().auditLsqRobAge(), PanicError);
}

TEST_F(AuditSystem, LsqRobFiresOnVanishedRobEntry)
{
    auto &c = core();
    bool corrupted = AuditPeer::vanishRobEntryForLqHead(c);
    for (int i = 0; i < 64 && !corrupted && !c.halted(); ++i) {
        c.run(c.retired() + 2'000);
        corrupted = AuditPeer::vanishRobEntryForLqHead(c);
    }
    if (!corrupted)
        GTEST_SKIP() << "never saw a resident LQ entry";
    EXPECT_THROW(c.auditLsqRobAge(), PanicError);
}

// ------------------------------------------------- CDF side tables

/**
 * As AuditSystem, but in CDF mode so retire training populates the
 * load CCT and episodes merge masks into the mask cache. mcf is
 * memory bound, so CDF engages within the first few thousand
 * instructions.
 */
class AuditSystemCdf : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        cdfsim::ooo::CoreConfig cfg;
        cfg.mode = cdfsim::ooo::CoreMode::Cdf;
        sim_ = std::make_unique<cdfsim::sim::Simulator>(
            cfg, cdfsim::workloads::makeWorkload("mcf"));
    }

    cdfsim::ooo::Core &core() { return sim_->core(); }

    /** Step until @p corrupt lands (it returns false while the state
     *  it targets has not appeared yet), then expect the walk named
     *  by @p walk to panic. */
    template <typename Corrupt, typename Walk>
    void
    expectFires(Corrupt &&corrupt, Walk &&walk)
    {
        auto &c = core();
        bool corrupted = corrupt(c);
        for (int i = 0; i < 64 && !corrupted && !c.halted(); ++i) {
            c.run(c.retired() + 2'000);
            corrupted = corrupt(c);
        }
        ASSERT_TRUE(corrupted)
            << "target state never appeared on mcf/cdf";
        EXPECT_THROW(walk(c), PanicError);
    }

    std::unique_ptr<cdfsim::sim::Simulator> sim_;
};

TEST_F(AuditSystemCdf, SideTablesSilentOnDrivenCore)
{
    auto &c = core();
    c.run(c.retired() + 100'000);
    ASSERT_NE(AuditPeer::loadCct(c), nullptr);
    ASSERT_NE(AuditPeer::maskCache(c), nullptr);
    EXPECT_NO_THROW(AuditPeer::loadCct(c)->auditInvariants());
    EXPECT_NO_THROW(AuditPeer::maskCache(c)->auditInvariants());
    EXPECT_NO_THROW(c.auditRenameMaps());
    EXPECT_NO_THROW(c.auditLsqRobAge());
}

TEST_F(AuditSystemCdf, CctFiresOnDuplicateTag)
{
    expectFires(
        [](auto &c) {
            return AuditPeer::duplicateCctTag(*AuditPeer::loadCct(c));
        },
        [](auto &c) { AuditPeer::loadCct(c)->auditInvariants(); });
}

TEST_F(AuditSystemCdf, CctFiresOnLruAheadOfClock)
{
    expectFires(
        [](auto &c) {
            return AuditPeer::skewCctLruTick(*AuditPeer::loadCct(c));
        },
        [](auto &c) { AuditPeer::loadCct(c)->auditInvariants(); });
}

TEST_F(AuditSystemCdf, CctFiresOnTeleportedEntry)
{
    expectFires(
        [](auto &c) {
            return AuditPeer::teleportCctEntry(
                *AuditPeer::loadCct(c));
        },
        [](auto &c) { AuditPeer::loadCct(c)->auditInvariants(); });
}

TEST_F(AuditSystemCdf, MaskCacheFiresOnDuplicateTag)
{
    expectFires(
        [](auto &c) {
            return AuditPeer::duplicateMaskTag(
                *AuditPeer::maskCache(c));
        },
        [](auto &c) { AuditPeer::maskCache(c)->auditInvariants(); });
}

TEST_F(AuditSystemCdf, MaskCacheFiresOnLruAheadOfClock)
{
    expectFires(
        [](auto &c) {
            return AuditPeer::skewMaskLruTick(
                *AuditPeer::maskCache(c));
        },
        [](auto &c) { AuditPeer::maskCache(c)->auditInvariants(); });
}

TEST_F(AuditSystemCdf, CritRatFiresOnDuplicateMapping)
{
    expectFires(
        [](auto &c) { return AuditPeer::critRatDuplicateMapping(c); },
        [](auto &c) { c.auditRenameMaps(); });
}

} // namespace
