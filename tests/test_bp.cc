/**
 * @file
 * Unit tests for the branch prediction substrate: TAGE learning on
 * characteristic patterns, the loop predictor, checkpoint/recovery,
 * BTB, RAS, and the predictor facade.
 */

#include <gtest/gtest.h>

#include "bp/btb.hh"
#include "bp/predictor.hh"
#include "bp/tage.hh"
#include "common/stats.hh"

using namespace cdfsim;
using namespace cdfsim::bp;

namespace
{

/** Train & measure accuracy of TAGE on a pattern generator. */
template <typename Gen>
double
accuracy(Tage &tage, Addr pc, Gen &&gen, int warmup, int measure)
{
    int correct = 0;
    for (int i = 0; i < warmup + measure; ++i) {
        const bool actual = gen(i);
        auto ckpt = tage.checkpoint();
        auto info = tage.predict(pc);
        if (i >= warmup && info.taken == actual)
            ++correct;
        tage.update(pc, actual, info);
        // Mispredicts rewind speculative history, as the pipeline's
        // recovery would.
        if (info.taken != actual)
            tage.recover(ckpt, actual, pc);
    }
    return static_cast<double>(correct) / measure;
}

} // namespace

TEST(Tage, LearnsAlwaysTaken)
{
    StatRegistry s;
    Tage tage(TageConfig{}, s);
    double acc =
        accuracy(tage, 0x40, [](int) { return true; }, 50, 500);
    EXPECT_GT(acc, 0.99);
}

TEST(Tage, LearnsAlternatingPattern)
{
    StatRegistry s;
    Tage tage(TageConfig{}, s);
    double acc = accuracy(
        tage, 0x44, [](int i) { return (i & 1) == 0; }, 200, 500);
    EXPECT_GT(acc, 0.95);
}

TEST(Tage, LearnsLongPeriodicPattern)
{
    // Period-12 pattern: needs global history, not just bimodal.
    StatRegistry s;
    Tage tage(TageConfig{}, s);
    double acc = accuracy(
        tage, 0x48, [](int i) { return (i % 12) < 5; }, 600, 1000);
    EXPECT_GT(acc, 0.90);
}

TEST(Tage, RandomPatternStaysHard)
{
    StatRegistry s;
    Tage tage(TageConfig{}, s);
    // A xorshift-derived pseudo-random direction sequence.
    std::uint64_t state = 0x1234567;
    auto gen = [&state](int) {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return (state & 1) != 0;
    };
    double acc = accuracy(tage, 0x4C, gen, 500, 2000);
    EXPECT_LT(acc, 0.75) << "predictor 'learned' randomness";
}

TEST(Tage, LoopPredictorCatchesFixedTripCount)
{
    StatRegistry s;
    TageConfig cfg;
    Tage tage(cfg, s);
    // Loop branch: taken 7 times, then not-taken, repeatedly. The
    // loop predictor should eventually nail the exits.
    int exits = 0, exitCorrect = 0;
    for (int iter = 0; iter < 300; ++iter) {
        for (int i = 0; i < 8; ++i) {
            const bool actual = i < 7;
            auto ckpt = tage.checkpoint();
            auto info = tage.predict(0x50);
            if (iter > 30 && !actual) {
                ++exits;
                if (!info.taken)
                    ++exitCorrect;
            }
            tage.update(0x50, actual, info);
            if (info.taken != actual)
                tage.recover(ckpt, actual, 0x50);
        }
    }
    EXPECT_GT(exits, 0);
    EXPECT_GT(static_cast<double>(exitCorrect) / exits, 0.9);
    EXPECT_GT(s.get("tage.loop_predictions"), 0u);
}

TEST(Tage, CheckpointRecoveryRestoresHistory)
{
    StatRegistry s;
    Tage tage(TageConfig{}, s);
    for (int i = 0; i < 64; ++i) {
        auto info = tage.predict(0x60 + (i % 3));
        tage.update(0x60 + (i % 3), i % 2 == 0, info);
    }
    auto ckpt = tage.checkpoint();
    const auto hashBefore = tage.historyHash(32);

    // Speculative predictions down a wrong path...
    for (int i = 0; i < 10; ++i)
        tage.predict(0x90 + i);
    EXPECT_NE(tage.historyHash(32), hashBefore);

    // ...recovered with the branch's actual outcome re-inserted.
    tage.recover(ckpt, true, 0x60);
    Tage reference(TageConfig{}, s);
    // Cannot compare against a reference easily; instead verify the
    // recovery is deterministic: recovering twice gives one state.
    auto h1 = tage.historyHash(32);
    tage.recover(ckpt, true, 0x60);
    EXPECT_EQ(tage.historyHash(32), h1);

    // And exact restore puts back the pre-prediction state.
    tage.restore(ckpt);
    EXPECT_EQ(tage.historyHash(32), hashBefore);
}

// --- BTB ---

TEST(Btb, MissThenHitAfterUpdate)
{
    StatRegistry s;
    Btb btb(64, s);
    EXPECT_FALSE(btb.lookup(0x123).has_value());
    btb.update(0x123, 0x456);
    auto t = btb.lookup(0x123);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(*t, 0x456u);
}

TEST(Btb, ConflictEviction)
{
    StatRegistry s;
    Btb btb(16, s);
    btb.update(3, 100);
    btb.update(3 + 16, 200); // same slot
    EXPECT_FALSE(btb.lookup(3).has_value());
    EXPECT_EQ(*btb.lookup(3 + 16), 200u);
}

// --- RAS ---

TEST(Ras, LifoOrder)
{
    Ras ras(8);
    ras.push(10);
    ras.push(20);
    ras.push(30);
    EXPECT_EQ(ras.pop(), 30u);
    EXPECT_EQ(ras.pop(), 20u);
    EXPECT_EQ(ras.pop(), 10u);
    EXPECT_EQ(ras.pop(), 0u); // empty
}

TEST(Ras, OverflowWrapsOldest)
{
    Ras ras(2);
    ras.push(1);
    ras.push(2);
    ras.push(3); // overwrites 1
    EXPECT_EQ(ras.pop(), 3u);
    EXPECT_EQ(ras.pop(), 2u);
    EXPECT_EQ(ras.pop(), 0u);
}

TEST(Ras, SnapshotRestore)
{
    Ras ras(8);
    ras.push(11);
    ras.push(22);
    auto snap = ras.snapshot();
    ras.pop();
    ras.pop();
    ras.restore(snap);
    EXPECT_EQ(ras.pop(), 22u);
    EXPECT_EQ(ras.pop(), 11u);
}

// --- BranchPredictor facade ---

TEST(Predictor, DirectJumpPredictsTargetWithBtbMissBubble)
{
    StatRegistry s;
    BranchPredictor bp(PredictorConfig{}, s);
    isa::Uop jmp{isa::Opcode::Jmp, kInvalidReg, kInvalidReg,
                 kInvalidReg, 77};
    auto p1 = bp.predict(5, jmp);
    EXPECT_TRUE(p1.taken);
    EXPECT_EQ(p1.target, 77u);
    EXPECT_TRUE(p1.btbMiss);

    bp.update(5, jmp, true, 77, p1.tageInfo);
    auto p2 = bp.predict(5, jmp);
    EXPECT_FALSE(p2.btbMiss);
}

TEST(Predictor, CallRetPairUsesRas)
{
    StatRegistry s;
    BranchPredictor bp(PredictorConfig{}, s);
    isa::Uop call{isa::Opcode::Call, 10, kInvalidReg, kInvalidReg, 40};
    isa::Uop ret{isa::Opcode::Ret, kInvalidReg, 10, kInvalidReg, 0};

    auto pc_ = bp.predict(7, call);
    EXPECT_EQ(pc_.target, 40u);
    auto pr = bp.predict(45, ret);
    EXPECT_TRUE(pr.taken);
    EXPECT_EQ(pr.target, 8u); // return to call + 1
}

TEST(Predictor, ConditionalNotTakenFallsThrough)
{
    StatRegistry s;
    BranchPredictor bp(PredictorConfig{}, s);
    isa::Uop br{isa::Opcode::Beqz, kInvalidReg, 1, kInvalidReg, 99};
    // Train not-taken.
    for (int i = 0; i < 50; ++i) {
        auto p = bp.predict(11, br);
        bp.update(11, br, false, 12, p.tageInfo);
    }
    auto p = bp.predict(11, br);
    EXPECT_FALSE(p.taken);
    EXPECT_EQ(p.target, 12u);
}

TEST(Predictor, CheckpointRecoveryRestoresRas)
{
    StatRegistry s;
    BranchPredictor bp(PredictorConfig{}, s);
    isa::Uop call{isa::Opcode::Call, 10, kInvalidReg, kInvalidReg, 40};
    isa::Uop ret{isa::Opcode::Ret, kInvalidReg, 10, kInvalidReg, 0};

    bp.predict(7, call); // RAS: [8]
    auto ckpt = bp.checkpoint();
    bp.predict(45, ret); // speculatively pops
    bp.recover(ckpt, true, 45);
    auto pr = bp.predict(45, ret); // must pop 8 again
    EXPECT_EQ(pr.target, 8u);
}
