/**
 * @file
 * Unit tests for the CDF hardware structures: Critical Count
 * Tables, Fill Buffer backwards dataflow walk (including the
 * paper's Fig. 5 example), Mask Cache accumulation/reset, Critical
 * Uop Cache trace management, the partition controller, and the
 * DBQ/CMQ flush helper.
 */

#include <gtest/gtest.h>

#include "cdf/critical_table.hh"
#include "cdf/fifos.hh"
#include "cdf/fill_buffer.hh"
#include "cdf/mask_cache.hh"
#include "cdf/partition.hh"
#include "cdf/uop_cache.hh"
#include "common/stats.hh"

using namespace cdfsim;
using namespace cdfsim::cdf;
using cdfsim::isa::Opcode;
using cdfsim::isa::Uop;

namespace
{

Uop
aluUop(RegId d, RegId s1, RegId s2)
{
    return {Opcode::Add, d, s1, s2, 0};
}

Uop
loadUop(RegId d, RegId base)
{
    return {Opcode::Load, d, base, kInvalidReg, 0};
}

Uop
storeUop(RegId base, RegId val)
{
    return {Opcode::Store, kInvalidReg, base, val, 0};
}

Uop
branchUop(RegId s)
{
    return {Opcode::Bnez, kInvalidReg, s, kInvalidReg, 0};
}

} // namespace

// --- CriticalCountTable ---

TEST(CriticalCountTable, MarksAfterRepeatedMisses)
{
    StatRegistry s;
    CriticalTableConfig cfg;
    CriticalCountTable t(cfg, s, "cct");
    EXPECT_FALSE(t.isCritical(0x10));
    for (int i = 0; i < 10; ++i)
        t.update(0x10, true);
    EXPECT_TRUE(t.isCritical(0x10));
}

TEST(CriticalCountTable, HitsDecayCriticality)
{
    StatRegistry s;
    CriticalTableConfig cfg;
    CriticalCountTable t(cfg, s, "cct");
    for (int i = 0; i < 10; ++i)
        t.update(0x10, true);
    for (int i = 0; i < 16; ++i)
        t.update(0x10, false);
    EXPECT_FALSE(t.isCritical(0x10));
}

TEST(CriticalCountTable, PermissiveModeMarksEarlier)
{
    StatRegistry s;
    CriticalTableConfig cfg; // strict threshold 12, permissive 2
    CriticalCountTable t(cfg, s, "cct");
    t.update(0x20, true); // counter = 2 (missInc)
    EXPECT_FALSE(t.isCriticalUnder(0x20, ThresholdMode::Strict));
    EXPECT_TRUE(t.isCriticalUnder(0x20, ThresholdMode::Permissive));

    t.setMode(ThresholdMode::Permissive);
    EXPECT_TRUE(t.isCritical(0x20));
}

TEST(CriticalCountTable, EvictsLruWithinSet)
{
    StatRegistry s;
    CriticalTableConfig cfg;
    cfg.entries = 4;
    cfg.ways = 2; // 2 sets
    CriticalCountTable t(cfg, s, "cct");
    // Three PCs in set 0 (pc % 2 == 0): the first gets evicted.
    for (int i = 0; i < 10; ++i)
        t.update(0x10, true);
    EXPECT_TRUE(t.isCritical(0x10));
    for (int i = 0; i < 10; ++i) {
        t.update(0x20, true);
        t.update(0x30, true);
    }
    EXPECT_FALSE(t.isCritical(0x10)) << "LRU entry not evicted";
}

// --- MaskCache ---

TEST(MaskCache, MergeAccumulatesAcrossPaths)
{
    StatRegistry s;
    MaskCache mc(MaskCacheConfig{}, s);
    mc.merge(0x100, 0b0101);
    mc.merge(0x100, 0b1000);
    EXPECT_EQ(mc.lookup(0x100).value(), 0b1101u);
}

TEST(MaskCache, RemoveAndMiss)
{
    StatRegistry s;
    MaskCache mc(MaskCacheConfig{}, s);
    mc.merge(0x100, 1);
    mc.remove(0x100);
    EXPECT_FALSE(mc.lookup(0x100).has_value());
}

TEST(MaskCache, PeriodicReset)
{
    StatRegistry s;
    MaskCacheConfig cfg;
    cfg.resetIntervalInstrs = 1000;
    MaskCache mc(cfg, s);
    mc.merge(0x100, 1);
    mc.maybeReset(500);
    EXPECT_TRUE(mc.lookup(0x100).has_value());
    mc.maybeReset(1200);
    EXPECT_FALSE(mc.lookup(0x100).has_value());
    EXPECT_EQ(s.get("mask_cache.resets"), 1u);
}

// --- CriticalUopCache ---

namespace
{

BbTrace
makeTrace(Addr startPc, unsigned len, std::vector<unsigned> critOffs,
          bool endsInBranch = true)
{
    BbTrace t;
    t.startPc = startPc;
    t.blockLength = len;
    t.endsInBranch = endsInBranch;
    t.branchPc = startPc + len - 1;
    for (unsigned off : critOffs)
        t.uops.push_back({aluUop(1, 2, 3), off});
    return t;
}

} // namespace

TEST(CriticalUopCache, FillLatencyGatesLookups)
{
    StatRegistry s;
    UopCacheConfig cfg;
    cfg.fillLatency = 100;
    CriticalUopCache uc(cfg, s);
    uc.insert(makeTrace(0x10, 4, {0, 2}), 50);
    EXPECT_EQ(uc.lookup(0x10, 100), nullptr); // not ready yet
    EXPECT_NE(uc.lookup(0x10, 200), nullptr);
    EXPECT_GT(s.get("uop_cache.misses_not_ready"), 0u);
}

TEST(CriticalUopCache, IdenticalRefillKeepsReadiness)
{
    StatRegistry s;
    UopCacheConfig cfg;
    cfg.fillLatency = 100;
    CriticalUopCache uc(cfg, s);
    uc.insert(makeTrace(0x10, 4, {0, 2}), 0);
    ASSERT_NE(uc.lookup(0x10, 150), nullptr);
    // Re-inserting the same trace must not re-impose the latency.
    uc.insert(makeTrace(0x10, 4, {0, 2}), 160);
    EXPECT_NE(uc.lookup(0x10, 161), nullptr);
    // A changed trace does pay the latency again.
    uc.insert(makeTrace(0x10, 4, {0, 1, 2}), 200);
    EXPECT_EQ(uc.lookup(0x10, 250), nullptr);
    EXPECT_NE(uc.lookup(0x10, 301), nullptr);
}

TEST(CriticalUopCache, CapacityEvictsLru)
{
    StatRegistry s;
    UopCacheConfig cfg;
    cfg.capacityLines = 2;
    cfg.fillLatency = 0;
    CriticalUopCache uc(cfg, s);
    uc.insert(makeTrace(0x10, 4, {0}), 0);
    uc.insert(makeTrace(0x20, 4, {0}), 0);
    EXPECT_NE(uc.lookup(0x10, 10), nullptr); // 0x10 now MRU
    uc.insert(makeTrace(0x30, 4, {0}), 20);  // evicts 0x20
    EXPECT_TRUE(uc.contains(0x10));
    EXPECT_FALSE(uc.contains(0x20));
    EXPECT_TRUE(uc.contains(0x30));
}

TEST(CriticalUopCache, MultiLineTraceChargesCapacity)
{
    StatRegistry s;
    UopCacheConfig cfg;
    cfg.capacityLines = 3;
    cfg.fillLatency = 0;
    CriticalUopCache uc(cfg, s);
    std::vector<unsigned> offs;
    for (unsigned i = 0; i < 12; ++i)
        offs.push_back(i);
    uc.insert(makeTrace(0x10, 16, offs), 0); // 12 uops -> 2 lines
    EXPECT_EQ(uc.usedLines(), 2u);
    uc.insert(makeTrace(0x20, 4, {0}), 0);
    uc.insert(makeTrace(0x30, 4, {0}), 0); // must evict something
    EXPECT_LE(uc.usedLines(), 3u);
}

TEST(CriticalUopCache, EmptyTraceOccupiesOneLine)
{
    StatRegistry s;
    UopCacheConfig cfg;
    cfg.fillLatency = 0;
    CriticalUopCache uc(cfg, s);
    uc.insert(makeTrace(0x40, 6, {}), 0);
    EXPECT_EQ(uc.usedLines(), 1u);
    const BbTrace *t = uc.lookup(0x40, 1);
    ASSERT_NE(t, nullptr);
    EXPECT_TRUE(t->uops.empty());
    EXPECT_EQ(t->blockLength, 6u);
}

// --- FillBuffer: backwards dataflow walk ---

namespace
{

struct FillHarness
{
    StatRegistry stats;
    MaskCache maskCache;
    CriticalUopCache uopCache;
    FillBuffer fill;

    explicit FillHarness(FillBufferConfig cfg = smallConfig())
        : maskCache(MaskCacheConfig{}, stats),
          uopCache(readyUopCache(), stats),
          fill(cfg, maskCache, uopCache, stats)
    {
    }

    static FillBufferConfig
    smallConfig()
    {
        FillBufferConfig cfg;
        cfg.capacity = 16;
        cfg.refillIntervalInstrs = 0;
        cfg.minDensity = 0.0;
        cfg.maxDensity = 1.0;
        return cfg;
    }

    static UopCacheConfig
    readyUopCache()
    {
        UopCacheConfig cfg;
        cfg.fillLatency = 0;
        return cfg;
    }

    WalkResult
    feed(const std::vector<RetiredUopInfo> &uops)
    {
        WalkResult last{};
        std::uint64_t n = 0;
        for (const auto &u : uops) {
            auto r = fill.onRetire(u, ++n, 100);
            if (r.performed)
                last = r;
        }
        return last;
    }
};

RetiredUopInfo
retired(Addr pc, Uop uop, bool seed = false, bool startsBb = false,
        Addr memWord = 0)
{
    RetiredUopInfo i;
    i.pc = pc;
    i.uop = uop;
    i.memWordAddr = memWord;
    i.seedCritical = seed;
    i.startsBasicBlock = startsBb;
    return i;
}

} // namespace

TEST(FillBuffer, PaperFig5BackwardsWalk)
{
    // The Fig. 5 example: I6 (load r2 <- [r1]) is the critical seed;
    // the walk must mark I3 (produces r1) and then I0-like producers
    // through registers.
    //
    //   I0: r0 <- r0 - 1
    //   I1: brz (skips I2; taken path recorded)
    //   I3: r1 <- [r3 + r0]    <- in chain (produces r1)
    //   I4: r4 <- [0x200 + r0]
    //   I5: r5 <- r4 >> 2
    //   I6: r2 <- [r1]         <- SEED
    //   I7: [0x300 + r5] <- r2
    //   I8: brnz
    FillHarness h;
    std::vector<RetiredUopInfo> uops;
    uops.push_back(retired(0, {Opcode::AddImm, 0, 0, kInvalidReg, -1},
                           false, true));
    uops.push_back(retired(1, branchUop(9)));
    uops.push_back(
        retired(3, {Opcode::Load, 1, 3, kInvalidReg, 0}, false, true,
                0x40));
    uops.push_back(retired(4, {Opcode::Load, 4, 0, kInvalidReg, 0x200},
                           false, false, 0x41));
    uops.push_back(retired(5, {Opcode::Shr, 5, 4, 10, 0}));
    uops.push_back(retired(6, {Opcode::Load, 2, 1, kInvalidReg, 0},
                           true, false, 0x42)); // the seed
    uops.push_back(retired(7, storeUop(5, 2), false, false, 0x43));
    uops.push_back(retired(8, branchUop(0)));

    // Pad to capacity with unrelated, chain-free uops ending in a
    // branch so the final block is complete.
    while (uops.size() < 15)
        uops.push_back(retired(20 + uops.size(),
                               aluUop(20, 21, 22), false,
                               uops.size() == 8));
    uops.push_back(retired(40, branchUop(20)));

    auto r = h.feed(uops);
    ASSERT_TRUE(r.performed);
    ASSERT_TRUE(r.accepted);

    // Trace for the BB starting at I3 must contain the seed I6, its
    // register producer I3, and the address chain of I3 (r0 from
    // I0 is in the previous BB; I3's block trace holds I3 and I6).
    const BbTrace *t = h.uopCache.lookup(3, 1000);
    ASSERT_NE(t, nullptr);
    std::vector<unsigned> offs;
    for (const auto &tu : t->uops)
        offs.push_back(tu.offsetInBlock);
    EXPECT_NE(std::find(offs.begin(), offs.end(), 0u), offs.end())
        << "I3 (producer of the seed's address) not marked";
    EXPECT_NE(std::find(offs.begin(), offs.end(), 3u), offs.end())
        << "I6 (the seed) not marked";
    // I4/I5 (offsets 1 and 2) feed only the store; the store itself
    // joins the chain through memory only when a critical load reads
    // that address, which none does here.
    EXPECT_EQ(std::find(offs.begin(), offs.end(), 1u), offs.end())
        << "I4 wrongly marked";
}

TEST(FillBuffer, ChainsThroughMemory)
{
    // A store writes word W; a later critical load reads W. The
    // walk must pull the store and the store's data producer into
    // the chain.
    FillHarness h;
    std::vector<RetiredUopInfo> uops;
    uops.push_back(retired(0, aluUop(5, 6, 7), false, true)); // data
    uops.push_back(retired(1, storeUop(8, 5), false, false, 0x99));
    uops.push_back(retired(2, aluUop(20, 21, 22)));
    uops.push_back(
        retired(3, loadUop(2, 9), true, false, 0x99)); // seed, reads W
    uops.push_back(retired(4, branchUop(2)));
    while (uops.size() < 15)
        uops.push_back(retired(20 + uops.size(), aluUop(20, 21, 22),
                               false, uops.size() == 5));
    uops.push_back(retired(40, branchUop(20)));

    auto r = h.feed(uops);
    ASSERT_TRUE(r.accepted);
    const BbTrace *t = h.uopCache.lookup(0, 1000);
    ASSERT_NE(t, nullptr);
    std::vector<unsigned> offs;
    for (const auto &tu : t->uops)
        offs.push_back(tu.offsetInBlock);
    EXPECT_NE(std::find(offs.begin(), offs.end(), 1u), offs.end())
        << "store to the critical word not marked";
    EXPECT_NE(std::find(offs.begin(), offs.end(), 0u), offs.end())
        << "store data producer not marked";
    EXPECT_EQ(std::find(offs.begin(), offs.end(), 2u), offs.end())
        << "unrelated ALU uop wrongly marked";
}

TEST(FillBuffer, DensityGuardRejectsAndScrubs)
{
    FillBufferConfig cfg = FillHarness::smallConfig();
    cfg.minDensity = 0.02;
    cfg.maxDensity = 0.50;
    FillHarness h(cfg);

    // Everything seeds: density 100% -> rejected high, blocks
    // scrubbed from both caches.
    h.maskCache.merge(0, 0xF);
    std::vector<RetiredUopInfo> uops;
    for (unsigned i = 0; i < 15; ++i)
        uops.push_back(retired(i, loadUop(1, 2), true, i == 0,
                               0x100 + i));
    uops.push_back(retired(15, branchUop(1), true));
    auto r = h.feed(uops);
    ASSERT_TRUE(r.performed);
    EXPECT_FALSE(r.accepted);
    EXPECT_EQ(h.stats.get("fill_buffer.walks_rejected_high"), 1u);
    EXPECT_FALSE(h.maskCache.lookup(0).has_value()) << "not scrubbed";
    EXPECT_FALSE(h.uopCache.contains(0));
}

TEST(FillBuffer, MaskCachePreMarksNextWindow)
{
    // First window marks offset 2 of BB@0 critical; in the second
    // window the same BB is pre-marked from the Mask Cache even
    // though the CCT seeds nothing.
    FillHarness h;
    auto window = [&](bool seed) {
        std::vector<RetiredUopInfo> uops;
        uops.push_back(retired(0, aluUop(9, 9, 9), false, true));
        uops.push_back(retired(1, aluUop(8, 8, 8)));
        uops.push_back(retired(2, loadUop(1, 2), seed, false, 0x50));
        uops.push_back(retired(3, branchUop(1)));
        while (uops.size() < 15)
            uops.push_back(retired(20 + uops.size(),
                                   aluUop(20, 21, 22), false,
                                   uops.size() == 4));
        uops.push_back(retired(40, branchUop(20)));
        return uops;
    };

    auto r1 = h.feed(window(true));
    ASSERT_TRUE(r1.accepted);
    auto mask = h.maskCache.lookup(0);
    ASSERT_TRUE(mask.has_value());
    EXPECT_TRUE((*mask >> 2) & 1);

    auto r2 = h.feed(window(false));
    ASSERT_TRUE(r2.accepted);
    const BbTrace *t = h.uopCache.lookup(0, 1000);
    ASSERT_NE(t, nullptr);
    bool found = false;
    for (const auto &tu : t->uops)
        found = found || tu.offsetInBlock == 2;
    EXPECT_TRUE(found) << "mask pre-marking lost across windows";
}

TEST(FillBuffer, CollectionWindowsRespectRefillInterval)
{
    FillBufferConfig cfg = FillHarness::smallConfig();
    cfg.refillIntervalInstrs = 100;
    StatRegistry stats;
    MaskCache mc(MaskCacheConfig{}, stats);
    CriticalUopCache uc(FillHarness::readyUopCache(), stats);
    FillBuffer fill(cfg, mc, uc, stats);

    RetiredUopInfo u = retired(0, aluUop(1, 2, 3), false, true);
    std::uint64_t n = 0;
    // Fill to capacity -> one walk.
    for (int i = 0; i < 16; ++i)
        fill.onRetire(u, ++n, 0);
    EXPECT_EQ(stats.get("fill_buffer.walks"), 1u);
    // Immediately feeding more must NOT start a new collection.
    for (int i = 0; i < 16; ++i)
        fill.onRetire(u, ++n, 0);
    EXPECT_EQ(stats.get("fill_buffer.walks"), 1u);
    // After the interval elapses, collection resumes.
    n = 200;
    for (int i = 0; i < 17; ++i)
        fill.onRetire(u, ++n, 0);
    EXPECT_EQ(stats.get("fill_buffer.walks"), 2u);
}

// --- SectionPartition ---

TEST(Partition, GrowsCriticalOnStallLead)
{
    StatRegistry s;
    SectionPartition p("rob", 352, 8, 8, 4, true, 0.5, s);
    const unsigned before = p.criticalCap();
    for (int i = 0; i < 4; ++i)
        p.noteStall(true);
    p.evaluate(0, 0);
    EXPECT_EQ(p.criticalCap(), before + 8);
    EXPECT_EQ(s.get("rob.partition_grows"), 1u);
}

TEST(Partition, ShrinkClampsToOccupancy)
{
    StatRegistry s;
    SectionPartition p("rob", 352, 8, 8, 4, true, 0.5, s);
    const unsigned before = p.criticalCap(); // 176
    for (int i = 0; i < 4; ++i)
        p.noteStall(false);
    p.evaluate(before - 3, 0); // critical occupancy near cap
    EXPECT_EQ(p.criticalCap(), before - 3);
}

TEST(Partition, StaticModeNeverMoves)
{
    StatRegistry s;
    SectionPartition p("rob", 352, 8, 8, 4, false, 0.75, s);
    const unsigned before = p.criticalCap();
    for (int i = 0; i < 100; ++i)
        p.noteStall(true);
    p.evaluate(0, 0);
    EXPECT_EQ(p.criticalCap(), before);
}

TEST(Partition, RespectsMinimumSections)
{
    StatRegistry s;
    SectionPartition p("rob", 64, 8, 8, 1, true, 0.5, s);
    for (int i = 0; i < 100; ++i) {
        p.noteStall(true);
        p.evaluate(0, 0);
    }
    EXPECT_LE(p.criticalCap(), 64u - 8u);
    for (int i = 0; i < 100; ++i) {
        p.noteStall(false);
        p.evaluate(0, 0);
    }
    EXPECT_GE(p.criticalCap(), 8u);
}

// --- DBQ/CMQ flush helper ---

TEST(CdfFifos, FlushYoungerTruncatesByTimestamp)
{
    DelayedBranchQueue dbq(8);
    dbq.push({10, true, 1});
    dbq.push({20, false, 2});
    dbq.push({30, true, 3});
    flushYounger(dbq, 20);
    EXPECT_EQ(dbq.size(), 2u);
    EXPECT_EQ(dbq.back().ts, 20u);
    flushYounger(dbq, 5);
    EXPECT_TRUE(dbq.empty());
}

TEST(CdfFifos, FlushYoungerEdgeCases)
{
    DelayedBranchQueue dbq(8);
    flushYounger(dbq, 10); // empty queue: no-op, no crash
    EXPECT_TRUE(dbq.empty());

    dbq.push({10, true, 1});
    dbq.push({20, false, 2});
    flushYounger(dbq, 20); // flush-none: ts == flushTs survives
    EXPECT_EQ(dbq.size(), 2u);
    flushYounger(dbq, kInvalidSeq);
    EXPECT_EQ(dbq.size(), 2u);

    flushYounger(dbq, 0); // flush-all
    EXPECT_TRUE(dbq.empty());
    flushYounger(dbq, 0); // idempotent on the emptied queue
    EXPECT_TRUE(dbq.empty());
}
