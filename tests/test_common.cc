/**
 * @file
 * Unit tests for the foundation utilities: saturating counters,
 * circular queues, the stat registry, histograms, the PRNG and the
 * logging helpers.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "common/circular_queue.hh"
#include "common/histogram.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/sat_counter.hh"
#include "common/stats.hh"

using namespace cdfsim;

// --- SatCounter ---

TEST(SatCounter, SaturatesAtMax)
{
    SatCounter c(2);
    EXPECT_EQ(c.maxValue(), 3u);
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 3u);
    EXPECT_TRUE(c.isSaturated());
}

TEST(SatCounter, SaturatesAtZero)
{
    SatCounter c(3, 2);
    for (int i = 0; i < 10; ++i)
        c.decrement();
    EXPECT_EQ(c.value(), 0u);
}

TEST(SatCounter, IncrementByStep)
{
    SatCounter c(4);
    c.increment(6);
    EXPECT_EQ(c.value(), 6u);
    c.increment(100);
    EXPECT_EQ(c.value(), 15u);
    c.decrement(3);
    EXPECT_EQ(c.value(), 12u);
}

TEST(SatCounter, IsSetAtUpperHalf)
{
    SatCounter c(2);
    EXPECT_FALSE(c.isSet());
    c.increment();
    EXPECT_FALSE(c.isSet()); // 1 of 3
    c.increment();
    EXPECT_TRUE(c.isSet()); // 2 of 3
}

TEST(SatCounter, InitialValueClamped)
{
    SatCounter c(2, 100);
    EXPECT_EQ(c.value(), 3u);
}

TEST(SatCounter, RejectsBadWidth)
{
    EXPECT_THROW(SatCounter(0), PanicError);
    EXPECT_THROW(SatCounter(17), PanicError);
}

// --- CircularQueue ---

TEST(CircularQueue, FifoOrder)
{
    CircularQueue<int> q(4);
    q.push(1);
    q.push(2);
    q.push(3);
    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.pop(), 2);
    q.push(4);
    q.push(5);
    q.push(6);
    EXPECT_TRUE(q.full());
    EXPECT_EQ(q.pop(), 3);
    EXPECT_EQ(q.pop(), 4);
    EXPECT_EQ(q.pop(), 5);
    EXPECT_EQ(q.pop(), 6);
    EXPECT_TRUE(q.empty());
}

TEST(CircularQueue, IndexedAccessFromHead)
{
    CircularQueue<int> q(8);
    for (int i = 0; i < 5; ++i)
        q.push(i * 10);
    EXPECT_EQ(q.at(0), 0);
    EXPECT_EQ(q.at(4), 40);
    EXPECT_EQ(q.front(), 0);
    EXPECT_EQ(q.back(), 40);
}

TEST(CircularQueue, TruncateDropsYoungest)
{
    CircularQueue<int> q(8);
    for (int i = 0; i < 6; ++i)
        q.push(i);
    q.truncate(3);
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.back(), 2);
    q.push(77);
    EXPECT_EQ(q.back(), 77);
}

TEST(CircularQueue, TruncateAcrossWrapAround)
{
    CircularQueue<int> q(4);
    for (int i = 0; i < 4; ++i)
        q.push(i);
    q.pop();
    q.pop();
    q.push(4);
    q.push(5); // buffer has wrapped: 2,3,4,5
    q.truncate(2);
    EXPECT_EQ(q.at(0), 2);
    EXPECT_EQ(q.at(1), 3);
}

TEST(CircularQueue, OverflowAndUnderflowPanic)
{
    CircularQueue<int> q(2);
    q.push(1);
    q.push(2);
    EXPECT_THROW(q.push(3), PanicError);
    q.clear();
    EXPECT_THROW(q.pop(), PanicError);
}

// --- StatRegistry ---

TEST(StatRegistry, CounterReferenceIsStable)
{
    StatRegistry s;
    std::uint64_t &a = s.counter("a");
    for (int i = 0; i < 100; ++i)
        s.counter("x" + std::to_string(i)) = i;
    a = 42;
    EXPECT_EQ(s.get("a"), 42u);
    EXPECT_EQ(s.get("x57"), 57u);
}

TEST(StatRegistry, PrefixQuery)
{
    StatRegistry s;
    s.counter("cache.hits") = 1;
    s.counter("cache.misses") = 2;
    s.counter("dram.reads") = 3;
    auto got = s.withPrefix("cache.");
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].first, "cache.hits");
    EXPECT_EQ(got[1].first, "cache.misses");
}

TEST(StatRegistry, ResetAllZeroes)
{
    StatRegistry s;
    s.counter("a") = 7;
    s.counter("b") = 9;
    s.resetAll();
    EXPECT_EQ(s.get("a"), 0u);
    EXPECT_EQ(s.get("b"), 0u);
    EXPECT_TRUE(s.has("a"));
}

TEST(StatRegistry, MissingCounterReadsZero)
{
    StatRegistry s;
    EXPECT_EQ(s.get("never"), 0u);
    EXPECT_FALSE(s.has("never"));
}

TEST(StatRegistry, ReferencesSurviveResetAllAndPrefixQueries)
{
    // Components cache counter references for the lifetime of the
    // registry; resetAll() and the read-side queries must never
    // invalidate them (warmup reset happens mid-run with every
    // cached reference live).
    StatRegistry s;
    std::uint64_t &hits = s.counter("cache.hits");
    std::uint64_t &reads = s.counter("dram.reads");
    hits = 11;
    reads = 22;

    s.resetAll();
    EXPECT_EQ(hits, 0u);
    hits = 5;
    EXPECT_EQ(s.get("cache.hits"), 5u);

    auto pre = s.withPrefix("cache.");
    ASSERT_EQ(pre.size(), 1u);
    reads = 7;
    hits = 9;
    EXPECT_EQ(s.get("dram.reads"), 7u);
    EXPECT_EQ(s.get("cache.hits"), 9u);
}

TEST(StatRegistry, WithPrefixDoesNotMatchNeighbours)
{
    StatRegistry s;
    s.counter("rob.flushes") = 1;
    s.counter("rob_ext.flushes") = 2;
    s.counter("rs.issued") = 3;
    auto got = s.withPrefix("rob.");
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].first, "rob.flushes");
    EXPECT_TRUE(s.withPrefix("zzz.").empty());
}

TEST(StatRegistry, ToJsonSortedAndComplete)
{
    StatRegistry s;
    s.counter("b") = 2;
    s.counter("a") = 1;
    Json j = s.toJson();
    EXPECT_EQ(j.dump(-1), "{\"a\":1,\"b\":2}");
}

// --- Json ---

TEST(Json, ScalarsAndCompactDump)
{
    EXPECT_EQ(Json().dump(-1), "null");
    EXPECT_EQ(Json(true).dump(-1), "true");
    EXPECT_EQ(Json(false).dump(-1), "false");
    EXPECT_EQ(Json(std::int64_t{-42}).dump(-1), "-42");
    EXPECT_EQ(Json(std::uint64_t{18446744073709551615ull}).dump(-1),
              "18446744073709551615");
    EXPECT_EQ(Json("hi").dump(-1), "\"hi\"");
}

TEST(Json, DoubleFormattingRoundTripsAndStaysTyped)
{
    EXPECT_EQ(Json(0.1).dump(-1), "0.1");
    EXPECT_EQ(Json(2.0).dump(-1), "2.0")
        << "doubles must not collapse to bare integers";
    EXPECT_EQ(Json(1e-9).dump(-1), "1e-09");
    const double v = 1.0 / 3.0;
    EXPECT_EQ(std::strtod(Json(v).dump(-1).c_str(), nullptr), v);
}

TEST(Json, StringEscaping)
{
    EXPECT_EQ(Json("a\"b\\c\n").dump(-1), "\"a\\\"b\\\\c\\n\"");
    EXPECT_EQ(Json(std::string(1, '\x01')).dump(-1), "\"\\u0001\"");
}

TEST(Json, ObjectsKeepInsertionOrder)
{
    Json j = Json::object();
    j["zeta"] = 1;
    j["alpha"] = 2;
    j["zeta"] = 3; // overwrite keeps the original slot
    EXPECT_EQ(j.dump(-1), "{\"zeta\":3,\"alpha\":2}");
}

TEST(Json, NestedDumpIsDeterministic)
{
    Json j = Json::object();
    Json arr = Json::array();
    arr.push_back(1);
    arr.push_back("two");
    Json inner = Json::object();
    inner["ok"] = true;
    arr.push_back(std::move(inner));
    j["items"] = std::move(arr);
    EXPECT_EQ(j.dump(-1), "{\"items\":[1,\"two\",{\"ok\":true}]}");
    EXPECT_EQ(j.dump(-1), j.dump(-1));
    EXPECT_EQ(j.dump(2),
              "{\n  \"items\": [\n    1,\n    \"two\",\n    {\n"
              "      \"ok\": true\n    }\n  ]\n}\n");
}

// --- Histogram ---

TEST(Histogram, MeanAndBuckets)
{
    Histogram h(8);
    h.add(1);
    h.add(3);
    h.add(3);
    h.add(5);
    EXPECT_EQ(h.samples(), 4u);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
    EXPECT_EQ(h.bucket(3), 2u);
}

TEST(Histogram, OverflowBucket)
{
    Histogram h(4);
    h.add(100);
    h.add(4);
    EXPECT_EQ(h.bucket(4), 2u); // both land in the overflow bucket
}

TEST(Histogram, FractionAtLeast)
{
    Histogram h(10);
    for (std::uint64_t v : {1, 2, 8, 9})
        h.add(v);
    EXPECT_DOUBLE_EQ(h.fractionAtLeast(8), 0.5);
    EXPECT_DOUBLE_EQ(h.fractionAtLeast(0), 1.0);
}

TEST(RunningMean, Basics)
{
    RunningMean m;
    EXPECT_DOUBLE_EQ(m.mean(), 0.0);
    m.add(2.0);
    m.add(4.0);
    EXPECT_DOUBLE_EQ(m.mean(), 3.0);
    m.reset();
    EXPECT_EQ(m.samples(), 0u);
}

// --- Random ---

TEST(Random, DeterministicGivenSeed)
{
    Random a(123), b(123), c(124);
    bool all_same = true;
    bool any_diff_seed_diff = false;
    for (int i = 0; i < 100; ++i) {
        auto va = a.next();
        if (va != b.next())
            all_same = false;
        if (va != c.next())
            any_diff_seed_diff = true;
    }
    EXPECT_TRUE(all_same);
    EXPECT_TRUE(any_diff_seed_diff);
}

TEST(Random, BelowStaysInRange)
{
    Random r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Random, BetweenInclusive)
{
    Random r(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 200; ++i) {
        auto v = r.between(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 3u);
}

TEST(Random, UniformInUnitInterval)
{
    Random r(11);
    double sum = 0;
    for (int i = 0; i < 1000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 1000.0, 0.5, 0.05);
}

// --- Logging ---

TEST(Logging, PanicThrowsWithMessage)
{
    try {
        panic("value was ", 42);
        FAIL() << "panic returned";
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("value was 42"),
                  std::string::npos);
    }
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config"), FatalError);
}

TEST(Logging, SimAssertPassesAndFails)
{
    SIM_ASSERT(1 + 1 == 2);
    EXPECT_THROW(SIM_ASSERT(false, "boom"), PanicError);
}
