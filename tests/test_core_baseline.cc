/**
 * @file
 * End-to-end tests of the baseline OoO core: programs retire
 * completely and in order, results match the functional
 * interpreter, and the pipeline recovers from mispredicts and
 * memory-order violations.
 */

#include <gtest/gtest.h>

#include "isa/interpreter.hh"
#include "ooo/core.hh"
#include "workloads/workloads.hh"

using namespace cdfsim;

namespace
{

/** Small config so tests run fast and stress capacity limits. */
ooo::CoreConfig
testConfig()
{
    ooo::CoreConfig cfg;
    cfg.deadlockCycles = 200'000;
    return cfg;
}

/** Run a program to completion on the baseline core. */
ooo::CoreResult
runToHalt(const isa::Program &prog, isa::MemoryImage &mem,
          ooo::CoreConfig cfg = testConfig())
{
    StatRegistry stats;
    ooo::Core core(cfg, prog, mem, stats);
    auto r = core.run(10'000'000, 50'000'000);
    EXPECT_TRUE(core.halted()) << "program did not halt";
    return r;
}

/** Dynamic instruction count per the functional interpreter. */
std::uint64_t
functionalLength(const workloads::Workload &w, std::uint64_t cap)
{
    isa::MemoryImage mem = w.makeMemory();
    isa::Interpreter interp(w.program, mem);
    std::uint64_t n = 0;
    while (!interp.halted() && n < cap) {
        interp.step();
        ++n;
    }
    return n;
}

} // namespace

TEST(CoreBaseline, TrivialStraightLineProgram)
{
    isa::ProgramBuilder b("trivial");
    b.movi(1, 5);
    b.movi(2, 7);
    b.add(3, 1, 2);
    b.halt();
    auto prog = b.build();
    isa::MemoryImage mem;
    auto r = runToHalt(prog, mem);
    EXPECT_EQ(r.retiredInstrs, 4u);
    EXPECT_TRUE(r.halted);
}

TEST(CoreBaseline, CountedLoopRetiresExactDynamicLength)
{
    isa::ProgramBuilder b("loop");
    auto loop = b.makeLabel();
    b.movi(0, 100);
    b.bind(loop);
    b.addi(1, 1, 3);
    b.addi(0, 0, -1);
    b.bnez(0, loop);
    b.halt();
    auto prog = b.build();

    isa::MemoryImage mem;
    auto r = runToHalt(prog, mem);
    // 1 movi + 100 * (addi, addi, bnez) + halt
    EXPECT_EQ(r.retiredInstrs, 1u + 300u + 1u);
}

TEST(CoreBaseline, LoadStoreRoundTrip)
{
    isa::ProgramBuilder b("mem");
    b.movi(1, 0x1000);
    b.movi(2, 42);
    b.store(1, 0, 2);
    b.load(3, 1, 0);
    b.add(4, 3, 3);
    b.halt();
    auto prog = b.build();
    isa::MemoryImage mem;
    auto r = runToHalt(prog, mem);
    EXPECT_EQ(r.retiredInstrs, 6u);
}

TEST(CoreBaseline, DataDependentBranchesRecover)
{
    // Alternating-direction branch that TAGE cannot fully learn at
    // first: exercises wrong-path fetch and recovery.
    isa::ProgramBuilder b("branchy");
    auto loop = b.makeLabel();
    auto skip = b.makeLabel();
    b.movi(0, 500);
    b.movi(5, 0);
    b.bind(loop);
    b.movi(6, 1);
    b.and_(7, 0, 6);
    b.beqz(7, skip);
    b.addi(5, 5, 1);
    b.bind(skip);
    b.addi(0, 0, -1);
    b.bnez(0, loop);
    b.halt();
    auto prog = b.build();
    isa::MemoryImage mem;
    auto r = runToHalt(prog, mem);
    // 2 setup + 500 iterations x 5 uops + 250 taken-path addis + halt.
    EXPECT_EQ(r.retiredInstrs, 2753u);
    EXPECT_TRUE(r.halted);
}

TEST(CoreBaseline, RandomWorkloadsRetireFunctionalLength)
{
    for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
        auto w = workloads::makeRandomWorkload(seed, 6, 50);
        const std::uint64_t want = functionalLength(w, 5'000'000);
        ASSERT_LT(want, 5'000'000u) << "random program does not halt";

        isa::MemoryImage mem = w.makeMemory();
        StatRegistry stats;
        ooo::Core core(testConfig(), w.program, mem, stats);
        auto r = core.run(10'000'000, 50'000'000);
        EXPECT_TRUE(core.halted()) << "seed " << seed;
        EXPECT_EQ(r.retiredInstrs, want) << "seed " << seed;
    }
}

TEST(CoreBaseline, IpcIsPlausibleOnAluKernel)
{
    // A pure ALU loop with independent chains should sustain a
    // reasonable IPC on a 6-wide core.
    isa::ProgramBuilder b("alu");
    auto loop = b.makeLabel();
    b.movi(0, 20000);
    b.bind(loop);
    for (RegId r = 8; r < 20; ++r)
        b.addi(r, r, 1);
    b.addi(0, 0, -1);
    b.bnez(0, loop);
    b.halt();
    auto prog = b.build();
    isa::MemoryImage mem;
    auto r = runToHalt(prog, mem);
    EXPECT_GT(r.ipc, 2.0) << "suspiciously low ALU IPC";
    EXPECT_LE(r.ipc, 6.01);
}

TEST(CoreBaseline, PaperWorkloadsRunUnderBaseline)
{
    for (const auto &name : {"astar", "mcf", "lbm"}) {
        auto w = workloads::makeWorkload(name);
        isa::MemoryImage mem = w.makeMemory();
        StatRegistry stats;
        ooo::Core core(testConfig(), w.program, mem, stats);
        auto r = core.run(30'000, 50'000'000);
        EXPECT_GE(r.retiredInstrs, 30'000u) << name;
        EXPECT_GT(r.ipc, 0.01) << name;
    }
}
