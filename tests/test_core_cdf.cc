/**
 * @file
 * CDF-specific core behaviour: mode entry/exit, critical-stream
 * renaming and replay, dynamic partitioning activity, dependence
 * violations on path-dependent producers, and the ablation knobs.
 */

#include <gtest/gtest.h>

#include "ooo/core.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace cdfsim;

namespace
{

ooo::CoreConfig
cdfConfig()
{
    ooo::CoreConfig cfg;
    cfg.mode = ooo::CoreMode::Cdf;
    cfg.deadlockCycles = 500'000;
    return cfg;
}

} // namespace

TEST(CoreCdf, EntersAndSustainsCdfModeOnMissHeavyKernel)
{
    auto w = workloads::makeWorkload("astar");
    isa::MemoryImage mem = w.makeMemory();
    StatRegistry stats;
    ooo::Core core(cdfConfig(), w.program, mem, stats);
    core.run(250'000, 300'000'000);
    core.resetMeasurement();
    core.run(core.retired() + 50'000, 300'000'000);
    auto r = core.result();
    EXPECT_GT(r.cdfModeFraction, 0.5)
        << "CDF did not sustain on astar";
    EXPECT_GT(stats.get("core.renamed_critical_uops"), 5'000u);
}

TEST(CoreCdf, CriticalStreamImprovesMlp)
{
    sim::RunSpec spec;
    spec.warmupInstrs = 250'000;
    spec.measureInstrs = 80'000;
    auto base =
        sim::runWorkload("astar", ooo::CoreMode::Baseline, spec);
    auto cdf = sim::runWorkload("astar", ooo::CoreMode::Cdf, spec);
    EXPECT_GT(cdf.core.mlp, base.core.mlp * 1.2)
        << "window expansion did not raise MLP";
    EXPECT_GT(cdf.core.ipc, base.core.ipc);
}

TEST(CoreCdf, DensityGuardKeepsCdfOffDenseKernels)
{
    // cactu is fully serial dependent pairs: high criticality
    // density; the guard (or saturation) must keep CDF from
    // hurting.
    sim::RunSpec spec;
    spec.warmupInstrs = 150'000;
    spec.measureInstrs = 40'000;
    auto base =
        sim::runWorkload("cactu", ooo::CoreMode::Baseline, spec);
    auto cdf = sim::runWorkload("cactu", ooo::CoreMode::Cdf, spec);
    EXPECT_GT(cdf.core.ipc, base.core.ipc * 0.95)
        << "CDF badly hurt a dense kernel";
}

TEST(CoreCdf, DependenceViolationsDetectedOnPathDependentProducers)
{
    // sphinx3 is constructed so the critical load's index producer
    // differs per control path (the paper's Fig. 12 situation).
    auto w = workloads::makeWorkload("sphinx3");
    isa::MemoryImage mem = w.makeMemory();
    StatRegistry stats;
    ooo::Core core(cdfConfig(), w.program, mem, stats);
    core.run(400'000, 400'000'000);
    EXPECT_GT(stats.get("core.cdf_episodes") +
                  (core.inCdfMode() ? 1 : 0),
              0u);
    // Violations may be rare (the mask cache accumulates paths), but
    // the machinery must never corrupt the retired stream — which
    // the in-core assertions enforce; here we check the counter is
    // wired.
    EXPECT_TRUE(stats.has("core.dependence_violations"));
}

TEST(CoreCdf, MaskCacheOffRaisesViolations)
{
    sim::RunSpec spec;
    spec.warmupInstrs = 250'000;
    spec.measureInstrs = 100'000;

    ooo::CoreConfig on;
    auto ron = sim::runWorkload("sphinx3", ooo::CoreMode::Cdf, spec,
                                on);
    ooo::CoreConfig off;
    off.cdf.fillBuffer.useMaskCache = false;
    auto roff = sim::runWorkload("sphinx3", ooo::CoreMode::Cdf, spec,
                                 off);

    EXPECT_GE(roff.stats.get("core.dependence_violations"),
              ron.stats.get("core.dependence_violations"))
        << "mask cache should reduce dependence violations";
}

TEST(CoreCdf, DynamicPartitionActuallyMoves)
{
    auto w = workloads::makeWorkload("soplex");
    isa::MemoryImage mem = w.makeMemory();
    StatRegistry stats;
    ooo::Core core(cdfConfig(), w.program, mem, stats);
    core.run(400'000, 400'000'000);
    EXPECT_GT(stats.get("rob.partition_grows") +
                  stats.get("rob.partition_shrinks"),
              0u)
        << "partition controller never resized";
}

TEST(CoreCdf, StaticPartitionKnobDisablesResizing)
{
    auto cfg = cdfConfig();
    cfg.cdf.partition.dynamic = false;
    auto w = workloads::makeWorkload("soplex");
    isa::MemoryImage mem = w.makeMemory();
    StatRegistry stats;
    ooo::Core core(cfg, w.program, mem, stats);
    core.run(300'000, 400'000'000);
    EXPECT_EQ(stats.get("rob.partition_grows"), 0u);
    EXPECT_EQ(stats.get("rob.partition_shrinks"), 0u);
}

TEST(CoreCdf, BranchMarkingKnobChangesCriticalStream)
{
    sim::RunSpec spec;
    spec.warmupInstrs = 250'000;
    spec.measureInstrs = 60'000;

    ooo::CoreConfig withBr;
    auto rb =
        sim::runWorkload("astar", ooo::CoreMode::Cdf, spec, withBr);
    ooo::CoreConfig noBr;
    noBr.cdf.markCriticalBranches = false;
    auto rn =
        sim::runWorkload("astar", ooo::CoreMode::Cdf, spec, noBr);

    // With branch marking the critical stream resolves mispredicts
    // early; astar (hard value branch) must benefit.
    EXPECT_GT(rb.core.ipc, rn.core.ipc * 0.99);
}

TEST(CorePre, RunaheadPrefetchesComputableChains)
{
    sim::RunSpec spec;
    spec.warmupInstrs = 250'000;
    spec.measureInstrs = 80'000;
    auto base =
        sim::runWorkload("lbm", ooo::CoreMode::Baseline, spec);
    auto pre = sim::runWorkload("lbm", ooo::CoreMode::Pre, spec);
    EXPECT_GT(pre.stats.get("core.runahead_episodes"), 0u);
    EXPECT_GT(pre.stats.get("core.runahead_loads"), 0u);
    EXPECT_LT(pre.core.llcMpki, base.core.llcMpki)
        << "runahead should convert future misses into hits on "
           "register-computable chains";
}

TEST(CorePre, TaintedChainsProduceExtraTrafficNotBenefit)
{
    sim::RunSpec spec;
    spec.warmupInstrs = 200'000;
    spec.measureInstrs = 60'000;
    auto base =
        sim::runWorkload("mcf", ooo::CoreMode::Baseline, spec);
    auto pre = sim::runWorkload("mcf", ooo::CoreMode::Pre, spec);
    // Serial pointer chases cannot be prefetched by runahead; its
    // chains taint and the traffic shows up as runahead reads.
    EXPECT_GE(pre.core.dramBytes, base.core.dramBytes)
        << "expected extra runahead traffic";
    EXPECT_LT(pre.core.ipc / base.core.ipc, 1.05)
        << "runahead should not speed up a serial chase";
}

TEST(CorePre, RunaheadStateDiscardedOnExit)
{
    // PRE must retire the exact functional stream (also enforced by
    // the equivalence suite); here: runahead never lets wrong-path
    // chain loads poison architectural state, observable as the
    // in-order retirement assertion not firing over a long run.
    auto cfg = cdfConfig();
    cfg.mode = ooo::CoreMode::Pre;
    auto w = workloads::makeWorkload("gems");
    isa::MemoryImage mem = w.makeMemory();
    StatRegistry stats;
    ooo::Core core(cfg, w.program, mem, stats);
    EXPECT_NO_THROW(core.run(300'000, 400'000'000));
}
