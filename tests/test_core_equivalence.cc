/**
 * @file
 * The master correctness property: for every workload and every
 * execution paradigm (baseline, CDF, PRE), the retired instruction
 * stream is identical to the functional interpreter's dynamic
 * stream. In-order, gap-free retirement is asserted inside the core
 * (timestamps must retire contiguously); these tests drive all
 * modes across all workloads and random programs so the assertion
 * and the retired-length equality actually bite.
 */

#include <gtest/gtest.h>

#include "isa/interpreter.hh"
#include "ooo/core.hh"
#include "workloads/workloads.hh"

using namespace cdfsim;

namespace
{

ooo::CoreConfig
modeConfig(ooo::CoreMode mode)
{
    ooo::CoreConfig cfg;
    cfg.mode = mode;
    cfg.deadlockCycles = 300'000;
    return cfg;
}

std::uint64_t
functionalLength(const workloads::Workload &w, std::uint64_t cap)
{
    isa::MemoryImage mem = w.makeMemory();
    isa::Interpreter interp(w.program, mem);
    std::uint64_t n = 0;
    while (!interp.halted() && n < cap) {
        interp.step();
        ++n;
    }
    return n;
}

} // namespace

// ---------------------------------------------------------------------
// Paper workloads: run a fixed instruction budget under each mode.
// The in-core contiguous-retirement assertion guarantees stream
// equality; here we check it survives and makes progress.
// ---------------------------------------------------------------------

class WorkloadModeTest
    : public ::testing::TestWithParam<
          std::tuple<std::string, ooo::CoreMode>>
{
};

TEST_P(WorkloadModeTest, RetiresBudgetInOrder)
{
    const auto &[name, mode] = GetParam();
    auto w = workloads::makeWorkload(name);
    isa::MemoryImage mem = w.makeMemory();
    StatRegistry stats;
    ooo::Core core(modeConfig(mode), w.program, mem, stats);

    constexpr std::uint64_t budget = 60'000;
    auto r = core.run(budget, 100'000'000);
    EXPECT_GE(r.retiredInstrs, budget) << name;
    EXPECT_GT(r.ipc, 0.005) << name;
}

namespace
{

std::string
workloadModeName(
    const ::testing::TestParamInfo<std::tuple<std::string,
                                              ooo::CoreMode>> &info)
{
    const std::string &name = std::get<0>(info.param);
    const ooo::CoreMode mode = std::get<1>(info.param);
    const char *m = mode == ooo::CoreMode::Baseline ? "base"
                    : mode == ooo::CoreMode::Cdf    ? "cdf"
                                                    : "pre";
    return name + "_" + m;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadModeTest,
    ::testing::Combine(
        ::testing::ValuesIn(workloads::allWorkloadNames()),
        ::testing::Values(ooo::CoreMode::Baseline, ooo::CoreMode::Cdf,
                          ooo::CoreMode::Pre)),
    workloadModeName);

// ---------------------------------------------------------------------
// Random programs: run to halt under each mode; the retired length
// must equal the functional stream length exactly.
// ---------------------------------------------------------------------

class RandomProgramTest
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomProgramTest, AllModesRetireFunctionalLength)
{
    const std::uint64_t seed = GetParam();
    auto w = workloads::makeRandomWorkload(seed, 8, 300);
    const std::uint64_t want = functionalLength(w, 10'000'000);
    ASSERT_LT(want, 10'000'000u);

    for (auto mode : {ooo::CoreMode::Baseline, ooo::CoreMode::Cdf,
                      ooo::CoreMode::Pre}) {
        isa::MemoryImage mem = w.makeMemory();
        StatRegistry stats;
        ooo::Core core(modeConfig(mode), w.program, mem, stats);
        auto r = core.run(want + 10, 200'000'000);
        EXPECT_TRUE(core.halted())
            << "seed " << seed << " mode " << static_cast<int>(mode);
        EXPECT_EQ(r.retiredInstrs, want)
            << "seed " << seed << " mode " << static_cast<int>(mode);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::Range<std::uint64_t>(1, 21));

// ---------------------------------------------------------------------
// CDF specifically must actually ENTER CDF mode on workloads with
// stable critical loads; otherwise the equivalence above is vacuous.
// ---------------------------------------------------------------------

TEST(CdfActivation, AstarEntersCdfModeAndStaysCorrect)
{
    auto w = workloads::makeWorkload("astar");
    isa::MemoryImage mem = w.makeMemory();
    StatRegistry stats;
    ooo::Core core(modeConfig(ooo::CoreMode::Cdf), w.program, mem,
                   stats);
    core.run(150'000, 200'000'000);
    EXPECT_GT(stats.get("core.cdf_episodes"), 0u)
        << "CDF never engaged on astar";
    EXPECT_GT(stats.get("core.renamed_critical_uops"), 1000u);
}

TEST(PreActivation, DenseKernelTriggersRunahead)
{
    auto w = workloads::makeWorkload("gems");
    isa::MemoryImage mem = w.makeMemory();
    StatRegistry stats;
    ooo::Core core(modeConfig(ooo::CoreMode::Pre), w.program, mem,
                   stats);
    core.run(150'000, 200'000'000);
    EXPECT_GT(stats.get("core.runahead_episodes"), 0u)
        << "PRE never entered runahead on gems";
}
