/**
 * @file
 * Unit tests for the cycle ring buffers behind the MSHR file and the
 * hierarchy's outstanding-miss counters. The rings replaced plain
 * vectors with erase_if + min-scan, so most tests here cross-check
 * against exactly that naive model, including under fuzzed inputs —
 * any divergence would show up as a stat-gate break in the simulator.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/cycle_ring.hh"
#include "common/random.hh"
#include "common/types.hh"

using namespace cdfsim;

// --- MonotonicCycleRing ---

TEST(MonotonicCycleRing, PushPruneEarliest)
{
    MonotonicCycleRing r(4);
    EXPECT_TRUE(r.empty());
    r.push(30);
    r.push(10);
    r.push(20);
    EXPECT_EQ(r.size(), 3u);
    EXPECT_EQ(r.earliest(), 10u);
    r.pruneUpTo(10); // boundary: cycle == now expires
    EXPECT_EQ(r.size(), 2u);
    EXPECT_EQ(r.earliest(), 20u);
    r.pruneUpTo(19); // boundary: cycle == now + 1 survives
    EXPECT_EQ(r.earliest(), 20u);
    r.pruneUpTo(100);
    EXPECT_TRUE(r.empty());
}

TEST(MonotonicCycleRing, DuplicateCyclesAllExpireTogether)
{
    MonotonicCycleRing r(4);
    r.push(50);
    r.push(50);
    r.push(50);
    r.pruneUpTo(49);
    EXPECT_EQ(r.size(), 3u);
    r.pruneUpTo(50);
    EXPECT_TRUE(r.empty());
}

TEST(MonotonicCycleRing, WrapsAroundWithoutGrowing)
{
    // Prune/push cycles push head_ far past the capacity, so the
    // live window straddles the physical end of the buffer.
    MonotonicCycleRing r(4);
    ASSERT_EQ(r.capacity(), 4u);
    Cycle t = 0;
    for (int lap = 0; lap < 100; ++lap) {
        r.push(t + 7);
        r.push(t + 3);
        r.push(t + 5);
        EXPECT_EQ(r.earliest(), t + 3);
        r.pruneUpTo(t + 4);
        EXPECT_EQ(r.size(), 2u);
        EXPECT_EQ(r.earliest(), t + 5);
        r.pruneUpTo(t + 10);
        EXPECT_TRUE(r.empty());
        t += 10;
    }
    EXPECT_EQ(r.capacity(), 4u); // never needed to grow
}

TEST(MonotonicCycleRing, GrowsAtCapacityPreservingOrder)
{
    MonotonicCycleRing r(2);
    ASSERT_EQ(r.capacity(), 2u);
    // Insert in descending order so every push shifts, and force
    // growth mid-stream with a wrapped head.
    r.push(1);
    r.pruneUpTo(1); // head_ now nonzero
    for (Cycle c = 40; c > 0; --c)
        r.push(c);
    EXPECT_EQ(r.size(), 40u);
    EXPECT_GE(r.capacity(), 40u);
    for (Cycle c = 1; c <= 40; ++c) {
        EXPECT_EQ(r.earliest(), c);
        r.pruneUpTo(c);
    }
    EXPECT_TRUE(r.empty());
}

TEST(MonotonicCycleRing, FuzzAgainstVectorModel)
{
    // The MSHR file used to be: vector of in-flight completion
    // cycles, erase_if(c <= now), then *min_element for the
    // backpressure decision. Replay a mixed workload against that.
    MonotonicCycleRing r(2);
    std::vector<Cycle> model;
    Random rng(0xC0FFEE);
    Cycle now = 0;
    for (int step = 0; step < 20000; ++step) {
        if (rng.below(3) != 0) {
            // Mostly near-in-order arrivals, like DRAM ready times.
            const Cycle c = now + 1 + rng.below(200);
            r.push(c);
            model.push_back(c);
        } else {
            now += rng.below(64);
            r.pruneUpTo(now);
            std::erase_if(model,
                          [&](Cycle c) { return c <= now; });
        }
        ASSERT_EQ(r.size(), model.size()) << "step " << step;
        if (!model.empty()) {
            ASSERT_EQ(r.earliest(),
                      *std::min_element(model.begin(), model.end()))
                << "step " << step;
        }
    }
}

// --- CycleCountRing ---

TEST(CycleCountRing, AddAdvanceOutstanding)
{
    CycleCountRing r(8);
    r.add(5);
    r.add(5);
    r.add(7);
    EXPECT_EQ(r.outstanding(), 3u);
    r.advanceTo(4);
    EXPECT_EQ(r.outstanding(), 3u);
    r.advanceTo(5); // boundary: both events at 5 expire
    EXPECT_EQ(r.outstanding(), 1u);
    r.advanceTo(7);
    EXPECT_EQ(r.outstanding(), 0u);
}

TEST(CycleCountRing, EventsAtOrBeforeCursorAreDropped)
{
    CycleCountRing r(8);
    r.advanceTo(100);
    r.add(100); // already expired relative to the cursor
    r.add(99);
    EXPECT_EQ(r.outstanding(), 0u);
    r.add(101);
    EXPECT_EQ(r.outstanding(), 1u);
}

TEST(CycleCountRing, NonMonotoneAdvanceIsSticky)
{
    // The old erase_if model never resurrected entries when queried
    // with an earlier cycle; the cursor must behave the same way.
    CycleCountRing r(8);
    r.add(10);
    r.advanceTo(10);
    EXPECT_EQ(r.outstanding(), 0u);
    r.advanceTo(3); // no-op, not a rewind
    EXPECT_EQ(r.cursor(), 10u);
    r.add(12);
    EXPECT_EQ(r.outstanding(), 1u);
}

TEST(CycleCountRing, GrowsForFarFutureCompletions)
{
    CycleCountRing r(4);
    ASSERT_EQ(r.horizon(), 4u);
    r.add(2);
    r.add(3);
    r.add(5000); // far beyond the horizon: forces a re-bucket
    EXPECT_GE(r.horizon(), 5000u);
    EXPECT_EQ(r.outstanding(), 3u);
    r.advanceTo(3);
    EXPECT_EQ(r.outstanding(), 1u);
    r.advanceTo(5000);
    EXPECT_EQ(r.outstanding(), 0u);
}

TEST(CycleCountRing, SurvivesManyRevolutions)
{
    CycleCountRing r(4);
    Cycle now = 0;
    for (int lap = 0; lap < 10000; ++lap) {
        r.add(now + 2);
        r.add(now + 3);
        r.advanceTo(now + 2);
        EXPECT_EQ(r.outstanding(), 1u);
        now += 3;
        r.advanceTo(now);
        EXPECT_EQ(r.outstanding(), 0u);
    }
    EXPECT_EQ(r.horizon(), 4u); // tight horizon never grew
}

TEST(CycleCountRing, FuzzAgainstVectorModel)
{
    // The hierarchy's outstanding-miss queues used to be vectors of
    // completion cycles with erase_if(c <= now) on every sample;
    // outstanding() must match that count exactly under arbitrary
    // interleavings of adds, samples, and idle stretches.
    CycleCountRing r(2);
    std::vector<Cycle> model;
    Random rng(0xFEED);
    Cycle now = 0;
    for (int step = 0; step < 20000; ++step) {
        const auto action = rng.below(4);
        if (action == 0) {
            now += rng.below(300); // idle gap, possibly huge
        } else if (action == 1) {
            // Occasionally a completion far in the future (DRAM
            // bank-queue drift) to force growth mid-run.
            const Cycle c = now + 1 + rng.below(5000);
            r.add(c);
            model.push_back(c);
        } else {
            const Cycle c = now + 1 + rng.below(250);
            r.add(c);
            model.push_back(c);
        }
        r.advanceTo(now);
        std::erase_if(model, [&](Cycle c) { return c <= now; });
        ASSERT_EQ(r.outstanding(), model.size()) << "step " << step;
        ++now;
    }
}
