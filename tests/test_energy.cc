/**
 * @file
 * Tests for the energy/area model: monotonicity in activity,
 * area scaling with window size, CDF structure overheads near the
 * paper's reported 3.2% area / ~2% energy, and report composition.
 */

#include <gtest/gtest.h>

#include "energy/energy_model.hh"
#include "sim/simulator.hh"

using namespace cdfsim;

TEST(EnergyModel, MoreActivityMoreDynamicEnergy)
{
    ooo::CoreConfig cfg;
    StatRegistry low, high;
    low.counter("core.fetched_uops") = 1'000;
    low.counter("core.issued_uops") = 1'000;
    high.counter("core.fetched_uops") = 100'000;
    high.counter("core.issued_uops") = 100'000;

    auto rl = energy::Model::evaluate(cfg, low, 10'000);
    auto rh = energy::Model::evaluate(cfg, high, 10'000);
    EXPECT_GT(rh.dynamicUj, rl.dynamicUj);
}

TEST(EnergyModel, StaticEnergyScalesWithCycles)
{
    ooo::CoreConfig cfg;
    StatRegistry s;
    auto r1 = energy::Model::evaluate(cfg, s, 1'000'000);
    auto r2 = energy::Model::evaluate(cfg, s, 2'000'000);
    EXPECT_NEAR(r2.staticUj, 2.0 * r1.staticUj, 1e-9);
}

TEST(EnergyModel, AreaGrowsWithWindow)
{
    ooo::CoreConfig small;
    ooo::CoreConfig big;
    big.scaleWindow(2.0);
    EXPECT_GT(energy::Model::coreArea(big),
              energy::Model::coreArea(small));
}

TEST(EnergyModel, CdfAreaOverheadNearPaper)
{
    ooo::CoreConfig cfg;
    const double frac = energy::Model::cdfArea(cfg) /
                        energy::Model::coreArea(cfg);
    // Paper: 3.2% total area overhead.
    EXPECT_GT(frac, 0.015);
    EXPECT_LT(frac, 0.06);
}

TEST(EnergyModel, DramEnergyTracksTraffic)
{
    ooo::CoreConfig cfg;
    StatRegistry s;
    s.counter("dram.reads") = 1'000;
    auto r1 = energy::Model::evaluate(cfg, s, 1'000);
    s.counter("dram.reads") = 10'000;
    auto r2 = energy::Model::evaluate(cfg, s, 1'000);
    EXPECT_NEAR(r2.dramUj, 10.0 * r1.dramUj, r1.dramUj * 0.01);
}

TEST(EnergyModel, ExtraAreaOnlyWhenCdfStructuresActive)
{
    ooo::CoreConfig cfg;
    StatRegistry idle;
    auto r1 = energy::Model::evaluate(cfg, idle, 1'000);
    EXPECT_DOUBLE_EQ(r1.extraAreaMm2, 0.0);

    StatRegistry active;
    active.counter("uop_cache.fills") = 5;
    auto r2 = energy::Model::evaluate(cfg, active, 1'000);
    EXPECT_GT(r2.extraAreaMm2, 0.0);
}

TEST(EnergyModel, ComponentsSumToDynamicTotal)
{
    ooo::CoreConfig cfg;
    StatRegistry s;
    s.counter("core.fetched_uops") = 5'000;
    s.counter("llc.accesses") = 700;
    s.counter("dram.reads") = 50;
    auto r = energy::Model::evaluate(cfg, s, 1'000);
    double sum = 0.0;
    for (const auto &c : r.components)
        sum += c.dynamicUj;
    EXPECT_NEAR(sum, r.dynamicUj, 1e-9);
    EXPECT_NEAR(r.totalUj, r.dynamicUj + r.staticUj, 1e-9);
}

TEST(EnergyModel, EndToEndCdfStructureOverheadIsSmall)
{
    // On a kernel where CDF barely helps, the energy delta from the
    // added structures alone should stay within a few percent
    // (paper: ~2%).
    // Warm long enough that cold-miss criticality has decayed (the
    // figure harnesses use the same 300k-instruction warmup).
    sim::RunSpec spec;
    spec.warmupInstrs = 300'000;
    spec.measureInstrs = 60'000;
    auto base =
        sim::runWorkload("parest", ooo::CoreMode::Baseline, spec);
    auto cdf = sim::runWorkload("parest", ooo::CoreMode::Cdf, spec);
    const double rel = cdf.energy.totalUj / base.energy.totalUj;
    EXPECT_LT(rel, 1.12) << "CDF structure energy overhead too high";
}
