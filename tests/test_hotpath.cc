/**
 * @file
 * Unit tests for the simulator hot-path building blocks: the slab
 * object pool, the open-addressing flat map, and TAGE's incremental
 * folded-history maintenance. These are the pieces the cycle loop
 * leans on after the allocation/scan optimization pass; each is
 * checked against a straightforward reference implementation.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "bp/tage.hh"
#include "common/flat_map.hh"
#include "common/pool.hh"
#include "common/stats.hh"

using namespace cdfsim;

// ---------------------------------------------------------------------
// SlabPool
// ---------------------------------------------------------------------

TEST(SlabPool, AllocateFreeReuse)
{
    SlabPool<int> pool(4);
    const std::uint32_t a = pool.allocate();
    const std::uint32_t b = pool.allocate();
    EXPECT_NE(a, b);
    EXPECT_EQ(pool.liveCount(), 2u);
    EXPECT_TRUE(pool.alive(a));
    EXPECT_EQ(pool.at(a), 0); // value-initialized

    pool.at(a) = 42;
    pool.free(a);
    EXPECT_FALSE(pool.alive(a));
    EXPECT_EQ(pool.liveCount(), 1u);

    // LIFO freelist: the slot just freed is handed out again, and
    // the object in it is freshly constructed.
    const std::uint32_t c = pool.allocate();
    EXPECT_EQ(c, a);
    EXPECT_EQ(pool.at(c), 0);
}

TEST(SlabPool, AddressesStableAcrossGrowth)
{
    SlabPool<std::uint64_t> pool(8);
    std::vector<std::uint32_t> idx;
    std::vector<std::uint64_t *> ptr;
    for (std::uint32_t i = 0; i < 100; ++i) {
        idx.push_back(pool.allocate());
        pool.at(idx.back()) = i;
        ptr.push_back(&pool.at(idx.back()));
    }
    // Growth happened (multiple slabs); earlier addresses must not
    // have moved.
    EXPECT_GE(pool.capacity(), 100u);
    for (std::uint32_t i = 0; i < 100; ++i) {
        EXPECT_EQ(&pool.at(idx[i]), ptr[i]);
        EXPECT_EQ(*ptr[i], i);
    }
}

TEST(SlabPool, NonTrivialTypeLifetimes)
{
    SlabPool<std::string> pool(2);
    const std::uint32_t a = pool.allocate();
    pool.at(a) = std::string(100, 'x');
    pool.free(a);
    const std::uint32_t b = pool.allocate();
    EXPECT_EQ(b, a);
    EXPECT_TRUE(pool.at(b).empty());
    pool.at(b) = "still live at pool destruction";
    // Destructor must clean up the live object (ASan would flag a
    // leak or double-free if lifetimes were wrong).
}

TEST(SlabPool, StressAgainstReference)
{
    SlabPool<std::uint32_t> pool(16);
    std::unordered_map<std::uint32_t, std::uint32_t> ref;
    std::mt19937 rng(12345);
    std::vector<std::uint32_t> liveIdx;
    for (int step = 0; step < 20'000; ++step) {
        if (liveIdx.empty() || rng() % 3 != 0) {
            const std::uint32_t i = pool.allocate();
            EXPECT_EQ(ref.count(i), 0u);
            const std::uint32_t v = rng();
            pool.at(i) = v;
            ref[i] = v;
            liveIdx.push_back(i);
        } else {
            const std::size_t pick = rng() % liveIdx.size();
            const std::uint32_t i = liveIdx[pick];
            EXPECT_EQ(pool.at(i), ref[i]);
            pool.free(i);
            ref.erase(i);
            liveIdx[pick] = liveIdx.back();
            liveIdx.pop_back();
        }
        EXPECT_EQ(pool.liveCount(), ref.size());
    }
    for (const std::uint32_t i : liveIdx)
        EXPECT_EQ(pool.at(i), ref[i]);
}

// ---------------------------------------------------------------------
// FlatMap
// ---------------------------------------------------------------------

TEST(FlatMap, BasicOps)
{
    FlatMap<std::uint64_t, int> m(~std::uint64_t{0});
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.find(7), nullptr);

    m[7] = 70;
    m[8] = 80;
    EXPECT_EQ(m.size(), 2u);
    ASSERT_NE(m.find(7), nullptr);
    EXPECT_EQ(*m.find(7), 70);

    m[7] = 71; // overwrite, no duplicate
    EXPECT_EQ(m.size(), 2u);
    EXPECT_EQ(*m.find(7), 71);

    EXPECT_TRUE(m.erase(7));
    EXPECT_FALSE(m.erase(7));
    EXPECT_EQ(m.find(7), nullptr);
    EXPECT_EQ(*m.find(8), 80);

    m.clear();
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.find(8), nullptr);
}

TEST(FlatMap, GrowthKeepsEntries)
{
    FlatMap<std::uint64_t, std::uint64_t> m(~std::uint64_t{0}, 16);
    for (std::uint64_t k = 0; k < 1000; ++k)
        m[k * 977] = k;
    EXPECT_EQ(m.size(), 1000u);
    for (std::uint64_t k = 0; k < 1000; ++k) {
        ASSERT_NE(m.find(k * 977), nullptr) << k;
        EXPECT_EQ(*m.find(k * 977), k);
    }
}

TEST(FlatMap, FuzzAgainstUnorderedMap)
{
    // Small key range forces collisions, displacement chains, and
    // backward-shift deletions through occupied runs.
    FlatMap<std::uint64_t, std::uint32_t> m(~std::uint64_t{0}, 16);
    std::unordered_map<std::uint64_t, std::uint32_t> ref;
    std::mt19937 rng(999);
    for (int step = 0; step < 50'000; ++step) {
        const std::uint64_t k = rng() % 200;
        switch (rng() % 4) {
        case 0:
        case 1: {
            const std::uint32_t v = rng();
            m[k] = v;
            ref[k] = v;
            break;
        }
        case 2:
            EXPECT_EQ(m.erase(k), ref.erase(k) > 0);
            break;
        case 3: {
            auto it = ref.find(k);
            std::uint32_t *p = m.find(k);
            if (it == ref.end()) {
                EXPECT_EQ(p, nullptr);
            } else {
                ASSERT_NE(p, nullptr);
                EXPECT_EQ(*p, it->second);
            }
            break;
        }
        }
        ASSERT_EQ(m.size(), ref.size());
    }
    for (const auto &[k, v] : ref) {
        ASSERT_NE(m.find(k), nullptr) << k;
        EXPECT_EQ(*m.find(k), v);
    }
}

// ---------------------------------------------------------------------
// TAGE incremental folded history
// ---------------------------------------------------------------------

// Checkpoints are taken per in-flight branch: they must stay plain
// fixed-size values so copying them never touches the heap.
static_assert(std::is_trivially_copyable_v<bp::TageCheckpoint>);

namespace
{

/** Drive the predictor through a random predict / update /
 *  checkpoint / recover / restore mix, asserting after every step
 *  that each incrementally-maintained fold equals the naive
 *  recomputation (Tage::checkFolds). */
void
exerciseFolds(const bp::TageConfig &cfg, unsigned steps,
              std::uint32_t seed)
{
    StatRegistry stats;
    bp::Tage tage(cfg, stats);
    std::mt19937 rng(seed);
    ASSERT_TRUE(tage.checkFolds());

    std::vector<std::pair<bp::TageCheckpoint, Addr>> ckpts;
    std::vector<std::pair<Addr, bp::TagePredictionInfo>> pending;
    for (unsigned step = 0; step < steps; ++step) {
        const Addr pc = 0x1000 + (rng() % 64) * 4;
        switch (rng() % 8) {
        case 0:
            if (ckpts.size() < 32)
                ckpts.emplace_back(tage.checkpoint(), pc);
            break;
        case 1:
            if (!ckpts.empty()) {
                tage.recover(ckpts.back().first, rng() % 2 != 0,
                             ckpts.back().second);
                ckpts.pop_back();
            }
            break;
        case 2:
            if (!ckpts.empty()) {
                tage.restore(ckpts.back().first);
                ckpts.pop_back();
            }
            break;
        case 3:
            if (!pending.empty()) {
                tage.update(pending.back().first, rng() % 2 != 0,
                            pending.back().second);
                pending.pop_back();
            }
            break;
        default:
            pending.emplace_back(pc, tage.predict(pc));
            if (pending.size() > 16)
                pending.erase(pending.begin());
            break;
        }
        ASSERT_TRUE(tage.checkFolds()) << "step " << step;
    }
}

} // namespace

TEST(TageFolds, DefaultConfig)
{
    exerciseFolds(bp::TageConfig{}, 3000, 7);
}

TEST(TageFolds, ExactMultipleAndShortHistories)
{
    // History lengths 8..64 against fold widths 8 (rem == 0 on both
    // ends), 5, and 4 exercise the partial-chunk wrap paths.
    bp::TageConfig cfg;
    cfg.numTables = 2;
    cfg.tableBitsLog2 = 8;
    cfg.tagBits = 5;
    cfg.minHistory = 8;
    cfg.maxHistory = 64;
    exerciseFolds(cfg, 3000, 11);
}

TEST(TageFolds, ManyTablesLongHistory)
{
    bp::TageConfig cfg;
    cfg.numTables = 9;
    cfg.tableBitsLog2 = 7;
    cfg.tagBits = 9;
    cfg.minHistory = 3;
    cfg.maxHistory = 250;
    exerciseFolds(cfg, 3000, 13);
}
