/**
 * @file
 * Unit tests for the uop ISA: builder/label resolution, functional
 * interpreter semantics for every opcode, memory image behaviour,
 * the oracle stream window and the wrong-path walker.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "isa/interpreter.hh"
#include "isa/memory_image.hh"
#include "isa/oracle.hh"
#include "isa/program.hh"

using namespace cdfsim;
using namespace cdfsim::isa;

namespace
{

/** Run a program to halt; return final registers. */
RegFile
runProgram(const Program &p, MemoryImage &mem, unsigned cap = 100000)
{
    Interpreter interp(p, mem);
    unsigned n = 0;
    while (!interp.halted() && n++ < cap)
        interp.step();
    EXPECT_TRUE(interp.halted());
    return interp.regs();
}

} // namespace

// --- MemoryImage ---

TEST(MemoryImage, UnwrittenReadsZero)
{
    MemoryImage mem;
    EXPECT_EQ(mem.read(0x1234560), 0u);
    EXPECT_EQ(mem.residentPages(), 0u);
}

TEST(MemoryImage, ReadBackWritten)
{
    MemoryImage mem;
    mem.write(0x1000, 0xDEADBEEF);
    EXPECT_EQ(mem.read(0x1000), 0xDEADBEEFu);
    EXPECT_EQ(mem.residentPages(), 1u);
}

TEST(MemoryImage, WordAlignment)
{
    MemoryImage mem;
    mem.write(0x1001, 55); // aligned down to 0x1000
    EXPECT_EQ(mem.read(0x1000), 55u);
    EXPECT_EQ(mem.read(0x1007), 55u);
    EXPECT_EQ(mem.read(0x1008), 0u);
}

TEST(MemoryImage, SparsePagesFarApart)
{
    MemoryImage mem;
    mem.write(0x0, 1);
    mem.write(Addr{1} << 40, 2);
    EXPECT_EQ(mem.residentPages(), 2u);
    EXPECT_EQ(mem.read(Addr{1} << 40), 2u);
}

// --- ProgramBuilder ---

TEST(ProgramBuilder, ForwardLabelResolved)
{
    ProgramBuilder b("t");
    auto end = b.makeLabel();
    b.movi(1, 5);
    b.jmp(end);
    b.movi(1, 9); // skipped
    b.bind(end);
    b.halt();
    auto p = b.build();
    EXPECT_EQ(p.code[1].imm, 3); // jmp targets the halt

    MemoryImage mem;
    auto regs = runProgram(p, mem);
    EXPECT_EQ(regs[1], 5u);
}

TEST(ProgramBuilder, UnboundLabelPanics)
{
    ProgramBuilder b("t");
    auto l = b.makeLabel();
    b.jmp(l);
    EXPECT_THROW(b.build(), PanicError);
}

TEST(ProgramBuilder, DoubleBindPanics)
{
    ProgramBuilder b("t");
    auto l = b.makeLabel();
    b.bind(l);
    EXPECT_THROW(b.bind(l), PanicError);
}

// --- Interpreter opcode semantics ---

TEST(Interpreter, ArithmeticOps)
{
    ProgramBuilder b("alu");
    b.movi(1, 20).movi(2, 6);
    b.add(3, 1, 2);   // 26
    b.sub(4, 1, 2);   // 14
    b.mul(5, 1, 2);   // 120
    b.div(6, 1, 2);   // 3
    b.and_(7, 1, 2);  // 4
    b.or_(8, 1, 2);   // 22
    b.xor_(9, 1, 2);  // 18
    b.halt();
    MemoryImage mem;
    auto regs = runProgram(b.build(), mem);
    EXPECT_EQ(regs[3], 26u);
    EXPECT_EQ(regs[4], 14u);
    EXPECT_EQ(regs[5], 120u);
    EXPECT_EQ(regs[6], 3u);
    EXPECT_EQ(regs[7], 4u);
    EXPECT_EQ(regs[8], 22u);
    EXPECT_EQ(regs[9], 18u);
}

TEST(Interpreter, DivisionByZeroYieldsZero)
{
    ProgramBuilder b("div0");
    b.movi(1, 5).movi(2, 0).div(3, 1, 2).fdiv(4, 1, 2).halt();
    MemoryImage mem;
    auto regs = runProgram(b.build(), mem);
    EXPECT_EQ(regs[3], 0u);
    EXPECT_EQ(regs[4], 0u);
}

TEST(Interpreter, ShiftsMaskTheAmount)
{
    ProgramBuilder b("sh");
    b.movi(1, 1).movi(2, 65); // 65 & 63 == 1
    b.shl(3, 1, 2);
    b.shr(4, 3, 2);
    b.halt();
    MemoryImage mem;
    auto regs = runProgram(b.build(), mem);
    EXPECT_EQ(regs[3], 2u);
    EXPECT_EQ(regs[4], 1u);
}

TEST(Interpreter, Comparisons)
{
    ProgramBuilder b("cmp");
    b.movi(1, 3).movi(2, 7);
    b.cmplt(3, 1, 2);
    b.cmplt(4, 2, 1);
    b.cmpeq(5, 1, 1);
    b.cmpeq(6, 1, 2);
    b.halt();
    MemoryImage mem;
    auto regs = runProgram(b.build(), mem);
    EXPECT_EQ(regs[3], 1u);
    EXPECT_EQ(regs[4], 0u);
    EXPECT_EQ(regs[5], 1u);
    EXPECT_EQ(regs[6], 0u);
}

TEST(Interpreter, LoadStoreWithOffset)
{
    ProgramBuilder b("mem");
    b.movi(1, 0x2000).movi(2, 99);
    b.store(1, 16, 2);
    b.load(3, 1, 16);
    b.halt();
    MemoryImage mem;
    auto regs = runProgram(b.build(), mem);
    EXPECT_EQ(regs[3], 99u);
    EXPECT_EQ(mem.read(0x2010), 99u);
}

TEST(Interpreter, ConditionalBranchesBothWays)
{
    ProgramBuilder b("br");
    auto taken = b.makeLabel();
    auto out = b.makeLabel();
    b.movi(1, 0);
    b.beqz(1, taken);
    b.movi(2, 111); // skipped
    b.bind(taken);
    b.movi(3, 5);
    b.bnez(3, out);
    b.movi(4, 222); // skipped
    b.bind(out);
    b.halt();
    MemoryImage mem;
    auto regs = runProgram(b.build(), mem);
    EXPECT_EQ(regs[2], 0u);
    EXPECT_EQ(regs[3], 5u);
    EXPECT_EQ(regs[4], 0u);
}

TEST(Interpreter, CallAndReturn)
{
    ProgramBuilder b("call");
    auto fn = b.makeLabel();
    auto after = b.makeLabel();
    b.movi(1, 1);
    b.call(10, fn);
    b.bind(after);
    b.movi(3, 7);
    b.halt();
    b.bind(fn);
    b.movi(2, 4);
    b.ret(10);
    MemoryImage mem;
    auto regs = runProgram(b.build(), mem);
    EXPECT_EQ(regs[2], 4u);
    EXPECT_EQ(regs[3], 7u);
}

TEST(Interpreter, RecordCarriesBranchOutcome)
{
    ProgramBuilder b("rec");
    auto l = b.makeLabel();
    b.movi(1, 0);
    b.beqz(1, l);
    b.nop();
    b.bind(l);
    b.halt();
    MemoryImage mem;
    auto p = b.build();
    Interpreter interp(p, mem);
    interp.step(); // movi
    auto r = interp.step();
    EXPECT_TRUE(r.taken);
    EXPECT_EQ(r.nextPc, 3u);
    EXPECT_EQ(r.seq, 1u);
}

TEST(Interpreter, StepAfterHaltPanics)
{
    ProgramBuilder b("h");
    b.halt();
    MemoryImage mem;
    auto p = b.build();
    Interpreter interp(p, mem);
    interp.step();
    EXPECT_TRUE(interp.halted());
    EXPECT_THROW(interp.step(), PanicError);
}

// --- OracleStream ---

TEST(OracleStream, LazyMaterializationAndRelease)
{
    ProgramBuilder b("o");
    auto loop = b.makeLabel();
    b.movi(0, 10);
    b.bind(loop);
    b.addi(0, 0, -1);
    b.bnez(0, loop);
    b.halt();
    MemoryImage mem;
    auto p = b.build();
    OracleStream oracle(p, mem);

    EXPECT_EQ(oracle.frontier(), 0u);
    const auto &r5 = oracle.at(5);
    EXPECT_EQ(r5.seq, 5u);
    EXPECT_EQ(oracle.frontier(), 6u);

    oracle.releaseBelow(4);
    EXPECT_EQ(oracle.base(), 4u);
    EXPECT_THROW(oracle.at(2), PanicError);
    EXPECT_EQ(oracle.at(4).seq, 4u);
}

TEST(OracleStream, HasRecordStopsAtHalt)
{
    ProgramBuilder b("o2");
    b.movi(1, 1);
    b.halt();
    MemoryImage mem;
    auto p = b.build();
    OracleStream oracle(p, mem);
    EXPECT_TRUE(oracle.hasRecord(1));
    EXPECT_FALSE(oracle.hasRecord(2));
    EXPECT_TRUE(oracle.sawHalt());
    EXPECT_EQ(oracle.haltSeq(), 1u);
}

// --- WrongPathWalker ---

TEST(WrongPathWalker, StoresStayPrivate)
{
    ProgramBuilder b("wp");
    b.movi(1, 0x3000);
    b.movi(2, 7);
    b.store(1, 0, 2);
    b.load(3, 1, 0);
    b.halt();
    auto p = b.build();
    MemoryImage mem;
    mem.write(0x3000, 42);

    WrongPathWalker walker(p, mem);
    RegFile regs{};
    regs[1] = 0x3000;
    regs[2] = 7;
    walker.restart(regs);

    auto st = walker.execute(2); // the store
    EXPECT_EQ(st.memAddr, 0x3000u);
    EXPECT_EQ(mem.read(0x3000), 42u) << "wrong-path store leaked";

    auto ld = walker.execute(3); // forwarded from the private buffer
    EXPECT_EQ(ld.result, 7u);
}

TEST(WrongPathWalker, ReadsSharedMemory)
{
    ProgramBuilder b("wp2");
    b.load(3, 1, 0);
    b.halt();
    auto p = b.build();
    MemoryImage mem;
    mem.write(0x4000, 1234);
    WrongPathWalker walker(p, mem);
    RegFile regs{};
    regs[1] = 0x4000;
    walker.restart(regs);
    auto ld = walker.execute(0);
    EXPECT_EQ(ld.result, 1234u);
}

TEST(WrongPathWalker, InactiveUsePanics)
{
    ProgramBuilder b("wp3");
    b.halt();
    auto p = b.build();
    MemoryImage mem;
    WrongPathWalker walker(p, mem);
    EXPECT_THROW(walker.execute(0), PanicError);
}

TEST(WrongPathWalker, SharedEvaluateMatchesInterpreter)
{
    // The walker and interpreter share evaluate(); a quick spot
    // check that a wrong-path execution of the same uops from the
    // same register state produces identical results.
    ProgramBuilder b("wp4");
    b.movi(1, 10);
    b.addi(2, 1, 5);
    b.mul(3, 2, 2);
    b.halt();
    auto p = b.build();

    MemoryImage m1;
    Interpreter interp(p, m1);
    auto i0 = interp.step();
    auto i1 = interp.step();
    auto i2 = interp.step();

    MemoryImage m2;
    WrongPathWalker walker(p, m2);
    RegFile regs{};
    walker.restart(regs);
    auto w0 = walker.execute(0);
    auto w1 = walker.execute(1);
    auto w2 = walker.execute(2);

    EXPECT_EQ(i0.result, w0.result);
    EXPECT_EQ(i1.result, w1.result);
    EXPECT_EQ(i2.result, w2.result);
}

// --- Uop helpers ---

TEST(Uop, PredicatesAndLatencies)
{
    Uop ld{Opcode::Load, 1, 2, kInvalidReg, 0};
    Uop st{Opcode::Store, kInvalidReg, 1, 2, 0};
    Uop br{Opcode::Beqz, kInvalidReg, 1, kInvalidReg, 0};
    Uop ret{Opcode::Ret, kInvalidReg, 1, kInvalidReg, 0};

    EXPECT_TRUE(ld.isLoad());
    EXPECT_TRUE(ld.isMem());
    EXPECT_TRUE(ld.writesReg());
    EXPECT_TRUE(st.isStore());
    EXPECT_FALSE(st.writesReg());
    EXPECT_TRUE(br.isCondBranch());
    EXPECT_TRUE(ret.isIndirect());
    EXPECT_TRUE(ret.isUncondBranch());

    EXPECT_EQ(executeLatency(Opcode::Add), 1u);
    EXPECT_EQ(executeLatency(Opcode::Mul), 3u);
    EXPECT_EQ(executeLatency(Opcode::FDiv), 12u);
}

TEST(Uop, ToStringRendersUsefully)
{
    Uop u{Opcode::Load, 3, 1, kInvalidReg, 16};
    EXPECT_EQ(toString(u), "load r3, [r1+16]");
}
