/**
 * @file
 * Unit tests for the memory substrate: set-associative cache with
 * LRU/write-back/MSHRs, the DDR4 DRAM model, the stream prefetcher
 * with feedback throttling, and the full hierarchy.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/stats.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/hierarchy.hh"
#include "mem/prefetcher.hh"

using namespace cdfsim;
using namespace cdfsim::mem;

namespace
{

CacheConfig
smallCache()
{
    return {"c", 1024, 2, 2, 4}; // 8 sets x 2 ways x 64B
}

/** Fixed-latency "downstream" for cache tests. */
constexpr auto kMiss100 = [](Cycle start) { return start + 100; };

} // namespace

// --- Cache ---

TEST(Cache, MissThenHit)
{
    StatRegistry s;
    Cache c(smallCache(), s);
    auto m = c.access(0x1000, false, 10, kMiss100);
    EXPECT_FALSE(m.hit);
    EXPECT_EQ(m.ready, 112u); // start = now + latency

    auto h = c.access(0x1000, false, 200, kMiss100);
    EXPECT_TRUE(h.hit);
    EXPECT_EQ(h.ready, 202u);
    EXPECT_EQ(s.get("c.hits"), 1u);
    EXPECT_EQ(s.get("c.misses"), 1u);
}

TEST(Cache, HitUnderFillReturnsFillTime)
{
    StatRegistry s;
    Cache c(smallCache(), s);
    c.access(0x1000, false, 10, kMiss100); // fills at 112
    auto h = c.access(0x1000, false, 20, kMiss100);
    EXPECT_TRUE(h.hit);
    EXPECT_TRUE(h.hitUnderFill);
    EXPECT_EQ(h.ready, 112u);
}

TEST(Cache, LruEviction)
{
    StatRegistry s;
    Cache c(smallCache(), s); // 8 sets, 2 ways
    // Three lines mapping to the same set (stride = sets * 64).
    const Addr a = 0x0, b = 8 * 64, d = 16 * 64;
    c.access(a, false, 0, kMiss100);
    c.access(b, false, 200, kMiss100);
    c.access(a, false, 400, kMiss100); // touch a: b becomes LRU
    c.access(d, false, 600, kMiss100); // evicts b
    EXPECT_TRUE(c.probe(a));
    EXPECT_FALSE(c.probe(b));
    EXPECT_TRUE(c.probe(d));
}

TEST(Cache, DirtyEvictionReportsWriteback)
{
    StatRegistry s;
    Cache c(smallCache(), s);
    const Addr a = 0x0, b = 8 * 64, d = 16 * 64;
    c.access(a, true, 0, kMiss100); // dirty
    c.access(b, false, 200, kMiss100);
    auto out = c.access(d, false, 400, kMiss100); // evicts dirty a
    EXPECT_TRUE(out.evictedDirty);
    EXPECT_EQ(out.evictedAddr, lineAlign(a));
    EXPECT_EQ(s.get("c.writebacks"), 1u);
}

TEST(Cache, MshrBackpressureDelaysRequests)
{
    StatRegistry s;
    CacheConfig cfg = smallCache();
    cfg.mshrs = 2;
    Cache c(cfg, s);
    // Three concurrent misses to distinct sets at the same cycle;
    // the third must wait for an MSHR.
    c.access(0 * 64, false, 0, kMiss100);
    c.access(1 * 64, false, 0, kMiss100);
    auto third = c.access(2 * 64, false, 0, kMiss100);
    EXPECT_GT(third.ready, 102u + 100u - 1);
    EXPECT_EQ(s.get("c.mshr_stalls"), 1u);
}

TEST(Cache, MshrFreesAtFillBoundary)
{
    StatRegistry s;
    CacheConfig cfg = smallCache();
    cfg.mshrs = 1;
    Cache c(cfg, s);
    auto first = c.access(0 * 64, false, 0, kMiss100); // fills at 102
    // Arriving exactly at the fill cycle: the MSHR is free again
    // (prune is <= now), so no stall.
    c.access(1 * 64, false, first.ready, kMiss100);
    EXPECT_EQ(s.get("c.mshr_stalls"), 0u);
    // Arriving while the fill is still in flight: stalled until the
    // outstanding miss completes, then serviced from there.
    Cache c2(cfg, s);
    auto f2 = c2.access(0 * 64, false, 0, kMiss100);
    auto stalled = c2.access(1 * 64, false, 50, kMiss100);
    EXPECT_EQ(s.get("c.mshr_stalls"), 1u);
    EXPECT_EQ(stalled.ready, f2.ready + 100);
}

TEST(Cache, MshrBackpressureChainsAcrossManyMisses)
{
    // Single-MSHR file with each request arriving while the previous
    // fill is still in flight: every miss stalls on the one
    // outstanding completion, so ready times chain exactly one
    // miss-latency apart.
    StatRegistry s;
    CacheConfig cfg = smallCache();
    cfg.mshrs = 1;
    Cache c(cfg, s);
    Cycle prevReady = c.access(0, false, 0, kMiss100).ready;
    for (int i = 1; i < 10; ++i) {
        auto m =
            c.access(Addr(i) * 64, false, prevReady - 92, kMiss100);
        EXPECT_FALSE(m.hit);
        EXPECT_EQ(m.ready, prevReady + 100);
        prevReady = m.ready;
    }
    EXPECT_EQ(s.get("c.mshr_stalls"), 9u);
}

TEST(Cache, MshrOccupancyMayExceedCapInABurst)
{
    // Sixteen same-cycle misses against a 2-entry MSHR file: nothing
    // has completed, so every stalled request queues behind the same
    // earliest fill. Occupancy transiently exceeds the cap (the ring
    // grows rather than inventing extra delay the old vector never
    // modeled).
    StatRegistry s;
    CacheConfig cfg = smallCache();
    cfg.mshrs = 2;
    Cache c(cfg, s);
    auto first = c.access(0, false, 0, kMiss100);
    c.access(64, false, 0, kMiss100);
    for (int i = 2; i < 16; ++i) {
        auto m = c.access(Addr(i) * 64, false, 0, kMiss100);
        EXPECT_EQ(m.ready, first.ready + 100);
    }
    EXPECT_EQ(s.get("c.mshr_stalls"), 14u);
}

TEST(Cache, PrefetchUsefulnessTracking)
{
    StatRegistry s;
    Cache c(smallCache(), s);
    c.access(0x1000, false, 0, kMiss100, /*isPrefetch=*/true);
    EXPECT_EQ(s.get("c.pref_fills"), 1u);
    c.access(0x1000, false, 300, kMiss100); // demand hit on prefetch
    EXPECT_EQ(s.get("c.pref_useful"), 1u);
}

TEST(Cache, InvalidateAndMarkDirty)
{
    StatRegistry s;
    Cache c(smallCache(), s);
    c.access(0x1000, false, 0, kMiss100);
    c.markDirty(0x1000);
    c.invalidate(0x1000);
    EXPECT_FALSE(c.probe(0x1000));
}

TEST(Cache, BadGeometryIsFatal)
{
    StatRegistry s;
    CacheConfig cfg{"bad", 1000, 3, 1, 4}; // non-pow2 sets
    EXPECT_THROW(Cache(cfg, s), FatalError);
}

// --- DRAM ---

TEST(Dram, RowHitFasterThanConflict)
{
    StatRegistry s;
    DramConfig cfg;
    DramModel dram(cfg, s);

    auto first = dram.access(0x100000, false, 0);
    EXPECT_FALSE(first.rowHit);

    // Same row, later: row hit. Lines in one row of one bank are
    // separated by channels * banks lines under the interleaving.
    const Addr sameRowStride =
        64ull * cfg.channels * cfg.bankGroups * cfg.banksPerGroup;
    auto hit = dram.access(0x100000 + sameRowStride, false,
                           first.ready + 10);
    EXPECT_TRUE(hit.rowHit);

    const Cycle hitLat = hit.ready - (first.ready + 10);

    // Different row, same bank: conflict (needs precharge).
    const Addr farSameBank =
        0x100000 + Addr{cfg.rowBytes} * cfg.channels *
                       cfg.bankGroups * cfg.banksPerGroup;
    auto conf = dram.access(farSameBank, false, hit.ready + 10);
    const Cycle confLat = conf.ready - (hit.ready + 10);
    EXPECT_TRUE(conf.rowConflict);
    EXPECT_GT(confLat, hitLat);
}

TEST(Dram, BankParallelismOverlaps)
{
    StatRegistry s;
    DramConfig cfg;
    DramModel dram(cfg, s);
    // Two accesses to different banks issued together overlap in the
    // arrays; serialization is only the shared data bus burst.
    auto a = dram.access(0 * 64, false, 0);
    auto b = dram.access(2 * 64, false, 0); // other bank, same channel
    EXPECT_LT(b.ready, a.ready + cfg.tRcd); // far less than serial
}

TEST(Dram, CountsTraffic)
{
    StatRegistry s;
    DramModel dram(DramConfig{}, s);
    dram.access(0, false, 0);
    dram.access(64, true, 0);
    EXPECT_EQ(s.get("dram.reads"), 1u);
    EXPECT_EQ(s.get("dram.writes"), 1u);
    EXPECT_EQ(dram.totalBytes(), 128u);
}

TEST(Dram, SameBankSerializes)
{
    StatRegistry s;
    DramConfig cfg;
    cfg.channels = 1;
    cfg.bankGroups = 1;
    cfg.banksPerGroup = 1;
    DramModel dram(cfg, s);
    auto a = dram.access(0, false, 0);
    auto b = dram.access(Addr{cfg.rowBytes} * 2, false, 0); // conflict
    EXPECT_GE(b.ready, a.ready + cfg.tRp);
}

// --- StreamPrefetcher ---

TEST(Prefetcher, ConfirmsStreamAfterTwoMisses)
{
    StatRegistry s;
    StreamPrefetcher pf(PrefetcherConfig{}, s);
    auto b0 = pf.observe(0 * 64, true);
    EXPECT_EQ(b0.count, 0u); // allocation only
    auto b1 = pf.observe(1 * 64, true);
    EXPECT_GT(b1.count, 0u); // confirmed ascending
    EXPECT_EQ(b1.lines[0], 2u * 64);
}

TEST(Prefetcher, DescendingStream)
{
    StatRegistry s;
    StreamPrefetcher pf(PrefetcherConfig{}, s);
    pf.observe(100 * 64, true);
    auto b = pf.observe(99 * 64, true);
    ASSERT_GT(b.count, 0u);
    EXPECT_EQ(b.lines[0], 98u * 64);
}

TEST(Prefetcher, ThrottleDownOnLowAccuracy)
{
    StatRegistry s;
    PrefetcherConfig cfg;
    cfg.evalIntervalFills = 10;
    StreamPrefetcher pf(cfg, s);
    unsigned before = pf.degree();
    pf.feedback(0, 20); // 0% accuracy
    EXPECT_LT(pf.degree(), before);
    EXPECT_EQ(s.get("prefetcher.throttle_downs"), 1u);
}

TEST(Prefetcher, ThrottleUpOnHighAccuracy)
{
    StatRegistry s;
    PrefetcherConfig cfg;
    cfg.evalIntervalFills = 10;
    StreamPrefetcher pf(cfg, s);
    unsigned before = pf.degree();
    pf.feedback(19, 20); // 95% accuracy
    EXPECT_GT(pf.degree(), before);
}

TEST(Prefetcher, DegreeStaysInBounds)
{
    StatRegistry s;
    PrefetcherConfig cfg;
    cfg.evalIntervalFills = 1;
    StreamPrefetcher pf(cfg, s);
    for (int i = 0; i < 50; ++i)
        pf.feedback(0, 2);
    EXPECT_EQ(pf.degree(), cfg.minDegree);
    for (int i = 0; i < 50; ++i)
        pf.feedback(2, 2);
    EXPECT_EQ(pf.degree(), cfg.maxDegree);
}

// --- MemHierarchy ---

TEST(Hierarchy, DemandMissGoesToDramOnce)
{
    StatRegistry s;
    HierarchyConfig cfg;
    cfg.prefetcherEnabled = false;
    MemHierarchy mem(cfg, s);

    auto r1 = mem.dataAccess(0x100000, AccessKind::DemandLoad, 0);
    EXPECT_TRUE(r1.llcMiss);
    EXPECT_GT(r1.ready, 100u);

    auto r2 = mem.dataAccess(0x100000, AccessKind::DemandLoad,
                             r1.ready + 10);
    EXPECT_TRUE(r2.l1Hit);
    EXPECT_EQ(s.get("dram.demand_reads"), 1u);
}

TEST(Hierarchy, WrongPathTrafficCountedSeparately)
{
    StatRegistry s;
    HierarchyConfig cfg;
    cfg.prefetcherEnabled = false;
    MemHierarchy mem(cfg, s);
    mem.dataAccess(0x200000, AccessKind::WrongPathLoad, 0);
    EXPECT_EQ(s.get("dram.wrongpath_reads"), 1u);
    EXPECT_EQ(s.get("dram.demand_reads"), 0u);
    EXPECT_EQ(mem.outstandingUselessMisses(0), 1u);
}

TEST(Hierarchy, OutstandingMissesDrain)
{
    StatRegistry s;
    HierarchyConfig cfg;
    cfg.prefetcherEnabled = false;
    MemHierarchy mem(cfg, s);
    auto r = mem.dataAccess(0x300000, AccessKind::DemandLoad, 0);
    EXPECT_EQ(mem.outstandingDemandMisses(0), 1u);
    EXPECT_EQ(mem.outstandingDemandMisses(r.ready + 1), 0u);
}

TEST(Hierarchy, StreamingTrainsPrefetcherAndHits)
{
    StatRegistry s;
    HierarchyConfig cfg;
    MemHierarchy mem(cfg, s);
    // Walk 64 sequential lines; later lines should become LLC hits
    // (or better) thanks to the stream prefetcher.
    Cycle t = 0;
    for (int i = 0; i < 64; ++i) {
        auto r = mem.dataAccess(0x400000 + i * 64,
                                AccessKind::DemandLoad, t);
        t = r.ready + 1;
    }
    EXPECT_GT(s.get("llc.pref_useful"), 10u);
}

TEST(Hierarchy, InstrFetchUsesICacheAndCodeRegion)
{
    StatRegistry s;
    HierarchyConfig cfg;
    cfg.prefetcherEnabled = false;
    MemHierarchy mem(cfg, s);
    Cycle c1 = mem.instrAccess(0, 0);
    EXPECT_GT(c1, 100u); // cold miss all the way to DRAM
    Cycle c2 = mem.instrAccess(1, c1 + 1); // same line
    EXPECT_LE(c2, c1 + 1 + cfg.l1i.latency);
    EXPECT_GT(s.get("l1i.accesses"), 0u);
}

TEST(Hierarchy, WouldMissLlcProbeIsSilent)
{
    StatRegistry s;
    HierarchyConfig cfg;
    cfg.prefetcherEnabled = false;
    MemHierarchy mem(cfg, s);
    EXPECT_TRUE(mem.wouldMissLlc(0x500000));
    const auto accessesBefore = s.get("l1d.accesses");
    mem.wouldMissLlc(0x500000);
    EXPECT_EQ(s.get("l1d.accesses"), accessesBefore);
    mem.dataAccess(0x500000, AccessKind::DemandLoad, 0);
    EXPECT_FALSE(mem.wouldMissLlc(0x500000));
}

TEST(Hierarchy, WouldMissLlcSeesEvictions)
{
    // The probe result is memoized; any fill or invalidation in L1D
    // or the LLC must make a stale memo unusable. Evict the probed
    // line by walking conflicting lines through both caches (stride
    // of one LLC set revolution also conflicts in L1D) and check the
    // classifier flips back to "miss".
    StatRegistry s;
    HierarchyConfig cfg;
    cfg.prefetcherEnabled = false;
    MemHierarchy mem(cfg, s);
    const Addr a = 0x700000;
    const Addr llcStride =
        Addr{cfg.llc.sizeBytes / cfg.llc.ways}; // one set revolution

    mem.dataAccess(a, AccessKind::DemandLoad, 0);
    EXPECT_FALSE(mem.wouldMissLlc(a));
    Cycle t = 1000;
    for (unsigned k = 1; k <= 2 * cfg.llc.ways; ++k) {
        auto r = mem.dataAccess(a + k * llcStride,
                                AccessKind::DemandLoad, t);
        t = r.ready + 1;
    }
    EXPECT_TRUE(mem.wouldMissLlc(a));
    // And a re-fill flips it again, through the same memo slot.
    mem.dataAccess(a, AccessKind::DemandLoad, t);
    EXPECT_FALSE(mem.wouldMissLlc(a));
}
