/**
 * @file
 * Unit tests for the OoO backend structures: the partitioned ROB,
 * the partitioned load/store queues with timestamp disambiguation,
 * the reservation stations' critical-first selection, and the
 * rename map / physical register file.
 */

#include <gtest/gtest.h>

#include "ooo/lsq.hh"
#include "ooo/rename.hh"
#include "ooo/rob.hh"
#include "ooo/rs.hh"

using namespace cdfsim;
using namespace cdfsim::ooo;

namespace
{

DynInst
makeInst(SeqNum ts, bool critical = false)
{
    DynInst i;
    i.ts = ts;
    i.critical = critical;
    return i;
}

DynInst
makeMem(SeqNum ts, Addr addr, bool isStore, bool addrKnown = true)
{
    DynInst i;
    i.ts = ts;
    i.uop.op = isStore ? isa::Opcode::Store : isa::Opcode::Load;
    if (isStore) {
        i.uop.src1 = 1;
        i.uop.src2 = 2;
    } else {
        i.uop.dst = 3;
        i.uop.src1 = 1;
    }
    i.memAddr = addr;
    i.addrKnown = addrKnown;
    i.state = InstState::Issued;
    return i;
}

} // namespace

// --- Rob ---

TEST(Rob, RetiresMinimumTimestampAcrossSections)
{
    Rob rob(16);
    rob.setCriticalCap(8);
    DynInst c1 = makeInst(5, true), c2 = makeInst(9, true);
    DynInst n1 = makeInst(3), n2 = makeInst(7);
    rob.insert(&c1, true);
    rob.insert(&c2, true);
    rob.insert(&n1, false);
    rob.insert(&n2, false);

    EXPECT_EQ(rob.head()->ts, 3u);
    rob.popHead();
    EXPECT_EQ(rob.head()->ts, 5u);
    rob.popHead();
    EXPECT_EQ(rob.head()->ts, 7u);
    rob.popHead();
    EXPECT_EQ(rob.head()->ts, 9u);
}

TEST(Rob, SectionCapacitiesEnforced)
{
    Rob rob(4);
    rob.setCriticalCap(1);
    DynInst c1 = makeInst(1, true), c2 = makeInst(2, true);
    DynInst n1 = makeInst(3), n2 = makeInst(4), n3 = makeInst(5),
            n4 = makeInst(6);
    EXPECT_TRUE(rob.canInsert(true));
    rob.insert(&c1, true);
    EXPECT_FALSE(rob.canInsert(true)) << "critical cap is 1";
    (void)c2;
    rob.insert(&n1, false);
    rob.insert(&n2, false);
    rob.insert(&n3, false);
    EXPECT_FALSE(rob.canInsert(false)) << "non-critical cap is 3";
    (void)n4;
}

TEST(Rob, FlushYoungerTruncatesBothSections)
{
    Rob rob(16);
    rob.setCriticalCap(8);
    DynInst c1 = makeInst(2, true), c2 = makeInst(8, true);
    DynInst n1 = makeInst(4), n2 = makeInst(6), n3 = makeInst(9);
    rob.insert(&c1, true);
    rob.insert(&c2, true);
    rob.insert(&n1, false);
    rob.insert(&n2, false);
    rob.insert(&n3, false);
    EXPECT_EQ(rob.flushYounger(5), 3u); // drops ts 6, 8, 9
    EXPECT_EQ(rob.occupancy(), 2u);
    EXPECT_EQ(rob.head()->ts, 2u);
}

TEST(Rob, FlushYoungerOnEmptyRobIsNoop)
{
    Rob rob(8);
    EXPECT_EQ(rob.flushYounger(5), 0u);
    EXPECT_TRUE(rob.empty());
    EXPECT_EQ(rob.head(), nullptr);
}

TEST(Rob, FlushYoungerCanFlushEverything)
{
    Rob rob(8);
    rob.setCriticalCap(4);
    DynInst c1 = makeInst(3, true), n1 = makeInst(4), n2 = makeInst(6);
    rob.insert(&c1, true);
    rob.insert(&n1, false);
    rob.insert(&n2, false);
    EXPECT_EQ(rob.flushYounger(2), 3u);
    EXPECT_TRUE(rob.empty());
    EXPECT_EQ(rob.occupancy(), 0u);
}

TEST(Rob, FlushYoungerAtOrAboveMaxTsFlushesNothing)
{
    Rob rob(8);
    rob.setCriticalCap(4);
    DynInst c1 = makeInst(3, true), n1 = makeInst(4), n2 = makeInst(6);
    rob.insert(&c1, true);
    rob.insert(&n1, false);
    rob.insert(&n2, false);
    EXPECT_EQ(rob.flushYounger(6), 0u) << "ts == flushTs survives";
    EXPECT_EQ(rob.occupancy(), 3u);
    EXPECT_EQ(rob.flushYounger(kInvalidSeq), 0u);
    EXPECT_EQ(rob.occupancy(), 3u);
}

TEST(Rob, OutOfOrderInsertPanics)
{
    Rob rob(8);
    rob.setCriticalCap(4);
    DynInst a = makeInst(5, true), b = makeInst(4, true);
    rob.insert(&a, true);
    EXPECT_THROW(rob.insert(&b, true), PanicError);
}

// --- Lsq ---

TEST(Lsq, ForwardsFromYoungestOlderStore)
{
    Lsq lsq(8, 8);
    lsq.sq().setCriticalCap(0);
    lsq.lq().setCriticalCap(0);
    DynInst s1 = makeMem(1, 0x100, true);
    DynInst s2 = makeMem(3, 0x100, true);
    DynInst s3 = makeMem(5, 0x200, true);
    lsq.sq().insert(&s1, false);
    lsq.sq().insert(&s2, false);
    lsq.sq().insert(&s3, false);

    DynInst ld = makeMem(7, 0x100, false);
    bool unknown = false;
    DynInst *st = lsq.forwardingStore(&ld, &unknown);
    ASSERT_NE(st, nullptr);
    EXPECT_EQ(st->ts, 3u) << "must pick the youngest older store";
    EXPECT_FALSE(unknown);
}

TEST(Lsq, UnknownOlderStoreAddressReported)
{
    Lsq lsq(8, 8);
    DynInst s1 = makeMem(1, 0, true, /*addrKnown=*/false);
    lsq.sq().insert(&s1, false);
    DynInst ld = makeMem(3, 0x100, false);
    bool unknown = false;
    EXPECT_EQ(lsq.forwardingStore(&ld, &unknown), nullptr);
    EXPECT_TRUE(unknown);
}

TEST(Lsq, ViolatingLoadFoundOldestFirst)
{
    Lsq lsq(8, 8);
    DynInst ld1 = makeMem(5, 0x100, false);
    DynInst ld2 = makeMem(7, 0x100, false);
    DynInst ld3 = makeMem(9, 0x300, false);
    ld1.forwardSrcTs = 0; // read memory
    ld2.forwardSrcTs = 0;
    lsq.lq().insert(&ld1, false);
    lsq.lq().insert(&ld2, false);
    lsq.lq().insert(&ld3, false);

    DynInst st = makeMem(4, 0x100, true);
    DynInst *v = lsq.violatingLoad(&st);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->ts, 5u);
}

TEST(Lsq, LoadThatForwardedFromThisStoreIsNoViolation)
{
    Lsq lsq(8, 8);
    DynInst ld = makeMem(5, 0x100, false);
    ld.forwardSrcTs = 4; // got data from the checking store
    lsq.lq().insert(&ld, false);
    DynInst st = makeMem(4, 0x100, true);
    EXPECT_EQ(lsq.violatingLoad(&st), nullptr);
}

TEST(Lsq, OlderLoadsAreNeverViolations)
{
    Lsq lsq(8, 8);
    DynInst ld = makeMem(3, 0x100, false);
    lsq.lq().insert(&ld, false);
    DynInst st = makeMem(4, 0x100, true);
    EXPECT_EQ(lsq.violatingLoad(&st), nullptr);
}

TEST(MemQueue, PartitionedCapacityAndRetire)
{
    MemQueue q(4);
    q.setCriticalCap(2);
    DynInst c = makeMem(1, 0, false);
    c.critical = true;
    DynInst n = makeMem(2, 0, false);
    q.insert(&c, true);
    q.insert(&n, false);
    EXPECT_EQ(q.criticalOccupancy(), 1u);
    q.retire(&c);
    q.retire(&n);
    EXPECT_EQ(q.occupancy(), 0u);
}

// --- ReservationStations ---

TEST(Rs, CriticalFirstThenOldest)
{
    ReservationStations rs(8);
    rs.setCriticalCap(8);
    DynInst n1 = makeInst(1), n2 = makeInst(2);
    DynInst c1 = makeInst(5, true);
    n1.state = n2.state = c1.state = InstState::Renamed;
    rs.insert(&n1);
    rs.insert(&n2);
    rs.insert(&c1);

    std::vector<SeqNum> order;
    rs.selectAndIssue(
        2, [](DynInst *) { return true; },
        [&](DynInst *i) {
            order.push_back(i->ts);
            return true;
        });
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 5u) << "critical uop must issue first";
    EXPECT_EQ(order[1], 1u) << "then oldest non-critical";
    EXPECT_EQ(rs.occupancy(), 1u);
}

TEST(Rs, RejectedInstructionStaysResident)
{
    ReservationStations rs(4);
    rs.setCriticalCap(4);
    DynInst a = makeInst(1);
    a.state = InstState::Renamed;
    rs.insert(&a);
    unsigned issued = rs.selectAndIssue(
        4, [](DynInst *) { return true; },
        [](DynInst *) { return false; });
    EXPECT_EQ(issued, 0u);
    EXPECT_EQ(rs.occupancy(), 1u);
}

TEST(Rs, CriticalCapBlocksOnlyCritical)
{
    ReservationStations rs(4);
    rs.setCriticalCap(1);
    DynInst c1 = makeInst(1, true), c2 = makeInst(2, true);
    rs.insert(&c1);
    EXPECT_FALSE(rs.canInsert(true));
    EXPECT_TRUE(rs.canInsert(false));
    (void)c2;
}

TEST(Rs, FlushYoungerMaintainsCriticalCount)
{
    ReservationStations rs(8);
    rs.setCriticalCap(8);
    DynInst c1 = makeInst(3, true), c2 = makeInst(7, true);
    rs.insert(&c1);
    rs.insert(&c2);
    EXPECT_EQ(rs.flushYounger(5), 1u);
    EXPECT_EQ(rs.criticalOccupancy(), 1u);
    EXPECT_TRUE(rs.canInsert(true));
}

TEST(Rs, FlushYoungerEdgeCases)
{
    ReservationStations rs(8);
    rs.setCriticalCap(8);
    EXPECT_EQ(rs.flushYounger(5), 0u) << "empty RS flush is a no-op";

    DynInst c1 = makeInst(3, true), n1 = makeInst(5), c2 = makeInst(9, true);
    rs.insert(&c1);
    rs.insert(&n1);
    rs.insert(&c2);
    EXPECT_EQ(rs.flushYounger(9), 0u) << "flush-none keeps all";
    EXPECT_EQ(rs.occupancy(), 3u);
    EXPECT_EQ(rs.flushYounger(0), 3u) << "flush-all drains the RS";
    EXPECT_EQ(rs.occupancy(), 0u);
    EXPECT_EQ(rs.criticalOccupancy(), 0u);
}

// --- RenameMap / PhysRegFile ---

TEST(Rename, RenameAllocatesAndTracksOldMapping)
{
    PhysRegFile prf(128);
    RenameMap rat;
    isa::Uop add{isa::Opcode::Add, 5, 1, 2, 0};
    auto r = rat.rename(add, prf);
    EXPECT_EQ(r.physSrc1, 1u) << "boot mapping is identity";
    EXPECT_EQ(r.physSrc2, 2u);
    EXPECT_EQ(r.oldPhysDst, 5u);
    EXPECT_NE(r.physDst, 5u);
    EXPECT_EQ(rat.lookup(5), r.physDst);
}

TEST(Rename, UndoRestoresPriorMapping)
{
    PhysRegFile prf(128);
    RenameMap rat;
    isa::Uop add{isa::Opcode::Add, 5, 1, 2, 0};
    auto r = rat.rename(add, prf);
    rat.undo(5, r.oldPhysDst);
    EXPECT_EQ(rat.lookup(5), 5u);
}

TEST(Rename, ReplayUpdatesWithoutAllocating)
{
    PhysRegFile prf(128);
    RenameMap rat;
    const auto freeBefore = prf.numFree();
    RegId old = rat.replay(7, 99);
    EXPECT_EQ(old, 7u);
    EXPECT_EQ(rat.lookup(7), 99u);
    EXPECT_EQ(prf.numFree(), freeBefore);
}

TEST(Rename, PoisonBitsSetCheckClearSnapshot)
{
    RenameMap rat;
    rat.setPoison(3);
    isa::Uop use{isa::Opcode::Add, 9, 3, 4, 0};
    EXPECT_TRUE(rat.readsPoisoned(use));
    const std::uint64_t snap = rat.poisonBits();
    rat.clearPoison(3);
    EXPECT_FALSE(rat.readsPoisoned(use));
    rat.setPoisonBits(snap);
    EXPECT_TRUE(rat.readsPoisoned(use));
    rat.clearAllPoison();
    EXPECT_EQ(rat.poisonBits(), 0u);
}

TEST(PhysRegFile, AllocateReleaseRoundTrip)
{
    PhysRegFile prf(80);
    EXPECT_EQ(prf.numFree(), 80u - kNumArchRegs);
    RegId p = prf.allocate();
    EXPECT_EQ(prf.readyAt(p), kNeverCycle);
    prf.setReadyAt(p, 42);
    EXPECT_TRUE(prf.isReady(p, 42));
    EXPECT_FALSE(prf.isReady(p, 41));
    prf.release(p);
    EXPECT_EQ(prf.numFree(), 80u - kNumArchRegs);
}

TEST(PhysRegFile, InvalidRegAlwaysReady)
{
    PhysRegFile prf(80);
    EXPECT_TRUE(prf.isReady(kInvalidReg, 0));
}

TEST(PhysRegFile, ExhaustionPanics)
{
    PhysRegFile prf(kNumArchRegs + 9);
    for (int i = 0; i < 9; ++i)
        prf.allocate();
    EXPECT_FALSE(prf.hasFree());
    EXPECT_THROW(prf.allocate(), PanicError);
}
