/**
 * @file
 * Tests for the simulation facade: warmup/measurement separation,
 * result plumbing, geomean, and the Fig. 17 window-scaling helper.
 */

#include <gtest/gtest.h>

#include "sim/simulator.hh"

using namespace cdfsim;

TEST(Simulator, WarmupExcludedFromMeasurement)
{
    sim::RunSpec spec;
    spec.warmupInstrs = 20'000;
    spec.measureInstrs = 30'000;
    sim::Simulator s(ooo::CoreConfig{},
                     workloads::makeWorkload("parest"));
    auto r = s.run(spec);
    EXPECT_GE(r.core.retiredInstrs, 30'000u);
    EXPECT_LT(r.core.retiredInstrs, 40'000u)
        << "warmup instructions leaked into the measurement";
    EXPECT_EQ(r.stats.get("core.retired_instrs"),
              r.core.retiredInstrs);
}

TEST(Simulator, RunWorkloadAppliesModeAndConfig)
{
    sim::RunSpec spec;
    spec.warmupInstrs = 50'000;
    spec.measureInstrs = 20'000;
    ooo::CoreConfig cfg;
    cfg.robSize = 128;
    cfg.physRegs = 256;
    auto r = sim::runWorkload("parest", ooo::CoreMode::Baseline, spec,
                              cfg);
    EXPECT_EQ(r.mode, ooo::CoreMode::Baseline);
    EXPECT_GT(r.core.ipc, 0.0);
    EXPECT_GT(r.energy.totalUj, 0.0);
}

TEST(Simulator, EnergyReportPopulated)
{
    sim::RunSpec spec;
    spec.warmupInstrs = 10'000;
    spec.measureInstrs = 20'000;
    auto r = sim::runWorkload("lbm", ooo::CoreMode::Baseline, spec);
    EXPECT_GT(r.energy.dynamicUj, 0.0);
    EXPECT_GT(r.energy.staticUj, 0.0);
    EXPECT_GT(r.energy.dramUj, 0.0);
    EXPECT_FALSE(r.energy.components.empty());
}

TEST(Geomean, KnownValues)
{
    EXPECT_DOUBLE_EQ(sim::geomean({4.0, 1.0}), 2.0);
    EXPECT_NEAR(sim::geomean({1.0, 8.0}), 2.828427, 1e-5);
    EXPECT_DOUBLE_EQ(sim::geomean({}), 0.0);
    EXPECT_THROW(sim::geomean({1.0, -2.0}), PanicError);
}

TEST(CoreConfig, ScaleWindowScalesProportionally)
{
    ooo::CoreConfig cfg;
    const unsigned rob = cfg.robSize;
    const unsigned rs = cfg.rsSize;
    cfg.scaleWindow(2.0);
    EXPECT_EQ(cfg.robSize, rob * 2);
    EXPECT_EQ(cfg.rsSize, rs * 2);
    EXPECT_GT(cfg.physRegs, cfg.robSize + kNumArchRegs);
}

TEST(CoreConfig, TooFewPhysRegsIsFatal)
{
    ooo::CoreConfig cfg;
    cfg.physRegs = cfg.robSize; // cannot cover ROB + arch state
    auto w = workloads::makeWorkload("parest");
    isa::MemoryImage mem = w.makeMemory();
    StatRegistry stats;
    EXPECT_THROW(ooo::Core(cfg, w.program, mem, stats), FatalError);
}

TEST(Simulator, ScaledDownCoreStillCorrect)
{
    sim::RunSpec spec;
    spec.warmupInstrs = 20'000;
    spec.measureInstrs = 30'000;
    ooo::CoreConfig cfg;
    cfg.scaleWindow(0.5);
    for (auto mode :
         {ooo::CoreMode::Baseline, ooo::CoreMode::Cdf}) {
        auto r = sim::runWorkload("astar", mode, spec, cfg);
        EXPECT_GE(r.core.retiredInstrs, 30'000u);
    }
}
