/**
 * @file
 * Equivalence fuzz for the idle-cycle fast-forward path
 * (CoreConfig::skipIdleCycles): every run must serialize to exactly
 * the same bytes — core result, energy report, and every stat
 * counter — with the skip enabled and disabled. The skip is a pure
 * host-speed knob; any divergence here means a quiescence bound is
 * wrong, not that a heuristic mistuned.
 *
 * The randomized trials shrink the window structures and caches so
 * the skip path crosses its interesting boundaries often: jumps that
 * land exactly on a memory fill, CDF-mode episodes entered/exited
 * around would-be jumps, wrong-path fetch during stalls, and parked
 * RS entries waking at the jump target. Directed tests pin down the
 * cases randomness hits rarely: a cycle budget expiring inside a
 * would-be jump and the warmup/measure boundary adjoining one.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "common/hash.hh"
#include "sim/simulator.hh"
#include "sim/sweep.hh"
#include "workloads/workloads.hh"

using namespace cdfsim;

namespace
{

/** One run, serialized the same way the stat gate fingerprints it. */
struct RunImage
{
    std::string json;
    std::uint64_t skippedCycles = 0;
    std::uint64_t skipEvents = 0;
    bool ok = false;
};

RunImage
runOnce(const workloads::Workload &workload, ooo::CoreConfig config,
        const sim::RunSpec &spec, bool skip)
{
    config.skipIdleCycles = skip;
    sim::Simulator simulator(config, workload);
    const sim::RunResult run = simulator.run(spec);
    return {sim::toJson(run).dump(-1), run.skippedCycles,
            run.skipEvents, run.ok()};
}

/**
 * Assert the two serialized runs are byte-identical; on divergence,
 * report the fingerprints and the first differing offset instead of
 * dumping two multi-kilobyte JSON blobs.
 */
void
expectIdentical(const RunImage &off, const RunImage &on,
                const std::string &label)
{
    if (off.json == on.json)
        return;
    std::size_t at = 0;
    while (at < off.json.size() && at < on.json.size() &&
           off.json[at] == on.json[at])
        ++at;
    const auto context = [&](const std::string &s) {
        const std::size_t begin = at < 60 ? 0 : at - 60;
        return s.substr(begin, 120);
    };
    ADD_FAILURE() << label << ": skip-on run diverged from skip-off"
                  << " (fnv " << fnv1a64(off.json) << " vs "
                  << fnv1a64(on.json) << ", first difference at byte "
                  << at << ")\n  off: ..." << context(off.json)
                  << "\n  on:  ..." << context(on.json);
}

ooo::CoreMode
modeFor(unsigned i)
{
    switch (i % 3) {
    case 0: return ooo::CoreMode::Baseline;
    case 1: return ooo::CoreMode::Cdf;
    default: return ooo::CoreMode::Pre;
    }
}

} // namespace

/**
 * Random small configs × workloads × modes. Tiny windows and caches
 * maximize both stall density (so skips happen) and structural
 * hazards at the jump targets (so a wrong bound would land early or
 * late and desynchronize a stat). Seeds are fixed: every trial is
 * reproducible by its index.
 */
TEST(SkipEquivalence, FuzzSmallConfigsAcrossWorkloadsAndModes)
{
    const std::vector<std::string> names =
        workloads::allWorkloadNames();
    std::mt19937_64 rng(0xC0FFEE);
    std::uint64_t totalSkipped = 0;

    for (unsigned trial = 0; trial < 12; ++trial) {
        const std::string name = names[rng() % names.size()];
        const workloads::Workload workload =
            workloads::makeWorkload(name);

        ooo::CoreConfig config;
        config.mode = modeFor(trial);
        // Shrink the window to a random fraction; 0.5 is the floor
        // below which physRegs stops covering ROB + arch state.
        config.scaleWindow(0.5 + 0.25 * (rng() % 4));
        config.width = 2 + 2 * (rng() % 3);
        config.issueWidth = config.width;
        // Small caches push far more traffic to DRAM, so jumps land
        // on fills, MSHR completions and prefetch events constantly.
        config.mem.l1d.sizeBytes = 4 * 1024 << (rng() % 2);
        config.mem.llc.sizeBytes = 64 * 1024 << (rng() % 2);
        config.mem.prefetcherEnabled = (rng() % 2) == 0;

        sim::RunSpec spec;
        spec.warmupInstrs = 500 + rng() % 1'500;
        spec.measureInstrs = 1'000 + rng() % 2'000;
        spec.maxCycles = 5'000'000;

        const RunImage off = runOnce(workload, config, spec, false);
        const RunImage on = runOnce(workload, config, spec, true);
        EXPECT_EQ(off.skippedCycles, 0u);
        EXPECT_EQ(off.skipEvents, 0u);
        totalSkipped += on.skippedCycles;
        expectIdentical(off, on,
                        "trial " + std::to_string(trial) + " (" +
                            name + ")");
    }
    // The fuzz only means something if the skip path actually ran.
    EXPECT_GT(totalSkipped, 0u);
}

/**
 * Branchy random programs: frequent mispredictions mean wrong-path
 * fetch and recovery keep interleaving with would-be skips, and CDF
 * episodes abort mid-flight. The equivalence must survive all of it.
 */
TEST(SkipEquivalence, RandomProgramsWithWrongPathRecovery)
{
    for (unsigned trial = 0; trial < 6; ++trial) {
        const workloads::Workload workload =
            workloads::makeRandomWorkload(0xBAD5EED + trial, 6, 150);

        ooo::CoreConfig config;
        config.mode = modeFor(trial);
        config.scaleWindow(0.5);
        config.mem.l1d.sizeBytes = 4 * 1024;
        config.mem.llc.sizeBytes = 64 * 1024;

        sim::RunSpec spec;
        spec.warmupInstrs = 300;
        spec.measureInstrs = 1'500;
        spec.maxCycles = 5'000'000;

        const RunImage off = runOnce(workload, config, spec, false);
        const RunImage on = runOnce(workload, config, spec, true);
        expectIdentical(off, on, "random program " +
                                     std::to_string(trial));
    }
}

/**
 * A cycle budget that expires inside a would-be jump: the jump must
 * clamp to the budget, truncate the phase at exactly the same cycle
 * as per-cycle ticking, and serialize identically — including the
 * truncated flag. mcf stalls for hundreds of cycles at a time, so a
 * tiny per-phase budget reliably ends mid-stall.
 */
TEST(SkipEquivalence, MaxCyclesExpiringMidJump)
{
    const workloads::Workload workload =
        workloads::makeWorkload("mcf");
    ooo::CoreConfig config;
    config.mem.l1d.sizeBytes = 4 * 1024;
    config.mem.llc.sizeBytes = 64 * 1024;

    for (const Cycle budget : {1'000ull, 2'500ull, 7'777ull}) {
        sim::RunSpec spec;
        spec.warmupInstrs = 500;
        spec.measureInstrs = 50'000; // unreachable: budget cuts first
        spec.maxCycles = budget;

        const RunImage off = runOnce(workload, config, spec, false);
        const RunImage on = runOnce(workload, config, spec, true);
        expectIdentical(off, on, "cycle budget " +
                                     std::to_string(budget));
    }
}

/**
 * Warmup/measure boundary adjacent to a jump: resetMeasurement()
 * happens between the phases, so the measurement window opens in the
 * middle of whatever stall the warmup target landed in. The skip
 * must charge the remaining stall cycles to the measurement stats
 * exactly as ticking would.
 */
TEST(SkipEquivalence, WarmupBoundaryInsideStall)
{
    const workloads::Workload workload =
        workloads::makeWorkload("mcf");
    ooo::CoreConfig config;
    config.mem.l1d.sizeBytes = 4 * 1024;
    config.mem.llc.sizeBytes = 64 * 1024;

    // Sweep the boundary across neighbouring retire counts so some
    // trial lands directly against a long DRAM stall.
    for (const std::uint64_t warmup : {97ull, 301ull, 1'003ull}) {
        sim::RunSpec spec;
        spec.warmupInstrs = warmup;
        spec.measureInstrs = 2'000;
        spec.maxCycles = 5'000'000;

        const RunImage off = runOnce(workload, config, spec, false);
        const RunImage on = runOnce(workload, config, spec, true);
        expectIdentical(off, on, "warmup " + std::to_string(warmup));
    }
}

/** The knob itself: disabled means zero skips, enabled skips on a
 *  memory-bound run and reports both counters consistently. */
TEST(SkipEquivalence, SkipCountersReflectTheKnob)
{
    const workloads::Workload workload =
        workloads::makeWorkload("mcf");
    ooo::CoreConfig config;
    config.mem.l1d.sizeBytes = 4 * 1024;
    config.mem.llc.sizeBytes = 64 * 1024;

    sim::RunSpec spec;
    spec.warmupInstrs = 500;
    spec.measureInstrs = 3'000;
    spec.maxCycles = 5'000'000;

    const RunImage off = runOnce(workload, config, spec, false);
    EXPECT_EQ(off.skippedCycles, 0u);
    EXPECT_EQ(off.skipEvents, 0u);

    const RunImage on = runOnce(workload, config, spec, true);
    ASSERT_TRUE(on.ok);
    EXPECT_GT(on.skippedCycles, 0u);
    EXPECT_GT(on.skipEvents, 0u);
    // Every jump fast-forwards at least one full cycle.
    EXPECT_GE(on.skippedCycles, on.skipEvents);
}
