/**
 * @file
 * Warmup-checkpointing tests.
 *
 * The contract under test: Simulator::restoreState(saveState()) is
 * indistinguishable from never having snapshotted — a restored
 * simulator's measurement phase is byte-identical (JSON dump of the
 * RunResult, which captures every stat, result and energy field) to
 * a straight-through run. Plus the checkpoint container format
 * (validation, corruption rejection, on-disk determinism) and the
 * SweepRunner memoization built on top.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "sim/snapshot.hh"
#include "sim/sweep.hh"

using namespace cdfsim;

namespace
{

ooo::CoreConfig
configFor(ooo::CoreMode mode)
{
    ooo::CoreConfig config;
    config.mode = mode;
    return config;
}

/** Straight-through reference run. */
std::string
straightThrough(const ooo::CoreConfig &config,
                const std::string &workload, const sim::RunSpec &spec)
{
    sim::Simulator s(config, workloads::makeWorkload(workload));
    return sim::toJson(s.run(spec)).dump();
}

/** Warm + snapshot in one simulator, restore + measure in a fresh
 *  one; returns the restored run's JSON. */
std::string
viaCheckpoint(const ooo::CoreConfig &config,
              const std::string &workload, const sim::RunSpec &spec)
{
    sim::Simulator warm(config, workloads::makeWorkload(workload));
    const bool truncated = warm.warmup(spec);
    SnapWriter w;
    warm.saveState(w);

    sim::Simulator cold(config, workloads::makeWorkload(workload));
    SnapReader r(w.bytes());
    cold.restoreState(r);
    EXPECT_TRUE(r.done()) << "restore did not consume the payload";
    return sim::toJson(cold.measure(spec, truncated)).dump();
}

} // namespace

TEST(Snapshot, RoundTripMatchesStraightThroughAllModes)
{
    sim::RunSpec spec;
    spec.warmupInstrs = 5'000;
    spec.measureInstrs = 8'000;
    for (const char *workload : {"astar", "lbm", "parest"}) {
        for (auto mode :
             {ooo::CoreMode::Baseline, ooo::CoreMode::Cdf,
              ooo::CoreMode::Pre}) {
            const ooo::CoreConfig config = configFor(mode);
            EXPECT_EQ(straightThrough(config, workload, spec),
                      viaCheckpoint(config, workload, spec))
                << workload << "/" << sim::toString(mode)
                << " diverged after restore";
        }
    }
}

TEST(Snapshot, RoundTripFuzzSmallConfigs)
{
    // Non-default window geometry exercises the partition/cap paths
    // in the snapshot codecs.
    sim::RunSpec spec;
    spec.warmupInstrs = 4'000;
    spec.measureInstrs = 6'000;
    for (double factor : {0.5, 1.25}) {
        for (auto mode :
             {ooo::CoreMode::Baseline, ooo::CoreMode::Cdf,
              ooo::CoreMode::Pre}) {
            ooo::CoreConfig config = configFor(mode);
            config.scaleWindow(factor);
            EXPECT_EQ(straightThrough(config, "mcf", spec),
                      viaCheckpoint(config, "mcf", spec))
                << "scale " << factor << " mode "
                << sim::toString(mode);
        }
    }
}

TEST(Snapshot, SaveIsDeterministicAndRestoreResavesIdentically)
{
    sim::RunSpec spec;
    spec.warmupInstrs = 6'000;
    spec.measureInstrs = 0;
    const ooo::CoreConfig config = configFor(ooo::CoreMode::Cdf);

    sim::Simulator warm(config, workloads::makeWorkload("astar"));
    warm.warmup(spec);
    SnapWriter first;
    warm.saveState(first);
    SnapWriter again;
    warm.saveState(again);
    // saveState must not mutate: double-save is byte-identical.
    EXPECT_EQ(first.bytes(), again.bytes());

    sim::Simulator cold(config, workloads::makeWorkload("astar"));
    SnapReader r(first.bytes());
    cold.restoreState(r);
    SnapWriter resaved;
    cold.saveState(resaved);
    // restore -> save round-trips the byte stream exactly, so a
    // checkpoint-of-a-restored-sim equals the original checkpoint
    // (cross-process determinism relies on this).
    EXPECT_EQ(first.bytes(), resaved.bytes());
}

TEST(Snapshot, MidCdfEpisodeRoundTrip)
{
    // Snapshot while the core is INSIDE a CDF episode (fetching from
    // the uop cache, critical partition live), not at a tidy phase
    // boundary, then check both copies march in lockstep.
    const ooo::CoreConfig config = configFor(ooo::CoreMode::Cdf);
    sim::Simulator a(config, workloads::makeWorkload("mcf"));

    bool entered = false;
    for (int chunk = 0; chunk < 200 && !entered; ++chunk) {
        a.core().run(a.core().retired() + 2'000, kNeverCycle);
        entered = a.core().inCdfMode();
    }
    ASSERT_TRUE(entered)
        << "mcf/cdf never entered CDF mode; test needs a workload "
           "that does";

    SnapWriter w;
    a.saveState(w);
    sim::Simulator b(config, workloads::makeWorkload("mcf"));
    SnapReader r(w.bytes());
    b.restoreState(r);
    EXPECT_TRUE(b.core().inCdfMode());

    a.core().run(a.core().retired() + 20'000, kNeverCycle);
    b.core().run(b.core().retired() + 20'000, kNeverCycle);
    EXPECT_EQ(a.core().cycle(), b.core().cycle());
    EXPECT_EQ(a.core().retired(), b.core().retired());
    EXPECT_EQ(a.stats().dump(), b.stats().dump());
}

TEST(Snapshot, PayloadIndependentOfHostKnobs)
{
    // skipIdleCycles and profileStages are host-only: a snapshot
    // taken with them on restores into a simulator with them off
    // (and vice versa) and the two continue identically. This is
    // what lets a --profile bench reuse an unprofiled checkpoint.
    sim::RunSpec spec;
    spec.warmupInstrs = 6'000;
    spec.measureInstrs = 8'000;

    ooo::CoreConfig skipOn = configFor(ooo::CoreMode::Cdf);
    skipOn.skipIdleCycles = true;
    ooo::CoreConfig skipOff = skipOn;
    skipOff.skipIdleCycles = false;
    skipOff.profileStages = true;

    // Same warmup key: the host knobs are excluded from it.
    EXPECT_EQ(sim::warmupKey("lbm", skipOn, spec),
              sim::warmupKey("lbm", skipOff, spec));

    // Warm with skip ON — mid-run, so the skip machinery is active
    // (possibly mid-backoff) at the snapshot point.
    sim::Simulator a(skipOn, workloads::makeWorkload("lbm"));
    const bool truncated = a.warmup(spec);
    SnapWriter w;
    a.saveState(w);

    // Restore into a skip-OFF profiled simulator.
    sim::Simulator b(skipOff, workloads::makeWorkload("lbm"));
    SnapReader r(w.bytes());
    b.restoreState(r);

    const auto ra = a.measure(spec, truncated);
    const auto rb = b.measure(spec, truncated);
    EXPECT_EQ(sim::toJson(ra).dump(), sim::toJson(rb).dump());
}

TEST(Snapshot, HaltedWorkloadShorterThanWarmup)
{
    // The program ends before warmupInstrs retire: the checkpoint
    // must carry the halted core faithfully and the restored run
    // must report identically (halted, zero-length measurement).
    auto make = [] {
        return workloads::makeRandomWorkload(0xD1CE, 4, 40);
    };
    sim::RunSpec spec;
    spec.warmupInstrs = 1'000'000;
    spec.measureInstrs = 5'000;

    const ooo::CoreConfig config = configFor(ooo::CoreMode::Baseline);
    sim::Simulator a(config, make());
    const auto straight = sim::toJson(a.run(spec)).dump();

    sim::Simulator warm(config, make());
    const bool truncated = warm.warmup(spec);
    EXPECT_FALSE(truncated); // halted, not truncated
    EXPECT_TRUE(warm.core().halted());
    SnapWriter w;
    warm.saveState(w);
    sim::Simulator cold(config, make());
    SnapReader r(w.bytes());
    cold.restoreState(r);
    EXPECT_TRUE(cold.core().halted());
    const auto restored =
        sim::toJson(cold.measure(spec, truncated)).dump();
    EXPECT_EQ(straight, restored);
}

TEST(SnapshotFile, SaveLoadRoundTrip)
{
    const std::filesystem::path dir = "snapshot_file_test";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    sim::Checkpoint ckpt;
    ckpt.warmupTruncated = true;
    for (int i = 0; i < 1000; ++i)
        ckpt.payload.push_back(static_cast<std::uint8_t>(i * 37));

    const std::uint64_t key = 0x0123456789ABCDEFull;
    const std::string path =
        (dir / sim::checkpointFileName(key)).string();
    ASSERT_TRUE(sim::saveCheckpointFile(path, key, ckpt));

    auto loaded = sim::loadCheckpointFile(path, key);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->payload, ckpt.payload);
    EXPECT_TRUE(loaded->warmupTruncated);

    // Wrong key (stale artifact after a config change) is rejected.
    EXPECT_FALSE(sim::loadCheckpointFile(path, key + 1).has_value());
    // Missing file.
    EXPECT_FALSE(
        sim::loadCheckpointFile((dir / "nope.cdfsnap").string(), key)
            .has_value());

    // A flipped payload byte fails the checksum.
    {
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary);
        f.seekp(-1, std::ios::end);
        f.put(static_cast<char>(~ckpt.payload.back()));
    }
    EXPECT_FALSE(sim::loadCheckpointFile(path, key).has_value());

    // A truncated file is rejected, not parsed.
    ASSERT_TRUE(sim::saveCheckpointFile(path, key, ckpt));
    std::filesystem::resize_file(path, 20);
    EXPECT_FALSE(sim::loadCheckpointFile(path, key).has_value());

    std::filesystem::remove_all(dir);
}

TEST(SnapshotFile, OnDiskBytesAreDeterministic)
{
    // Two independent simulators (standing in for two processes)
    // warming the same cell must spill byte-identical checkpoint
    // files: no pids, timestamps or pointer values in the payload.
    const std::filesystem::path dir = "snapshot_determinism_test";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    sim::RunSpec spec;
    spec.warmupInstrs = 5'000;
    const ooo::CoreConfig config = configFor(ooo::CoreMode::Cdf);
    const std::uint64_t key = sim::warmupKey("astar", config, spec);

    auto spill = [&](const char *name) {
        sim::Simulator s(config, workloads::makeWorkload("astar"));
        sim::Checkpoint ckpt;
        ckpt.warmupTruncated = s.warmup(spec);
        SnapWriter w;
        s.saveState(w);
        ckpt.payload = w.take();
        const std::string path = (dir / name).string();
        EXPECT_TRUE(sim::saveCheckpointFile(path, key, ckpt));
        std::ifstream in(path, std::ios::binary);
        return std::string(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
    };
    const std::string fileA = spill("a.cdfsnap");
    const std::string fileB = spill("b.cdfsnap");
    ASSERT_FALSE(fileA.empty());
    EXPECT_EQ(fileA, fileB);

    std::filesystem::remove_all(dir);
}

TEST(SnapshotKey, DistinguishesWarmupRelevantChanges)
{
    sim::RunSpec spec;
    spec.warmupInstrs = 5'000;
    const ooo::CoreConfig base = configFor(ooo::CoreMode::Cdf);

    const std::uint64_t k = sim::warmupKey("astar", base, spec);
    EXPECT_EQ(k, sim::warmupKey("astar", base, spec));

    EXPECT_NE(k, sim::warmupKey("lbm", base, spec));
    EXPECT_NE(k, sim::warmupKey("astar",
                                configFor(ooo::CoreMode::Baseline),
                                spec));

    ooo::CoreConfig bigger = base;
    bigger.robSize += 32;
    EXPECT_NE(k, sim::warmupKey("astar", bigger, spec));

    sim::RunSpec longer = spec;
    longer.warmupInstrs += 1;
    EXPECT_NE(k, sim::warmupKey("astar", base, longer));

    // measureInstrs does NOT affect the warmup state; cells that
    // differ only there share a checkpoint.
    sim::RunSpec otherMeasure = spec;
    otherMeasure.measureInstrs = 123'456;
    EXPECT_EQ(k, sim::warmupKey("astar", base, otherMeasure));
}

TEST(SweepMemoization, SharedWarmupsAreBitIdenticalAndCounted)
{
    // Four cells, two warmup groups: (astar/cdf) twice with
    // different measure windows, (lbm/baseline) twice. Leaders warm
    // (miss), peers restore (hit) — and every outcome must equal an
    // independent unmemoized run.
    auto cell = [](const char *wl, ooo::CoreMode mode,
                   std::uint64_t measure) {
        sim::SweepCell c;
        c.workload = wl;
        c.mode = mode;
        c.spec.warmupInstrs = 5'000;
        c.spec.measureInstrs = measure;
        return c;
    };
    const std::vector<sim::SweepCell> cells = {
        cell("astar", ooo::CoreMode::Cdf, 8'000),
        cell("lbm", ooo::CoreMode::Baseline, 8'000),
        cell("astar", ooo::CoreMode::Cdf, 4'000),
        cell("lbm", ooo::CoreMode::Baseline, 4'000),
    };

    sim::SweepRunner serial(1);
    const auto outcomes = serial.runAll(cells);
    EXPECT_EQ(serial.ckptStats().misses, 2u);
    EXPECT_EQ(serial.ckptStats().hits, 2u);

    for (std::size_t i = 0; i < cells.size(); ++i) {
        ooo::CoreConfig config = cells[i].config;
        config.mode = cells[i].mode;
        sim::Simulator independent(
            config, workloads::makeWorkload(cells[i].workload));
        auto expect = independent.run(cells[i].spec);
        expect.workload = cells[i].workload;
        EXPECT_EQ(sim::toJson(expect).dump(),
                  sim::toJson(outcomes[i].run).dump())
            << "memoized cell " << i << " diverged";
    }

    // Same matrix under contention: followers block on the leader's
    // condition variable instead of finding a ready checkpoint.
    sim::SweepRunner parallel(4);
    const auto par = parallel.runAll(cells);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        EXPECT_EQ(sim::toJson(outcomes[i]).dump(),
                  sim::toJson(par[i]).dump());
    }
    EXPECT_EQ(parallel.ckptStats().hits +
                  parallel.ckptStats().misses,
              cells.size());
}

TEST(SweepMemoization, CheckpointDirSharesAcrossRunners)
{
    const std::filesystem::path dir = "sweep_ckpt_dir_test";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    auto cell = [](const char *wl, ooo::CoreMode mode) {
        sim::SweepCell c;
        c.workload = wl;
        c.mode = mode;
        c.spec.warmupInstrs = 5'000;
        c.spec.measureInstrs = 6'000;
        return c;
    };
    const std::vector<sim::SweepCell> cells = {
        cell("astar", ooo::CoreMode::Cdf),
        cell("parest", ooo::CoreMode::Pre),
    };

    // Cold: every group warms and spills to disk.
    sim::SweepRunner cold(1);
    cold.setCheckpointDir(dir.string());
    const auto first = cold.runAll(cells);
    EXPECT_EQ(cold.ckptStats().misses, cells.size());
    EXPECT_EQ(cold.ckptStats().hits, 0u);
    std::size_t files = 0;
    for (const auto &e : std::filesystem::directory_iterator(dir))
        files += e.is_regular_file() ? 1 : 0;
    EXPECT_EQ(files, cells.size());

    // Warm: a fresh runner (standing in for the next bench process)
    // restores every cell from disk and produces identical results.
    sim::SweepRunner warmRunner(1);
    warmRunner.setCheckpointDir(dir.string());
    const auto second = warmRunner.runAll(cells);
    EXPECT_EQ(warmRunner.ckptStats().hits, cells.size());
    EXPECT_EQ(warmRunner.ckptStats().misses, 0u);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        EXPECT_EQ(sim::toJson(first[i]).dump(),
                  sim::toJson(second[i]).dump());
    }

    std::filesystem::remove_all(dir);
}
