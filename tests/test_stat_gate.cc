/**
 * @file
 * Semantics-preservation gate for simulator hot-path work.
 *
 * Re-runs every workload under every core mode at the smoke-sweep
 * instruction counts and asserts that the FNV-1a fingerprint of the
 * full serialized run — core result, energy report, and every stat
 * counter — is bit-identical to the committed golden table
 * (tests/golden_stat_hashes.inc, generated from the pre-optimization
 * simulator by tools/stat_gate_gen). Internal performance changes
 * (allocators, scheduling structures, incremental hashing) must keep
 * this green; an intended architectural change must regenerate the
 * goldens and say so in the PR.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/hash.hh"
#include "sim/sweep.hh"

using namespace cdfsim;

namespace
{

struct GoldenEntry
{
    const char *workload;
    const char *mode;
    std::uint64_t hash;
};

const GoldenEntry kGolden[] = {
#include "golden_stat_hashes.inc"
};

} // namespace

TEST(StatGate, BitIdenticalAcrossWorkloadsAndModes)
{
    sim::RunSpec spec;
    spec.warmupInstrs = 2'000;
    spec.measureInstrs = 3'000;
    spec.maxCycles = 5'000'000;

    std::map<std::pair<std::string, std::string>, std::uint64_t>
        golden;
    for (const auto &g : kGolden)
        golden[{g.workload, g.mode}] = g.hash;

    std::vector<sim::SweepCell> cells;
    for (const auto &name : workloads::allWorkloadNames()) {
        for (auto mode :
             {ooo::CoreMode::Baseline, ooo::CoreMode::Cdf,
              ooo::CoreMode::Pre}) {
            sim::SweepCell cell;
            cell.workload = name;
            cell.variant = sim::toString(mode);
            cell.mode = mode;
            cell.spec = spec;
            cells.push_back(std::move(cell));
        }
    }
    // Every golden row must still correspond to a live workload so a
    // renamed/removed workload cannot silently shrink the gate.
    EXPECT_EQ(cells.size(), std::size(kGolden));

    const auto outcomes = sim::SweepRunner(0).runAll(cells);
    for (const auto &o : outcomes) {
        const auto key = std::make_pair(o.cell.workload,
                                        o.cell.variant);
        ASSERT_TRUE(golden.count(key))
            << o.cell.workload << "/" << o.cell.variant
            << " has no golden fingerprint; run tools/stat_gate_gen";
        EXPECT_EQ(fnv1a64(sim::toJson(o).dump(-1)), golden[key])
            << o.cell.workload << "/" << o.cell.variant
            << " diverged from the pre-optimization behaviour; if "
               "this stats change is intended, regenerate "
               "tests/golden_stat_hashes.inc with tools/stat_gate_gen";
    }
}
