/**
 * @file
 * Tests for the parallel sweep runner: parallel results must be
 * bit-identical to serial results, order must be preserved, cell
 * errors must be captured rather than propagated, and truncated /
 * halted runs must be surfaced. Also covers the measurement-window
 * fix (warmup cycles no longer eat the measurement budget) and the
 * JSON serialization of results.
 */

#include <gtest/gtest.h>

#include "sim/sweep.hh"

using namespace cdfsim;

namespace
{

std::vector<sim::SweepCell>
smallMatrix()
{
    sim::RunSpec spec;
    spec.warmupInstrs = 5'000;
    spec.measureInstrs = 10'000;

    std::vector<sim::SweepCell> cells;
    for (const auto &wl : {"astar", "lbm", "parest"}) {
        for (auto mode : {ooo::CoreMode::Baseline, ooo::CoreMode::Cdf,
                          ooo::CoreMode::Pre}) {
            sim::SweepCell cell;
            cell.workload = wl;
            cell.variant = sim::toString(mode);
            cell.mode = mode;
            cell.spec = spec;
            cells.push_back(cell);
        }
    }
    return cells;
}

} // namespace

TEST(SweepRunner, ParallelMatchesSerialBitIdentical)
{
    const auto cells = smallMatrix();
    const auto serial = sim::SweepRunner(1).runAll(cells);
    const auto parallel = sim::SweepRunner(4).runAll(cells);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        // JSON captures every result field (cycles, IPC, stats,
        // energy), so string equality is bit-identity of the run.
        EXPECT_EQ(sim::toJson(serial[i]).dump(),
                  sim::toJson(parallel[i]).dump())
            << "cell " << i << " (" << cells[i].workload << "/"
            << cells[i].variant << ") diverged under parallelism";
    }
}

TEST(SweepRunner, PreservesCellOrder)
{
    const auto cells = smallMatrix();
    const auto outcomes = sim::SweepRunner(3).runAll(cells);
    ASSERT_EQ(outcomes.size(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        EXPECT_EQ(outcomes[i].cell.workload, cells[i].workload);
        EXPECT_EQ(outcomes[i].cell.variant, cells[i].variant);
        EXPECT_EQ(outcomes[i].run.workload, cells[i].workload);
        EXPECT_EQ(outcomes[i].run.mode, cells[i].mode);
        EXPECT_TRUE(outcomes[i].error.empty());
        EXPECT_TRUE(outcomes[i].run.ok()) << outcomes[i].run.status();
        EXPECT_GT(outcomes[i].run.core.ipc, 0.0);
    }
}

TEST(SweepRunner, CellErrorIsCapturedNotThrown)
{
    sim::SweepCell good;
    good.workload = "parest";
    good.spec.warmupInstrs = 1'000;
    good.spec.measureInstrs = 2'000;
    sim::SweepCell bad = good;
    bad.workload = "no_such_workload";

    const auto outcomes =
        sim::SweepRunner(2).runAll({good, bad, good});
    ASSERT_EQ(outcomes.size(), 3u);
    EXPECT_TRUE(outcomes[0].error.empty());
    EXPECT_FALSE(outcomes[1].error.empty());
    EXPECT_TRUE(outcomes[1].failed());
    EXPECT_TRUE(outcomes[2].error.empty());
    EXPECT_GT(outcomes[2].run.core.ipc, 0.0);
}

TEST(SweepRunner, ZeroThreadsMeansHardwareConcurrency)
{
    EXPECT_GE(sim::SweepRunner(0).threads(), 1u);
    EXPECT_EQ(sim::SweepRunner(7).threads(), 7u);
}

TEST(Simulator, TruncatedRunIsSurfaced)
{
    sim::RunSpec spec;
    spec.warmupInstrs = 0;
    spec.measureInstrs = 1'000'000;
    spec.maxCycles = 2'000; // cannot possibly retire 1M instrs
    sim::Simulator s(ooo::CoreConfig{},
                     workloads::makeWorkload("parest"));
    auto r = s.run(spec);
    EXPECT_TRUE(r.truncated);
    EXPECT_FALSE(r.ok());
    EXPECT_STREQ(r.status(), "truncated");
}

TEST(Simulator, WarmupTruncationIsSurfaced)
{
    sim::RunSpec spec;
    spec.warmupInstrs = 1'000'000;
    spec.measureInstrs = 500;
    spec.maxCycles = 2'000;
    sim::Simulator s(ooo::CoreConfig{},
                     workloads::makeWorkload("parest"));
    auto r = s.run(spec);
    EXPECT_TRUE(r.warmupTruncated);
    EXPECT_FALSE(r.ok());
    EXPECT_STREQ(r.status(), "warmup_truncated");
}

TEST(Simulator, WarmupDoesNotEatMeasurementBudget)
{
    // Measure how many cycles warmup alone needs, then give the
    // whole run exactly that plus a sliver. Under the old absolute
    // maxCycles semantics the measurement phase would start with a
    // nearly exhausted budget and truncate; with per-phase budgets
    // it gets the full allowance and completes.
    const std::uint64_t warmup = 30'000;
    const std::uint64_t measure = 10'000;

    sim::RunSpec probe;
    probe.warmupInstrs = warmup;
    probe.measureInstrs = 0;
    sim::Simulator p(ooo::CoreConfig{},
                     workloads::makeWorkload("parest"));
    p.run(probe);
    const Cycle warmupCycles = p.core().cycle();
    ASSERT_GT(warmupCycles, 0u);

    sim::RunSpec spec;
    spec.warmupInstrs = warmup;
    spec.measureInstrs = measure;
    spec.maxCycles = warmupCycles + 100;
    sim::Simulator s(ooo::CoreConfig{},
                     workloads::makeWorkload("parest"));
    auto r = s.run(spec);
    EXPECT_FALSE(r.warmupTruncated);
    EXPECT_FALSE(r.truncated)
        << "warmup cycles leaked into the measurement budget";
    EXPECT_GE(r.core.retiredInstrs, measure);
}

TEST(Simulator, OkRunHasOkStatus)
{
    sim::RunSpec spec;
    spec.warmupInstrs = 2'000;
    spec.measureInstrs = 5'000;
    auto r = sim::runWorkload("lbm", ooo::CoreMode::Baseline, spec);
    EXPECT_TRUE(r.ok());
    EXPECT_STREQ(r.status(), "ok");
    EXPECT_FALSE(r.halted);
    EXPECT_FALSE(r.truncated);
}

TEST(Geomean, PositiveFilterExcludesAndCounts)
{
    std::size_t excluded = 123;
    EXPECT_DOUBLE_EQ(
        sim::geomeanPositive({4.0, 1.0, 0.0, -2.0}, &excluded), 2.0);
    EXPECT_EQ(excluded, 2u);

    EXPECT_DOUBLE_EQ(sim::geomeanPositive({0.0, -1.0}, &excluded),
                     0.0);
    EXPECT_EQ(excluded, 2u);

    EXPECT_DOUBLE_EQ(sim::geomeanPositive({4.0, 1.0}, nullptr), 2.0);
}

TEST(SweepJson, RunSerializationHasSchemaFields)
{
    sim::SweepCell cell;
    cell.workload = "parest";
    cell.variant = "v";
    cell.mode = ooo::CoreMode::Cdf;
    cell.spec.warmupInstrs = 2'000;
    cell.spec.measureInstrs = 3'000;
    const auto outcomes = sim::SweepRunner(1).runAll({cell});
    ASSERT_EQ(outcomes.size(), 1u);

    Json j = sim::toJson(outcomes[0]);
    const std::string text = j.dump(-1);
    EXPECT_NE(text.find("\"workload\":\"parest\""), std::string::npos);
    EXPECT_NE(text.find("\"variant\":\"v\""), std::string::npos);
    EXPECT_NE(text.find("\"mode\":\"cdf\""), std::string::npos);
    EXPECT_NE(text.find("\"status\":\"ok\""), std::string::npos);
    EXPECT_NE(text.find("\"ipc\":"), std::string::npos);
    EXPECT_NE(text.find("\"stats\":"), std::string::npos);
    EXPECT_NE(text.find("\"total_uj\":"), std::string::npos);
}

TEST(SweepJson, ModeNames)
{
    EXPECT_STREQ(sim::toString(ooo::CoreMode::Baseline), "baseline");
    EXPECT_STREQ(sim::toString(ooo::CoreMode::Cdf), "cdf");
    EXPECT_STREQ(sim::toString(ooo::CoreMode::Pre), "pre");
}
