/**
 * @file
 * Unit tests for sim::SweepSpec: deterministic expansion order
 * (groups -> axis combinations -> workloads -> variants), product vs
 * zipped axes, --workloads filter semantics, builder/JSON
 * equivalence, the config-override registry, and the validation
 * errors that must name the offending spec path.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "common/json.hh"
#include "ooo/core_config.hh"
#include "sim/sweep_spec.hh"
#include "workloads/workloads.hh"

using cdfsim::Json;
using cdfsim::ooo::CoreConfig;
using cdfsim::ooo::CoreMode;
using cdfsim::sim::SweepCell;
using cdfsim::sim::SweepSpec;

namespace
{

std::vector<std::string>
cellIds(const std::vector<SweepCell> &cells)
{
    std::vector<std::string> ids;
    for (const SweepCell &c : cells)
        ids.push_back(c.workload + "/" + c.variant);
    return ids;
}

Json
parseOrDie(const std::string &text)
{
    std::string error;
    Json doc = Json::parse(text, &error);
    EXPECT_TRUE(!doc.isNull()) << error;
    return doc;
}

/** EXPECT that @p fn throws std::runtime_error whose message
 *  contains @p needle (the spec path naming the offense). */
template <typename Fn>
void
expectSpecError(Fn &&fn, const std::string &needle)
{
    try {
        fn();
        FAIL() << "expected a spec error mentioning '" << needle
               << "'";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find(needle),
                  std::string::npos)
            << "error message '" << e.what()
            << "' does not mention '" << needle << "'";
    }
}

TEST(SweepSpec, ExpansionOrderIsWorkloadOuterVariantInner)
{
    SweepSpec spec("t");
    auto &g = spec.group({"astar", "mcf"});
    g.variant("base", CoreMode::Baseline);
    g.variant("cdf", CoreMode::Cdf);

    const auto cells = spec.expand(CoreConfig{});
    EXPECT_EQ(cellIds(cells),
              (std::vector<std::string>{"astar/base", "astar/cdf",
                                        "mcf/base", "mcf/cdf"}));
    EXPECT_EQ(cells[1].mode, CoreMode::Cdf);
    EXPECT_EQ(cells[1].config.mode, CoreMode::Cdf);
}

TEST(SweepSpec, GroupsExpandInDeclarationOrder)
{
    SweepSpec spec("t");
    spec.group({"mcf"}).variant("cdf", CoreMode::Cdf);
    spec.group({"astar"}).variant("base", CoreMode::Baseline);

    EXPECT_EQ(cellIds(spec.expand(CoreConfig{})),
              (std::vector<std::string>{"mcf/cdf", "astar/base"}));
}

TEST(SweepSpec, ProductAxesFirstAxisOutermost)
{
    SweepSpec spec("t");
    auto &g = spec.group({"astar"});
    auto &outer = g.axis("outer");
    outer.value("o1");
    outer.value("o2");
    auto &inner = g.axis("inner");
    inner.value("i1");
    inner.value("i2");
    g.variant("v", CoreMode::Baseline);

    EXPECT_EQ(cellIds(spec.expand(CoreConfig{})),
              (std::vector<std::string>{
                  "astar/v@o1@i1", "astar/v@o1@i2", "astar/v@o2@i1",
                  "astar/v@o2@i2"}));
}

TEST(SweepSpec, ZippedAxesAdvanceInLockstep)
{
    SweepSpec spec("t");
    auto &g = spec.group({"astar"});
    g.zip = true;
    auto &a = g.axis("a");
    a.value("a1");
    a.value("a2");
    auto &b = g.axis("b");
    b.value("b1");
    b.value("b2");
    g.variant("v", CoreMode::Baseline);

    EXPECT_EQ(cellIds(spec.expand(CoreConfig{})),
              (std::vector<std::string>{"astar/v@a1@b1",
                                        "astar/v@a2@b2"}));
}

TEST(SweepSpec, EmptyAxisTagAddsNoSuffix)
{
    SweepSpec spec("t");
    auto &g = spec.group({"astar"});
    g.axis("a").value("");
    g.variant("v", CoreMode::Baseline);

    EXPECT_EQ(cellIds(spec.expand(CoreConfig{})),
              (std::vector<std::string>{"astar/v"}));
}

TEST(SweepSpec, FilterRestrictsToFilterOrder)
{
    SweepSpec spec("t");
    auto &g = spec.group({"astar", "mcf", "lbm"});
    g.variant("base", CoreMode::Baseline);

    // Filter order wins over group order, and unmatched entries in
    // the group vanish.
    const auto cells =
        spec.expand(CoreConfig{}, {"lbm", "astar"});
    EXPECT_EQ(cellIds(cells), (std::vector<std::string>{
                                  "lbm/base", "astar/base"}));
}

TEST(SweepSpec, FilterCanEmptyOutAGroup)
{
    SweepSpec spec("t");
    spec.group({"astar"}).variant("base", CoreMode::Baseline);
    spec.group({"mcf"}).variant("cdf", CoreMode::Cdf);

    EXPECT_EQ(cellIds(spec.expand(CoreConfig{}, {"mcf"})),
              (std::vector<std::string>{"mcf/cdf"}));
}

TEST(SweepSpec, WindowLayersDefaultsGroupAxisVariant)
{
    SweepSpec spec("t");
    spec.defaults().warmupInstrs = 1'000;
    spec.defaults().measureInstrs = 2'000;
    spec.defaults().maxCycles = 3'000;

    auto &g = spec.group({"astar"});
    g.window.measureInstrs = 20;
    auto &v = g.variant("v", CoreMode::Baseline);
    v.window.maxCycles = 30;
    g.variant("w", CoreMode::Baseline);

    const auto cells = spec.expand(CoreConfig{});
    ASSERT_EQ(cells.size(), 2u);
    EXPECT_EQ(cells[0].spec.warmupInstrs, 1'000u); // from defaults
    EXPECT_EQ(cells[0].spec.measureInstrs, 20u);   // group override
    EXPECT_EQ(cells[0].spec.maxCycles, 30u);       // variant override
    EXPECT_EQ(cells[1].spec.maxCycles, 3'000u);    // untouched
}

TEST(SweepSpec, ConfigOverridesApplyAxisThenVariant)
{
    SweepSpec spec("t");
    auto &g = spec.group({"astar"});
    g.axis("size").value("big").set("rob_size", 512);
    g.variant("v", CoreMode::Cdf)
        .set("rob_size", 64)
        .set("cdf.partition.dynamic", false);

    const auto cells = spec.expand(CoreConfig{});
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_EQ(cells[0].config.robSize, 64u); // variant wins
    EXPECT_FALSE(cells[0].config.cdf.partition.dynamic);
}

TEST(SweepSpec, ScaleWindowOverrideMatchesCoreConfigScaleWindow)
{
    CoreConfig direct;
    direct.scaleWindow(0.5);

    CoreConfig viaSpec;
    cdfsim::sim::applyConfigOverride(viaSpec, "scale_window",
                                     Json(0.5), "here");
    EXPECT_EQ(viaSpec.robSize, direct.robSize);
    EXPECT_EQ(viaSpec.rsSize, direct.rsSize);
    EXPECT_EQ(viaSpec.lqSize, direct.lqSize);
    EXPECT_EQ(viaSpec.sqSize, direct.sqSize);
    EXPECT_EQ(viaSpec.physRegs, direct.physRegs);
}

TEST(SweepSpec, WorkloadSetAndStarResolve)
{
    SweepSpec spec("t");
    spec.defineWorkloadSet("pair", {"mcf", "astar"});
    spec.group({"@pair"}).variant("v", CoreMode::Baseline);

    EXPECT_EQ(cellIds(spec.expand(CoreConfig{})),
              (std::vector<std::string>{"mcf/v", "astar/v"}));

    SweepSpec all("t2");
    all.group({"*"}).variant("v", CoreMode::Baseline);
    EXPECT_EQ(
        all.workloadUnion(),
        cdfsim::workloads::allWorkloadNames());
}

TEST(SweepSpec, JsonAndBuilderExpandIdentically)
{
    const Json doc = parseOrDie(R"({
        "sweep": "t",
        "schema_version": 1,
        "defaults": {"warmup_instrs": 10, "measure_instrs": 20,
                     "max_cycles": 30},
        "groups": [{
            "workloads": ["astar", "mcf"],
            "variants": [
                {"name": "base", "mode": "baseline"},
                {"name": "cdf_nobr", "mode": "cdf",
                 "config": {"cdf.mark_critical_branches": false}}
            ]
        }]
    })");
    const SweepSpec fromJson = SweepSpec::fromJson(doc, "spec");

    SweepSpec built("t");
    built.defaults().warmupInstrs = 10;
    built.defaults().measureInstrs = 20;
    built.defaults().maxCycles = 30;
    auto &g = built.group({"astar", "mcf"});
    g.variant("base", CoreMode::Baseline);
    g.variant("cdf_nobr", CoreMode::Cdf)
        .set("cdf.mark_critical_branches", false);

    const auto a = fromJson.expand(CoreConfig{});
    const auto b = built.expand(CoreConfig{});
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].workload, b[i].workload);
        EXPECT_EQ(a[i].variant, b[i].variant);
        EXPECT_EQ(a[i].mode, b[i].mode);
        EXPECT_EQ(a[i].spec.warmupInstrs, b[i].spec.warmupInstrs);
        EXPECT_EQ(a[i].spec.measureInstrs, b[i].spec.measureInstrs);
        EXPECT_EQ(a[i].spec.maxCycles, b[i].spec.maxCycles);
        EXPECT_EQ(a[i].config.cdf.markCriticalBranches,
                  b[i].config.cdf.markCriticalBranches);
    }
}

// ------------------------------------------------- validation errors

TEST(SweepSpec, ErrorsNameTheOffendingPath)
{
    // Missing variant mode.
    expectSpecError(
        [] {
            SweepSpec::fromJson(
                parseOrDie(R"({"sweep": "t", "schema_version": 1,
                    "groups": [{"workloads": ["astar"],
                        "variants": [{"name": "v"}]}]})"),
                "spec");
        },
        "spec.groups[0].variants[0]");

    // Bad mode string.
    expectSpecError(
        [] {
            SweepSpec::fromJson(
                parseOrDie(R"({"sweep": "t", "schema_version": 1,
                    "groups": [{"workloads": ["astar"],
                        "variants": [{"name": "v",
                                      "mode": "turbo"}]}]})"),
                "spec");
        },
        "spec.groups[0].variants[0].mode");

    // Typo'd member must not silently no-op.
    expectSpecError(
        [] {
            SweepSpec::fromJson(
                parseOrDie(R"({"sweep": "t", "schema_version": 1,
                    "groups": [{"workloads": ["astar"],
                        "varients": [],
                        "variants": [{"name": "v",
                                      "mode": "cdf"}]}]})"),
                "spec");
        },
        "spec.groups[0].varients");

    // Unsupported schema version.
    expectSpecError(
        [] {
            SweepSpec::fromJson(
                parseOrDie(R"({"sweep": "t", "schema_version": 2,
                    "groups": []})"),
                "spec");
        },
        "spec.schema_version");

    // Zipped axes of unequal length.
    expectSpecError(
        [] {
            SweepSpec::fromJson(
                parseOrDie(R"({"sweep": "t", "schema_version": 1,
                    "groups": [{"workloads": ["astar"], "zip": true,
                        "axes": [
                            {"name": "a", "values": [{"tag": "1"},
                                                     {"tag": "2"}]},
                            {"name": "b", "values": [{"tag": "1"}]}],
                        "variants": [{"name": "v",
                                      "mode": "cdf"}]}]})"),
                "spec");
        },
        "spec.groups[0].axes");
}

TEST(SweepSpec, UnknownWorkloadAndSetAreRejected)
{
    SweepSpec spec("t");
    expectSpecError([&] { spec.group({"no_such_workload"}); },
                    "groups[0].workloads");
    expectSpecError([&] { spec.group({"@no_such_set"}); },
                    "groups[0].workloads");
}

TEST(SweepSpec, UnknownOverrideKeyIsRejectedAtExpand)
{
    SweepSpec spec("t");
    spec.group({"astar"})
        .variant("v", CoreMode::Cdf)
        .set("cdf.no_such_knob", true);
    expectSpecError([&] { spec.expand(CoreConfig{}); },
                    "groups[0].variants[0].config.cdf.no_such_knob");
}

TEST(SweepSpec, OverrideTypeMismatchIsRejected)
{
    SweepSpec spec("t");
    spec.group({"astar"})
        .variant("v", CoreMode::Cdf)
        .set("cdf.partition.dynamic", 3); // boolean knob
    expectSpecError([&] { spec.expand(CoreConfig{}); },
                    "expected a boolean");
}

TEST(SweepSpec, DuplicateCellsAreRejected)
{
    SweepSpec spec("t");
    auto &g = spec.group({"astar"});
    g.variant("v", CoreMode::Baseline);
    g.variant("v", CoreMode::Cdf);
    expectSpecError([&] { spec.expand(CoreConfig{}); },
                    "duplicate cell astar/v");
}

TEST(SweepSpec, FromFileRejectsMissingFile)
{
    expectSpecError(
        [] { SweepSpec::fromFile("/no/such/spec.json"); },
        "/no/such/spec.json");
}

} // namespace
