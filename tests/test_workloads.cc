/**
 * @file
 * Property tests on the workload kernels: every named kernel builds,
 * runs functionally, and exhibits the memory/branch characteristic
 * its paper counterpart was chosen for (miss intensity classes,
 * branch behaviour, pointer chasing vs independent misses).
 */

#include <gtest/gtest.h>

#include "isa/interpreter.hh"
#include "ooo/core.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace cdfsim;

class WorkloadTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadTest, BuildsAndRunsFunctionally)
{
    auto w = workloads::makeWorkload(GetParam());
    ASSERT_FALSE(w.program.code.empty());
    isa::MemoryImage mem = w.makeMemory();
    isa::Interpreter interp(w.program, mem);
    for (int i = 0; i < 50'000 && !interp.halted(); ++i)
        interp.step();
    EXPECT_EQ(interp.executed(), 50'000u)
        << "kernel terminated early (should loop ~forever)";
}

TEST_P(WorkloadTest, DeterministicAcrossRebuilds)
{
    auto w1 = workloads::makeWorkload(GetParam());
    auto w2 = workloads::makeWorkload(GetParam());
    ASSERT_EQ(w1.program.code.size(), w2.program.code.size());
    isa::MemoryImage m1 = w1.makeMemory();
    isa::MemoryImage m2 = w2.makeMemory();
    isa::Interpreter i1(w1.program, m1);
    isa::Interpreter i2(w2.program, m2);
    for (int i = 0; i < 5'000; ++i) {
        auto r1 = i1.step();
        auto r2 = i2.step();
        ASSERT_EQ(r1.pc, r2.pc);
        ASSERT_EQ(r1.result, r2.result);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllNames, WorkloadTest,
    ::testing::ValuesIn(workloads::allWorkloadNames()),
    [](const auto &info) { return info.param; });

namespace
{

ooo::CoreResult
baselineRun(const std::string &name, std::uint64_t n = 60'000)
{
    auto w = workloads::makeWorkload(name);
    isa::MemoryImage mem = w.makeMemory();
    StatRegistry stats;
    ooo::CoreConfig cfg;
    ooo::Core core(cfg, w.program, mem, stats);
    core.run(200'000, 400'000'000); // warm
    core.resetMeasurement();
    core.run(core.retired() + n, 400'000'000);
    return core.result();
}

} // namespace

TEST(WorkloadCharacter, MemoryIntensityClasses)
{
    // Miss-heavy kernels vs LLC-resident neutrals.
    EXPECT_GT(baselineRun("astar").llcMpki, 5.0);
    EXPECT_GT(baselineRun("mcf").llcMpki, 15.0);
    EXPECT_LT(baselineRun("parest").llcMpki, 1.0);
    EXPECT_LT(baselineRun("leslie3d").llcMpki, 1.0);
}

TEST(WorkloadCharacter, BranchBehaviourClasses)
{
    // astar/soplex carry hard value-dependent branches; libquantum's
    // control is predictable.
    EXPECT_GT(baselineRun("astar").branchMpki, 3.0);
    EXPECT_GT(baselineRun("soplex").branchMpki, 5.0);
    EXPECT_LT(baselineRun("libquantum").branchMpki, 1.5);
    EXPECT_LT(baselineRun("lbm").branchMpki, 1.5);
}

TEST(WorkloadCharacter, PointerChaseHasNoMlp)
{
    auto mcf = baselineRun("mcf");
    EXPECT_LT(mcf.mlp, 3.0) << "chains should serialize";
    auto gems = baselineRun("gems");
    EXPECT_GT(gems.mlp, mcf.mlp)
        << "independent-miss kernel should out-MLP the chase";
}

TEST(WorkloadCharacter, DenseKernelsStallHard)
{
    EXPECT_GT(baselineRun("gems").fullWindowStallFraction, 0.3);
    EXPECT_GT(baselineRun("zeusmp").fullWindowStallFraction, 0.3);
}

TEST(Workloads, UnknownNameIsFatal)
{
    EXPECT_THROW(workloads::makeWorkload("spec2042"), FatalError);
}

TEST(Workloads, RandomProgramsTerminate)
{
    for (std::uint64_t seed : {100ull, 200ull, 300ull}) {
        auto w = workloads::makeRandomWorkload(seed, 6, 100);
        isa::MemoryImage mem = w.makeMemory();
        isa::Interpreter interp(w.program, mem);
        std::uint64_t n = 0;
        while (!interp.halted() && n < 2'000'000) {
            interp.step();
            ++n;
        }
        EXPECT_TRUE(interp.halted()) << "seed " << seed;
    }
}
