/**
 * @file
 * Offline diff for two bench JSON artifacts (BENCH_*.json).
 *
 * Pairs runs by (workload, variant), compares the headline metrics —
 * IPC, MLP, and total energy — and flags any relative movement
 * beyond a tolerance. Movements in the bad direction (IPC/MLP down,
 * energy up) are regressions and make the exit code nonzero, so a CI
 * step can gate a change on "the figures did not get worse":
 *
 *   bench_compare [--tolerance PCT] baseline.json candidate.json
 *
 * Improvements beyond tolerance are printed too (they mean the
 * baseline artifact is stale) but do not fail the comparison.
 * Missing rows, status changes (ok -> truncated/halted), and
 * sweep-cell errors always count as regressions.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hh"

using cdfsim::Json;

namespace
{

struct Metric
{
    const char *section; //!< "core" or "energy"
    const char *key;
    bool higherIsBetter;
};

constexpr Metric kMetrics[] = {
    {"core", "ipc", true},
    {"core", "mlp", true},
    {"energy", "total_uj", false},
};

[[noreturn]] void
usage(int code)
{
    std::fprintf(stderr,
                 "usage: bench_compare [--tolerance PCT] "
                 "baseline.json candidate.json\n"
                 "  --tolerance PCT  flag relative movements beyond "
                 "PCT%% (default 1.0)\n");
    std::exit(code);
}

Json
load(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "bench_compare: cannot read %s\n",
                     path.c_str());
        std::exit(2);
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    Json doc = Json::parse(buf.str(), &error);
    if (doc.isNull()) {
        std::fprintf(stderr, "bench_compare: %s: %s\n", path.c_str(),
                     error.c_str());
        std::exit(2);
    }
    return doc;
}

/** (workload, variant) -> run object, in artifact order. */
std::map<std::pair<std::string, std::string>, const Json *>
indexRuns(const Json &doc, const std::string &path)
{
    const Json *runs = doc.find("runs");
    if (!runs || runs->type() != Json::Type::Array) {
        std::fprintf(stderr,
                     "bench_compare: %s has no \"runs\" array\n",
                     path.c_str());
        std::exit(2);
    }
    std::map<std::pair<std::string, std::string>, const Json *> out;
    for (const Json &run : runs->items()) {
        const Json *workload = run.find("workload");
        const Json *variant = run.find("variant");
        if (!workload || !variant)
            continue;
        out[{workload->asString(), variant->asString()}] = &run;
    }
    return out;
}

/**
 * A null under "derived" is a serialized NaN: an aggregate that the
 * bench computed over an empty row set.  Such an artifact cannot be
 * meaningfully gated on, so treat it as malformed rather than letting
 * the comparison silently skip the aggregate.
 */
void
rejectNullDerived(const Json &node, const std::string &path,
                  const std::string &keyPath)
{
    if (node.isNull())
        throw std::runtime_error(
            path + ": " + keyPath +
            " is null (aggregate computed over zero rows)");
    if (node.type() == Json::Type::Object) {
        for (const auto &[key, value] : node.members())
            rejectNullDerived(value, path, keyPath + "." + key);
    } else if (node.type() == Json::Type::Array) {
        std::size_t i = 0;
        for (const Json &item : node.items())
            rejectNullDerived(item, path,
                              keyPath + "[" + std::to_string(i++) +
                                  "]");
    }
}

void
validateDerived(const Json &doc, const std::string &path)
{
    if (const Json *derived = doc.find("derived"))
        rejectNullDerived(*derived, path, "derived");
}

const Json *
metricNode(const Json &run, const Metric &m)
{
    const Json *section = run.find(m.section);
    return section ? section->find(m.key) : nullptr;
}

std::string
runStatus(const Json &run)
{
    const Json *status = run.find("status");
    return status ? status->asString() : "missing";
}

int
run(int argc, char **argv)
{
    double tolerancePct = 1.0;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--tolerance") == 0) {
            if (++i >= argc)
                usage(2);
            tolerancePct = std::strtod(argv[i], nullptr);
        } else if (std::strncmp(arg, "--tolerance=", 12) == 0) {
            tolerancePct = std::strtod(arg + 12, nullptr);
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            usage(0);
        } else if (arg[0] == '-') {
            std::fprintf(stderr,
                         "bench_compare: unknown flag '%s'\n", arg);
            usage(2);
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.size() != 2)
        usage(2);

    const Json base = load(paths[0]);
    const Json cand = load(paths[1]);
    validateDerived(base, paths[0]);
    validateDerived(cand, paths[1]);
    const auto baseRuns = indexRuns(base, paths[0]);
    const auto candRuns = indexRuns(cand, paths[1]);

    unsigned regressions = 0;
    unsigned improvements = 0;
    unsigned compared = 0;

    for (const auto &[id, baseRun] : baseRuns) {
        const std::string label = id.first + "/" + id.second;
        const auto it = candRuns.find(id);
        if (it == candRuns.end()) {
            std::printf("REGRESSION  %-28s missing from %s\n",
                        label.c_str(), paths[1].c_str());
            ++regressions;
            continue;
        }
        const Json &candRun = *it->second;

        const std::string baseStatus = runStatus(*baseRun);
        const std::string candStatus = runStatus(candRun);
        if (baseStatus != candStatus) {
            std::printf("REGRESSION  %-28s status %s -> %s\n",
                        label.c_str(), baseStatus.c_str(),
                        candStatus.c_str());
            ++regressions;
            continue;
        }
        if (baseStatus == "error")
            continue; // neither side has metrics

        for (const Metric &m : kMetrics) {
            const Json *b = metricNode(*baseRun, m);
            const Json *c = metricNode(candRun, m);
            if (!b || !c)
                continue;
            const double bv = b->asNumber();
            const double cv = c->asNumber();
            ++compared;
            // Relative movement; a zero baseline only matches a
            // zero candidate.
            const double deltaPct =
                bv != 0.0 ? 100.0 * (cv - bv) / std::fabs(bv)
                          : (cv == 0.0 ? 0.0 : 1e9);
            if (std::fabs(deltaPct) <= tolerancePct)
                continue;
            const bool worse = m.higherIsBetter ? cv < bv : cv > bv;
            std::printf("%-11s %-28s %s.%s %12.6g -> %-12.6g "
                        "(%+.2f%%)\n",
                        worse ? "REGRESSION" : "IMPROVEMENT",
                        label.c_str(), m.section, m.key, bv, cv,
                        deltaPct);
            if (worse)
                ++regressions;
            else
                ++improvements;
        }
    }

    // A row on only one side is a coverage failure either way: a
    // run that silently appeared is as suspect as one that silently
    // vanished (a renamed variant would otherwise pass the gate).
    for (const auto &[id, run] : candRuns) {
        (void)run;
        if (baseRuns.find(id) == baseRuns.end()) {
            std::printf("REGRESSION  %s/%s only in %s\n",
                        id.first.c_str(), id.second.c_str(),
                        paths[1].c_str());
            ++regressions;
        }
    }

    std::printf("%u metric(s) compared across %zu run(s): "
                "%u regression(s), %u improvement(s) beyond %.2f%%\n",
                compared, baseRuns.size(), regressions, improvements,
                tolerancePct);
    return regressions > 0 ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Schema violations inside a parseable artifact (a string where a
    // number belongs, say) surface as exceptions from the Json
    // accessors; report them like any other bad input instead of
    // aborting.
    try {
        return run(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "bench_compare: malformed artifact: %s\n",
                     e.what());
        return 2;
    }
}
