/**
 * @file
 * Merge the shard artifacts of a sharded bench sweep back into one
 * schema-valid BENCH_*.json.
 *
 * bench::Harness --shard i/N assigns cell j to shard j mod N, so
 * shard s's k-th run was originally cell s + k*N. Given all N shard
 * artifacts, interleaving by original index reconstructs the exact
 * run order of a single-process sweep; the merged document is
 * bit-identical (modulo the "timing" object) to one produced by a
 * --shard 0/1 run of the same matrix.
 *
 *   bench_merge -o merged.json [--verify-identical ref.json]
 *               shard0.json shard1.json ...
 *
 * Validation: every input must carry the same bench name and
 * schema_version plus timing.shard metadata, the shard set must be
 * complete ({0..N-1}, each exactly once) with round-robin-shaped
 * run counts, and (workload, variant) keys must be disjoint across
 * shards. Any violation exits 2 without writing output.
 * --verify-identical compares the merged document against a
 * reference artifact byte-for-byte after dropping "timing" on both
 * sides (exit 1 on mismatch) — the ctest round-trip uses this.
 *
 * "derived" values are whole-matrix aggregates; shards do not carry
 * them and the merge cannot reconstruct them, so merged artifacts
 * have none (by design, matching --shard 0/1 output).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hh"

using cdfsim::Json;

namespace
{

[[noreturn]] void
usage(int code)
{
    std::fprintf(
        stderr,
        "usage: bench_merge -o merged.json "
        "[--verify-identical ref.json] shard.json...\n"
        "  -o FILE                 output path (required)\n"
        "  --verify-identical REF  after merging, require the result "
        "to match REF\n"
        "                          byte-for-byte modulo \"timing\" "
        "(exit 1 if not)\n");
    std::exit(code);
}

[[noreturn]] void
die(const std::string &what)
{
    std::fprintf(stderr, "bench_merge: %s\n", what.c_str());
    std::exit(2);
}

Json
load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        die("cannot read " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    Json doc = Json::parse(buf.str(), &error);
    if (doc.isNull())
        die(path + ": " + error);
    return doc;
}

/** Fetch doc[key] or die naming the artifact. */
const Json &
need(const Json &doc, const char *key, const std::string &path)
{
    const Json *v = doc.find(key);
    if (!v)
        die(path + " has no \"" + key + "\" member");
    return *v;
}

struct Shard
{
    std::string path;
    Json doc;
    unsigned index = 0;
    unsigned count = 0;
};

/** The document minus its "timing" member, for byte comparison. */
Json
withoutTiming(const Json &doc)
{
    Json out = Json::object();
    for (const auto &[key, value] : doc.members()) {
        if (key != "timing")
            out[key] = value;
    }
    return out;
}

int
run(int argc, char **argv)
{
    std::string outPath;
    std::string verifyPath;
    std::vector<std::string> inputs;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "-o") == 0 ||
            std::strcmp(arg, "--output") == 0) {
            if (++i >= argc)
                usage(2);
            outPath = argv[i];
        } else if (std::strcmp(arg, "--verify-identical") == 0) {
            if (++i >= argc)
                usage(2);
            verifyPath = argv[i];
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            usage(0);
        } else if (arg[0] == '-') {
            std::fprintf(stderr, "bench_merge: unknown flag '%s'\n",
                         arg);
            usage(2);
        } else {
            inputs.push_back(arg);
        }
    }
    if (outPath.empty() || inputs.empty())
        usage(2);

    // Load and validate each shard's identity metadata.
    std::vector<Shard> shards;
    for (const std::string &path : inputs) {
        Shard s;
        s.path = path;
        s.doc = load(path);
        const Json &timing = need(s.doc, "timing", path);
        const Json *shardMeta = timing.find("shard");
        if (!shardMeta) {
            die(path +
                " has no timing.shard metadata (not produced with "
                "--shard?)");
        }
        s.index = static_cast<unsigned>(
            need(*shardMeta, "index", path).asUint());
        s.count = static_cast<unsigned>(
            need(*shardMeta, "count", path).asUint());
        shards.push_back(std::move(s));
    }

    const std::string bench =
        need(shards[0].doc, "bench", shards[0].path).asString();
    const std::uint64_t schema =
        need(shards[0].doc, "schema_version", shards[0].path)
            .asUint();
    const unsigned count = shards[0].count;
    for (const Shard &s : shards) {
        if (need(s.doc, "bench", s.path).asString() != bench)
            die(s.path + " is from a different bench");
        if (need(s.doc, "schema_version", s.path).asUint() != schema)
            die(s.path + " has a different schema_version");
        if (s.count != count)
            die(s.path + " was sharded " + std::to_string(s.count) +
                " ways, not " + std::to_string(count));
    }
    if (shards.size() != count) {
        die("got " + std::to_string(shards.size()) + " artifact(s) " +
            "for a " + std::to_string(count) + "-way shard split");
    }

    std::sort(shards.begin(), shards.end(),
              [](const Shard &a, const Shard &b) {
                  return a.index < b.index;
              });
    for (unsigned s = 0; s < count; ++s) {
        if (shards[s].index != s)
            die("shard index " + std::to_string(s) +
                " is missing or duplicated");
    }

    // Collect per-shard run arrays and check the round-robin shape.
    std::vector<const std::vector<Json> *> runsByShard;
    std::size_t total = 0;
    for (const Shard &s : shards) {
        const Json &runs = need(s.doc, "runs", s.path);
        if (runs.type() != Json::Type::Array)
            die(s.path + ": \"runs\" is not an array");
        runsByShard.push_back(&runs.items());
        total += runs.size();
    }
    for (unsigned s = 0; s < count; ++s) {
        const std::size_t expected = (total - s + count - 1) / count;
        if (runsByShard[s]->size() != expected) {
            die(shards[s].path + " has " +
                std::to_string(runsByShard[s]->size()) +
                " runs, expected " + std::to_string(expected) +
                " for round-robin shard " + std::to_string(s) + "/" +
                std::to_string(count));
        }
    }

    // Interleave back into declaration order, checking that no
    // (workload, variant) key appears in two shards.
    Json runs = Json::array();
    std::set<std::pair<std::string, std::string>> seen;
    double wallSeconds = 0.0;
    std::uint64_t retired = 0;
    for (std::size_t k = 0; runs.size() < total; ++k) {
        for (unsigned s = 0; s < count; ++s) {
            if (k >= runsByShard[s]->size())
                continue;
            const Json &run = (*runsByShard[s])[k];
            const Json *workload = run.find("workload");
            const Json *variant = run.find("variant");
            if (!workload || !variant)
                die(shards[s].path + ": run without workload/variant");
            if (!seen
                     .insert({workload->asString(),
                              variant->asString()})
                     .second) {
                die("duplicate run " + workload->asString() + "/" +
                    variant->asString() + " across shards");
            }
            if (const Json *core = run.find("core")) {
                if (const Json *r = core->find("retired_instrs"))
                    retired += r->asUint();
            }
            runs.push_back(run);
        }
    }
    for (const Shard &s : shards) {
        const Json &timing = need(s.doc, "timing", s.path);
        if (const Json *w = timing.find("wall_seconds"))
            wallSeconds += w->asNumber();
    }

    Json doc = Json::object();
    doc["bench"] = bench;
    doc["schema_version"] = schema;
    doc["runs"] = std::move(runs);
    Json timing = Json::object();
    timing["merged_from"] = count;
    timing["wall_seconds"] = wallSeconds;
    timing["sim_kuops_per_sec"] =
        wallSeconds > 0.0
            ? static_cast<double>(retired) / wallSeconds / 1e3
            : 0.0;
    doc["timing"] = std::move(timing);

    if (!verifyPath.empty()) {
        const Json ref = load(verifyPath);
        const std::string got = withoutTiming(doc).dump(2);
        const std::string want = withoutTiming(ref).dump(2);
        if (got != want) {
            std::fprintf(stderr,
                         "bench_merge: merged artifact differs from "
                         "%s (modulo \"timing\"): %zu vs %zu bytes\n",
                         verifyPath.c_str(), got.size(), want.size());
            return 1;
        }
        std::fprintf(stderr,
                     "bench_merge: merged artifact is byte-identical "
                     "to %s modulo \"timing\"\n",
                     verifyPath.c_str());
    }

    std::ofstream out(outPath);
    if (!out)
        die("cannot write " + outPath);
    out << doc.dump(2);
    std::fprintf(stderr, "wrote %s (%zu runs from %u shards)\n",
                 outPath.c_str(), total, count);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Schema violations inside a parseable artifact (a string where a
    // number belongs, say) surface as exceptions from the Json
    // accessors; report them like any other bad input instead of
    // aborting.
    try {
        return run(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "bench_merge: malformed artifact: %s\n",
                     e.what());
        return 2;
    }
}
