/**
 * @file
 * Determinism and convention linter for the simulator sources.
 *
 * The stat gate proves runs are bit-identical on *this* build; this
 * tool statically rejects the patterns that make them silently
 * non-identical on the next one. It scans .hh/.cc files (comments
 * and string literals stripped) for:
 *
 *  - banned-call: wall-clock and libc/std randomness entry points
 *    (rand, srand, std::random_device, time(), system_clock, ...).
 *    All simulator randomness must flow through common/random.hh and
 *    host-time measurement through steady_clock (which never feeds
 *    stats).
 *
 *  - unordered-iteration: range-for or .begin() iteration over a
 *    std::unordered_map/set declared in the same file. Hash-order
 *    iteration is stat-poison: it differs across libstdc++ versions
 *    while staying deterministic within one build, so the stat gate
 *    cannot catch it. Membership queries (find/count/insert/erase)
 *    are fine.
 *
 *  - uninit-config-field: a field of a *Config or *Knobs struct with
 *    no default member initializer. Config structs are aggregates
 *    built field-by-field all over the benches; one forgotten field
 *    is uninitialized-read UB that may still print golden numbers.
 *
 *  - missing-mutator-assert: a public mutator of the hand-rolled
 *    ring/pool structures (common/pool.hh, cycle_ring.hh,
 *    circular_queue.hh, flat_map.hh) whose body contains neither
 *    SIM_ASSERT nor SIM_AUDIT. Those structures earn their O(1)
 *    claims by maintaining invariants; a mutator with no check is a
 *    convention violation.
 *
 *  - snapshot-fields: a class declaring a save*() member whose
 *    SIM_SNAPSHOT_FIELDS(N) annotation is missing or disagrees with
 *    the number of data members declared in its body. The count is
 *    the tripwire that forces every new member through a
 *    save/restore review; a stale count means a member was added
 *    without one.
 *
 * Vetted exceptions live in an allowlist file (one per line:
 * "<rule> <path-suffix>", '#' comments). It is empty by default and
 * should stay that way; new entries need review.
 *
 *   lint_sim [--allowlist FILE] DIR_OR_FILE...
 *
 * Exit status: 0 clean, 1 findings, 2 usage/IO error.
 */

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace
{

struct Finding
{
    std::string path;
    std::size_t line;
    std::string rule;
    std::string message;
};

struct AllowEntry
{
    std::string rule;
    std::string pathSuffix;
};

bool
isWordChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/**
 * The file contents with comments and string/char literals blanked
 * (replaced by spaces, newlines kept), so token scans cannot trip
 * over documentation or message text.
 */
std::string
stripCommentsAndStrings(const std::string &in)
{
    std::string out = in;
    enum class State
    {
        Code,
        LineComment,
        BlockComment,
        String,
        Char,
    };
    State st = State::Code;
    for (std::size_t i = 0; i < in.size(); ++i) {
        const char c = in[i];
        const char next = i + 1 < in.size() ? in[i + 1] : '\0';
        switch (st) {
          case State::Code:
            if (c == '/' && next == '/') {
                st = State::LineComment;
                out[i] = ' ';
            } else if (c == '/' && next == '*') {
                st = State::BlockComment;
                out[i] = ' ';
            } else if (c == '"') {
                st = State::String;
            } else if (c == '\'') {
                st = State::Char;
            }
            break;
          case State::LineComment:
            if (c == '\n')
                st = State::Code;
            else
                out[i] = ' ';
            break;
          case State::BlockComment:
            if (c == '*' && next == '/') {
                out[i] = ' ';
                out[i + 1] = ' ';
                ++i;
                st = State::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
          case State::String:
            if (c == '\\' && next != '\0') {
                out[i] = ' ';
                if (next != '\n')
                    out[i + 1] = ' ';
                ++i;
            } else if (c == '"') {
                st = State::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
          case State::Char:
            if (c == '\\' && next != '\0') {
                out[i] = ' ';
                if (next != '\n')
                    out[i + 1] = ' ';
                ++i;
            } else if (c == '\'') {
                st = State::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
        }
    }
    return out;
}

std::size_t
lineOfOffset(const std::string &text, std::size_t off)
{
    return 1 + static_cast<std::size_t>(
                   std::count(text.begin(), text.begin() + off, '\n'));
}

/** Find `token` at @p from with a non-word character on each side. */
std::size_t
findWord(const std::string &text, const std::string &token,
         std::size_t from)
{
    for (std::size_t pos = text.find(token, from);
         pos != std::string::npos; pos = text.find(token, pos + 1)) {
        const bool okBefore = pos == 0 || !isWordChar(text[pos - 1]);
        const std::size_t end = pos + token.size();
        const bool okAfter =
            end >= text.size() || !isWordChar(text[end]);
        if (okBefore && okAfter)
            return pos;
    }
    return std::string::npos;
}

/** Skip whitespace from @p pos. */
std::size_t
skipWs(const std::string &text, std::size_t pos)
{
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])))
        ++pos;
    return pos;
}

// ---------------------------------------------------------------------
// Rule: banned-call
// ---------------------------------------------------------------------

struct BannedToken
{
    const char *token;
    bool requiresCall; //!< only flag when followed by '('
    const char *why;
};

constexpr BannedToken kBanned[] = {
    {"rand", true, "use cdfsim::Random (common/random.hh)"},
    {"srand", true, "use cdfsim::Random (common/random.hh)"},
    {"drand48", true, "use cdfsim::Random (common/random.hh)"},
    {"lrand48", true, "use cdfsim::Random (common/random.hh)"},
    {"random_device", false,
     "nondeterministic seed; use cdfsim::Random with a fixed seed"},
    {"time", true, "wall clock in simulator code; derive from cycles"},
    {"gettimeofday", true,
     "wall clock in simulator code; derive from cycles"},
    {"system_clock", false,
     "wall clock; use steady_clock for host-time profiling only"},
    {"getrandom", true,
     "nondeterministic; use cdfsim::Random with a fixed seed"},
};

void
lintBannedCalls(const std::string &path, const std::string &code,
                std::vector<Finding> &findings)
{
    for (const BannedToken &b : kBanned) {
        std::size_t pos = 0;
        while ((pos = findWord(code, b.token, pos)) !=
               std::string::npos) {
            const std::size_t after =
                skipWs(code, pos + std::strlen(b.token));
            if (!b.requiresCall ||
                (after < code.size() && code[after] == '(')) {
                findings.push_back(
                    {path, lineOfOffset(code, pos), "banned-call",
                     std::string("'") + b.token + "': " + b.why});
            }
            ++pos;
        }
    }
}

// ---------------------------------------------------------------------
// Rule: unordered-iteration
// ---------------------------------------------------------------------

/** Names declared in this file as std::unordered_{map,set}<...>. */
std::set<std::string>
unorderedNames(const std::string &code)
{
    std::set<std::string> names;
    for (const char *kind : {"unordered_map", "unordered_set"}) {
        std::size_t pos = 0;
        while ((pos = findWord(code, kind, pos)) !=
               std::string::npos) {
            std::size_t i = skipWs(code, pos + std::strlen(kind));
            pos += 1;
            if (i >= code.size() || code[i] != '<')
                continue;
            // Balance template brackets to find the declared name.
            int depth = 0;
            for (; i < code.size(); ++i) {
                if (code[i] == '<')
                    ++depth;
                else if (code[i] == '>' && --depth == 0) {
                    ++i;
                    break;
                }
            }
            // Skip qualifiers between the type and the declared
            // name: "const", references, pointers.
            while (true) {
                i = skipWs(code, i);
                if (i < code.size() &&
                    (code[i] == '&' || code[i] == '*')) {
                    ++i;
                    continue;
                }
                if (code.compare(i, 5, "const") == 0 &&
                    (i + 5 >= code.size() ||
                     !isWordChar(code[i + 5]))) {
                    i += 5;
                    continue;
                }
                break;
            }
            std::size_t start = i;
            while (i < code.size() && isWordChar(code[i]))
                ++i;
            if (i > start)
                names.insert(code.substr(start, i - start));
        }
    }
    return names;
}

void
lintUnorderedIteration(const std::string &path, const std::string &code,
                       std::vector<Finding> &findings)
{
    const std::set<std::string> names = unorderedNames(code);
    for (const std::string &name : names) {
        std::size_t pos = 0;
        while ((pos = findWord(code, name, pos)) !=
               std::string::npos) {
            const std::size_t at = pos;
            pos += 1;
            // Range-for: "... : name)" — look back past whitespace
            // for ':' that is not part of "::".
            std::size_t back = at;
            while (back > 0 && std::isspace(static_cast<unsigned char>(
                                   code[back - 1])))
                --back;
            const bool rangeFor =
                back > 0 && code[back - 1] == ':' &&
                (back < 2 || code[back - 2] != ':');
            // Explicit iteration: "name.begin(" / "name.cbegin(".
            std::size_t fwd = skipWs(code, at + name.size());
            bool beginCall = false;
            if (fwd < code.size() && code[fwd] == '.') {
                const std::size_t m = skipWs(code, fwd + 1);
                beginCall = code.compare(m, 6, "begin(") == 0 ||
                            code.compare(m, 7, "cbegin(") == 0;
            }
            if (rangeFor || beginCall) {
                findings.push_back(
                    {path, lineOfOffset(code, at),
                     "unordered-iteration",
                     "iterating '" + name +
                         "' visits hash order, which varies across "
                         "standard libraries; iterate a sorted or "
                         "insertion-ordered structure instead"});
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule: uninit-config-field
// ---------------------------------------------------------------------

void
lintConfigStructs(const std::string &path, const std::string &code,
                  std::vector<Finding> &findings)
{
    std::size_t pos = 0;
    while ((pos = findWord(code, "struct", pos)) !=
           std::string::npos) {
        std::size_t i = skipWs(code, pos + 6);
        pos += 1;
        std::size_t nameStart = i;
        while (i < code.size() && isWordChar(code[i]))
            ++i;
        const std::string name =
            code.substr(nameStart, i - nameStart);
        const bool isConfig =
            name.size() > 6 &&
            name.compare(name.size() - 6, 6, "Config") == 0;
        const bool isKnobs =
            name.size() > 5 &&
            name.compare(name.size() - 5, 5, "Knobs") == 0;
        if (!isConfig && !isKnobs)
            continue;
        i = skipWs(code, i);
        if (i >= code.size() || code[i] != '{')
            continue; // forward declaration
        // Walk the body at depth 1, one ';'-terminated declaration
        // at a time. Anything with parens is a function/constructor
        // and exempt; everything else must carry '=' or a brace
        // initializer.
        int depth = 0;
        std::size_t declStart = i + 1;
        bool declHasInit = false;
        bool declHasParen = false;
        for (; i < code.size(); ++i) {
            const char c = code[i];
            if (c == '{' || c == '(') {
                if (depth == 1 && c == '{')
                    declHasInit = true;
                if (depth == 1 && c == '(')
                    declHasParen = true;
                ++depth;
            } else if (c == '}' || c == ')') {
                if (--depth == 0)
                    break;
            } else if (depth == 1 && c == '=') {
                declHasInit = true;
            } else if (depth == 1 && c == ';') {
                const std::string decl =
                    code.substr(declStart, i - declStart);
                // A field declaration mentions at least two words
                // (type and name); "using x = y;" was caught by '='
                // and access specifiers carry ':'.
                std::istringstream ds(decl);
                std::string w1, w2;
                ds >> w1 >> w2;
                const bool looksLikeField =
                    !w2.empty() && w1 != "using" && w1 != "typedef" &&
                    w1 != "friend" && w1 != "static" &&
                    decl.find(':') == std::string::npos;
                if (looksLikeField && !declHasInit && !declHasParen) {
                    findings.push_back(
                        {path, lineOfOffset(code, declStart),
                         "uninit-config-field",
                         "field of " + name +
                             " has no default initializer (aggregate "
                             "Config structs must zero every field)"});
                }
                declStart = i + 1;
                declHasInit = false;
                declHasParen = false;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule: missing-mutator-assert
// ---------------------------------------------------------------------

constexpr const char *kMutatorFiles[] = {
    "pool.hh",
    "cycle_ring.hh",
    "circular_queue.hh",
    "flat_map.hh",
};

constexpr const char *kMutators[] = {
    "allocate", "free", "push", "pop", "pruneUpTo",
    "add",      "erase", "truncate",
};

void
lintMutatorAsserts(const std::string &path, const std::string &code,
                   std::vector<Finding> &findings)
{
    const std::string base = fs::path(path).filename().string();
    if (std::none_of(std::begin(kMutatorFiles),
                     std::end(kMutatorFiles),
                     [&](const char *f) { return base == f; }))
        return;
    for (const char *name : kMutators) {
        std::size_t pos = 0;
        while ((pos = findWord(code, name, pos)) !=
               std::string::npos) {
            const std::size_t at = pos;
            pos += 1;
            std::size_t i = skipWs(code, at + std::strlen(name));
            if (i >= code.size() || code[i] != '(')
                continue;
            // Match the parameter list, then require a '{' (after
            // qualifiers) so declarations and call sites are skipped.
            int depth = 0;
            for (; i < code.size(); ++i) {
                if (code[i] == '(')
                    ++depth;
                else if (code[i] == ')' && --depth == 0) {
                    ++i;
                    break;
                }
            }
            std::size_t bodyStart = code.find('{', i);
            const std::size_t stop = code.find(';', i);
            if (bodyStart == std::string::npos ||
                (stop != std::string::npos && stop < bodyStart))
                continue;
            int bdepth = 0;
            std::size_t j = bodyStart;
            for (; j < code.size(); ++j) {
                if (code[j] == '{')
                    ++bdepth;
                else if (code[j] == '}' && --bdepth == 0) {
                    ++j;
                    break;
                }
            }
            const std::string body =
                code.substr(bodyStart, j - bodyStart);
            if (body.find("SIM_ASSERT") == std::string::npos &&
                body.find("SIM_AUDIT") == std::string::npos) {
                findings.push_back(
                    {path, lineOfOffset(code, at),
                     "missing-mutator-assert",
                     std::string("mutator '") + name +
                         "' of a ring/pool structure checks no "
                         "invariant (add SIM_ASSERT or SIM_AUDIT)"});
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule: snapshot-fields
// ---------------------------------------------------------------------

/**
 * A class or struct that declares a save*() member participates in
 * the snapshot system, so it must carry a SIM_SNAPSHOT_FIELDS(N)
 * annotation with N equal to the number of data members declared
 * directly in its body — host-only members included, because the
 * annotation exists to force every new member through a save/restore
 * review (serialize it, or document why not). Nested types, static
 * members, using/typedef aliases and friends do not count.
 */
void
lintSnapshotFields(const std::string &path, const std::string &code,
                   std::vector<Finding> &findings)
{
    for (const char *kw : {"class", "struct"}) {
        std::size_t pos = 0;
        while ((pos = findWord(code, kw, pos)) !=
               std::string::npos) {
            const std::size_t kwAt = pos;
            pos += 1;
            // "enum class" / "enum struct" declare enumerations.
            std::size_t back = kwAt;
            while (back > 0 &&
                   std::isspace(static_cast<unsigned char>(
                       code[back - 1])))
                --back;
            if (back >= 4 &&
                code.compare(back - 4, 4, "enum") == 0 &&
                (back == 4 || !isWordChar(code[back - 5])))
                continue;
            std::size_t i = skipWs(code, kwAt + std::strlen(kw));
            const std::size_t nameStart = i;
            while (i < code.size() && isWordChar(code[i]))
                ++i;
            const std::string name =
                code.substr(nameStart, i - nameStart);
            // Find the body's '{', skipping a base clause; bail on
            // forward declarations and template parameters.
            i = skipWs(code, i);
            if (i < code.size() && code[i] == ':') {
                while (i < code.size() && code[i] != '{' &&
                       code[i] != ';')
                    ++i;
            }
            if (i >= code.size() || code[i] != '{')
                continue;

            // Walk the body one direct declaration at a time.
            // Parenthesized and braced sub-scopes (parameter lists,
            // function bodies, nested type bodies, brace
            // initializers) are absorbed whole, so ';' and ':' only
            // act at the class's own depth.
            std::string decl;
            bool funcMarker = false; //!< decl is a function
            bool sawInit = false;    //!< '=' seen before any '('
            std::string funcName;
            bool hasSave = false;
            unsigned fields = 0;
            long annot = -1;
            std::size_t annotAt = kwAt;

            auto resetDecl = [&] {
                decl.clear();
                funcMarker = false;
                sawInit = false;
                funcName.clear();
            };
            auto lastWord = [&]() {
                std::size_t e = decl.size();
                while (e > 0 &&
                       std::isspace(static_cast<unsigned char>(
                           decl[e - 1])))
                    --e;
                std::size_t s = e;
                while (s > 0 && isWordChar(decl[s - 1]))
                    --s;
                return decl.substr(s, e - s);
            };
            auto trimmedDecl = [&]() {
                std::size_t s = 0;
                while (s < decl.size() &&
                       std::isspace(static_cast<unsigned char>(
                           decl[s])))
                    ++s;
                return decl.substr(s);
            };
            auto classify = [&](std::size_t at) {
                const std::string d = trimmedDecl();
                if (d.empty()) {
                    resetDecl();
                    return;
                }
                std::istringstream ds(d);
                std::string w1, w2;
                ds >> w1 >> w2;
                if (w1.rfind("SIM_SNAPSHOT_FIELDS", 0) == 0) {
                    const std::size_t p = d.find('(');
                    if (p != std::string::npos)
                        annot = std::atol(d.c_str() + p + 1);
                    annotAt = at;
                } else if (funcMarker) {
                    if (funcName.rfind("save", 0) == 0)
                        hasSave = true;
                } else if (!w2.empty() && w1 != "using" &&
                           w1 != "typedef" && w1 != "friend" &&
                           w1 != "static" && w1 != "struct" &&
                           w1 != "class" && w1 != "enum" &&
                           w1 != "template") {
                    ++fields;
                }
                resetDecl();
            };
            auto absorb = [&](std::size_t &j, char open, char close) {
                const std::size_t from = j;
                int depth = 0;
                for (; j < code.size(); ++j) {
                    if (code[j] == open)
                        ++depth;
                    else if (code[j] == close && --depth == 0)
                        break;
                }
                decl += code.substr(from,
                                    j < code.size() ? j - from + 1
                                                    : j - from);
            };

            std::size_t j = i + 1;
            for (; j < code.size(); ++j) {
                const char c = code[j];
                if (c == '(') {
                    if (!sawInit && !funcMarker) {
                        funcMarker = true;
                        funcName = lastWord();
                    }
                    absorb(j, '(', ')');
                } else if (c == '{') {
                    if (funcMarker) {
                        absorb(j, '{', '}');
                        classify(j);
                    } else {
                        absorb(j, '{', '}');
                    }
                } else if (c == '}') {
                    break; // end of this class body
                } else if (c == ';') {
                    classify(j);
                } else if (c == ':') {
                    const std::string d = trimmedDecl();
                    if (d == "public" || d == "private" ||
                        d == "protected")
                        resetDecl();
                    else
                        decl += c;
                } else {
                    if (c == '=' && !funcMarker) {
                        // "operator=" is a function, not a default
                        // member initializer.
                        if (lastWord() == "operator") {
                            funcMarker = true;
                            funcName = "operator=";
                        } else {
                            sawInit = true;
                        }
                    }
                    decl += c;
                }
            }

            if (!hasSave)
                continue;
            if (annot < 0) {
                findings.push_back(
                    {path, lineOfOffset(code, kwAt),
                     "snapshot-fields",
                     "'" + name +
                         "' declares a save*() member but no "
                         "SIM_SNAPSHOT_FIELDS annotation (it has " +
                         std::to_string(fields) +
                         " data member(s))"});
            } else if (annot != static_cast<long>(fields)) {
                findings.push_back(
                    {path, lineOfOffset(code, annotAt),
                     "snapshot-fields",
                     "'" + name + "' annotates SIM_SNAPSHOT_FIELDS(" +
                         std::to_string(annot) + ") but declares " +
                         std::to_string(fields) +
                         " data member(s); re-review the save/"
                         "restore codecs and update the count"});
            }
        }
    }
}

// ---------------------------------------------------------------------

std::vector<AllowEntry>
loadAllowlist(const std::string &path)
{
    std::vector<AllowEntry> entries;
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "lint_sim: cannot read allowlist %s\n",
                     path.c_str());
        std::exit(2);
    }
    std::string line;
    while (std::getline(in, line)) {
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream ls(line);
        AllowEntry e;
        if (ls >> e.rule >> e.pathSuffix)
            entries.push_back(std::move(e));
    }
    return entries;
}

bool
allowed(const Finding &f, const std::vector<AllowEntry> &allow)
{
    const std::string norm =
        fs::path(f.path).lexically_normal().generic_string();
    for (const AllowEntry &e : allow) {
        if (e.rule != f.rule && e.rule != "*")
            continue;
        if (norm.size() >= e.pathSuffix.size() &&
            norm.compare(norm.size() - e.pathSuffix.size(),
                         e.pathSuffix.size(), e.pathSuffix) == 0)
            return true;
    }
    return false;
}

void
lintFile(const fs::path &path, std::vector<Finding> &findings)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "lint_sim: cannot read %s\n",
                     path.string().c_str());
        std::exit(2);
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string code = stripCommentsAndStrings(buf.str());
    const std::string p = path.generic_string();
    lintBannedCalls(p, code, findings);
    lintUnorderedIteration(p, code, findings);
    lintConfigStructs(p, code, findings);
    lintMutatorAsserts(p, code, findings);
    lintSnapshotFields(p, code, findings);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string allowlistPath;
    std::vector<std::string> roots;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--allowlist") == 0) {
            if (++i >= argc) {
                std::fprintf(stderr,
                             "lint_sim: --allowlist needs a file\n");
                return 2;
            }
            allowlistPath = argv[i];
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            std::printf("usage: lint_sim [--allowlist FILE] "
                        "DIR_OR_FILE...\n");
            return 0;
        } else if (arg[0] == '-') {
            std::fprintf(stderr, "lint_sim: unknown flag '%s'\n", arg);
            return 2;
        } else {
            roots.push_back(arg);
        }
    }
    if (roots.empty()) {
        std::fprintf(stderr,
                     "usage: lint_sim [--allowlist FILE] "
                     "DIR_OR_FILE...\n");
        return 2;
    }

    std::vector<AllowEntry> allow;
    if (!allowlistPath.empty())
        allow = loadAllowlist(allowlistPath);

    std::vector<fs::path> files;
    for (const std::string &root : roots) {
        if (fs::is_regular_file(root)) {
            files.emplace_back(root);
            continue;
        }
        if (!fs::is_directory(root)) {
            std::fprintf(stderr, "lint_sim: no such path: %s\n",
                         root.c_str());
            return 2;
        }
        for (const auto &entry :
             fs::recursive_directory_iterator(root)) {
            if (!entry.is_regular_file())
                continue;
            const std::string ext = entry.path().extension().string();
            if (ext == ".hh" || ext == ".cc" || ext == ".hpp" ||
                ext == ".cpp" || ext == ".h")
                files.push_back(entry.path());
        }
    }
    std::sort(files.begin(), files.end());

    std::vector<Finding> findings;
    for (const fs::path &f : files)
        lintFile(f, findings);

    unsigned reported = 0;
    unsigned suppressed = 0;
    for (const Finding &f : findings) {
        if (allowed(f, allow)) {
            ++suppressed;
            continue;
        }
        std::printf("%s:%zu: [%s] %s\n", f.path.c_str(), f.line,
                    f.rule.c_str(), f.message.c_str());
        ++reported;
    }
    std::printf("lint_sim: %zu file(s), %u finding(s), "
                "%u allowlisted\n",
                files.size(), reported, suppressed);
    return reported > 0 ? 1 : 0;
}
