/**
 * @file
 * Schema and expansion checker for checked-in sweep specs.
 *
 * Walks a directory of *.json sweep specs (default: the argument to
 * --dir), parses each through sim::SweepSpec::fromFile, and dry-runs
 * the full cell expansion against a default CoreConfig.  Any parse or
 * expansion error is reported with the offending spec path and makes
 * the exit code nonzero, so a CI step can gate on "every spec in the
 * tree still loads and expands":
 *
 *   sweep_spec_validate --dir bench/specs
 *
 * Scanning happens at runtime, so a newly added spec is covered
 * without touching the build system.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "ooo/core_config.hh"
#include "sim/sweep_spec.hh"

namespace fs = std::filesystem;

using namespace cdfsim;

int
main(int argc, char **argv)
{
    std::string dir;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--dir") == 0 && i + 1 < argc) {
            dir = argv[++i];
        } else if (std::strncmp(arg, "--dir=", 6) == 0) {
            dir = arg + 6;
        } else {
            std::fprintf(stderr,
                         "usage: sweep_spec_validate --dir DIR\n");
            return 2;
        }
    }
    if (dir.empty()) {
        std::fprintf(stderr, "usage: sweep_spec_validate --dir DIR\n");
        return 2;
    }

    std::error_code ec;
    if (!fs::is_directory(dir, ec)) {
        std::fprintf(stderr,
                     "sweep_spec_validate: %s is not a directory\n",
                     dir.c_str());
        return 2;
    }

    std::vector<std::string> paths;
    for (const fs::directory_entry &entry : fs::directory_iterator(dir)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".json")
            paths.push_back(entry.path().string());
    }
    std::sort(paths.begin(), paths.end());
    if (paths.empty()) {
        std::fprintf(stderr,
                     "sweep_spec_validate: no *.json specs under %s\n",
                     dir.c_str());
        return 2;
    }

    unsigned bad = 0;
    for (const std::string &path : paths) {
        try {
            const sim::SweepSpec spec = sim::SweepSpec::fromFile(path);
            const auto cells = spec.expand(ooo::CoreConfig{});
            if (cells.empty())
                throw std::runtime_error(path +
                                         ": expands to zero cells");
            std::printf("ok      %-44s %s: %zu cell(s)\n",
                        path.c_str(), spec.name().c_str(),
                        cells.size());
        } catch (const std::exception &e) {
            std::printf("INVALID %-44s %s\n", path.c_str(), e.what());
            ++bad;
        }
    }
    std::printf("%zu spec(s) checked, %u invalid\n", paths.size(), bad);
    return bad > 0 ? 1 : 0;
}
